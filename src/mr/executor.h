// Executor: the minimal parallelism abstraction shared by the ensemble and
// the serving runtime.
//
// An Executor is a parallel-for: exec(n, fn) invokes fn(i) exactly once for
// every i in [0, n) and returns only after all invocations finished.
// Implementations are free to run iterations concurrently (the runtime's
// ThreadPool does) or inline (serial_executor). Callers must make fn safe
// to run concurrently for distinct indices; results must be written to
// per-index slots so the outcome is identical regardless of schedule.
//
// Living in mr/ keeps the dependency arrow pointing the right way: the
// ensemble knows nothing about threads, and pgmr::runtime plugs its pool in
// through this seam.
#pragma once

#include <cstddef>
#include <functional>

namespace pgmr::mr {

/// Parallel-for: runs fn(0..n-1), returning after every call completed.
using Executor =
    std::function<void(std::size_t n, const std::function<void(std::size_t)>& fn)>;

/// The trivial executor: runs every iteration inline, in index order.
inline const Executor& serial_executor() {
  static const Executor exec = [](std::size_t n,
                                  const std::function<void(std::size_t)>& fn) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  };
  return exec;
}

}  // namespace pgmr::mr
