#include "mr/rade.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

namespace pgmr::mr {

std::vector<std::size_t> contribution_priority(
    const MemberVotes& validation_votes,
    const std::vector<std::int64_t>& validation_labels) {
  if (validation_votes.empty()) {
    throw std::invalid_argument("contribution_priority: no members");
  }
  std::vector<std::int64_t> correct(validation_votes.size(), 0);
  for (std::size_t m = 0; m < validation_votes.size(); ++m) {
    if (validation_votes[m].size() != validation_labels.size()) {
      throw std::invalid_argument(
          "contribution_priority: vote/label count mismatch");
    }
    for (std::size_t n = 0; n < validation_labels.size(); ++n) {
      if (validation_votes[m][n].label == validation_labels[n]) ++correct[m];
    }
  }
  std::vector<std::size_t> order(validation_votes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return correct[a] > correct[b];
                   });
  return order;
}

StagedDecision staged_decide(const std::vector<Vote>& ordered_votes,
                             const Thresholds& t) {
  const int total = static_cast<int>(ordered_votes.size());
  if (total == 0) throw std::invalid_argument("staged_decide: no votes");

  std::map<std::int64_t, int> histogram;
  int active = 0;
  const int initial = std::min(std::max(t.freq, 1), total);

  auto admit = [&](int upto) {
    while (active < upto) {
      const Vote& v = ordered_votes[static_cast<std::size_t>(active)];
      if (v.label >= 0 && v.confidence >= t.conf) ++histogram[v.label];
      ++active;
    }
  };

  admit(initial);
  while (true) {
    int best = 0;
    for (const auto& [label, count] : histogram) best = std::max(best, count);
    if (best >= t.freq) break;                       // reliable verdict reached
    if (best + (total - active) < t.freq) break;     // can never reach Thr_Freq
    if (active == total) break;
    admit(active + 1);
  }

  // Final verdict from the activated prefix, with the same tie handling as
  // the full engine.
  StagedDecision result;
  result.activated = active;
  std::vector<Vote> prefix(ordered_votes.begin(),
                           ordered_votes.begin() + active);
  result.decision = decide(prefix, t);
  return result;
}

double StagedOutcome::mean_activated() const {
  std::int64_t samples = 0;
  std::int64_t weighted = 0;
  for (std::size_t k = 0; k < activation_histogram.size(); ++k) {
    samples += activation_histogram[k];
    weighted += activation_histogram[k] * static_cast<std::int64_t>(k + 1);
  }
  return samples ? static_cast<double>(weighted) / static_cast<double>(samples)
                 : 0.0;
}

StagedOutcome evaluate_staged(const MemberVotes& votes,
                              const std::vector<std::int64_t>& labels,
                              const std::vector<std::size_t>& priority,
                              const Thresholds& t) {
  if (priority.size() != votes.size()) {
    throw std::invalid_argument("evaluate_staged: bad priority permutation");
  }
  StagedOutcome out;
  out.activation_histogram.assign(votes.size(), 0);
  out.outcome.total = static_cast<std::int64_t>(labels.size());
  for (std::size_t n = 0; n < labels.size(); ++n) {
    std::vector<Vote> ordered;
    ordered.reserve(votes.size());
    for (std::size_t m : priority) ordered.push_back(votes[m][n]);
    const StagedDecision sd = staged_decide(ordered, t);
    ++out.activation_histogram[static_cast<std::size_t>(sd.activated - 1)];
    if (!sd.decision.reliable) {
      ++out.outcome.unreliable;
    } else if (sd.decision.label == labels[n]) {
      ++out.outcome.tp;
    } else {
      ++out.outcome.fp;
    }
  }
  return out;
}

}  // namespace pgmr::mr
