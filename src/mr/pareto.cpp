#include "mr/pareto.h"

#include <algorithm>

namespace pgmr::mr {

std::vector<float> default_conf_grid() {
  std::vector<float> grid;
  for (int i = 0; i < 20; ++i) grid.push_back(0.05F * static_cast<float>(i));
  return grid;
}

std::vector<SweepPoint> sweep_thresholds(
    const MemberVotes& votes, const std::vector<std::int64_t>& labels,
    const std::vector<float>& conf_grid) {
  std::vector<SweepPoint> points;
  const int members = static_cast<int>(votes.size());
  points.reserve(conf_grid.size() * static_cast<std::size_t>(members));
  for (float conf : conf_grid) {
    for (int freq = 1; freq <= members; ++freq) {
      const Thresholds t{conf, freq};
      const Outcome o = evaluate(votes, labels, t);
      points.push_back({t, o.tp_rate(), o.fp_rate()});
    }
  }
  return points;
}

std::vector<SweepPoint> sweep_single(const Tensor& probs,
                                     const std::vector<std::int64_t>& labels,
                                     const std::vector<float>& conf_grid) {
  std::vector<SweepPoint> points;
  points.reserve(conf_grid.size());
  for (float conf : conf_grid) {
    const Outcome o = evaluate_single(probs, labels, conf);
    points.push_back({Thresholds{conf, 1}, o.tp_rate(), o.fp_rate()});
  }
  return points;
}

std::vector<SweepPoint> pareto_frontier(std::vector<SweepPoint> points) {
  std::vector<SweepPoint> frontier;
  for (const SweepPoint& p : points) {
    bool dominated = false;
    for (const SweepPoint& q : points) {
      const bool no_worse = q.tp_rate >= p.tp_rate && q.fp_rate <= p.fp_rate;
      const bool strictly_better =
          q.tp_rate > p.tp_rate || q.fp_rate < p.fp_rate;
      if (no_worse && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(p);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const SweepPoint& a, const SweepPoint& b) {
              if (a.fp_rate != b.fp_rate) return a.fp_rate < b.fp_rate;
              return a.tp_rate < b.tp_rate;
            });
  // Drop duplicate (tp, fp) pairs that differ only in thresholds.
  frontier.erase(std::unique(frontier.begin(), frontier.end(),
                             [](const SweepPoint& a, const SweepPoint& b) {
                               return a.tp_rate == b.tp_rate &&
                                      a.fp_rate == b.fp_rate;
                             }),
                 frontier.end());
  return frontier;
}

std::optional<SweepPoint> select_by_tp_floor(
    const std::vector<SweepPoint>& frontier, double tp_floor) {
  if (frontier.empty()) return std::nullopt;
  std::optional<SweepPoint> best;
  for (const SweepPoint& p : frontier) {
    if (p.tp_rate >= tp_floor) {
      if (!best || p.fp_rate < best->fp_rate ||
          (p.fp_rate == best->fp_rate && p.tp_rate > best->tp_rate)) {
        best = p;
      }
    }
  }
  if (!best) {
    // No point preserves the floor: return the TP-maximizing point so the
    // caller still gets a usable configuration.
    best = *std::max_element(frontier.begin(), frontier.end(),
                             [](const SweepPoint& a, const SweepPoint& b) {
                               return a.tp_rate < b.tp_rate;
                             });
  }
  return best;
}

}  // namespace pgmr::mr
