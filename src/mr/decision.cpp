#include "mr/decision.h"

#include <cmath>
#include <map>
#include <stdexcept>

namespace pgmr::mr {

std::vector<Vote> votes_from_probabilities(const Tensor& probs) {
  if (probs.shape().rank() != 2) {
    throw std::invalid_argument(
        "votes_from_probabilities: expected [N, C] probabilities");
  }
  const std::int64_t batch = probs.shape()[0];
  std::vector<Vote> votes(static_cast<std::size_t>(batch));
  for (std::int64_t n = 0; n < batch; ++n) {
    votes[static_cast<std::size_t>(n)] = {probs.argmax_row(n),
                                          probs.max_row(n)};
  }
  return votes;
}

Decision decide(const std::vector<Vote>& votes, const Thresholds& t) {
  std::map<std::int64_t, int> histogram;
  for (const Vote& v : votes) {
    // A non-finite confidence (NaN softmax from a corrupted member) must
    // never count as an acceptable vote; isfinite makes the drop explicit
    // rather than relying on NaN-comparison semantics.
    if (v.label >= 0 && std::isfinite(v.confidence) && v.confidence >= t.conf) {
      ++histogram[v.label];
    }
  }
  Decision d;
  if (histogram.empty()) return d;  // nothing acceptable: unreliable, no label

  int best = 0;
  bool tie = false;
  for (const auto& [label, count] : histogram) {
    if (count > best) {
      best = count;
      d.label = label;
      tie = false;
    } else if (count == best) {
      tie = true;
    }
  }
  d.votes_for_label = best;
  d.reliable = !tie && best >= t.freq;
  return d;
}

int degraded_threshold(int freq, int active, int total) {
  if (active <= 0 || total <= 0) {
    throw std::invalid_argument("degraded_threshold: non-positive quorum");
  }
  if (active > total) {
    throw std::invalid_argument("degraded_threshold: active > total");
  }
  // ceil(freq * active / total) in integers, then clamp to [1, active] so
  // the rule stays satisfiable however aggressive the configured freq was.
  const int scaled =
      (freq * active + total - 1) / total;
  return std::max(1, std::min(scaled, active));
}

Decision decide(const std::vector<Vote>& votes, const Thresholds& t,
                int active, int total) {
  Thresholds scaled = t;
  scaled.freq = degraded_threshold(t.freq, active, total);
  return decide(votes, scaled);
}

int majority_threshold(int members) { return members / 2 + 1; }

int max_agreement(const std::vector<Vote>& votes) {
  std::map<std::int64_t, int> histogram;
  int best = 0;
  for (const Vote& v : votes) {
    if (v.label >= 0) best = std::max(best, ++histogram[v.label]);
  }
  return best;
}

}  // namespace pgmr::mr
