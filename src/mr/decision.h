// Layer 3 of PolygraphMR: the decision engine (paper Section III-E).
//
// Each member CNN contributes a top-1 vote (label + softmax confidence).
// The engine drops votes below Thr_Conf, histograms the rest, predicts the
// most frequent label, and marks the prediction reliable only when that
// frequency reaches Thr_Freq. Ties for the most frequent label are
// unreliable, matching the paper's majority-vote convention.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace pgmr::mr {

/// One member's top-1 prediction.
struct Vote {
  std::int64_t label = -1;
  float confidence = 0.0F;
};

/// The two decision-engine knobs (paper Section III-C).
struct Thresholds {
  float conf = 0.0F;  ///< Thr_Conf: minimum member confidence to count a vote
  int freq = 1;       ///< Thr_Freq: votes required to call the answer reliable
};

/// Engine output for one input sample.
struct Decision {
  std::int64_t label = -1;  ///< -1 when no vote met Thr_Conf
  bool reliable = false;
  int votes_for_label = 0;  ///< acceptable votes behind `label`
};

/// Extracts per-sample votes from a member's [N, C] probability matrix.
std::vector<Vote> votes_from_probabilities(const Tensor& probs);

/// Runs the decision engine over one sample's member votes. Votes with a
/// non-finite confidence (NaN/Inf softmax from a corrupted member) are
/// treated as below Thr_Conf and never counted.
Decision decide(const std::vector<Vote>& votes, const Thresholds& t);

/// Degraded-quorum overload: `active` of `total` configured members
/// survived (the rest are faulted or quarantined), so Thr_Freq is
/// re-normalized to ceil(freq * active / total), clamped to [1, active].
/// A 4-of-6 agreement rule becomes 3-of-4 with two members down instead of
/// an unsatisfiable 4-of-4+. With active == total this is exactly decide().
Decision decide(const std::vector<Vote>& votes, const Thresholds& t,
                int active, int total);

/// The re-normalized Thr_Freq used by the degraded-quorum overload.
int degraded_threshold(int freq, int active, int total);

/// Thr_Freq for classic majority voting over `members` networks.
int majority_threshold(int members);

/// Size of the largest agreeing group among `votes`, ignoring confidences —
/// the quantity histogrammed in the paper's Fig 7.
int max_agreement(const std::vector<Vote>& votes);

}  // namespace pgmr::mr
