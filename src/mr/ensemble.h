// Ensemble: Layers 1+2 bound together — each member pairs a preprocessor
// with a (possibly precision-reduced) CNN.
//
// Each member is also a *fault domain*: try_probabilities /
// member_outcomes capture per-member failures (thrown exceptions,
// non-finite softmax outputs, ABFT checksum mismatches on the final FC)
// as MemberOutcome values instead of letting one bad member take down the
// whole inference — the seam the serving runtime's quarantine and
// degraded-quorum machinery is built on.
#pragma once

#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "mr/evaluate.h"
#include "mr/executor.h"
#include "nn/network.h"
#include "perf/cost_model.h"
#include "prep/preprocessor.h"
#include "quant/quantized_network.h"

namespace pgmr::mr {

/// Why a member failed to contribute a usable softmax output.
enum class MemberFault {
  none,        ///< healthy output
  skipped,     ///< not run (inactive in the caller's run mask)
  exception,   ///< preprocessor or network threw
  non_finite,  ///< softmax contained NaN/Inf
  checksum,    ///< ABFT column-sum mismatch on the final FC GEMM
};

const char* to_string(MemberFault fault);

/// One member's isolated inference result.
struct MemberOutcome {
  /// [N, C] softmax. Valid for fault == none; still populated (but suspect)
  /// for non_finite/checksum faults; empty for skipped/exception.
  Tensor probabilities;
  MemberFault fault = MemberFault::none;
  std::exception_ptr error;  ///< set for exception faults
  std::string message;       ///< human-readable fault description
  /// For checksum faults: first failing top-level layer index, -1 otherwise.
  int failed_layer = -1;

  bool ok() const { return fault == MemberFault::none; }
};

/// One preprocessor + network pair. bits == 32 runs at full precision.
class Member {
 public:
  Member(std::unique_ptr<prep::Preprocessor> preprocessor, nn::Network network,
         int bits = quant::kFullBits);

  /// "<prep>/<network>" — e.g. "FlipX/convnet".
  std::string description() const;
  const std::string& prep_name() const { return prep_name_; }
  int bits() const { return net_.bits(); }

  /// ABFT protection level of the wrapped network (see nn/abft.h). Changing
  /// it re-blesses the current weights; do so only while they are good.
  nn::Protection protection() const { return net_.protection(); }
  void set_protection(nn::Protection p) { net_.set_protection(p); }

  /// Zoo archive this member's weights were loaded from — the scrubber's
  /// reload source. Empty when the member was built from an in-memory net.
  const std::string& archive_source() const { return archive_source_; }
  void set_archive_source(std::string path) {
    archive_source_ = std::move(path);
  }

  /// True when every parameter CRC still matches its blessed snapshot.
  bool params_intact() { return net_.params_intact(); }

  /// Number of parameter tensors — the incremental scrubber's work unit.
  std::size_t param_count() { return net_.param_count(); }

  /// CRC check of one parameter tensor (params() order).
  bool param_intact(std::size_t i) { return net_.param_intact(i); }

  /// Chunks in parameter tensor `i` — the resumable scrubber's work unit
  /// (see quant::QuantizedNetwork::kCrcChunkElems).
  std::size_t param_chunk_count(std::size_t i) {
    return net_.param_chunk_count(i);
  }

  /// CRC check of one chunk of parameter tensor `i`.
  bool param_chunk_intact(std::size_t i, std::size_t chunk) {
    return net_.param_chunk_intact(i, chunk);
  }

  /// Outcome of a reload_params() self-heal attempt.
  enum class ReloadStatus {
    healed,       ///< weights replaced from the archive, CRCs match again
    no_source,    ///< no archive_source recorded
    load_failed,  ///< archive unreadable (bad CRC / truncated / missing)
    mismatch,     ///< archive loads but its CRCs differ from the blessed set
  };

  /// Rebuilds this member's network from archive_source(). The fresh copy
  /// must reproduce the originally blessed parameter CRCs (construction is
  /// deterministic: load + truncate), otherwise the archive itself is
  /// suspect and the member is left untouched.
  ReloadStatus reload_params();

  /// Applies the preprocessor then the network; returns [N, C] softmax.
  /// Exceptions propagate — this is the strict path.
  Tensor probabilities(const Tensor& images);

  /// Fault-isolated inference: exceptions, non-finite outputs and ABFT
  /// checksum failures are reported in the outcome, never thrown.
  MemberOutcome try_probabilities(const Tensor& images);

  /// The wrapped network, exposed for fault-injection campaigns.
  quant::QuantizedNetwork& net() { return net_; }

  /// Static cost of one inference on inputs of shape `in` at this member's
  /// precision.
  perf::InferenceCost cost(const Shape& in, const perf::CostModel& model) const;

 private:
  std::unique_ptr<prep::Preprocessor> prep_;
  std::string prep_name_;
  quant::QuantizedNetwork net_;
  std::string archive_source_;
};

const char* to_string(Member::ReloadStatus status);

/// The heterogeneous modular-redundant group (paper Layer 2).
class Ensemble {
 public:
  Ensemble() = default;

  void add(Member member) { members_.push_back(std::move(member)); }
  std::size_t size() const { return members_.size(); }
  const Member& member(std::size_t i) const { return members_[i]; }
  Member& member(std::size_t i) { return members_[i]; }

  /// Replaces the member in slot `i` — the self-healing runtime's hot-swap
  /// seam. The slot keeps its position (decision order, health index,
  /// metrics index); only the preprocessor/network pair changes. Callers
  /// must serialize against in-flight inference (the runtime holds its
  /// swap mutex across the call). Once the slot is back in the run mask
  /// the quorum is full again, so the degraded Thr_Freq re-normalization
  /// naturally falls away — decisions recompute it per batch from the
  /// surviving member count.
  void replace(std::size_t i, Member member);

  /// Preprocessor name of every member, in slot order — the composition
  /// fingerprint replacement planning diversifies against.
  std::vector<std::string> prep_names() const;

  /// Runs every member on `images`; result[m] is member m's [N, C] softmax.
  /// Members are dispatched through `exec`, so the same implementation
  /// serves the serial path and the runtime's per-member parallelism; the
  /// result is identical either way (each member writes its own slot).
  std::vector<Tensor> member_probabilities(
      const Tensor& images, const Executor& exec = serial_executor());

  /// Fault-isolated variant: every member runs inside its own fault domain
  /// (see MemberOutcome). `active` (when non-null, sized like the ensemble)
  /// marks members to skip — the runtime passes its quarantine mask.
  std::vector<MemberOutcome> member_outcomes(
      const Tensor& images, const Executor& exec = serial_executor(),
      const std::vector<bool>* active = nullptr);

  /// member_probabilities + vote extraction in one call.
  MemberVotes member_votes(const Tensor& images,
                           const Executor& exec = serial_executor());

  /// Per-member inference cost on inputs of shape `in`.
  std::vector<perf::InferenceCost> member_costs(
      const Shape& in, const perf::CostModel& model) const;

 private:
  std::vector<Member> members_;
};

}  // namespace pgmr::mr
