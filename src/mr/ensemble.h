// Ensemble: Layers 1+2 bound together — each member pairs a preprocessor
// with a (possibly precision-reduced) CNN.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mr/evaluate.h"
#include "mr/executor.h"
#include "nn/network.h"
#include "perf/cost_model.h"
#include "prep/preprocessor.h"
#include "quant/quantized_network.h"

namespace pgmr::mr {

/// One preprocessor + network pair. bits == 32 runs at full precision.
class Member {
 public:
  Member(std::unique_ptr<prep::Preprocessor> preprocessor, nn::Network network,
         int bits = quant::kFullBits);

  /// "<prep>/<network>" — e.g. "FlipX/convnet".
  std::string description() const;
  const std::string& prep_name() const { return prep_name_; }
  int bits() const { return net_.bits(); }

  /// Applies the preprocessor then the network; returns [N, C] softmax.
  Tensor probabilities(const Tensor& images);

  /// Static cost of one inference on inputs of shape `in` at this member's
  /// precision.
  perf::InferenceCost cost(const Shape& in, const perf::CostModel& model) const;

 private:
  std::unique_ptr<prep::Preprocessor> prep_;
  std::string prep_name_;
  quant::QuantizedNetwork net_;
};

/// The heterogeneous modular-redundant group (paper Layer 2).
class Ensemble {
 public:
  Ensemble() = default;

  void add(Member member) { members_.push_back(std::move(member)); }
  std::size_t size() const { return members_.size(); }
  const Member& member(std::size_t i) const { return members_[i]; }
  Member& member(std::size_t i) { return members_[i]; }

  /// Runs every member on `images`; result[m] is member m's [N, C] softmax.
  /// Members are dispatched through `exec`, so the same implementation
  /// serves the serial path and the runtime's per-member parallelism; the
  /// result is identical either way (each member writes its own slot).
  std::vector<Tensor> member_probabilities(
      const Tensor& images, const Executor& exec = serial_executor());

  /// member_probabilities + vote extraction in one call.
  MemberVotes member_votes(const Tensor& images,
                           const Executor& exec = serial_executor());

  /// Per-member inference cost on inputs of shape `in`.
  std::vector<perf::InferenceCost> member_costs(
      const Shape& in, const perf::CostModel& model) const;

 private:
  std::vector<Member> members_;
};

}  // namespace pgmr::mr
