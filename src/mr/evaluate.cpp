#include "mr/evaluate.h"

#include <stdexcept>

namespace pgmr::mr {

MemberVotes votes_from_members(const std::vector<Tensor>& member_probs) {
  MemberVotes votes;
  votes.reserve(member_probs.size());
  for (const Tensor& probs : member_probs) {
    votes.push_back(votes_from_probabilities(probs));
  }
  for (const auto& v : votes) {
    if (v.size() != votes.front().size()) {
      throw std::invalid_argument("votes_from_members: ragged member outputs");
    }
  }
  return votes;
}

std::vector<Vote> sample_votes(const MemberVotes& votes, std::int64_t n) {
  std::vector<Vote> out;
  out.reserve(votes.size());
  for (const auto& member : votes) {
    out.push_back(member[static_cast<std::size_t>(n)]);
  }
  return out;
}

Outcome evaluate(const MemberVotes& votes,
                 const std::vector<std::int64_t>& labels,
                 const Thresholds& t) {
  if (votes.empty()) throw std::invalid_argument("evaluate: no members");
  if (votes.front().size() != labels.size()) {
    throw std::invalid_argument("evaluate: vote/label count mismatch");
  }
  Outcome out;
  out.total = static_cast<std::int64_t>(labels.size());
  for (std::int64_t n = 0; n < out.total; ++n) {
    const Decision d = decide(sample_votes(votes, n), t);
    if (!d.reliable) {
      ++out.unreliable;
    } else if (d.label == labels[static_cast<std::size_t>(n)]) {
      ++out.tp;
    } else {
      ++out.fp;
    }
  }
  return out;
}

Outcome evaluate_single(const Tensor& probs,
                        const std::vector<std::int64_t>& labels, float conf) {
  const std::vector<Vote> votes = votes_from_probabilities(probs);
  if (votes.size() != labels.size()) {
    throw std::invalid_argument("evaluate_single: vote/label count mismatch");
  }
  Outcome out;
  out.total = static_cast<std::int64_t>(labels.size());
  for (std::size_t n = 0; n < votes.size(); ++n) {
    if (votes[n].confidence < conf) {
      ++out.unreliable;
    } else if (votes[n].label == labels[n]) {
      ++out.tp;
    } else {
      ++out.fp;
    }
  }
  return out;
}

}  // namespace pgmr::mr
