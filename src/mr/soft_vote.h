// Soft voting: the deep-ensembles baseline (Lakshminarayanan et al.,
// NeurIPS 2017 — reference [27] of the paper).
//
// Instead of histogramming thresholded top-1 votes, the member softmax
// vectors are averaged and a single confidence threshold is applied to the
// averaged distribution. The paper cites this family as accurate but
// 10-100x more expensive at scale; the ablation bench compares it with
// PolygraphMR's frequency engine on equal member counts.
#pragma once

#include <vector>

#include "mr/evaluate.h"
#include "mr/pareto.h"

namespace pgmr::mr {

/// Elementwise mean of the members' [N, C] probability matrices.
/// Throws std::invalid_argument when shapes are inconsistent or empty.
Tensor average_probabilities(const std::vector<Tensor>& member_probs);

/// Evaluates soft voting at one confidence threshold: predict the argmax
/// of the averaged distribution, reliable iff its probability >= conf.
Outcome evaluate_soft(const std::vector<Tensor>& member_probs,
                      const std::vector<std::int64_t>& labels, float conf);

/// Sweeps soft voting over a confidence grid (Pareto input).
std::vector<SweepPoint> sweep_soft(const std::vector<Tensor>& member_probs,
                                   const std::vector<std::int64_t>& labels,
                                   const std::vector<float>& conf_grid);

}  // namespace pgmr::mr
