// Cost-driven per-member protection planning.
//
// Uniform Protection::full buys ~100 % weight-SDC detection but charges
// every member the abft_macs verification surcharge; uniform off is free
// and blind. Between them lies a per-member assignment space: a member
// whose vote rarely flips the verdict (low sensitivity) or that holds a
// small share of the ensemble's parameters (small fault target) can run at
// a cheaper level without moving the system's expected undetected-SDC mass
// much. This header prices that trade explicitly:
//
//   residual_sdc(plan) = sum_m  param_share[m] * sensitivity[m]
//                               * (1 - coverage(level[m]))
//
// protection_frontier() sweeps every per-member level assignment, prices
// each with the CostModel (abft_macs surcharge included, see
// perf::CostModel::network_cost), and keeps the (residual_sdc, cost)
// non-dominated set, where cost compares latency first and energy as the
// tie-break (memory-bound members hide the ABFT surcharge in the roofline
// latency; energy always pays for it); select_protection() then picks the
// cheapest plan under an SDC budget — the same sweep-then-select shape as
// the (Thr_Conf, Thr_Freq) Pareto stage in mr/pareto.h.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "mr/ensemble.h"
#include "perf/cost_model.h"

namespace pgmr::mr {

/// The assignable ABFT levels in ascending coverage (and cost) order —
/// the planner's per-member axis.
inline constexpr std::array<nn::Protection, 3> kProtectionLevels = {
    nn::Protection::off, nn::Protection::final_fc, nn::Protection::full};

/// Fraction of weight corruptions each level detects or masks before they
/// become silent output corruptions. Defaults come from the sdc_coverage
/// campaign (EXPERIMENTS.md): full catches every exponent-scale flip the
/// campaign injects; final_fc only sees faults that reach the last GEMM.
struct CoverageModel {
  double off = 0.0;
  double final_fc = 0.35;
  double full = 1.0;

  double coverage(nn::Protection p) const;
};

/// Everything the planner needs to know about one member.
struct MemberProtectionInput {
  /// This member's share of the ensemble's parameter count — the fraction
  /// of uniformly-random weight faults that land on it.
  double param_share = 1.0;
  /// P(verdict-corrupting SDC | an undetected fault in this member), in
  /// [0, 1]. Estimated offline (fault-injection probe) or derived from
  /// vote statistics; 1.0 is the conservative default.
  double sensitivity = 1.0;
  /// Priced inference cost at each kProtectionLevels entry, same order.
  std::array<perf::InferenceCost, kProtectionLevels.size()> cost{};
};

/// One evaluated per-member assignment.
struct ProtectionPlan {
  std::vector<nn::Protection> levels;  ///< one level per member, slot order
  double residual_sdc = 0.0;  ///< expected undetected-SDC mass (lower = safer)
  double latency_s = 0.0;     ///< summed member latency under the plan
  double energy_j = 0.0;      ///< summed member energy under the plan
};

/// Builds planner inputs from a live ensemble: per-level costs from the
/// cost model (abft_macs surcharge priced in), param_share from parameter
/// counts. `sensitivity` is per member in slot order; empty means 1.0 for
/// everyone. Throws std::invalid_argument on a size mismatch. (Takes a
/// mutable ensemble because parameter enumeration is non-const; nothing
/// is modified.)
std::vector<MemberProtectionInput> protection_inputs(
    Ensemble& ensemble, const Shape& in, const perf::CostModel& model,
    const std::vector<double>& sensitivity = {});

/// Sweeps every per-member level assignment (|levels|^M plans) and returns
/// the (residual_sdc, cost) non-dominated set — cost is latency with
/// energy as tie-break — sorted by ascending cost. Throws
/// std::invalid_argument for empty input or more than 12 members (the
/// exhaustive sweep is meant for ensemble-sized M).
std::vector<ProtectionPlan> protection_frontier(
    const std::vector<MemberProtectionInput>& members,
    const CoverageModel& model = {});

/// Picks the cheapest (latency, then energy) frontier plan with
/// residual_sdc <= sdc_budget;
/// when none qualifies, falls back to the most protective plan (minimum
/// residual_sdc, latency as tie-break) so callers always get a plan.
/// Throws std::invalid_argument on an empty frontier.
ProtectionPlan select_protection(const std::vector<ProtectionPlan>& frontier,
                                 double sdc_budget);

}  // namespace pgmr::mr
