// Reliability accounting over a labeled evaluation set.
//
// The paper's outcome taxonomy (Section III-A): TP = correct and reliable,
// FP = wrong but reported reliable (the failure mode PolygraphMR exists to
// reduce), and Unreliable = flagged answers (detected wrongs plus correct
// answers sacrificed to the flagging).
#pragma once

#include <cstdint>
#include <vector>

#include "mr/decision.h"

namespace pgmr::mr {

/// Aggregate outcome counts and rates over an evaluation set.
struct Outcome {
  std::int64_t tp = 0;
  std::int64_t fp = 0;
  std::int64_t unreliable = 0;
  std::int64_t total = 0;

  double tp_rate() const {
    return total ? static_cast<double>(tp) / static_cast<double>(total) : 0.0;
  }
  double fp_rate() const {
    return total ? static_cast<double>(fp) / static_cast<double>(total) : 0.0;
  }
};

/// Per-member per-sample votes: votes[m][n] is member m's vote on sample n.
using MemberVotes = std::vector<std::vector<Vote>>;

/// Converts a list of member probability matrices (each [N, C]) to votes.
MemberVotes votes_from_members(const std::vector<Tensor>& member_probs);

/// Gathers sample n's vote from every member.
std::vector<Vote> sample_votes(const MemberVotes& votes, std::int64_t n);

/// Runs the decision engine on every sample and tallies the outcome.
Outcome evaluate(const MemberVotes& votes,
                 const std::vector<std::int64_t>& labels, const Thresholds& t);

/// Single-network baseline with a plain confidence threshold: prediction is
/// reliable iff its confidence >= conf (the paper's Fig 2 / "ORG" Pareto).
Outcome evaluate_single(const Tensor& probs,
                        const std::vector<std::int64_t>& labels, float conf);

}  // namespace pgmr::mr
