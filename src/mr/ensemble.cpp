#include "mr/ensemble.h"

namespace pgmr::mr {

Member::Member(std::unique_ptr<prep::Preprocessor> preprocessor,
               nn::Network network, int bits)
    : prep_(std::move(preprocessor)),
      prep_name_(prep_->name()),
      net_(std::move(network), bits) {}

std::string Member::description() const {
  return prep_name_ + "/" + net_.name();
}

Tensor Member::probabilities(const Tensor& images) {
  return net_.probabilities(prep_->apply(images));
}

perf::InferenceCost Member::cost(const Shape& in,
                                 const perf::CostModel& model) const {
  return model.network_cost(net_.network().cost(in), net_.bits());
}

std::vector<Tensor> Ensemble::member_probabilities(const Tensor& images,
                                                   const Executor& exec) {
  std::vector<Tensor> out(members_.size());
  exec(members_.size(),
       [&](std::size_t m) { out[m] = members_[m].probabilities(images); });
  return out;
}

MemberVotes Ensemble::member_votes(const Tensor& images, const Executor& exec) {
  return votes_from_members(member_probabilities(images, exec));
}

std::vector<perf::InferenceCost> Ensemble::member_costs(
    const Shape& in, const perf::CostModel& model) const {
  std::vector<perf::InferenceCost> out;
  out.reserve(members_.size());
  for (const Member& m : members_) out.push_back(m.cost(in, model));
  return out;
}

}  // namespace pgmr::mr
