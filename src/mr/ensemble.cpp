#include "mr/ensemble.h"

#include <cmath>
#include <stdexcept>

namespace pgmr::mr {

const char* to_string(MemberFault fault) {
  switch (fault) {
    case MemberFault::none: return "none";
    case MemberFault::skipped: return "skipped";
    case MemberFault::exception: return "exception";
    case MemberFault::non_finite: return "non_finite";
    case MemberFault::checksum: return "checksum";
  }
  return "unknown";
}

const char* to_string(Member::ReloadStatus status) {
  switch (status) {
    case Member::ReloadStatus::healed: return "healed";
    case Member::ReloadStatus::no_source: return "no_source";
    case Member::ReloadStatus::load_failed: return "load_failed";
    case Member::ReloadStatus::mismatch: return "mismatch";
  }
  return "unknown";
}

Member::Member(std::unique_ptr<prep::Preprocessor> preprocessor,
               nn::Network network, int bits)
    : prep_(std::move(preprocessor)),
      prep_name_(prep_->name()),
      net_(std::move(network), bits) {}

std::string Member::description() const {
  return prep_name_ + "/" + net_.name();
}

Tensor Member::probabilities(const Tensor& images) {
  return net_.probabilities(prep_->apply(images));
}

MemberOutcome Member::try_probabilities(const Tensor& images) {
  MemberOutcome out;
  quant::AbftCheck abft;
  try {
    out.probabilities = net_.probabilities(prep_->apply(images), &abft);
  } catch (const std::exception& e) {
    out.fault = MemberFault::exception;
    out.error = std::current_exception();
    out.message = e.what();
    return out;
  } catch (...) {
    out.fault = MemberFault::exception;
    out.error = std::current_exception();
    out.message = "non-standard exception";
    return out;
  }
  for (std::int64_t i = 0; i < out.probabilities.numel(); ++i) {
    if (!std::isfinite(out.probabilities[i])) {
      out.fault = MemberFault::non_finite;
      out.message = "non-finite softmax output";
      return out;
    }
  }
  if (abft.checked && !abft.ok) {
    out.fault = MemberFault::checksum;
    out.failed_layer = abft.failed_layer;
    out.message = "ABFT column-sum mismatch at layer " +
                  std::to_string(abft.failed_layer) +
                  (abft.failed_kind.empty() ? "" : " (" + abft.failed_kind + ")");
  }
  return out;
}

Member::ReloadStatus Member::reload_params() {
  if (archive_source_.empty()) return ReloadStatus::no_source;
  try {
    quant::QuantizedNetwork fresh(nn::Network::load(archive_source_),
                                  net_.bits(), net_.protection());
    // Construction is deterministic (load + truncate + bless), so a healthy
    // archive reproduces the exact CRCs blessed at member construction. A
    // difference means the archive itself has rotted since.
    if (fresh.golden_param_crcs() != net_.golden_param_crcs()) {
      return ReloadStatus::mismatch;
    }
    net_ = std::move(fresh);
    return ReloadStatus::healed;
  } catch (const std::exception&) {
    return ReloadStatus::load_failed;
  }
}

perf::InferenceCost Member::cost(const Shape& in,
                                 const perf::CostModel& model) const {
  return model.network_cost(net_.network().cost(in), net_.bits(),
                            net_.protection());
}

void Ensemble::replace(std::size_t i, Member member) {
  if (i >= members_.size()) {
    throw std::invalid_argument("Ensemble::replace: slot out of range");
  }
  members_[i] = std::move(member);
}

std::vector<std::string> Ensemble::prep_names() const {
  std::vector<std::string> names;
  names.reserve(members_.size());
  for (const Member& m : members_) names.push_back(m.prep_name());
  return names;
}

std::vector<Tensor> Ensemble::member_probabilities(const Tensor& images,
                                                   const Executor& exec) {
  std::vector<Tensor> out(members_.size());
  exec(members_.size(),
       [&](std::size_t m) { out[m] = members_[m].probabilities(images); });
  return out;
}

std::vector<MemberOutcome> Ensemble::member_outcomes(
    const Tensor& images, const Executor& exec,
    const std::vector<bool>* active) {
  if (active != nullptr && active->size() != members_.size()) {
    throw std::invalid_argument("Ensemble::member_outcomes: mask size");
  }
  std::vector<MemberOutcome> out(members_.size());
  exec(members_.size(), [&](std::size_t m) {
    if (active != nullptr && !(*active)[m]) {
      out[m].fault = MemberFault::skipped;
      out[m].message = "inactive (quarantined or masked)";
      return;
    }
    out[m] = members_[m].try_probabilities(images);
  });
  return out;
}

MemberVotes Ensemble::member_votes(const Tensor& images, const Executor& exec) {
  return votes_from_members(member_probabilities(images, exec));
}

std::vector<perf::InferenceCost> Ensemble::member_costs(
    const Shape& in, const perf::CostModel& model) const {
  std::vector<perf::InferenceCost> out;
  out.reserve(members_.size());
  for (const Member& m : members_) out.push_back(m.cost(in, model));
  return out;
}

}  // namespace pgmr::mr
