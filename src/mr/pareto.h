// Offline profiling stage (paper Section III-E): sweep the (Thr_Conf,
// Thr_Freq) space on the validation set, keep the TP-maximizing /
// FP-minimizing Pareto frontier, and pick an operating point from user
// demands (here: a TP floor, usually "100 % of baseline TP").
#pragma once

#include <optional>
#include <vector>

#include "mr/evaluate.h"

namespace pgmr::mr {

/// One evaluated threshold setting.
struct SweepPoint {
  Thresholds thresholds;
  double tp_rate = 0.0;
  double fp_rate = 0.0;
};

/// Default Thr_Conf grid: 0.00, 0.05, ..., 0.95.
std::vector<float> default_conf_grid();

/// Evaluates every (conf, freq) pair: conf from `conf_grid`, freq from 1 to
/// the number of members.
std::vector<SweepPoint> sweep_thresholds(const MemberVotes& votes,
                                         const std::vector<std::int64_t>& labels,
                                         const std::vector<float>& conf_grid);

/// Sweeps a single network's confidence threshold over `conf_grid`
/// (baseline "ORG + Thr_Conf" Pareto in Figs 11 and 13).
std::vector<SweepPoint> sweep_single(const Tensor& probs,
                                     const std::vector<std::int64_t>& labels,
                                     const std::vector<float>& conf_grid);

/// Filters to the non-dominated set: a point survives when no other point
/// has both tp_rate >= and fp_rate <= (with one strict). Sorted by
/// ascending fp_rate.
std::vector<SweepPoint> pareto_frontier(std::vector<SweepPoint> points);

/// Picks the frontier point with minimum FP among those with
/// tp_rate >= tp_floor; falls back to the highest-TP point when none
/// qualifies (so callers always get an operating point).
std::optional<SweepPoint> select_by_tp_floor(
    const std::vector<SweepPoint>& frontier, double tp_floor);

}  // namespace pgmr::mr
