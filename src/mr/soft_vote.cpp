#include "mr/soft_vote.h"

#include <stdexcept>

#include "mr/pareto.h"

namespace pgmr::mr {

Tensor average_probabilities(const std::vector<Tensor>& member_probs) {
  if (member_probs.empty()) {
    throw std::invalid_argument("average_probabilities: no members");
  }
  Tensor mean = member_probs.front();
  for (std::size_t m = 1; m < member_probs.size(); ++m) {
    if (member_probs[m].shape() != mean.shape()) {
      throw std::invalid_argument("average_probabilities: shape mismatch");
    }
    mean += member_probs[m];
  }
  mean *= 1.0F / static_cast<float>(member_probs.size());
  return mean;
}

Outcome evaluate_soft(const std::vector<Tensor>& member_probs,
                      const std::vector<std::int64_t>& labels, float conf) {
  return evaluate_single(average_probabilities(member_probs), labels, conf);
}

std::vector<SweepPoint> sweep_soft(const std::vector<Tensor>& member_probs,
                                   const std::vector<std::int64_t>& labels,
                                   const std::vector<float>& conf_grid) {
  return sweep_single(average_probabilities(member_probs), labels, conf_grid);
}

}  // namespace pgmr::mr
