// Resource-Aware Decision Engine (paper Section III-F).
//
// Members are ranked offline by how often each supplies a correct vote on
// the validation set. At inference the top Thr_Freq members run first; more
// members are activated one at a time only while the verdict is still
// undetermined — i.e. no label has reached Thr_Freq votes yet, but one
// still could given the members that remain.
#pragma once

#include <cstdint>
#include <vector>

#include "mr/evaluate.h"

namespace pgmr::mr {

/// Orders member indices by descending correct-vote frequency on a
/// validation set (ties broken by lower index). votes[m][n] as usual.
std::vector<std::size_t> contribution_priority(
    const MemberVotes& validation_votes,
    const std::vector<std::int64_t>& validation_labels);

/// Decision plus how many members had to be activated to reach it.
struct StagedDecision {
  Decision decision;
  int activated = 0;
};

/// Runs staged activation for one sample. `ordered_votes` holds the votes
/// of every member already sorted by priority; only a prefix is "paid for".
StagedDecision staged_decide(const std::vector<Vote>& ordered_votes,
                             const Thresholds& t);

/// Evaluation-set outcome of RADE plus the activation histogram
/// (histogram[k] = samples that needed exactly k+1 members) — the
/// distribution plotted in the paper's Fig 12.
struct StagedOutcome {
  Outcome outcome;
  std::vector<std::int64_t> activation_histogram;

  /// Mean number of members activated per sample.
  double mean_activated() const;
};

/// Applies staged_decide to every sample. `priority` must be a permutation
/// of member indices (from contribution_priority).
StagedOutcome evaluate_staged(const MemberVotes& votes,
                              const std::vector<std::int64_t>& labels,
                              const std::vector<std::size_t>& priority,
                              const Thresholds& t);

}  // namespace pgmr::mr
