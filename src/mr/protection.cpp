#include "mr/protection.h"

#include <algorithm>
#include <stdexcept>

namespace pgmr::mr {

double CoverageModel::coverage(nn::Protection p) const {
  switch (p) {
    case nn::Protection::off:
      return off;
    case nn::Protection::final_fc:
      return final_fc;
    case nn::Protection::full:
      return full;
  }
  return 0.0;
}

std::vector<MemberProtectionInput> protection_inputs(
    Ensemble& ensemble, const Shape& in, const perf::CostModel& model,
    const std::vector<double>& sensitivity) {
  if (!sensitivity.empty() && sensitivity.size() != ensemble.size()) {
    throw std::invalid_argument(
        "protection_inputs: sensitivity size != ensemble size");
  }
  std::vector<MemberProtectionInput> inputs(ensemble.size());
  double total_params = 0.0;
  for (std::size_t m = 0; m < ensemble.size(); ++m) {
    Member& member = ensemble.member(m);
    double params = 0.0;
    for (const Tensor* t : member.net().mutable_network().params()) {
      params += static_cast<double>(t->numel());
    }
    inputs[m].param_share = params;  // normalized below
    total_params += params;
    inputs[m].sensitivity = sensitivity.empty() ? 1.0 : sensitivity[m];
    const nn::CostStats stats = member.net().network().cost(in);
    for (std::size_t l = 0; l < kProtectionLevels.size(); ++l) {
      inputs[m].cost[l] =
          model.network_cost(stats, member.bits(), kProtectionLevels[l]);
    }
  }
  for (MemberProtectionInput& i : inputs) {
    i.param_share = total_params > 0.0 ? i.param_share / total_params : 0.0;
  }
  return inputs;
}

std::vector<ProtectionPlan> protection_frontier(
    const std::vector<MemberProtectionInput>& members,
    const CoverageModel& model) {
  constexpr std::size_t kMaxMembers = 12;  // 3^12 ~ 531k plans, still cheap
  if (members.empty() || members.size() > kMaxMembers) {
    throw std::invalid_argument(
        "protection_frontier: member count must be in [1, 12]");
  }

  // Enumerate every assignment as a base-|levels| counter over members.
  std::size_t total = 1;
  for (std::size_t m = 0; m < members.size(); ++m) {
    total *= kProtectionLevels.size();
  }
  std::vector<ProtectionPlan> plans;
  plans.reserve(total);
  std::vector<std::size_t> digits(members.size(), 0);
  for (std::size_t p = 0; p < total; ++p) {
    ProtectionPlan plan;
    plan.levels.reserve(members.size());
    for (std::size_t m = 0; m < members.size(); ++m) {
      const nn::Protection level = kProtectionLevels[digits[m]];
      plan.levels.push_back(level);
      plan.residual_sdc += members[m].param_share * members[m].sensitivity *
                           (1.0 - model.coverage(level));
      plan.latency_s += members[m].cost[digits[m]].latency_s;
      plan.energy_j += members[m].cost[digits[m]].energy_j;
    }
    plans.push_back(std::move(plan));
    for (std::size_t m = 0; m < digits.size(); ++m) {  // increment counter
      if (++digits[m] < kProtectionLevels.size()) break;
      digits[m] = 0;
    }
  }

  // Non-dominated set over (residual_sdc, cost), mirroring the (tp, fp)
  // frontier in mr/pareto.cpp. Cost compares latency first, energy as the
  // tie-break: small members are memory-bound under the roofline, so the
  // abft_macs surcharge often leaves latency unchanged while the energy
  // term still prices the extra verification work — without the tie-break
  // every plan would cost the same and the frontier would collapse to
  // uniform full.
  const auto cheaper = [](const ProtectionPlan& a, const ProtectionPlan& b) {
    if (a.latency_s != b.latency_s) return a.latency_s < b.latency_s;
    return a.energy_j < b.energy_j;
  };
  const auto no_dearer = [&cheaper](const ProtectionPlan& a,
                                    const ProtectionPlan& b) {
    return !cheaper(b, a);
  };
  std::vector<ProtectionPlan> frontier;
  for (const ProtectionPlan& p : plans) {
    bool dominated = false;
    for (const ProtectionPlan& q : plans) {
      const bool no_worse = q.residual_sdc <= p.residual_sdc && no_dearer(q, p);
      const bool strictly_better =
          q.residual_sdc < p.residual_sdc || cheaper(q, p);
      if (no_worse && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(p);
  }
  std::sort(frontier.begin(), frontier.end(),
            [&cheaper](const ProtectionPlan& a, const ProtectionPlan& b) {
              if (cheaper(a, b)) return true;
              if (cheaper(b, a)) return false;
              return a.residual_sdc < b.residual_sdc;
            });
  // Equal-objective duplicates differ only in which member carries a level;
  // keep the first (lowest-index members get the cheaper level).
  frontier.erase(std::unique(frontier.begin(), frontier.end(),
                             [](const ProtectionPlan& a,
                                const ProtectionPlan& b) {
                               return a.residual_sdc == b.residual_sdc &&
                                      a.latency_s == b.latency_s &&
                                      a.energy_j == b.energy_j;
                             }),
                 frontier.end());
  return frontier;
}

ProtectionPlan select_protection(const std::vector<ProtectionPlan>& frontier,
                                 double sdc_budget) {
  if (frontier.empty()) {
    throw std::invalid_argument("select_protection: empty frontier");
  }
  const auto cheaper = [](const ProtectionPlan& a, const ProtectionPlan& b) {
    if (a.latency_s != b.latency_s) return a.latency_s < b.latency_s;
    return a.energy_j < b.energy_j;
  };
  const ProtectionPlan* best = nullptr;
  for (const ProtectionPlan& p : frontier) {
    if (p.residual_sdc > sdc_budget) continue;
    if (best == nullptr || cheaper(p, *best)) best = &p;
  }
  if (best == nullptr) {
    // Budget unreachable: fall back to the most protective plan so the
    // caller still gets a deployable assignment.
    for (const ProtectionPlan& p : frontier) {
      if (best == nullptr || p.residual_sdc < best->residual_sdc ||
          (p.residual_sdc == best->residual_sdc && cheaper(p, *best))) {
        best = &p;
      }
    }
  }
  return *best;
}

}  // namespace pgmr::mr
