// Scripted, correlated fault scenarios.
//
// A single chaos fault exercises one detector; production outages are
// *correlated* — a bad firmware push slows every member on a host, a rack
// power event takes out a shard while a neighbouring shard's member is
// already quarantined. A ScenarioSchedule scripts such episodes as a
// deterministic list of events keyed to the request clock (the index of
// the next submitted request, not wall time, so a replay of the same trace
// against the same schedule is bit-reproducible regardless of machine
// speed). Each event can target *several* members or shards at once —
// that is what makes the plan correlated rather than a sequence of
// independent single faults.
//
// The driver calls advance(i, chaos) before submitting request i; all
// not-yet-applied events with at_request <= i are acted out against the
// shared ChaosInjector in order.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "fault/chaos.h"

namespace pgmr::fault {

/// What a scenario event does when its request index arrives.
enum class ScenarioAction {
  arm_member,      ///< ChaosInjector::arm(fault, count, latency) per target
  disarm_member,   ///< ChaosInjector::disarm per target
  arm_activation,  ///< ChaosInjector::arm_activation(activation, count)
  kill_shard,      ///< ChaosInjector::kill_shard per target
  revive_shard,    ///< ChaosInjector::revive_shard per target
};

const char* to_string(ScenarioAction action);

/// One scheduled episode. `targets` lists member indices (member actions)
/// or shard indices (shard actions); every target is acted on at the same
/// request tick, which is what "correlated multi-member / multi-shard
/// fault" means here.
struct ScenarioEvent {
  std::int64_t at_request = 0;
  ScenarioAction action = ScenarioAction::arm_member;
  std::vector<std::size_t> targets;
  ChaosFault fault = ChaosFault::member_exception;  ///< arm_member only
  int count = -1;                                   ///< arm_* plans
  std::chrono::milliseconds latency{20};            ///< latency_spike only
  ActivationCorrupt activation;                     ///< arm_activation only
};

/// An ordered scenario with a replay cursor. Events are stably sorted by
/// at_request at construction, so authors can list episodes in narrative
/// order; ties keep their listed order.
class ScenarioSchedule {
 public:
  explicit ScenarioSchedule(std::vector<ScenarioEvent> events);

  /// Applies every not-yet-applied event with at_request <= request_index
  /// to `chaos`, in order; returns how many were applied. Call before
  /// submitting request `request_index`.
  std::size_t advance(std::int64_t request_index, ChaosInjector& chaos);

  /// Events applied so far — with events(), lets a driver log exactly the
  /// episodes the last advance() acted out: events()[applied-n .. applied).
  std::size_t applied() const { return next_; }
  bool done() const { return next_ == events_.size(); }
  const std::vector<ScenarioEvent>& events() const { return events_; }

 private:
  std::vector<ScenarioEvent> events_;
  std::size_t next_ = 0;
};

}  // namespace pgmr::fault
