// Transient-fault injection into network parameters.
//
// The paper (Section V) distinguishes PolygraphMR's target — the model's
// *inherent* mispredictions — from the classic dependability literature on
// transient faults/soft errors in DNN accelerators (Li et al., SC'17).
// This module provides the classic side so the two failure modes can be
// studied together, at MRFI-style multiple resolutions:
//   * bit        — single flipped or stuck-at bit in one stored weight
//   * region     — a burst of adjacent elements of one tensor corrupted
//                  together (a DRAM row / cache-line / DMA-span fault)
// with MR's masking ability measured by the same TP/FP machinery. The
// activation-in-flight resolution lives in chaos.h (it needs a live
// forward pass); member/shard resolutions live in chaos.h + fleet.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.h"
#include "tensor/random.h"

namespace pgmr::fault {

/// How a fault corrupts the chosen bit.
enum class FaultKind {
  flip,           ///< XOR: transient single-event upset (inject twice undoes)
  stuck_at_one,   ///< OR: the cell reads 1 regardless of the stored value
  stuck_at_zero,  ///< AND-NOT: the cell reads 0 regardless
};

const char* to_string(FaultKind kind);

/// One injected fault: which parameter tensor, which element, which bit.
struct FaultSite {
  std::size_t param_index = 0;
  std::int64_t element = 0;
  int bit = 0;  ///< 0 = LSB of the IEEE-754 mantissa ... 31 = sign
  FaultKind kind = FaultKind::flip;
};

/// Corrupts the chosen bit of the chosen weight in place (per site.kind);
/// returns the site's original value so it can be restored. A stuck-at
/// fault whose bit already holds the stuck value is a no-op (masked by
/// construction) — restore() is still safe.
float inject(nn::Network& net, const FaultSite& site);

/// Undoes an inject() using the saved original value.
void restore(nn::Network& net, const FaultSite& site, float original);

/// Samples `count` uniformly random fault sites over all parameters.
/// `max_bit` bounds the flipped bit position (31 allows sign flips;
/// high-exponent bits (23..30) are the catastrophic ones).
std::vector<FaultSite> sample_sites(nn::Network& net, int count, Rng& rng,
                                    int max_bit = 31);

/// Region-resolution sampling: `bursts` groups of `burst_len` *adjacent*
/// elements of one tensor, all corrupted at the same bit position with the
/// same kind — the fault model of a DRAM row hit or a corrupted DMA span,
/// which single-bit sampling cannot represent. Each group stays inside one
/// tensor (the start element is drawn so the burst fits; bursts longer
/// than the tensor are clamped to it). Returns one site group per burst,
/// ready for the multi-fault run_campaign overload.
std::vector<std::vector<FaultSite>> sample_burst_sites(
    nn::Network& net, int bursts, int burst_len, Rng& rng, int max_bit = 31,
    FaultKind kind = FaultKind::flip);

/// Outcome of a fault-injection campaign on a fixed evaluation set.
struct CampaignResult {
  std::int64_t trials = 0;
  std::int64_t masked = 0;      ///< prediction vector unchanged
  std::int64_t degraded = 0;    ///< some predictions changed
  std::int64_t corrupted = 0;   ///< accuracy dropped by > threshold

  double masked_rate() const {
    return trials ? static_cast<double>(masked) / static_cast<double>(trials)
                  : 0.0;
  }
  double corrupted_rate() const {
    return trials
               ? static_cast<double>(corrupted) / static_cast<double>(trials)
               : 0.0;
  }
};

/// Runs one fault per trial: flip, evaluate predictions on `images`, undo.
/// A trial is `corrupted` when accuracy drops by more than `threshold`
/// (absolute), `degraded` when any prediction changed, `masked` otherwise.
CampaignResult run_campaign(nn::Network& net, const Tensor& images,
                            const std::vector<std::int64_t>& labels,
                            const std::vector<FaultSite>& sites,
                            double threshold = 0.01);

/// Multi-fault variant: each trial injects a whole *group* of sites at
/// once (a burst from sample_burst_sites, or any correlated set), then
/// classifies the group's combined effect at the same masked / degraded /
/// corrupted granularity. Weights are restored in reverse injection order
/// after every trial, so overlapping sites in one group undo correctly.
CampaignResult run_campaign(nn::Network& net, const Tensor& images,
                            const std::vector<std::int64_t>& labels,
                            const std::vector<std::vector<FaultSite>>& trials,
                            double threshold = 0.01);

}  // namespace pgmr::fault
