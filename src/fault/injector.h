// Transient-fault injection into network parameters.
//
// The paper (Section V) distinguishes PolygraphMR's target — the model's
// *inherent* mispredictions — from the classic dependability literature on
// transient faults/soft errors in DNN accelerators (Li et al., SC'17).
// This module provides the classic side so the two failure modes can be
// studied together: single/multi bit flips in stored weights, with MR's
// masking ability measured by the same TP/FP machinery.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.h"
#include "tensor/random.h"

namespace pgmr::fault {

/// One injected fault: which parameter tensor, which element, which bit.
struct FaultSite {
  std::size_t param_index = 0;
  std::int64_t element = 0;
  int bit = 0;  ///< 0 = LSB of the IEEE-754 mantissa ... 31 = sign
};

/// Flips the chosen bit of the chosen weight in place; returns the site's
/// original value so it can be restored.
float inject(nn::Network& net, const FaultSite& site);

/// Undoes an inject() using the saved original value.
void restore(nn::Network& net, const FaultSite& site, float original);

/// Samples `count` uniformly random fault sites over all parameters.
/// `max_bit` bounds the flipped bit position (31 allows sign flips;
/// high-exponent bits (23..30) are the catastrophic ones).
std::vector<FaultSite> sample_sites(nn::Network& net, int count, Rng& rng,
                                    int max_bit = 31);

/// Outcome of a fault-injection campaign on a fixed evaluation set.
struct CampaignResult {
  std::int64_t trials = 0;
  std::int64_t masked = 0;      ///< prediction vector unchanged
  std::int64_t degraded = 0;    ///< some predictions changed
  std::int64_t corrupted = 0;   ///< accuracy dropped by > threshold

  double masked_rate() const {
    return trials ? static_cast<double>(masked) / static_cast<double>(trials)
                  : 0.0;
  }
  double corrupted_rate() const {
    return trials
               ? static_cast<double>(corrupted) / static_cast<double>(trials)
               : 0.0;
  }
};

/// Runs one fault per trial: flip, evaluate predictions on `images`, undo.
/// A trial is `corrupted` when accuracy drops by more than `threshold`
/// (absolute), `degraded` when any prediction changed, `masked` otherwise.
CampaignResult run_campaign(nn::Network& net, const Tensor& images,
                            const std::vector<std::int64_t>& labels,
                            const std::vector<FaultSite>& sites,
                            double threshold = 0.01);

}  // namespace pgmr::fault
