#include "fault/scenario.h"

#include <algorithm>

namespace pgmr::fault {

const char* to_string(ScenarioAction action) {
  switch (action) {
    case ScenarioAction::arm_member: return "arm_member";
    case ScenarioAction::disarm_member: return "disarm_member";
    case ScenarioAction::arm_activation: return "arm_activation";
    case ScenarioAction::kill_shard: return "kill_shard";
    case ScenarioAction::revive_shard: return "revive_shard";
  }
  return "unknown";
}

ScenarioSchedule::ScenarioSchedule(std::vector<ScenarioEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.at_request < b.at_request;
                   });
}

std::size_t ScenarioSchedule::advance(std::int64_t request_index,
                                      ChaosInjector& chaos) {
  std::size_t fired = 0;
  while (next_ < events_.size() &&
         events_[next_].at_request <= request_index) {
    const ScenarioEvent& e = events_[next_];
    for (std::size_t target : e.targets) {
      switch (e.action) {
        case ScenarioAction::arm_member:
          chaos.arm(target, e.fault, e.count, e.latency);
          break;
        case ScenarioAction::disarm_member:
          chaos.disarm(target);
          break;
        case ScenarioAction::arm_activation:
          chaos.arm_activation(target, e.activation, e.count);
          break;
        case ScenarioAction::kill_shard:
          chaos.kill_shard(target);
          break;
        case ScenarioAction::revive_shard:
          chaos.revive_shard(target);
          break;
      }
    }
    ++next_;
    ++fired;
  }
  return fired;
}

}  // namespace pgmr::fault
