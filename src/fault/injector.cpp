#include "fault/injector.h"

#include <bit>
#include <set>
#include <stdexcept>
#include <tuple>

namespace pgmr::fault {
namespace {

Tensor* param_at(nn::Network& net, std::size_t index) {
  const auto params = net.params();
  if (index >= params.size()) {
    throw std::out_of_range("fault: parameter index out of range");
  }
  return params[index];
}

}  // namespace

float inject(nn::Network& net, const FaultSite& site) {
  Tensor* p = param_at(net, site.param_index);
  if (site.element < 0 || site.element >= p->numel()) {
    throw std::out_of_range("fault: element out of range");
  }
  if (site.bit < 0 || site.bit > 31) {
    throw std::out_of_range("fault: bit out of range");
  }
  float& slot = (*p)[site.element];
  const float original = slot;
  const auto raw = std::bit_cast<std::uint32_t>(slot);
  slot = std::bit_cast<float>(raw ^ (1U << site.bit));
  return original;
}

void restore(nn::Network& net, const FaultSite& site, float original) {
  Tensor* p = param_at(net, site.param_index);
  (*p)[site.element] = original;
}

std::vector<FaultSite> sample_sites(nn::Network& net, int count, Rng& rng,
                                    int max_bit) {
  const auto params = net.params();
  if (params.empty()) throw std::invalid_argument("fault: no parameters");
  if (max_bit < 0 || max_bit > 31) {
    throw std::invalid_argument("fault: max_bit out of range");
  }
  // A multi-fault campaign injects every site of a batch at once, so a
  // duplicate (tensor, element, bit) triple would flip the same bit twice
  // and silently cancel itself out. Reject duplicates and redraw; bail out
  // only if the parameter space is too small to hold `count` distinct sites.
  std::int64_t space = 0;
  for (const Tensor* p : params) space += p->numel();
  space *= static_cast<std::int64_t>(max_bit) + 1;
  if (static_cast<std::int64_t>(count) > space) {
    throw std::invalid_argument(
        "fault: count exceeds number of distinct fault sites");
  }
  std::set<std::tuple<std::size_t, std::int64_t, int>> seen;
  std::vector<FaultSite> sites;
  sites.reserve(static_cast<std::size_t>(count));
  while (static_cast<int>(sites.size()) < count) {
    FaultSite site;
    site.param_index = static_cast<std::size_t>(
        rng.randint(0, static_cast<std::int64_t>(params.size()) - 1));
    site.element = rng.randint(0, params[site.param_index]->numel() - 1);
    site.bit = static_cast<int>(rng.randint(0, max_bit));
    if (!seen.insert({site.param_index, site.element, site.bit}).second) {
      continue;
    }
    sites.push_back(site);
  }
  return sites;
}

CampaignResult run_campaign(nn::Network& net, const Tensor& images,
                            const std::vector<std::int64_t>& labels,
                            const std::vector<FaultSite>& sites,
                            double threshold) {
  if (static_cast<std::int64_t>(labels.size()) != images.shape()[0]) {
    throw std::invalid_argument("fault: label count mismatch");
  }
  // Golden run.
  const Tensor golden = net.forward(images, /*train=*/false);
  const std::int64_t n = golden.shape()[0];
  std::vector<std::int64_t> golden_pred(static_cast<std::size_t>(n));
  std::int64_t golden_correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    golden_pred[static_cast<std::size_t>(i)] = golden.argmax_row(i);
    if (golden_pred[static_cast<std::size_t>(i)] ==
        labels[static_cast<std::size_t>(i)]) {
      ++golden_correct;
    }
  }
  const double golden_acc =
      static_cast<double>(golden_correct) / static_cast<double>(n);

  CampaignResult result;
  for (const FaultSite& site : sites) {
    const float original = inject(net, site);
    const Tensor out = net.forward(images, /*train=*/false);
    restore(net, site, original);

    bool changed = false;
    std::int64_t correct = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t pred = out.argmax_row(i);
      changed |= pred != golden_pred[static_cast<std::size_t>(i)];
      if (pred == labels[static_cast<std::size_t>(i)]) ++correct;
    }
    const double acc = static_cast<double>(correct) / static_cast<double>(n);

    ++result.trials;
    if (!changed) {
      ++result.masked;
    } else if (golden_acc - acc > threshold) {
      ++result.corrupted;
    } else {
      ++result.degraded;
    }
  }
  return result;
}

}  // namespace pgmr::fault
