#include "fault/injector.h"

#include <bit>
#include <set>
#include <stdexcept>
#include <tuple>

namespace pgmr::fault {
namespace {

Tensor* param_at(nn::Network& net, std::size_t index) {
  const auto params = net.params();
  if (index >= params.size()) {
    throw std::out_of_range("fault: parameter index out of range");
  }
  return params[index];
}

/// Shared golden-run scaffolding for both campaign overloads.
struct GoldenRun {
  std::vector<std::int64_t> pred;
  double accuracy = 0.0;
};

GoldenRun golden_run(nn::Network& net, const Tensor& images,
                     const std::vector<std::int64_t>& labels) {
  if (static_cast<std::int64_t>(labels.size()) != images.shape()[0]) {
    throw std::invalid_argument("fault: label count mismatch");
  }
  const Tensor golden = net.forward(images, /*train=*/false);
  const std::int64_t n = golden.shape()[0];
  GoldenRun run;
  run.pred.resize(static_cast<std::size_t>(n));
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    run.pred[static_cast<std::size_t>(i)] = golden.argmax_row(i);
    if (run.pred[static_cast<std::size_t>(i)] ==
        labels[static_cast<std::size_t>(i)]) {
      ++correct;
    }
  }
  run.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  return run;
}

/// One faulted forward pass classified against the golden run.
void classify_trial(nn::Network& net, const Tensor& images,
                    const std::vector<std::int64_t>& labels,
                    const GoldenRun& golden, double threshold,
                    CampaignResult& result) {
  const Tensor out = net.forward(images, /*train=*/false);
  const std::int64_t n = out.shape()[0];
  bool changed = false;
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t pred = out.argmax_row(i);
    changed |= pred != golden.pred[static_cast<std::size_t>(i)];
    if (pred == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  const double acc = static_cast<double>(correct) / static_cast<double>(n);

  ++result.trials;
  if (!changed) {
    ++result.masked;
  } else if (golden.accuracy - acc > threshold) {
    ++result.corrupted;
  } else {
    ++result.degraded;
  }
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::flip: return "flip";
    case FaultKind::stuck_at_one: return "stuck_at_one";
    case FaultKind::stuck_at_zero: return "stuck_at_zero";
  }
  return "unknown";
}

float inject(nn::Network& net, const FaultSite& site) {
  Tensor* p = param_at(net, site.param_index);
  if (site.element < 0 || site.element >= p->numel()) {
    throw std::out_of_range("fault: element out of range");
  }
  if (site.bit < 0 || site.bit > 31) {
    throw std::out_of_range("fault: bit out of range");
  }
  float& slot = (*p)[site.element];
  const float original = slot;
  const auto raw = std::bit_cast<std::uint32_t>(slot);
  const std::uint32_t mask = 1U << site.bit;
  std::uint32_t corrupted = raw;
  switch (site.kind) {
    case FaultKind::flip: corrupted = raw ^ mask; break;
    case FaultKind::stuck_at_one: corrupted = raw | mask; break;
    case FaultKind::stuck_at_zero: corrupted = raw & ~mask; break;
  }
  slot = std::bit_cast<float>(corrupted);
  return original;
}

void restore(nn::Network& net, const FaultSite& site, float original) {
  Tensor* p = param_at(net, site.param_index);
  (*p)[site.element] = original;
}

std::vector<FaultSite> sample_sites(nn::Network& net, int count, Rng& rng,
                                    int max_bit) {
  const auto params = net.params();
  if (params.empty()) throw std::invalid_argument("fault: no parameters");
  if (max_bit < 0 || max_bit > 31) {
    throw std::invalid_argument("fault: max_bit out of range");
  }
  // A multi-fault campaign injects every site of a batch at once, so a
  // duplicate (tensor, element, bit) triple would flip the same bit twice
  // and silently cancel itself out. Reject duplicates and redraw; bail out
  // only if the parameter space is too small to hold `count` distinct sites.
  std::int64_t space = 0;
  for (const Tensor* p : params) space += p->numel();
  space *= static_cast<std::int64_t>(max_bit) + 1;
  if (static_cast<std::int64_t>(count) > space) {
    throw std::invalid_argument(
        "fault: count exceeds number of distinct fault sites");
  }
  std::set<std::tuple<std::size_t, std::int64_t, int>> seen;
  std::vector<FaultSite> sites;
  sites.reserve(static_cast<std::size_t>(count));
  while (static_cast<int>(sites.size()) < count) {
    FaultSite site;
    site.param_index = static_cast<std::size_t>(
        rng.randint(0, static_cast<std::int64_t>(params.size()) - 1));
    site.element = rng.randint(0, params[site.param_index]->numel() - 1);
    site.bit = static_cast<int>(rng.randint(0, max_bit));
    if (!seen.insert({site.param_index, site.element, site.bit}).second) {
      continue;
    }
    sites.push_back(site);
  }
  return sites;
}

std::vector<std::vector<FaultSite>> sample_burst_sites(nn::Network& net,
                                                       int bursts,
                                                       int burst_len, Rng& rng,
                                                       int max_bit,
                                                       FaultKind kind) {
  const auto params = net.params();
  if (params.empty()) throw std::invalid_argument("fault: no parameters");
  if (burst_len < 1) {
    throw std::invalid_argument("fault: burst_len must be >= 1");
  }
  if (max_bit < 0 || max_bit > 31) {
    throw std::invalid_argument("fault: max_bit out of range");
  }
  std::vector<std::vector<FaultSite>> groups;
  groups.reserve(static_cast<std::size_t>(bursts));
  for (int b = 0; b < bursts; ++b) {
    const auto param_index = static_cast<std::size_t>(
        rng.randint(0, static_cast<std::int64_t>(params.size()) - 1));
    const std::int64_t numel = params[param_index]->numel();
    // The burst must fit inside its tensor (a row fault never crosses a
    // row boundary into another array); clamp bursts longer than the
    // tensor to the whole tensor.
    const std::int64_t len =
        std::min<std::int64_t>(burst_len, numel);
    const std::int64_t start = rng.randint(0, numel - len);
    const int bit = static_cast<int>(rng.randint(0, max_bit));
    std::vector<FaultSite> group;
    group.reserve(static_cast<std::size_t>(len));
    for (std::int64_t i = 0; i < len; ++i) {
      group.push_back({param_index, start + i, bit, kind});
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

CampaignResult run_campaign(nn::Network& net, const Tensor& images,
                            const std::vector<std::int64_t>& labels,
                            const std::vector<FaultSite>& sites,
                            double threshold) {
  std::vector<std::vector<FaultSite>> trials;
  trials.reserve(sites.size());
  for (const FaultSite& site : sites) trials.push_back({site});
  return run_campaign(net, images, labels, trials, threshold);
}

CampaignResult run_campaign(nn::Network& net, const Tensor& images,
                            const std::vector<std::int64_t>& labels,
                            const std::vector<std::vector<FaultSite>>& trials,
                            double threshold) {
  const GoldenRun golden = golden_run(net, images, labels);
  CampaignResult result;
  std::vector<float> originals;
  for (const std::vector<FaultSite>& group : trials) {
    originals.clear();
    originals.reserve(group.size());
    for (const FaultSite& site : group) {
      originals.push_back(inject(net, site));
    }
    classify_trial(net, images, labels, golden, threshold, result);
    // Reverse order: if two sites in one group hit the same element, the
    // first-injected original (the pristine value) is restored last.
    for (std::size_t i = group.size(); i-- > 0;) {
      restore(net, group[i], originals[i]);
    }
  }
  return result;
}

}  // namespace pgmr::fault
