#include "fault/chaos.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "quant/quantized_network.h"

namespace pgmr::fault {

const char* to_string(ChaosFault fault) {
  switch (fault) {
    case ChaosFault::none: return "none";
    case ChaosFault::member_exception: return "member_exception";
    case ChaosFault::latency_spike: return "latency_spike";
    case ChaosFault::nan_output: return "nan_output";
    case ChaosFault::activation_corrupt: return "activation_corrupt";
  }
  return "unknown";
}

ChaosInjector::ChaosInjector(std::size_t members) : plans_(members) {}

ChaosInjector::Plan& ChaosInjector::plan_at(std::size_t member) {
  if (member >= plans_.size()) {
    throw std::out_of_range("chaos: member index " + std::to_string(member) +
                            " out of range (injector has " +
                            std::to_string(plans_.size()) + " members)");
  }
  return plans_[member];
}

const ChaosInjector::Plan& ChaosInjector::plan_at(std::size_t member) const {
  return const_cast<ChaosInjector*>(this)->plan_at(member);
}

void ChaosInjector::arm(std::size_t member, ChaosFault fault, int count,
                        std::chrono::milliseconds latency) {
  std::lock_guard lock(mutex_);
  if (fault == ChaosFault::activation_corrupt) {
    throw std::invalid_argument(
        "chaos: activation_corrupt carries a region spec; arm it with "
        "arm_activation()");
  }
  Plan& p = plan_at(member);
  p.fault = fault;
  p.remaining = count;
  p.latency = latency;
}

void ChaosInjector::arm_activation(std::size_t member,
                                   const ActivationCorrupt& spec, int count) {
  std::lock_guard lock(mutex_);
  Plan& p = plan_at(member);
  p.act = spec;
  p.act_remaining = count;
}

void ChaosInjector::disarm(std::size_t member) {
  std::lock_guard lock(mutex_);
  Plan& p = plan_at(member);
  p.fault = ChaosFault::none;
  p.remaining = 0;
  p.act_remaining = 0;
}

ChaosFault ChaosInjector::fire(std::size_t member,
                               std::chrono::milliseconds* latency) {
  std::lock_guard lock(mutex_);
  Plan& p = plan_at(member);
  if (p.fault == ChaosFault::none || p.remaining == 0) return ChaosFault::none;
  if (p.remaining > 0) --p.remaining;
  ++p.fired;
  if (latency != nullptr) *latency = p.latency;
  return p.fault;
}

bool ChaosInjector::fire_activation(std::size_t member, int layer,
                                    ActivationCorrupt* spec) {
  std::lock_guard lock(mutex_);
  Plan& p = plan_at(member);
  if (p.act_remaining == 0) return false;
  const int target = p.act.layer < 0 ? 0 : p.act.layer;
  if (layer != target) return false;
  if (p.act_remaining > 0) --p.act_remaining;
  ++p.act_fired;
  if (spec != nullptr) *spec = p.act;
  return true;
}

std::uint64_t ChaosInjector::fired(std::size_t member) const {
  std::lock_guard lock(mutex_);
  return plan_at(member).fired;
}

std::uint64_t ChaosInjector::activation_fired(std::size_t member) const {
  std::lock_guard lock(mutex_);
  return plan_at(member).act_fired;
}

void ChaosInjector::kill_shard(std::size_t shard) {
  std::function<void()> deliver;
  {
    std::lock_guard lock(mutex_);
    if (shard >= shards_.size()) shards_.resize(shard + 1);
    if (shards_[shard].deliver) {
      deliver = shards_[shard].deliver;  // real signal; no down latch
    } else {
      shards_[shard].down = true;  // simulation (thread backend)
    }
  }
  if (deliver) deliver();  // outside the lock: it syscalls into kill(2)
}

void ChaosInjector::revive_shard(std::size_t shard) {
  std::lock_guard lock(mutex_);
  if (shard >= shards_.size()) shards_.resize(shard + 1);
  if (shards_[shard].deliver) return;  // supervisor restarts real workers
  shards_[shard].down = false;
}

void ChaosInjector::set_shard_signal(std::size_t shard,
                                     std::function<void()> deliver) {
  std::lock_guard lock(mutex_);
  if (shard >= shards_.size()) shards_.resize(shard + 1);
  shards_[shard].deliver = std::move(deliver);
}

bool ChaosInjector::shard_down(std::size_t shard) const {
  std::lock_guard lock(mutex_);
  return shard < shards_.size() && shards_[shard].down;
}

void ChaosInjector::on_shard_refused(std::size_t shard) {
  std::lock_guard lock(mutex_);
  if (shard >= shards_.size()) shards_.resize(shard + 1);
  ++shards_[shard].refusals;
}

std::uint64_t ChaosInjector::shard_refusals(std::size_t shard) const {
  std::lock_guard lock(mutex_);
  return shard < shards_.size() ? shards_[shard].refusals : 0;
}

namespace {

/// The decorator chaos_wrap() returns.
class ChaosPreprocessor final : public prep::Preprocessor {
 public:
  ChaosPreprocessor(std::unique_ptr<prep::Preprocessor> inner,
                    std::shared_ptr<ChaosInjector> chaos, std::size_t member)
      : inner_(std::move(inner)), chaos_(std::move(chaos)), member_(member) {}

  std::string name() const override { return inner_->name(); }

  Tensor apply(const Tensor& images) const override {
    std::chrono::milliseconds latency{0};
    switch (chaos_->fire(member_, &latency)) {
      case ChaosFault::none:
        break;
      case ChaosFault::member_exception:
        throw std::runtime_error("chaos: injected member exception");
      case ChaosFault::latency_spike:
        std::this_thread::sleep_for(latency);
        break;
      case ChaosFault::activation_corrupt:
        // Never armed on the preprocessor plan (arm() rejects it); the
        // forward tap installed by tap_activations() acts it out instead.
        break;
      case ChaosFault::nan_output: {
        // Poison the member's whole view of the input: an all-NaN batch
        // stays non-finite through every layer (a lone NaN pixel could be
        // squashed by max-pooling's comparison semantics), so the member's
        // softmax turns non-finite and the fault-domain finiteness check
        // catches it downstream.
        Tensor poisoned = inner_->apply(images);
        poisoned.fill(std::numeric_limits<float>::quiet_NaN());
        return poisoned;
      }
    }
    return inner_->apply(images);
  }

 private:
  std::unique_ptr<prep::Preprocessor> inner_;
  std::shared_ptr<ChaosInjector> chaos_;
  std::size_t member_;
};

}  // namespace

std::unique_ptr<prep::Preprocessor> chaos_wrap(
    std::unique_ptr<prep::Preprocessor> inner,
    std::shared_ptr<ChaosInjector> chaos, std::size_t member) {
  if (chaos == nullptr || member >= chaos->members()) {
    throw std::invalid_argument("chaos_wrap: bad injector or member index");
  }
  return std::make_unique<ChaosPreprocessor>(std::move(inner),
                                             std::move(chaos), member);
}

void tap_activations(quant::QuantizedNetwork& net,
                     std::shared_ptr<ChaosInjector> chaos, std::size_t member) {
  if (chaos == nullptr || member >= chaos->members()) {
    throw std::invalid_argument("tap_activations: bad injector or member");
  }
  net.set_forward_tap([chaos = std::move(chaos), member](Tensor& activation,
                                                         int layer) {
    ActivationCorrupt spec;
    if (!chaos->fire_activation(member, layer, &spec)) return;
    const std::int64_t numel = activation.numel();
    if (numel <= 0) return;
    const std::int64_t start = std::clamp<std::int64_t>(spec.offset, 0,
                                                        numel - 1);
    const std::int64_t len =
        std::clamp<std::int64_t>(spec.elems, 1, numel - start);
    for (std::int64_t i = start; i < start + len; ++i) {
      activation[i] = spec.value;
    }
  });
}

}  // namespace pgmr::fault
