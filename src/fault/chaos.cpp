#include "fault/chaos.h"

#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

namespace pgmr::fault {

const char* to_string(ChaosFault fault) {
  switch (fault) {
    case ChaosFault::none: return "none";
    case ChaosFault::member_exception: return "member_exception";
    case ChaosFault::latency_spike: return "latency_spike";
    case ChaosFault::nan_output: return "nan_output";
  }
  return "unknown";
}

ChaosInjector::ChaosInjector(std::size_t members) : plans_(members) {}

void ChaosInjector::arm(std::size_t member, ChaosFault fault, int count,
                        std::chrono::milliseconds latency) {
  std::lock_guard lock(mutex_);
  Plan& p = plans_.at(member);
  p.fault = fault;
  p.remaining = count;
  p.latency = latency;
}

void ChaosInjector::disarm(std::size_t member) {
  std::lock_guard lock(mutex_);
  Plan& p = plans_.at(member);
  p.fault = ChaosFault::none;
  p.remaining = 0;
}

ChaosFault ChaosInjector::fire(std::size_t member,
                               std::chrono::milliseconds* latency) {
  std::lock_guard lock(mutex_);
  Plan& p = plans_.at(member);
  if (p.fault == ChaosFault::none || p.remaining == 0) return ChaosFault::none;
  if (p.remaining > 0) --p.remaining;
  ++p.fired;
  if (latency != nullptr) *latency = p.latency;
  return p.fault;
}

std::uint64_t ChaosInjector::fired(std::size_t member) const {
  std::lock_guard lock(mutex_);
  return plans_.at(member).fired;
}

void ChaosInjector::kill_shard(std::size_t shard) {
  std::function<void()> deliver;
  {
    std::lock_guard lock(mutex_);
    if (shard >= shards_.size()) shards_.resize(shard + 1);
    if (shards_[shard].deliver) {
      deliver = shards_[shard].deliver;  // real signal; no down latch
    } else {
      shards_[shard].down = true;  // simulation (thread backend)
    }
  }
  if (deliver) deliver();  // outside the lock: it syscalls into kill(2)
}

void ChaosInjector::revive_shard(std::size_t shard) {
  std::lock_guard lock(mutex_);
  if (shard >= shards_.size()) shards_.resize(shard + 1);
  if (shards_[shard].deliver) return;  // supervisor restarts real workers
  shards_[shard].down = false;
}

void ChaosInjector::set_shard_signal(std::size_t shard,
                                     std::function<void()> deliver) {
  std::lock_guard lock(mutex_);
  if (shard >= shards_.size()) shards_.resize(shard + 1);
  shards_[shard].deliver = std::move(deliver);
}

bool ChaosInjector::shard_down(std::size_t shard) const {
  std::lock_guard lock(mutex_);
  return shard < shards_.size() && shards_[shard].down;
}

void ChaosInjector::on_shard_refused(std::size_t shard) {
  std::lock_guard lock(mutex_);
  if (shard >= shards_.size()) shards_.resize(shard + 1);
  ++shards_[shard].refusals;
}

std::uint64_t ChaosInjector::shard_refusals(std::size_t shard) const {
  std::lock_guard lock(mutex_);
  return shard < shards_.size() ? shards_[shard].refusals : 0;
}

namespace {

/// The decorator chaos_wrap() returns.
class ChaosPreprocessor final : public prep::Preprocessor {
 public:
  ChaosPreprocessor(std::unique_ptr<prep::Preprocessor> inner,
                    std::shared_ptr<ChaosInjector> chaos, std::size_t member)
      : inner_(std::move(inner)), chaos_(std::move(chaos)), member_(member) {}

  std::string name() const override { return inner_->name(); }

  Tensor apply(const Tensor& images) const override {
    std::chrono::milliseconds latency{0};
    switch (chaos_->fire(member_, &latency)) {
      case ChaosFault::none:
        break;
      case ChaosFault::member_exception:
        throw std::runtime_error("chaos: injected member exception");
      case ChaosFault::latency_spike:
        std::this_thread::sleep_for(latency);
        break;
      case ChaosFault::nan_output: {
        // Poison the member's whole view of the input: an all-NaN batch
        // stays non-finite through every layer (a lone NaN pixel could be
        // squashed by max-pooling's comparison semantics), so the member's
        // softmax turns non-finite and the fault-domain finiteness check
        // catches it downstream.
        Tensor poisoned = inner_->apply(images);
        poisoned.fill(std::numeric_limits<float>::quiet_NaN());
        return poisoned;
      }
    }
    return inner_->apply(images);
  }

 private:
  std::unique_ptr<prep::Preprocessor> inner_;
  std::shared_ptr<ChaosInjector> chaos_;
  std::size_t member_;
};

}  // namespace

std::unique_ptr<prep::Preprocessor> chaos_wrap(
    std::unique_ptr<prep::Preprocessor> inner,
    std::shared_ptr<ChaosInjector> chaos, std::size_t member) {
  if (chaos == nullptr || member >= chaos->members()) {
    throw std::invalid_argument("chaos_wrap: bad injector or member index");
  }
  return std::make_unique<ChaosPreprocessor>(std::move(inner),
                                             std::move(chaos), member);
}

}  // namespace pgmr::fault
