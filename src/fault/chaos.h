// Chaos injection for the serving stack.
//
// The bit-flip Injector (injector.h) models storage-level soft errors; this
// module adds the *runtime-level* fault classes a live MR serving system
// must survive — a member that throws, a member that goes slow, a member
// whose softmax turns NaN — and a controller to arm them against specific
// ensemble members while a ServingRuntime is serving.
//
// Mechanism: chaos_wrap() decorates a member's Layer-1 preprocessor with a
// ChaosPreprocessor that consults the shared ChaosInjector on every apply.
// That reuses the existing Member seam (no hooks in mr/ or runtime/), fires
// on the worker threads that actually run the member, and composes with the
// weight-level Injector for bit-flip campaigns (see bench/chaos_resilience).
//
// Thread-safety: arm/disarm/fire are mutex-protected; fire() runs on pool
// worker threads, arm()/disarm() on the chaos driver thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "fault/injector.h"
#include "prep/preprocessor.h"

namespace pgmr::quant {
class QuantizedNetwork;
}  // namespace pgmr::quant

namespace pgmr::fault {

/// Runtime-level fault classes injectable into a member's inference path.
enum class ChaosFault {
  none,
  member_exception,    ///< the member throws std::runtime_error
  latency_spike,       ///< the member sleeps `latency` before answering
  nan_output,          ///< the member's input is poisoned with NaN, so its
                       ///< softmax output turns non-finite
  activation_corrupt,  ///< an in-flight activation region is overwritten
                       ///< between two layers of the member's forward pass
                       ///< (armed via arm_activation, fired by the
                       ///< QuantizedNetwork forward tap — see
                       ///< tap_activations below)
};

const char* to_string(ChaosFault fault);

/// Activation-resolution fault spec: which inter-layer activation to hit
/// and how. Unlike a stored-weight flip this corruption lives only for one
/// forward pass and is invisible to ABFT (each GEMM is verified against
/// its *actual* input, corrupted or not) and to the weight scrubber (no
/// weight changed) — detection is entirely up to the MR vote and the
/// non-finite output check, which is exactly what the taxonomy's
/// activation row claims.
struct ActivationCorrupt {
  int layer = -1;            ///< top-level layer index to fire after; -1 =
                             ///< the first tapped layer of the pass
  std::int64_t offset = 0;   ///< first corrupted element (clamped)
  std::int64_t elems = 64;   ///< burst length in elements (clamped)
  float value = 1.0e20F;     ///< overwrite value (finite but catastrophic;
                             ///< use NaN to trip the finiteness check)
};

/// Shared controller: arms fault plans per member and serves fire() calls
/// from the decorated preprocessors.
class ChaosInjector {
 public:
  explicit ChaosInjector(std::size_t members);

  std::size_t members() const { return plans_.size(); }

  /// Arms `fault` on `member` for the next `count` inferences (count < 0 =
  /// until disarm). `latency` only applies to latency_spike. Throws
  /// std::out_of_range for a member index >= members() and
  /// std::invalid_argument for activation_corrupt (arm it with
  /// arm_activation, which carries the region spec).
  void arm(std::size_t member, ChaosFault fault, int count = -1,
           std::chrono::milliseconds latency = std::chrono::milliseconds(20));

  /// Arms an activation-resolution fault on `member` for the next `count`
  /// firing forward passes (count < 0 = until disarm). Independent of the
  /// preprocessor-level plan: one member can carry both.
  void arm_activation(std::size_t member, const ActivationCorrupt& spec,
                      int count = -1);

  /// Clears the member's plans (both preprocessor- and activation-level).
  void disarm(std::size_t member);

  /// Called by ChaosPreprocessor on every inference of `member`: returns
  /// the fault to act out now (decrementing the remaining count), plus the
  /// latency to apply for spikes.
  ChaosFault fire(std::size_t member, std::chrono::milliseconds* latency);

  /// Called by the member's forward tap after top-level layer `layer`:
  /// when the armed activation plan matches (spec.layer == layer, or
  /// spec.layer < 0 and this is the pass's first tap, layer 0), fills
  /// `spec`, decrements the remaining count and returns true.
  bool fire_activation(std::size_t member, int layer, ActivationCorrupt* spec);

  /// Total faults acted out on `member` since construction (preprocessor-
  /// level plans; activation fires are counted separately).
  std::uint64_t fired(std::size_t member) const;

  /// Total activation corruptions acted out on `member`.
  std::uint64_t activation_fired(std::size_t member) const;

  /// Shard-loss hooks (fleet campaigns): fail-stop a whole serving
  /// replica. What kill_shard() *does* depends on the fleet's isolation
  /// backend:
  ///  * thread backend (no signal hook): simulation — shard_down() latches
  ///    true and the router refuses hand-offs to the shard until
  ///    revive_shard().
  ///  * process backend (set_shard_signal registered): the hook delivers a
  ///    real SIGKILL to the shard's worker process. shard_down() stays
  ///    false — the death is observed exactly as in production, through
  ///    hand-offs refused by a genuinely dead process, and revive_shard()
  ///    is a no-op because the supervisor restarts the worker itself.
  /// Either way the router bumps the same shard_refusals counter on every
  /// refused hand-off, so campaign assertions read identically across
  /// backends. Shard indices are independent of the member indices above
  /// and sized lazily, so one injector can drive both member-level and
  /// shard-level chaos in a single campaign.
  void kill_shard(std::size_t shard);

  /// Brings a simulation-killed shard back; the next half-open probe
  /// routed to it succeeds and restores it to the serving rotation. No-op
  /// for shards with a registered signal hook (see kill_shard).
  void revive_shard(std::size_t shard);

  /// Arms real-signal delivery for `shard` (the process backend registers
  /// a SIGKILL-the-worker callback here at fleet construction). An empty
  /// function un-registers, reverting kill_shard to simulation.
  void set_shard_signal(std::size_t shard, std::function<void()> deliver);

  /// True while `shard` is killed. Never throws (unknown shards are up).
  bool shard_down(std::size_t shard) const;

  /// Submissions refused because `shard` was down (bumped by shard_down
  /// observers via on_shard_refused — the router calls it so the campaign
  /// can assert the outage was actually exercised).
  void on_shard_refused(std::size_t shard);
  std::uint64_t shard_refusals(std::size_t shard) const;

 private:
  struct Plan {
    ChaosFault fault = ChaosFault::none;
    int remaining = 0;  ///< -1 = unbounded
    std::chrono::milliseconds latency{0};
    std::uint64_t fired = 0;
    /// Activation-resolution plan, armed independently via arm_activation.
    ActivationCorrupt act;
    int act_remaining = 0;
    std::uint64_t act_fired = 0;
  };

  /// Returns plans_[member] with a descriptive throw; call under mutex_.
  Plan& plan_at(std::size_t member);
  const Plan& plan_at(std::size_t member) const;

  struct ShardPlan {
    bool down = false;
    std::uint64_t refusals = 0;
    /// Real-signal hook; non-null switches kill_shard from simulation to
    /// actual signal delivery (process isolation).
    std::function<void()> deliver;
  };

  mutable std::mutex mutex_;
  std::vector<Plan> plans_;
  std::vector<ShardPlan> shards_;  ///< grown on first touch of a shard
};

/// Decorates `inner` so that member `member`'s inferences consult `chaos`
/// first. name() forwards to the inner preprocessor, so configurations and
/// member descriptions are unchanged.
std::unique_ptr<prep::Preprocessor> chaos_wrap(
    std::unique_ptr<prep::Preprocessor> inner,
    std::shared_ptr<ChaosInjector> chaos, std::size_t member);

/// Installs a forward tap on `net` that consults `chaos` after every
/// top-level layer and overwrites the armed activation region in place
/// (offset and length clamped to the live tensor). The activation-
/// resolution counterpart of chaos_wrap: chaos_wrap decorates the input
/// side of a member, tap_activations the layer-to-layer traffic inside it.
/// Install before serving or under the runtime's swap lock (the tap slot
/// itself is not synchronized); the consult is mutex-protected and cheap
/// when nothing is armed.
void tap_activations(quant::QuantizedNetwork& net,
                     std::shared_ptr<ChaosInjector> chaos, std::size_t member);

}  // namespace pgmr::fault
