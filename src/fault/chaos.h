// Chaos injection for the serving stack.
//
// The bit-flip Injector (injector.h) models storage-level soft errors; this
// module adds the *runtime-level* fault classes a live MR serving system
// must survive — a member that throws, a member that goes slow, a member
// whose softmax turns NaN — and a controller to arm them against specific
// ensemble members while a ServingRuntime is serving.
//
// Mechanism: chaos_wrap() decorates a member's Layer-1 preprocessor with a
// ChaosPreprocessor that consults the shared ChaosInjector on every apply.
// That reuses the existing Member seam (no hooks in mr/ or runtime/), fires
// on the worker threads that actually run the member, and composes with the
// weight-level Injector for bit-flip campaigns (see bench/chaos_resilience).
//
// Thread-safety: arm/disarm/fire are mutex-protected; fire() runs on pool
// worker threads, arm()/disarm() on the chaos driver thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "fault/injector.h"
#include "prep/preprocessor.h"

namespace pgmr::fault {

/// Runtime-level fault classes injectable into a member's inference path.
enum class ChaosFault {
  none,
  member_exception,  ///< the member throws std::runtime_error
  latency_spike,     ///< the member sleeps `latency` before answering
  nan_output,        ///< the member's input is poisoned with NaN, so its
                     ///< softmax output turns non-finite
};

const char* to_string(ChaosFault fault);

/// Shared controller: arms fault plans per member and serves fire() calls
/// from the decorated preprocessors.
class ChaosInjector {
 public:
  explicit ChaosInjector(std::size_t members);

  std::size_t members() const { return plans_.size(); }

  /// Arms `fault` on `member` for the next `count` inferences (count < 0 =
  /// until disarm). `latency` only applies to latency_spike.
  void arm(std::size_t member, ChaosFault fault, int count = -1,
           std::chrono::milliseconds latency = std::chrono::milliseconds(20));

  /// Clears the member's plan.
  void disarm(std::size_t member);

  /// Called by ChaosPreprocessor on every inference of `member`: returns
  /// the fault to act out now (decrementing the remaining count), plus the
  /// latency to apply for spikes.
  ChaosFault fire(std::size_t member, std::chrono::milliseconds* latency);

  /// Total faults acted out on `member` since construction.
  std::uint64_t fired(std::size_t member) const;

  /// Shard-loss hooks (fleet campaigns): fail-stop a whole serving
  /// replica. What kill_shard() *does* depends on the fleet's isolation
  /// backend:
  ///  * thread backend (no signal hook): simulation — shard_down() latches
  ///    true and the router refuses hand-offs to the shard until
  ///    revive_shard().
  ///  * process backend (set_shard_signal registered): the hook delivers a
  ///    real SIGKILL to the shard's worker process. shard_down() stays
  ///    false — the death is observed exactly as in production, through
  ///    hand-offs refused by a genuinely dead process, and revive_shard()
  ///    is a no-op because the supervisor restarts the worker itself.
  /// Either way the router bumps the same shard_refusals counter on every
  /// refused hand-off, so campaign assertions read identically across
  /// backends. Shard indices are independent of the member indices above
  /// and sized lazily, so one injector can drive both member-level and
  /// shard-level chaos in a single campaign.
  void kill_shard(std::size_t shard);

  /// Brings a simulation-killed shard back; the next half-open probe
  /// routed to it succeeds and restores it to the serving rotation. No-op
  /// for shards with a registered signal hook (see kill_shard).
  void revive_shard(std::size_t shard);

  /// Arms real-signal delivery for `shard` (the process backend registers
  /// a SIGKILL-the-worker callback here at fleet construction). An empty
  /// function un-registers, reverting kill_shard to simulation.
  void set_shard_signal(std::size_t shard, std::function<void()> deliver);

  /// True while `shard` is killed. Never throws (unknown shards are up).
  bool shard_down(std::size_t shard) const;

  /// Submissions refused because `shard` was down (bumped by shard_down
  /// observers via on_shard_refused — the router calls it so the campaign
  /// can assert the outage was actually exercised).
  void on_shard_refused(std::size_t shard);
  std::uint64_t shard_refusals(std::size_t shard) const;

 private:
  struct Plan {
    ChaosFault fault = ChaosFault::none;
    int remaining = 0;  ///< -1 = unbounded
    std::chrono::milliseconds latency{0};
    std::uint64_t fired = 0;
  };

  struct ShardPlan {
    bool down = false;
    std::uint64_t refusals = 0;
    /// Real-signal hook; non-null switches kill_shard from simulation to
    /// actual signal delivery (process isolation).
    std::function<void()> deliver;
  };

  mutable std::mutex mutex_;
  std::vector<Plan> plans_;
  std::vector<ShardPlan> shards_;  ///< grown on first touch of a shard
};

/// Decorates `inner` so that member `member`'s inferences consult `chaos`
/// first. name() forwards to the inner preprocessor, so configurations and
/// member descriptions are unchanged.
std::unique_ptr<prep::Preprocessor> chaos_wrap(
    std::unique_ptr<prep::Preprocessor> inner,
    std::shared_ptr<ChaosInjector> chaos, std::size_t member);

}  // namespace pgmr::fault
