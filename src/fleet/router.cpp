#include "fleet/router.h"

#include <unistd.h>

#include <filesystem>
#include <limits>
#include <sstream>
#include <utility>

#include "proc/spec.h"
#include "proc/supervisor.h"

namespace pgmr::fleet {

namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mixing, so rendezvous
/// scores for (key, shard) pairs are independent uniform draws.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

FleetOptions normalized(FleetOptions o) {
  if (o.shards == 0) o.shards = 1;
  if (o.shard_quarantine_after < 1) o.shard_quarantine_after = 1;
  if (o.process.max_inflight == 0) {
    o.process.max_inflight = o.runtime.queue_capacity;
  }
  return o;
}

/// Thread isolation: a ServingRuntime in this address space behind the
/// backend seam. Always available — its fail-stop is only ever simulated
/// (ChaosInjector::shard_down), which the router checks separately.
class ThreadShard final : public ShardBackend {
 public:
  ThreadShard(polygraph::PolygraphSystem system,
              const runtime::RuntimeOptions& options)
      : rt_(std::move(system), options) {}

  bool available() const override { return true; }

  std::optional<std::future<polygraph::Verdict>> try_submit(
      Tensor image,
      std::optional<std::chrono::steady_clock::time_point> deadline) override {
    return rt_.try_submit(std::move(image), deadline);
  }

  std::future<polygraph::Verdict> submit(
      Tensor image,
      std::optional<std::chrono::steady_clock::time_point> deadline) override {
    return rt_.submit(std::move(image), deadline);
  }

  std::uint64_t in_flight() const override { return rt_.metrics().in_flight(); }

  runtime::MetricsSnapshot metrics_snapshot() const override {
    return rt_.metrics_snapshot();
  }

  void shutdown() override { rt_.shutdown(); }

  runtime::ServingRuntime& runtime() { return rt_; }

 private:
  runtime::ServingRuntime rt_;
};

std::string fresh_spec_root() {
  static std::atomic<std::uint64_t> seq{0};
  const auto root = std::filesystem::temp_directory_path() /
                    ("pgmr-fleet-" + std::to_string(::getpid()) + "-" +
                     std::to_string(seq.fetch_add(1)));
  return root.string();
}

}  // namespace

const char* to_string(Isolation isolation) {
  switch (isolation) {
    case Isolation::thread: return "thread";
    case Isolation::process: return "process";
  }
  return "unknown";
}

std::string FleetSnapshot::to_string() const {
  std::ostringstream out;
  out << merged.to_string();
  out << "fleet_shards " << shards.size() << "\n";
  out << "fleet_spills " << spills << "\n";
  out << "fleet_probes " << probes << "\n";
  out << "fleet_unavailable " << unavailable << "\n";
  for (std::size_t s = 0; s < shards.size(); ++s) {
    out << "shard[" << s << "] state "
        << runtime::to_string(shard_states[s]) << " routed " << routed[s]
        << " faults " << shard_faults[s] << " quarantines "
        << shard_quarantines[s] << " restarts " << shard_restarts[s]
        << " completed " << shards[s].requests_completed << "\n";
  }
  return out.str();
}

FleetRouter::FleetRouter(const SystemFactory& factory, FleetOptions options)
    : options_(normalized(std::move(options))),
      health_(options_.shards,
              runtime::MemberHealth::Options{
                  options_.shard_quarantine_after, options_.shard_cooldown,
                  /*fence_after_quarantines=*/0}),
      routed_(options_.shards),
      shard_faults_(options_.shards),
      shard_quarantines_(options_.shards) {
  shards_.reserve(options_.shards);
  if (options_.isolation == Isolation::thread) {
    runtimes_.reserve(options_.shards);
    for (std::size_t s = 0; s < options_.shards; ++s) {
      auto shard = std::make_unique<ThreadShard>(factory(s), options_.runtime);
      runtimes_.push_back(&shard->runtime());
      shards_.push_back(std::move(shard));
    }
    return;
  }

  // Process isolation: build each shard's system once, serialize it to a
  // spec directory, and put a supervised worker process behind the seam.
  std::string root = options_.process.spec_root;
  if (root.empty()) {
    root = fresh_spec_root();
    owned_spec_root_ = root;
  }
  for (std::size_t s = 0; s < options_.shards; ++s) {
    const std::string dir =
        (std::filesystem::path(root) / ("shard" + std::to_string(s)))
            .string();
    polygraph::PolygraphSystem system = factory(s);
    proc::write_system_spec(dir, system, options_.runtime);
    shards_.push_back(std::make_unique<proc::ShardSupervisor>(
        dir, options_.process, "shard" + std::to_string(s)));
  }
  if (options_.chaos != nullptr) {
    // kill_shard() now delivers a real SIGKILL to the worker instead of
    // latching the simulated-down flag. The hooks are un-registered at
    // shutdown, before the supervisors they point into are destroyed.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      auto* supervisor = static_cast<proc::ShardSupervisor*>(shards_[s].get());
      options_.chaos->set_shard_signal(
          s, [supervisor] { supervisor->kill_worker(); });
    }
  }
}

FleetRouter::~FleetRouter() {
  shutdown();
  if (!owned_spec_root_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(owned_spec_root_, ec);  // best effort
  }
}

void FleetRouter::shutdown() {
  {
    std::unique_lock lifecycle(lifecycle_);
    if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  }
  // No submission can now be mid-hand-off (they run under the shared side
  // of lifecycle_ and fail fast once stopped_ is set), so the shards can
  // drain without racing new arrivals.
  if (options_.isolation == Isolation::process &&
      options_.chaos != nullptr) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      options_.chaos->set_shard_signal(s, {});
    }
  }
  for (auto& shard : shards_) shard->shutdown();
}

runtime::ServingRuntime& FleetRouter::shard(std::size_t i) {
  if (options_.isolation != Isolation::thread) {
    throw std::logic_error(
        "FleetRouter::shard: process-isolated shards live in a worker "
        "process; use backend()/snapshot() instead");
  }
  return *runtimes_.at(i);
}

std::size_t FleetRouter::rendezvous(std::uint64_t key,
                                    const std::vector<bool>& eligible) const {
  std::size_t winner = shards_.size();
  std::uint64_t best = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!eligible[s]) continue;
    const std::uint64_t score =
        mix64(key ^ mix64(static_cast<std::uint64_t>(s) + 1));
    if (winner == shards_.size() || score > best) {
      winner = s;
      best = score;
    }
  }
  return winner;
}

std::size_t FleetRouter::shard_for(std::uint64_t key) const {
  std::vector<bool> eligible(shards_.size());
  bool any = false;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const runtime::MemberState st = health_.state(s);
      eligible[s] = st == runtime::MemberState::healthy ||
                    st == runtime::MemberState::half_open;
      any = any || eligible[s];
    }
  }
  // With nothing eligible, answer from the full membership — the advisory
  // view of where the key would land once anything recovers.
  if (!any) eligible.assign(shards_.size(), true);
  return rendezvous(key, eligible);
}

runtime::MemberState FleetRouter::record_refusal(
    std::size_t shard, std::chrono::steady_clock::time_point now) {
  std::lock_guard lock(mutex_);
  if (health_.on_result(shard, false, now)) {
    shard_quarantines_[shard].fetch_add(1, std::memory_order_relaxed);
  }
  return health_.state(shard);
}

bool FleetRouter::shard_is_down(std::size_t s) const {
  if (options_.chaos != nullptr && options_.chaos->shard_down(s)) return true;
  return !shards_[s]->available();
}

std::future<polygraph::Verdict> FleetRouter::submit(
    Tensor image, std::uint64_t key,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  // Shared lifecycle hold: shutdown() cannot start draining shards while
  // any submission is between the stopped_ check and its hand-off.
  std::shared_lock lifecycle(lifecycle_);
  if (stopped_.load(std::memory_order_acquire)) {
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    throw ShardUnavailable("fleet: submit after shutdown");
  }
  const auto now = std::chrono::steady_clock::now();

  // Route under the lock (run_mask may transition cooled-down shards to
  // half_open); hand off outside it so one shard's backpressure never
  // stalls routing for the rest of the fleet.
  std::size_t winner = shards_.size();
  bool probe = false;
  std::vector<bool> mask;
  {
    std::lock_guard lock(mutex_);
    mask = health_.run_mask(now);
    winner = rendezvous(key, mask);
    probe = winner < shards_.size() &&
            health_.state(winner) == runtime::MemberState::half_open;
  }
  if (winner == shards_.size()) {
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    throw ShardUnavailable("fleet: no shard eligible (all quarantined)");
  }
  if (probe) probes_.fetch_add(1, std::memory_order_relaxed);

  // Fail-stop check: a dead shard refuses the hand-off the way a crashed
  // process would — for process isolation it *is* a crashed process. The
  // refusal feeds the breaker; the caller eats a ShardUnavailable until
  // quarantine takes the shard out of rotation.
  if (shard_is_down(winner)) {
    if (options_.chaos != nullptr) options_.chaos->on_shard_refused(winner);
    shard_faults_[winner].fetch_add(1, std::memory_order_relaxed);
    const runtime::MemberState st = record_refusal(winner, now);
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    throw ShardUnavailable("fleet: shard " + std::to_string(winner) +
                           " is down (now " +
                           std::string(runtime::to_string(st)) + ")");
  }

  const auto accepted = [this, now](std::size_t s) {
    std::lock_guard lock(mutex_);
    health_.on_result(s, true, now);
    routed_[s].fetch_add(1, std::memory_order_relaxed);
  };

  // try_submit consumes its tensor even when it refuses, so the first
  // attempt hands over a copy and keeps `image` for the spill path.
  if (auto future = shards_[winner]->try_submit(image, deadline)) {
    accepted(winner);
    return std::move(*future);
  }

  // The winner refused. If it refused because it just died (its process
  // backend noticed before our shard_is_down check above), that is a
  // fault, not a backlog — feed the breaker like any other refusal.
  if (!shards_[winner]->available()) {
    if (options_.chaos != nullptr) options_.chaos->on_shard_refused(winner);
    shard_faults_[winner].fetch_add(1, std::memory_order_relaxed);
    const runtime::MemberState st = record_refusal(winner, now);
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    throw ShardUnavailable("fleet: shard " + std::to_string(winner) +
                           " died during hand-off (now " +
                           std::string(runtime::to_string(st)) + ")");
  }

  // Overflow spill: the winner is alive but backlogged. Shed the request
  // sideways to the least-loaded eligible shard instead of blocking.
  spills_.fetch_add(1, std::memory_order_relaxed);
  std::size_t target = shards_.size();
  std::uint64_t lightest = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (s == winner || !mask[s] || shard_is_down(s)) continue;
    const std::uint64_t load = shards_[s]->in_flight();
    if (load < lightest) {
      lightest = load;
      target = s;
    }
  }
  if (target < shards_.size()) {
    if (auto future = shards_[target]->try_submit(image, deadline)) {
      accepted(target);
      return std::move(*future);
    }
  }

  // Genuine fleet saturation: every eligible queue is full. Block on the
  // elected shard — backpressure reaches the caller, ordering respects
  // the routing decision.
  std::future<polygraph::Verdict> future =
      shards_[winner]->submit(std::move(image), deadline);
  accepted(winner);
  return future;
}

FleetSnapshot FleetRouter::snapshot() const {
  FleetSnapshot snap;
  snap.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    snap.shards.push_back(shard->metrics_snapshot());
  }
  snap.merged = runtime::merge_snapshots(snap.shards);
  snap.shard_states.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    snap.shard_states.push_back(health_.state(s));
    snap.routed.push_back(routed_[s].load(std::memory_order_relaxed));
    snap.shard_faults.push_back(
        shard_faults_[s].load(std::memory_order_relaxed));
    snap.shard_quarantines.push_back(
        shard_quarantines_[s].load(std::memory_order_relaxed));
    snap.shard_restarts.push_back(shards_[s]->restarts());
  }
  snap.spills = spills_.load(std::memory_order_relaxed);
  snap.probes = probes_.load(std::memory_order_relaxed);
  snap.unavailable = unavailable_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace pgmr::fleet
