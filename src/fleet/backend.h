// ShardBackend: the seam between the FleetRouter's routing brain and a
// shard's execution substrate.
//
// The router owns rendezvous hashing, the shard circuit breaker, spill and
// merged metrics; a backend owns *how* a routed request actually runs:
//
//   Isolation::thread   a ServingRuntime inside this process — threads
//                       isolate replicas, a stray pointer does not
//   Isolation::process  a fork/exec'd pgmr-shard-worker child supervised
//                       by proc::ShardSupervisor — fail-stop containment:
//                       a crash (real SIGKILL included) kills one shard's
//                       process, and the router's breaker observes it as
//                       refused hand-offs, exactly like the thread case
//
// Contract:
//  * available() is the fail-stop signal: false while the shard cannot
//    accept a hand-off at all (process dead / restarting / restart-storm
//    capped). The router turns an unavailable election into a refusal that
//    feeds the breaker. Thread shards are always available — their
//    fail-stop is simulated by ChaosInjector::shard_down.
//  * try_submit refuses (nullopt) on a full queue — backlog, not death —
//    which the router spills sideways. submit() blocks on backpressure and
//    throws ShardUnavailable if the shard dies while it waits.
//  * Futures from a shard that later fail-stops carry ShardUnavailable;
//    accepted work is never silently dropped.
//  * metrics_snapshot() must keep counting across worker restarts (a
//    SIGKILL loses at most the in-flight requests' worth of drift).
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "polygraph/system.h"
#include "runtime/metrics.h"
#include "tensor/tensor.h"

namespace pgmr::fleet {

/// The error a submission raises when no shard could take it: the routed
/// shard is down and not yet quarantined (detection window / probe), the
/// whole fleet is, or the router was shut down.
class ShardUnavailable : public std::runtime_error {
 public:
  explicit ShardUnavailable(const std::string& what)
      : std::runtime_error(what) {}
};

/// How each shard's replica is isolated from the others.
enum class Isolation {
  thread,   ///< N ServingRuntimes in this process (PR 6 behaviour)
  process,  ///< N supervised worker processes (fail-stop containment)
};

const char* to_string(Isolation isolation);

/// Process-backend knobs (ignored for Isolation::thread).
struct ProcessOptions {
  /// Worker binary to fork/exec. Empty = $PGMR_SHARD_WORKER, falling back
  /// to "pgmr-shard-worker" next to the current executable.
  std::string worker_path;
  /// Where per-shard spec directories are written. Empty = a fresh
  /// directory under the system temp dir, removed at router teardown.
  std::string spec_root;
  /// How long construction waits for a worker's hello before declaring
  /// the spawn failed (spec load + model deserialization happen here).
  std::chrono::milliseconds startup_timeout{30000};
  /// Idle gap after which the supervisor sends a ping.
  std::chrono::milliseconds heartbeat_interval{250};
  /// Silence after which a live-but-mute worker is declared hung and
  /// SIGKILLed (then restarted like any other death).
  std::chrono::milliseconds heartbeat_timeout{5000};
  /// Exponential restart backoff: initial delay, doubling per consecutive
  /// failure, capped at backoff_max. An incarnation that stays up past
  /// healthy_uptime resets the schedule.
  std::chrono::milliseconds backoff_initial{200};
  std::chrono::milliseconds backoff_max{5000};
  std::chrono::milliseconds healthy_uptime{2000};
  /// Restart-storm cap: more than max_restarts deaths inside
  /// restart_window gives the shard up for good (available() stays false,
  /// so the breaker quarantines it and probes keep failing).
  int max_restarts = 8;
  std::chrono::milliseconds restart_window{60000};
  /// Graceful-drain budget at shutdown before SIGTERM/SIGKILL escalation.
  std::chrono::milliseconds drain_timeout{10000};
  /// In-flight cap per worker (submit blocks above it); 0 = the runtime
  /// queue capacity.
  std::size_t max_inflight = 0;
};

class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// False while the shard is fail-stopped (see header comment).
  virtual bool available() const = 0;

  /// Non-blocking hand-off; nullopt when the queue is full or the shard
  /// cannot accept (the router decides spill vs refusal via available()).
  virtual std::optional<std::future<polygraph::Verdict>> try_submit(
      Tensor image,
      std::optional<std::chrono::steady_clock::time_point> deadline) = 0;

  /// Blocking hand-off (backpressure reaches the caller). Throws
  /// ShardUnavailable when the shard dies or stops while waiting.
  virtual std::future<polygraph::Verdict> submit(
      Tensor image,
      std::optional<std::chrono::steady_clock::time_point> deadline) = 0;

  /// Accepted-but-unanswered requests — the router's spill load signal.
  virtual std::uint64_t in_flight() const = 0;

  /// Cumulative metrics across the shard's lifetime (all incarnations).
  virtual runtime::MetricsSnapshot metrics_snapshot() const = 0;

  /// Worker respawns performed so far (0 for thread shards).
  virtual std::uint64_t restarts() const { return 0; }

  /// Stops accepting, drains accepted work, tears the substrate down.
  /// Idempotent.
  virtual void shutdown() = 0;
};

}  // namespace pgmr::fleet
