// FleetRouter: horizontal scale-out of the serving runtime — the layer
// between the request stream and N serving replicas ("shards").
//
//   submit(image, key) --> rendezvous-hash over healthy shards --> shard
//       backend (thread: in-process ServingRuntime; process: supervised
//       pgmr-shard-worker child, see backend.h) --> Verdict
//
// Member-level modular redundancy (PolygraphMR's ensembles) makes one
// replica trustworthy; the fleet adds *system-level* redundancy so losing
// a replica degrades capacity by 1/N instead of taking serving down.
//
// Routing: highest-random-weight (rendezvous) hashing of the request key
// over the currently eligible shards. Consistency property: when a shard
// leaves the rotation only the keys it owned move (they redistribute
// evenly over the survivors), and they move back when it returns — no
// global reshuffle, so per-shard caches and batch locality survive
// membership churn.
//
// Shard health reuses the MemberHealth circuit breaker at shard
// granularity (healthy -> quarantined -> half-open probe -> restored):
//  * A shard that refuses a routed hand-off (fail-stop kill, shutdown)
//    records a fault; quarantine_after consecutive faults quarantine it
//    and rendezvous stops offering it keys.
//  * After the cooldown the shard turns half-open; the next submission
//    whose key elects it is the probe. A successful hand-off restores the
//    shard (its keys return), a refused one re-quarantines it.
//  * Failures during the detection window surface to callers as
//    ShardUnavailable — the availability cost of discovering a dead shard
//    without an oracle. It is bounded by quarantine_after + one probe per
//    cooldown, so fleet availability stays >= (N-1)/N through an outage.
//  * fenced is unused at shard granularity (fence_after_quarantines = 0):
//    a dead replica is presumed restartable, so it probes forever. With
//    process isolation that presumption is *implemented*: the shard's
//    ShardSupervisor respawns its worker with exponential backoff, and
//    the first probe after the respawn restores the shard.
//
// Isolation: FleetOptions::isolation picks the backend. `thread` shares
// the router's address space (PR 6 behaviour, zero-copy hand-offs);
// `process` fork/execs one pgmr-shard-worker per shard so a wild write,
// abort or real SIGKILL is contained to one replica. The routing, breaker,
// spill and snapshot logic is backend-blind.
//
// Overflow spill: when the elected shard's bounded queue refuses the
// hand-off (backlog, not death), the request spills to the least-loaded
// eligible shard (by in-flight requests) instead of failing — load peaks
// shed sideways, only genuine fleet saturation blocks the caller.
//
// Chaos: an optional fault::ChaosInjector models shard loss. With thread
// shards kill_shard() latches a simulated-down flag the router consults at
// hand-off time; with process shards the router registers a signal hook so
// kill_shard() delivers a real SIGKILL to the worker. Either way the
// breaker learns of the death purely from refused hand-offs.
//
// Metrics: every shard keeps its own MetricsRegistry (no cross-shard
// cache-line traffic on the hot path); snapshot() merges the per-shard
// snapshots bucket-by-bucket via runtime::merge_snapshots, so fleet-wide
// reports (serve-bench, fleet-bench) read exactly like single-replica
// ones, plus fleet-level routing counters.
//
// Threading: submit() is safe from any number of client threads, and safe
// against a concurrent shutdown(): the router's lifecycle is guarded by a
// shared mutex (submissions shared, shutdown exclusive), so a submission
// either completes its hand-off before any shard stops, or fails fast
// with ShardUnavailable — never a torn hand-off into a dying shard.
// Routing state (the shard breaker) is mutex-guarded; hand-offs happen
// outside that lock, so a shard's bounded-queue backpressure never blocks
// routing decisions for other shards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "fault/chaos.h"
#include "fleet/backend.h"
#include "polygraph/system.h"
#include "runtime/serving_runtime.h"

namespace pgmr::fleet {

/// Fleet knobs. `runtime` is the per-shard pipeline template — every
/// replica gets its own copy (own worker pool, scrubber, replacer).
struct FleetOptions {
  std::size_t shards = 2;              ///< replica count (clamped >= 1)
  runtime::RuntimeOptions runtime;     ///< per-shard ServingRuntime knobs
  int shard_quarantine_after = 3;      ///< refused hand-offs to quarantine
  std::chrono::milliseconds shard_cooldown{250};  ///< half-open delay
  /// Backend choice (see header comment and backend.h).
  Isolation isolation = Isolation::thread;
  /// Process-backend knobs; ignored for thread isolation.
  ProcessOptions process;
  /// Optional shard-loss chaos switch (see header comment). The router
  /// only ever reads shard_down() / bumps refusal counters, and for
  /// process isolation registers the kill_shard signal hooks.
  std::shared_ptr<fault::ChaosInjector> chaos;
};

/// Fleet-wide observability: merged runtime metrics + routing counters.
struct FleetSnapshot {
  runtime::MetricsSnapshot merged;               ///< cross-shard aggregate
  std::vector<runtime::MetricsSnapshot> shards;  ///< per-shard views
  std::vector<runtime::MemberState> shard_states;
  std::vector<std::uint64_t> routed;          ///< accepted hand-offs
  std::vector<std::uint64_t> shard_faults;    ///< refused hand-offs
  std::vector<std::uint64_t> shard_quarantines;  ///< breaker trips
  std::vector<std::uint64_t> shard_restarts;  ///< worker respawns (process)
  std::uint64_t spills = 0;       ///< overflow re-routes to another shard
  std::uint64_t probes = 0;       ///< hand-offs that were half-open probes
  std::uint64_t unavailable = 0;  ///< submissions failed ShardUnavailable

  /// Multi-line fleet report: the merged snapshot followed by per-shard
  /// routing/health lines.
  std::string to_string() const;
};

class FleetRouter {
 public:
  /// Builds shard `s`'s system — called once per shard at construction.
  /// Shards must be *equivalent* (same composition, same thresholds) for
  /// verdicts to be shard-independent; the factory owns that guarantee.
  /// With process isolation the built system is serialized to the shard's
  /// spec directory (proc/spec.h) and reconstructed inside the worker.
  using SystemFactory =
      std::function<polygraph::PolygraphSystem(std::size_t shard)>;

  FleetRouter(const SystemFactory& factory, FleetOptions options);

  /// shutdown()s every shard (each drains its accepted requests).
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  std::size_t shards() const { return shards_.size(); }
  const FleetOptions& options() const { return options_; }
  Isolation isolation() const { return options_.isolation; }

  /// Routes one [1, C, H, W] request by `key` (a stable request/session
  /// identifier — equal keys ride the same shard while it stays healthy).
  /// Returns the shard's verdict future. Throws ShardUnavailable when the
  /// elected shard is down (detection window), the whole fleet is, or the
  /// router has been shut down; other submit errors propagate from the
  /// shard runtime.
  std::future<polygraph::Verdict> submit(
      Tensor image, std::uint64_t key,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt);

  /// Advisory routing preview: the shard `key` elects against the current
  /// non-quarantined membership (no probe transitions, no submission).
  /// Tests and ops tooling use it; the answer can be stale by the time a
  /// real submit runs.
  std::size_t shard_for(std::uint64_t key) const;

  /// Stops accepting requests and shuts every shard down (each drains).
  /// Safe to race with in-flight submit() calls: they either complete
  /// their hand-off first or fail fast with ShardUnavailable. Idempotent;
  /// called by the destructor.
  void shutdown();

  /// Direct in-process shard access (campaigns corrupt weights, tests
  /// read health). Thread isolation only — process shards live in another
  /// address space; throws std::logic_error for them.
  runtime::ServingRuntime& shard(std::size_t i);

  /// The shard's backend (restarts(), availability — any isolation).
  const ShardBackend& backend(std::size_t i) const { return *shards_.at(i); }

  /// Live shard circuit-breaker state (thread-safe reads).
  const runtime::MemberHealth& shard_health() const { return health_; }

  /// Merged metrics + routing counters (see FleetSnapshot).
  FleetSnapshot snapshot() const;

 private:
  /// Rendezvous winner for `key` among shards where eligible[s] is true;
  /// shards() when none is.
  std::size_t rendezvous(std::uint64_t key,
                         const std::vector<bool>& eligible) const;

  /// Records a refused hand-off under the router lock; returns the shard's
  /// resulting breaker state for the caller's error message.
  runtime::MemberState record_refusal(
      std::size_t shard, std::chrono::steady_clock::time_point now);

  /// True when `s` cannot take a hand-off: chaos-simulated death (thread)
  /// or a genuinely unavailable backend (process worker down/restarting).
  bool shard_is_down(std::size_t s) const;

  FleetOptions options_;
  std::vector<std::unique_ptr<ShardBackend>> shards_;
  /// Thread isolation only: the in-process runtimes behind shards_
  /// (non-owning, same indexing). Empty for process isolation.
  std::vector<runtime::ServingRuntime*> runtimes_;
  /// Spec root this router created and must remove (empty when the caller
  /// supplied ProcessOptions::spec_root or isolation is thread).
  std::string owned_spec_root_;
  /// The shard-granularity circuit breaker (one "member" per shard) and
  /// the mutex serializing its batcher-only API across client threads.
  mutable std::mutex mutex_;
  runtime::MemberHealth health_;
  /// Lifecycle gate: submit() holds it shared across route + hand-off,
  /// shutdown() takes it exclusive to flip stopped_ — so no submission
  /// can be midway through a hand-off when shards start draining.
  mutable std::shared_mutex lifecycle_;
  std::atomic<bool> stopped_{false};
  // Fleet-level routing counters (relaxed; snapshot() reads them).
  std::vector<std::atomic<std::uint64_t>> routed_;
  std::vector<std::atomic<std::uint64_t>> shard_faults_;
  std::vector<std::atomic<std::uint64_t>> shard_quarantines_;
  std::atomic<std::uint64_t> spills_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> unavailable_{0};
};

}  // namespace pgmr::fleet
