// FleetRouter: horizontal scale-out of the serving runtime — the layer
// between the request stream and N ServingRuntime replicas ("shards").
//
//   submit(image, key) --> rendezvous-hash over healthy shards --> shard's
//       own ServingRuntime (thread-isolated: private ensemble, batcher,
//       worker pool, scrubber, replacer, metrics registry) --> Verdict
//
// Member-level modular redundancy (PolygraphMR's ensembles) makes one
// replica trustworthy; the fleet adds *system-level* redundancy so losing
// a replica degrades capacity by 1/N instead of taking serving down.
//
// Routing: highest-random-weight (rendezvous) hashing of the request key
// over the currently eligible shards. Consistency property: when a shard
// leaves the rotation only the keys it owned move (they redistribute
// evenly over the survivors), and they move back when it returns — no
// global reshuffle, so per-shard caches and batch locality survive
// membership churn.
//
// Shard health reuses the MemberHealth circuit breaker at shard
// granularity (healthy -> quarantined -> half-open probe -> restored):
//  * A shard that refuses a routed hand-off (fail-stop kill, shutdown)
//    records a fault; quarantine_after consecutive faults quarantine it
//    and rendezvous stops offering it keys.
//  * After the cooldown the shard turns half-open; the next submission
//    whose key elects it is the probe. A successful hand-off restores the
//    shard (its keys return), a refused one re-quarantines it.
//  * Failures during the detection window surface to callers as
//    ShardUnavailable — the availability cost of discovering a dead shard
//    without an oracle. It is bounded by quarantine_after + one probe per
//    cooldown, so fleet availability stays >= (N-1)/N through an outage.
//  * fenced is unused at shard granularity (fence_after_quarantines = 0):
//    a dead replica is presumed restartable, so it probes forever.
//
// Overflow spill: when the elected shard's bounded queue refuses the
// hand-off (backlog, not death), the request spills to the least-loaded
// eligible shard (by in-flight requests) instead of failing — load peaks
// shed sideways, only genuine fleet saturation blocks the caller.
//
// Chaos: an optional fault::ChaosInjector models shard loss. The router
// consults ChaosInjector::shard_down() at hand-off time; a killed shard
// refuses exactly like a crashed process behind a load balancer, and the
// breaker machinery above learns of the death purely from those refusals.
//
// Metrics: every shard keeps its own MetricsRegistry (no cross-shard
// cache-line traffic on the hot path); snapshot() merges the per-shard
// snapshots bucket-by-bucket via runtime::merge_snapshots, so fleet-wide
// reports (serve-bench, fleet-bench) read exactly like single-replica
// ones, plus fleet-level routing counters.
//
// Threading: submit() is safe from any number of client threads. Routing
// state (the shard breaker) is mutex-guarded; hand-offs happen outside
// the lock, so a shard's bounded-queue backpressure never blocks routing
// decisions for other shards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/chaos.h"
#include "polygraph/system.h"
#include "runtime/serving_runtime.h"

namespace pgmr::fleet {

/// The error a submission raises when no shard could take it: either the
/// routed shard is down and not yet quarantined (detection window / probe)
/// or no shard is eligible at all.
class ShardUnavailable : public std::runtime_error {
 public:
  explicit ShardUnavailable(const std::string& what)
      : std::runtime_error(what) {}
};

/// Fleet knobs. `runtime` is the per-shard pipeline template — every
/// replica gets its own copy (own worker pool, scrubber, replacer).
struct FleetOptions {
  std::size_t shards = 2;              ///< replica count (clamped >= 1)
  runtime::RuntimeOptions runtime;     ///< per-shard ServingRuntime knobs
  int shard_quarantine_after = 3;      ///< refused hand-offs to quarantine
  std::chrono::milliseconds shard_cooldown{250};  ///< half-open delay
  /// Optional shard-loss chaos switch (see header comment). The router
  /// only ever reads shard_down() / bumps refusal counters.
  std::shared_ptr<fault::ChaosInjector> chaos;
};

/// Fleet-wide observability: merged runtime metrics + routing counters.
struct FleetSnapshot {
  runtime::MetricsSnapshot merged;               ///< cross-shard aggregate
  std::vector<runtime::MetricsSnapshot> shards;  ///< per-shard views
  std::vector<runtime::MemberState> shard_states;
  std::vector<std::uint64_t> routed;          ///< accepted hand-offs
  std::vector<std::uint64_t> shard_faults;    ///< refused hand-offs
  std::vector<std::uint64_t> shard_quarantines;  ///< breaker trips
  std::uint64_t spills = 0;       ///< overflow re-routes to another shard
  std::uint64_t probes = 0;       ///< hand-offs that were half-open probes
  std::uint64_t unavailable = 0;  ///< submissions failed ShardUnavailable

  /// Multi-line fleet report: the merged snapshot followed by per-shard
  /// routing/health lines.
  std::string to_string() const;
};

class FleetRouter {
 public:
  /// Builds shard `s`'s system — called once per shard at construction.
  /// Shards must be *equivalent* (same composition, same thresholds) for
  /// verdicts to be shard-independent; the factory owns that guarantee.
  using SystemFactory =
      std::function<polygraph::PolygraphSystem(std::size_t shard)>;

  FleetRouter(const SystemFactory& factory, FleetOptions options);

  /// shutdown()s every shard (each drains its accepted requests).
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  std::size_t shards() const { return shards_.size(); }
  const FleetOptions& options() const { return options_; }

  /// Routes one [1, C, H, W] request by `key` (a stable request/session
  /// identifier — equal keys ride the same shard while it stays healthy).
  /// Returns the shard's verdict future. Throws ShardUnavailable when the
  /// elected shard is down (detection window) or the whole fleet is; other
  /// submit errors propagate from the shard runtime.
  std::future<polygraph::Verdict> submit(
      Tensor image, std::uint64_t key,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt);

  /// Advisory routing preview: the shard `key` elects against the current
  /// non-quarantined membership (no probe transitions, no submission).
  /// Tests and ops tooling use it; the answer can be stale by the time a
  /// real submit runs.
  std::size_t shard_for(std::uint64_t key) const;

  /// Stops accepting requests and shuts every shard down (each drains).
  /// Idempotent; called by the destructor.
  void shutdown();

  /// Direct shard access (campaigns corrupt weights, tests read health).
  runtime::ServingRuntime& shard(std::size_t i) { return *shards_.at(i); }

  /// Live shard circuit-breaker state (thread-safe reads).
  const runtime::MemberHealth& shard_health() const { return health_; }

  /// Merged metrics + routing counters (see FleetSnapshot).
  FleetSnapshot snapshot() const;

 private:
  /// Rendezvous winner for `key` among shards where eligible[s] is true;
  /// shards() when none is.
  std::size_t rendezvous(std::uint64_t key,
                         const std::vector<bool>& eligible) const;

  /// Records a refused hand-off under the router lock; returns the shard's
  /// resulting breaker state for the caller's error message.
  runtime::MemberState record_refusal(
      std::size_t shard, std::chrono::steady_clock::time_point now);

  FleetOptions options_;
  std::vector<std::unique_ptr<runtime::ServingRuntime>> shards_;
  /// The shard-granularity circuit breaker (one "member" per shard) and
  /// the mutex serializing its batcher-only API across client threads.
  mutable std::mutex mutex_;
  runtime::MemberHealth health_;
  std::atomic<bool> stopped_{false};
  // Fleet-level routing counters (relaxed; snapshot() reads them).
  std::vector<std::atomic<std::uint64_t>> routed_;
  std::vector<std::atomic<std::uint64_t>> shard_faults_;
  std::vector<std::atomic<std::uint64_t>> shard_quarantines_;
  std::atomic<std::uint64_t> spills_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> unavailable_{0};
};

}  // namespace pgmr::fleet
