#include "polygraph/system.h"

#include <stdexcept>

namespace pgmr::polygraph {

PolygraphSystem::PolygraphSystem(mr::Ensemble ensemble)
    : ensemble_(std::move(ensemble)) {
  if (ensemble_.size() == 0) {
    throw std::invalid_argument("PolygraphSystem: empty ensemble");
  }
  thresholds_ = mr::Thresholds{0.0F, 1};
}

mr::SweepPoint PolygraphSystem::profile(
    const Tensor& val_images, const std::vector<std::int64_t>& val_labels,
    double tp_floor) {
  const mr::MemberVotes votes = ensemble_.member_votes(val_images);
  const auto points =
      mr::sweep_thresholds(votes, val_labels, mr::default_conf_grid());
  const auto frontier = mr::pareto_frontier(points);
  const auto chosen = mr::select_by_tp_floor(frontier, tp_floor);
  if (!chosen) {
    throw std::runtime_error("PolygraphSystem::profile: empty frontier");
  }
  thresholds_ = chosen->thresholds;
  return *chosen;
}

void PolygraphSystem::enable_staged(
    const Tensor& val_images, const std::vector<std::int64_t>& val_labels) {
  const mr::MemberVotes votes = ensemble_.member_votes(val_images);
  priority_ = mr::contribution_priority(votes, val_labels);
}

const std::vector<std::size_t>& PolygraphSystem::priority() const {
  if (!priority_) {
    throw std::logic_error("PolygraphSystem: staged mode not enabled");
  }
  return *priority_;
}

Verdict PolygraphSystem::predict(const Tensor& image) {
  if (image.shape().rank() != 4 || image.shape()[0] != 1) {
    throw std::invalid_argument("PolygraphSystem::predict: expected [1,C,H,W]");
  }
  Verdict v;
  if (priority_) {
    // RADE path: members run lazily in priority order.
    std::vector<mr::Vote> ordered;
    ordered.reserve(ensemble_.size());
    for (std::size_t m : *priority_) {
      const Tensor probs = ensemble_.member(m).probabilities(image);
      ordered.push_back({probs.argmax_row(0), probs.max_row(0)});
    }
    // staged_decide only *charges* for the activated prefix; computing the
    // full vote list here keeps predict() simple while evaluate_staged()
    // models the cost.
    const mr::StagedDecision sd = mr::staged_decide(ordered, thresholds_);
    v.label = sd.decision.label;
    v.reliable = sd.decision.reliable;
    v.votes = sd.decision.votes_for_label;
    v.activated = sd.activated;
    return v;
  }
  std::vector<mr::Vote> votes;
  votes.reserve(ensemble_.size());
  for (std::size_t m = 0; m < ensemble_.size(); ++m) {
    const Tensor probs = ensemble_.member(m).probabilities(image);
    votes.push_back({probs.argmax_row(0), probs.max_row(0)});
  }
  const mr::Decision d = mr::decide(votes, thresholds_);
  v.label = d.label;
  v.reliable = d.reliable;
  v.votes = d.votes_for_label;
  v.activated = static_cast<int>(ensemble_.size());
  return v;
}

mr::Outcome PolygraphSystem::evaluate(
    const Tensor& images, const std::vector<std::int64_t>& labels) {
  const mr::MemberVotes votes = ensemble_.member_votes(images);
  return mr::evaluate(votes, labels, thresholds_);
}

mr::StagedOutcome PolygraphSystem::evaluate_staged(
    const Tensor& images, const std::vector<std::int64_t>& labels) {
  if (!priority_) {
    throw std::logic_error(
        "PolygraphSystem::evaluate_staged: call enable_staged first");
  }
  const mr::MemberVotes votes = ensemble_.member_votes(images);
  return mr::evaluate_staged(votes, labels, *priority_, thresholds_);
}

}  // namespace pgmr::polygraph
