#include "polygraph/system.h"

#include <stdexcept>

namespace pgmr::polygraph {

PolygraphSystem::PolygraphSystem(mr::Ensemble ensemble)
    : ensemble_(std::move(ensemble)) {
  if (ensemble_.size() == 0) {
    throw std::invalid_argument("PolygraphSystem: empty ensemble");
  }
  thresholds_ = mr::Thresholds{0.0F, 1};
}

void PolygraphSystem::apply_protection(
    const std::vector<nn::Protection>& levels) {
  if (levels.size() != ensemble_.size()) {
    throw std::invalid_argument(
        "PolygraphSystem::apply_protection: plan size != ensemble size");
  }
  for (std::size_t m = 0; m < ensemble_.size(); ++m) {
    ensemble_.member(m).set_protection(levels[m]);
  }
}

std::vector<nn::Protection> PolygraphSystem::protection_levels() const {
  std::vector<nn::Protection> levels;
  levels.reserve(ensemble_.size());
  for (std::size_t m = 0; m < ensemble_.size(); ++m) {
    levels.push_back(ensemble_.member(m).protection());
  }
  return levels;
}

mr::SweepPoint PolygraphSystem::profile(
    const Tensor& val_images, const std::vector<std::int64_t>& val_labels,
    double tp_floor) {
  const mr::MemberVotes votes = ensemble_.member_votes(val_images);
  const auto points =
      mr::sweep_thresholds(votes, val_labels, mr::default_conf_grid());
  const auto frontier = mr::pareto_frontier(points);
  const auto chosen = mr::select_by_tp_floor(frontier, tp_floor);
  if (!chosen) {
    throw std::runtime_error("PolygraphSystem::profile: empty frontier");
  }
  thresholds_ = chosen->thresholds;
  return *chosen;
}

void PolygraphSystem::enable_staged(
    const Tensor& val_images, const std::vector<std::int64_t>& val_labels) {
  const mr::MemberVotes votes = ensemble_.member_votes(val_images);
  priority_ = mr::contribution_priority(votes, val_labels);
}

const std::vector<std::size_t>& PolygraphSystem::priority() const {
  if (!priority_) {
    throw std::logic_error("PolygraphSystem: staged mode not enabled");
  }
  return *priority_;
}

Verdict PolygraphSystem::predict(const Tensor& image) {
  if (image.shape().rank() != 4 || image.shape()[0] != 1) {
    throw std::invalid_argument("PolygraphSystem::predict: expected [1,C,H,W]");
  }
  return predict_batch(image).front();
}

std::vector<Verdict> PolygraphSystem::predict_batch(const Tensor& images,
                                                    const mr::Executor& exec) {
  if (images.shape().rank() != 4 || images.shape()[0] < 1) {
    throw std::invalid_argument(
        "PolygraphSystem::predict_batch: expected non-empty [N,C,H,W]");
  }
  const mr::MemberVotes votes = ensemble_.member_votes(images, exec);
  const std::int64_t batch = images.shape()[0];
  std::vector<Verdict> out(static_cast<std::size_t>(batch));
  for (std::int64_t n = 0; n < batch; ++n) {
    out[static_cast<std::size_t>(n)] = full_quorum_verdict(votes, n);
  }
  return out;
}

Verdict PolygraphSystem::full_quorum_verdict(const mr::MemberVotes& votes,
                                             std::int64_t n) const {
  Verdict v;
  if (priority_) {
    // RADE: staged_decide only *charges* for the activated prefix; every
    // member's votes are available since the whole batch already ran.
    std::vector<mr::Vote> ordered;
    ordered.reserve(ensemble_.size());
    for (std::size_t m : *priority_) {
      ordered.push_back(votes[m][static_cast<std::size_t>(n)]);
    }
    const mr::StagedDecision sd = mr::staged_decide(ordered, thresholds_);
    v.label = sd.decision.label;
    v.reliable = sd.decision.reliable;
    v.votes = sd.decision.votes_for_label;
    v.activated = sd.activated;
  } else {
    const mr::Decision d = mr::decide(mr::sample_votes(votes, n), thresholds_);
    v.label = d.label;
    v.reliable = d.reliable;
    v.votes = d.votes_for_label;
    v.activated = static_cast<int>(ensemble_.size());
  }
  return v;
}

BatchReport PolygraphSystem::predict_batch_resilient(
    const Tensor& images, const std::vector<bool>& run_mask,
    const mr::Executor& exec) {
  if (images.shape().rank() != 4 || images.shape()[0] < 1) {
    throw std::invalid_argument(
        "PolygraphSystem::predict_batch_resilient: expected non-empty "
        "[N,C,H,W]");
  }
  const std::vector<bool>* mask = run_mask.empty() ? nullptr : &run_mask;
  std::vector<mr::MemberOutcome> outcomes =
      ensemble_.member_outcomes(images, exec, mask);

  BatchReport report;
  report.member_faults.reserve(outcomes.size());
  std::vector<std::size_t> usable;
  bool any_exception = false;
  for (std::size_t m = 0; m < outcomes.size(); ++m) {
    report.member_faults.push_back(outcomes[m].fault);
    if (outcomes[m].ok()) usable.push_back(m);
    any_exception |= outcomes[m].fault == mr::MemberFault::exception;
  }
  report.active = static_cast<int>(usable.size());
  const int total = static_cast<int>(ensemble_.size());
  report.degraded = report.active < total;

  const std::int64_t batch = images.shape()[0];
  report.verdicts.resize(static_cast<std::size_t>(batch));

  if (usable.empty()) {
    if (any_exception) {
      // Whole-ensemble failure: indistinguishable from a poison input, so
      // propagate instead of answering (and instead of quarantining every
      // member over one request).
      for (const mr::MemberOutcome& o : outcomes) {
        if (o.error) std::rethrow_exception(o.error);
      }
    }
    // All outputs were non-finite/corrupt: serve honest "don't know"s.
    for (Verdict& v : report.verdicts) {
      v.degraded = true;
    }
    return report;
  }

  if (report.active == total) {
    // Zero faults, full mask: exactly the predict_batch decision path.
    std::vector<Tensor> probs;
    probs.reserve(outcomes.size());
    for (mr::MemberOutcome& o : outcomes) {
      probs.push_back(std::move(o.probabilities));
    }
    const mr::MemberVotes votes = mr::votes_from_members(probs);
    for (std::int64_t n = 0; n < batch; ++n) {
      report.verdicts[static_cast<std::size_t>(n)] =
          full_quorum_verdict(votes, n);
    }
    return report;
  }

  // Degraded quorum: decide over the survivors only, with Thr_Freq
  // re-normalized against the active member count. RADE staging is
  // suspended while degraded — its priority order is meaningless with
  // holes in the ensemble, and every survivor already ran anyway.
  std::vector<Tensor> probs;
  probs.reserve(usable.size());
  for (std::size_t m : usable) {
    probs.push_back(std::move(outcomes[m].probabilities));
  }
  const mr::MemberVotes votes = mr::votes_from_members(probs);
  for (std::int64_t n = 0; n < batch; ++n) {
    const mr::Decision d =
        mr::decide(mr::sample_votes(votes, n), thresholds_, report.active,
                   total);
    Verdict& v = report.verdicts[static_cast<std::size_t>(n)];
    v.label = d.label;
    v.reliable = d.reliable;
    v.votes = d.votes_for_label;
    v.activated = report.active;
    v.degraded = true;
  }
  return report;
}

mr::Outcome PolygraphSystem::evaluate(const Tensor& images,
                                      const std::vector<std::int64_t>& labels,
                                      const mr::Executor& exec) {
  const mr::MemberVotes votes = ensemble_.member_votes(images, exec);
  return mr::evaluate(votes, labels, thresholds_);
}

mr::StagedOutcome PolygraphSystem::evaluate_staged(
    const Tensor& images, const std::vector<std::int64_t>& labels,
    const mr::Executor& exec) {
  if (!priority_) {
    throw std::logic_error(
        "PolygraphSystem::evaluate_staged: call enable_staged first");
  }
  const mr::MemberVotes votes = ensemble_.member_votes(images, exec);
  return mr::evaluate_staged(votes, labels, *priority_, thresholds_);
}

}  // namespace pgmr::polygraph
