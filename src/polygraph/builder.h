// System-design procedure (paper Section III-G): compare candidate
// preprocessors by confidence-delta profiles, then greedily assemble the
// member set that minimizes FP at a TP floor on the validation split.
#pragma once

#include <string>
#include <vector>

#include "mr/pareto.h"
#include "zoo/zoo.h"

namespace pgmr::polygraph {

/// Per-input confidence deltas of a candidate member vs. the baseline,
/// split by whether the baseline got the input right (paper Fig 8).
/// delta = candidate top-1 confidence - baseline top-1 confidence; a good
/// diversity source skews negative on the wrong set (it hesitates where
/// the baseline confidently errs) and non-negative on the correct set.
struct DeltaProfile {
  std::string candidate;
  std::vector<float> wrong_deltas;    ///< inputs the baseline mispredicted
  std::vector<float> correct_deltas;  ///< inputs the baseline got right

  /// Fraction of the given set with delta < 0.
  static double negative_fraction(const std::vector<float>& deltas);

  /// Scalar ranking score: P(delta<0 | wrong) - P(delta<0 | correct).
  /// Higher is better (hesitates on errors without losing correct votes).
  double score() const;
};

/// Computes the delta profile of `candidate_probs` against
/// `baseline_probs` ([N, C] each) on a labeled set.
DeltaProfile confidence_deltas(const std::string& candidate,
                               const Tensor& baseline_probs,
                               const Tensor& candidate_probs,
                               const std::vector<std::int64_t>& labels);

/// Step 1 of the design procedure: rank every preprocessor in `pool` by
/// DeltaProfile::score() on the benchmark's validation split, descending.
std::vector<DeltaProfile> rank_preprocessors(
    const zoo::Benchmark& bm, const std::vector<std::string>& pool);

/// Result of the greedy member-selection loop.
struct GreedyResult {
  std::vector<std::string> selected;      ///< member specs, "ORG" first
  mr::SweepPoint operating_point;         ///< chosen thresholds + val rates
  double baseline_accuracy = 0.0;         ///< ORG accuracy on validation
  std::vector<double> fp_trajectory;      ///< best FP after each addition
};

/// Step 2: starting from ORG, repeatedly add the candidate whose inclusion
/// minimizes the Pareto-selected FP rate (at tp_floor = baseline accuracy)
/// until `max_members` networks are selected.
GreedyResult greedy_build(const zoo::Benchmark& bm,
                          const std::vector<std::string>& pool,
                          int max_members);

/// Vote-level core of greedy_build, usable when candidate validation votes
/// are already in hand (benches precompute them to avoid re-inference).
/// `specs[0]` must be the baseline member ("ORG"); `candidate_votes[i]`
/// holds per-sample validation votes for specs[i].
GreedyResult greedy_select(
    const std::vector<std::string>& specs,
    const std::vector<std::vector<mr::Vote>>& candidate_votes,
    const std::vector<std::int64_t>& val_labels, int max_members);

}  // namespace pgmr::polygraph
