// SystemConfig: a complete, human-editable description of a deployed
// PolygraphMR system — benchmark, member preprocessors, thresholds,
// precision, staging — with text serialization so designs produced by the
// greedy builder can be shipped, versioned and re-loaded.
#pragma once

#include <string>
#include <vector>

#include "mr/decision.h"
#include "polygraph/system.h"
#include "zoo/zoo.h"

namespace pgmr::polygraph {

/// Everything needed to reconstruct a PolygraphSystem from the zoo.
struct SystemConfig {
  std::string benchmark;                ///< zoo benchmark id
  std::vector<std::string> members;     ///< preprocessor specs, "ORG" first
  mr::Thresholds thresholds{0.0F, 1};
  int bits = 32;                        ///< member precision (RAMR)
  bool staged = false;                  ///< enable RADE at load time
};

/// Serializes `config` as "key = value" lines. Throws on I/O failure.
void save_config(const SystemConfig& config, const std::string& path);

/// Parses a file written by save_config (unknown keys rejected, comments
/// starting with '#' and blank lines ignored). Throws std::runtime_error
/// on malformed input.
SystemConfig load_config(const std::string& path);

/// Builds the runnable system: loads/trains members from the zoo cache,
/// installs thresholds, and (when config.staged) derives the RADE priority
/// from the benchmark's validation split.
PolygraphSystem make_system(const SystemConfig& config);

}  // namespace pgmr::polygraph
