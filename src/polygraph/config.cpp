#include "polygraph/config.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pgmr::polygraph {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

void save_config(const SystemConfig& config, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_config: cannot open " + path);
  out << "# PolygraphMR system configuration\n";
  out << "benchmark = " << config.benchmark << "\n";
  out << "members = ";
  for (std::size_t i = 0; i < config.members.size(); ++i) {
    if (i) out << ", ";
    out << config.members[i];
  }
  out << "\n";
  out << "conf = " << config.thresholds.conf << "\n";
  out << "freq = " << config.thresholds.freq << "\n";
  out << "bits = " << config.bits << "\n";
  out << "staged = " << (config.staged ? 1 : 0) << "\n";
  if (!out) throw std::runtime_error("save_config: write failed for " + path);
}

SystemConfig load_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_config: cannot open " + path);
  SystemConfig config;
  bool saw_benchmark = false, saw_members = false;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("load_config: missing '=' at line " +
                               std::to_string(line_no));
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key == "benchmark") {
      config.benchmark = value;
      saw_benchmark = true;
    } else if (key == "members") {
      config.members = split_csv(value);
      saw_members = true;
    } else if (key == "conf") {
      config.thresholds.conf = std::stof(value);
    } else if (key == "freq") {
      config.thresholds.freq = std::stoi(value);
    } else if (key == "bits") {
      config.bits = std::stoi(value);
    } else if (key == "staged") {
      config.staged = value == "1" || value == "true";
    } else {
      throw std::runtime_error("load_config: unknown key '" + key +
                               "' at line " + std::to_string(line_no));
    }
  }
  if (!saw_benchmark || !saw_members || config.members.empty()) {
    throw std::runtime_error(
        "load_config: 'benchmark' and non-empty 'members' are required");
  }
  if (config.thresholds.freq < 1 ||
      config.thresholds.freq > static_cast<int>(config.members.size())) {
    throw std::runtime_error("load_config: freq out of range");
  }
  if (config.bits < 9 || config.bits > 32) {
    throw std::runtime_error("load_config: bits out of range");
  }
  return config;
}

PolygraphSystem make_system(const SystemConfig& config) {
  const zoo::Benchmark& bm = zoo::find_benchmark(config.benchmark);
  PolygraphSystem system(zoo::make_ensemble(bm, config.members, config.bits));
  system.set_thresholds(config.thresholds);
  if (config.staged) {
    const data::DatasetSplits splits = zoo::benchmark_splits(bm);
    system.enable_staged(splits.val.images, splits.val.labels);
  }
  return system;
}

}  // namespace pgmr::polygraph
