#include "polygraph/builder.h"

#include <algorithm>
#include <stdexcept>

#include "prep/preprocessor.h"

namespace pgmr::polygraph {

double DeltaProfile::negative_fraction(const std::vector<float>& deltas) {
  if (deltas.empty()) return 0.0;
  std::int64_t neg = 0;
  for (float d : deltas) {
    if (d < 0.0F) ++neg;
  }
  return static_cast<double>(neg) / static_cast<double>(deltas.size());
}

double DeltaProfile::score() const {
  return negative_fraction(wrong_deltas) - negative_fraction(correct_deltas);
}

DeltaProfile confidence_deltas(const std::string& candidate,
                               const Tensor& baseline_probs,
                               const Tensor& candidate_probs,
                               const std::vector<std::int64_t>& labels) {
  if (baseline_probs.shape() != candidate_probs.shape()) {
    throw std::invalid_argument("confidence_deltas: shape mismatch");
  }
  if (static_cast<std::int64_t>(labels.size()) != baseline_probs.shape()[0]) {
    throw std::invalid_argument("confidence_deltas: label count mismatch");
  }
  DeltaProfile profile;
  profile.candidate = candidate;
  for (std::int64_t n = 0; n < baseline_probs.shape()[0]; ++n) {
    const float delta =
        candidate_probs.max_row(n) - baseline_probs.max_row(n);
    const bool baseline_correct =
        baseline_probs.argmax_row(n) == labels[static_cast<std::size_t>(n)];
    (baseline_correct ? profile.correct_deltas : profile.wrong_deltas)
        .push_back(delta);
  }
  return profile;
}

std::vector<DeltaProfile> rank_preprocessors(
    const zoo::Benchmark& bm, const std::vector<std::string>& pool) {
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  nn::Network baseline = zoo::trained_network(bm, "ORG");
  const Tensor baseline_probs =
      zoo::probabilities_on(baseline, splits.val);

  std::vector<DeltaProfile> profiles;
  profiles.reserve(pool.size());
  for (const std::string& spec : pool) {
    nn::Network candidate = zoo::trained_network(bm, spec);
    data::Dataset val = splits.val;
    val.images = prep::make_preprocessor(spec)->apply(val.images);
    const Tensor candidate_probs = zoo::probabilities_on(candidate, val);
    profiles.push_back(
        confidence_deltas(spec, baseline_probs, candidate_probs,
                          splits.val.labels));
  }
  std::stable_sort(profiles.begin(), profiles.end(),
                   [](const DeltaProfile& a, const DeltaProfile& b) {
                     return a.score() > b.score();
                   });
  return profiles;
}

GreedyResult greedy_build(const zoo::Benchmark& bm,
                          const std::vector<std::string>& pool,
                          int max_members) {
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);

  // Precompute every candidate's validation votes once; the greedy loop is
  // then pure vote bookkeeping.
  std::vector<std::string> specs = {"ORG"};
  specs.insert(specs.end(), pool.begin(), pool.end());
  std::vector<std::vector<mr::Vote>> all_votes;
  all_votes.reserve(specs.size());
  for (const std::string& spec : specs) {
    nn::Network net = zoo::trained_network(bm, spec);
    data::Dataset val = splits.val;
    val.images = prep::make_preprocessor(spec)->apply(val.images);
    all_votes.push_back(
        mr::votes_from_probabilities(zoo::probabilities_on(net, val)));
  }
  return greedy_select(specs, all_votes, splits.val.labels, max_members);
}

GreedyResult greedy_select(
    const std::vector<std::string>& specs,
    const std::vector<std::vector<mr::Vote>>& all_votes,
    const std::vector<std::int64_t>& val_labels, int max_members) {
  if (max_members < 2) {
    throw std::invalid_argument("greedy_select: need at least two members");
  }
  if (specs.empty() || specs.size() != all_votes.size()) {
    throw std::invalid_argument("greedy_select: specs/votes mismatch");
  }

  // TP floor: the baseline network's validation accuracy (the paper fixes
  // normalized TP at 100 % of baseline).
  std::int64_t baseline_correct = 0;
  for (std::size_t n = 0; n < val_labels.size(); ++n) {
    if (all_votes[0][n].label == val_labels[n]) ++baseline_correct;
  }
  const double tp_floor = static_cast<double>(baseline_correct) /
                          static_cast<double>(val_labels.size());

  auto evaluate_selection =
      [&](const std::vector<std::size_t>& member_idx) -> mr::SweepPoint {
    mr::MemberVotes votes;
    for (std::size_t i : member_idx) votes.push_back(all_votes[i]);
    const auto points =
        mr::sweep_thresholds(votes, val_labels, mr::default_conf_grid());
    const auto frontier = mr::pareto_frontier(points);
    const auto chosen = mr::select_by_tp_floor(frontier, tp_floor);
    if (!chosen) throw std::runtime_error("greedy_select: empty frontier");
    return *chosen;
  };

  GreedyResult result;
  result.baseline_accuracy = tp_floor;
  std::vector<std::size_t> selected_idx = {0};
  result.selected = {"ORG"};
  result.operating_point = evaluate_selection(selected_idx);
  result.fp_trajectory.push_back(result.operating_point.fp_rate);

  std::vector<bool> used(specs.size(), false);
  used[0] = true;
  while (static_cast<int>(selected_idx.size()) < max_members) {
    double best_fp = 2.0;
    std::size_t best_i = 0;
    mr::SweepPoint best_point;
    for (std::size_t i = 1; i < specs.size(); ++i) {
      if (used[i]) continue;
      std::vector<std::size_t> trial = selected_idx;
      trial.push_back(i);
      const mr::SweepPoint point = evaluate_selection(trial);
      if (point.fp_rate < best_fp ||
          (point.fp_rate == best_fp && point.tp_rate > best_point.tp_rate)) {
        best_fp = point.fp_rate;
        best_i = i;
        best_point = point;
      }
    }
    if (best_i == 0) break;  // no candidates left
    used[best_i] = true;
    selected_idx.push_back(best_i);
    result.selected.push_back(specs[best_i]);
    result.operating_point = best_point;
    result.fp_trajectory.push_back(best_point.fp_rate);
  }
  return result;
}

}  // namespace pgmr::polygraph
