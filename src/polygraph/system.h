// PolygraphSystem: the paper's complete three-layer design behind one API.
//
//   Layer 1  preprocessors   (prep::Preprocessor, one per member)
//   Layer 2  heterogeneous MR (mr::Ensemble of trained CNNs, optionally
//                              precision-reduced — RAMR)
//   Layer 3  decision engine  (mr::decide with Thr_Conf / Thr_Freq,
//                              optionally staged — RADE)
//
// Typical use: build (or load) an ensemble, call profile() on the
// validation split to pick thresholds from the Pareto frontier, optionally
// enable_staged() for RADE, then predict()/evaluate() on live inputs.
#pragma once

#include <optional>

#include "mr/ensemble.h"
#include "mr/pareto.h"
#include "mr/rade.h"

namespace pgmr::polygraph {

/// A reliability-annotated prediction for one input.
struct Verdict {
  std::int64_t label = -1;
  bool reliable = false;
  int votes = 0;      ///< acceptable votes behind `label`
  int activated = 0;  ///< members actually run (== size unless staged)
  /// True when the verdict was reached without full quorum — some members
  /// were quarantined or faulted, and Thr_Freq was re-normalized against
  /// the survivors. A degraded TP is honest but weaker than a full-quorum
  /// TP; callers who need the distinction read this flag.
  bool degraded = false;
};

/// Result of one fault-isolated batch: verdicts plus per-member fault
/// classes, so the serving runtime can feed its health tracker.
struct BatchReport {
  std::vector<Verdict> verdicts;
  std::vector<mr::MemberFault> member_faults;  ///< one entry per member
  int active = 0;  ///< members that contributed usable probabilities
  bool degraded = false;  ///< active < ensemble size
};

/// The assembled PolygraphMR system.
class PolygraphSystem {
 public:
  /// Takes ownership of a configured ensemble. Thresholds default to the
  /// most permissive setting until profile()/set_thresholds is called.
  explicit PolygraphSystem(mr::Ensemble ensemble);

  mr::Ensemble& ensemble() { return ensemble_; }
  const mr::Thresholds& thresholds() const { return thresholds_; }
  void set_thresholds(const mr::Thresholds& t) { thresholds_ = t; }
  bool staged() const { return priority_.has_value(); }

  /// Applies a per-member ABFT protection plan (slot order — typically the
  /// output of mr::select_protection). set_protection re-blesses each
  /// member's checksums, so call only while the weights are good and no
  /// inference is in flight. Throws std::invalid_argument on size mismatch.
  void apply_protection(const std::vector<nn::Protection>& levels);

  /// The current per-member protection levels, in slot order.
  std::vector<nn::Protection> protection_levels() const;

  /// Offline profiling stage (Section III-E): sweeps (Thr_Conf, Thr_Freq)
  /// on the validation set, installs the Pareto point with minimum FP
  /// subject to tp_rate >= tp_floor, and returns it.
  mr::SweepPoint profile(const Tensor& val_images,
                         const std::vector<std::int64_t>& val_labels,
                         double tp_floor);

  /// Enables RADE staged activation, deriving the member priority order
  /// from per-member correctness on the validation set (Section III-F).
  void enable_staged(const Tensor& val_images,
                     const std::vector<std::int64_t>& val_labels);

  /// Disables staged activation (every member runs for every input).
  void disable_staged() { priority_.reset(); }

  /// Member priority order (only meaningful after enable_staged).
  const std::vector<std::size_t>& priority() const;

  /// Classifies one [1, C, H, W] input.
  Verdict predict(const Tensor& image);

  /// Classifies a whole [N, C, H, W] batch, returning one Verdict per
  /// sample. Ensemble members are dispatched through `exec` (the serving
  /// runtime passes its thread pool; the default runs them inline), and the
  /// verdicts are identical regardless of executor. Honours staged (RADE)
  /// mode: every member's probabilities are computed for the batch, but
  /// each verdict only charges for (and reports) the activated prefix.
  std::vector<Verdict> predict_batch(
      const Tensor& images, const mr::Executor& exec = mr::serial_executor());

  /// Fault-isolated predict_batch: every member runs in its own fault
  /// domain (exceptions, non-finite softmax and ABFT checksum failures are
  /// captured per member, cf. mr::MemberOutcome), `run_mask` (empty = all)
  /// skips quarantined members, and verdicts fall back to a degraded
  /// quorum — Thr_Freq re-normalized against the surviving member count —
  /// whenever any member is down. With a full mask and zero faults the
  /// verdicts are bit-identical to predict_batch (RADE staging included).
  /// When *no* member produces output and at least one threw, the first
  /// exception is rethrown: a whole-ensemble failure is indistinguishable
  /// from a poison input, and quarantining everyone on it would be wrong.
  BatchReport predict_batch_resilient(
      const Tensor& images, const std::vector<bool>& run_mask = {},
      const mr::Executor& exec = mr::serial_executor());

  /// Full-activation evaluation over a labeled set.
  mr::Outcome evaluate(const Tensor& images,
                       const std::vector<std::int64_t>& labels,
                       const mr::Executor& exec = mr::serial_executor());

  /// Staged (RADE) evaluation; also reports the activation histogram.
  /// Requires enable_staged() to have been called.
  mr::StagedOutcome evaluate_staged(
      const Tensor& images, const std::vector<std::int64_t>& labels,
      const mr::Executor& exec = mr::serial_executor());

 private:
  /// The full-quorum per-sample decision (staged or flat), shared by
  /// predict_batch and the zero-fault path of predict_batch_resilient so
  /// the two are bit-identical by construction.
  Verdict full_quorum_verdict(const mr::MemberVotes& votes,
                              std::int64_t n) const;

  mr::Ensemble ensemble_;
  mr::Thresholds thresholds_;
  std::optional<std::vector<std::size_t>> priority_;
};

}  // namespace pgmr::polygraph
