// PolygraphSystem: the paper's complete three-layer design behind one API.
//
//   Layer 1  preprocessors   (prep::Preprocessor, one per member)
//   Layer 2  heterogeneous MR (mr::Ensemble of trained CNNs, optionally
//                              precision-reduced — RAMR)
//   Layer 3  decision engine  (mr::decide with Thr_Conf / Thr_Freq,
//                              optionally staged — RADE)
//
// Typical use: build (or load) an ensemble, call profile() on the
// validation split to pick thresholds from the Pareto frontier, optionally
// enable_staged() for RADE, then predict()/evaluate() on live inputs.
#pragma once

#include <optional>

#include "mr/ensemble.h"
#include "mr/pareto.h"
#include "mr/rade.h"

namespace pgmr::polygraph {

/// A reliability-annotated prediction for one input.
struct Verdict {
  std::int64_t label = -1;
  bool reliable = false;
  int votes = 0;      ///< acceptable votes behind `label`
  int activated = 0;  ///< members actually run (== size unless staged)
};

/// The assembled PolygraphMR system.
class PolygraphSystem {
 public:
  /// Takes ownership of a configured ensemble. Thresholds default to the
  /// most permissive setting until profile()/set_thresholds is called.
  explicit PolygraphSystem(mr::Ensemble ensemble);

  mr::Ensemble& ensemble() { return ensemble_; }
  const mr::Thresholds& thresholds() const { return thresholds_; }
  void set_thresholds(const mr::Thresholds& t) { thresholds_ = t; }
  bool staged() const { return priority_.has_value(); }

  /// Offline profiling stage (Section III-E): sweeps (Thr_Conf, Thr_Freq)
  /// on the validation set, installs the Pareto point with minimum FP
  /// subject to tp_rate >= tp_floor, and returns it.
  mr::SweepPoint profile(const Tensor& val_images,
                         const std::vector<std::int64_t>& val_labels,
                         double tp_floor);

  /// Enables RADE staged activation, deriving the member priority order
  /// from per-member correctness on the validation set (Section III-F).
  void enable_staged(const Tensor& val_images,
                     const std::vector<std::int64_t>& val_labels);

  /// Disables staged activation (every member runs for every input).
  void disable_staged() { priority_.reset(); }

  /// Member priority order (only meaningful after enable_staged).
  const std::vector<std::size_t>& priority() const;

  /// Classifies one [1, C, H, W] input.
  Verdict predict(const Tensor& image);

  /// Classifies a whole [N, C, H, W] batch, returning one Verdict per
  /// sample. Ensemble members are dispatched through `exec` (the serving
  /// runtime passes its thread pool; the default runs them inline), and the
  /// verdicts are identical regardless of executor. Honours staged (RADE)
  /// mode: every member's probabilities are computed for the batch, but
  /// each verdict only charges for (and reports) the activated prefix.
  std::vector<Verdict> predict_batch(
      const Tensor& images, const mr::Executor& exec = mr::serial_executor());

  /// Full-activation evaluation over a labeled set.
  mr::Outcome evaluate(const Tensor& images,
                       const std::vector<std::int64_t>& labels,
                       const mr::Executor& exec = mr::serial_executor());

  /// Staged (RADE) evaluation; also reports the activation histogram.
  /// Requires enable_staged() to have been called.
  mr::StagedOutcome evaluate_staged(
      const Tensor& images, const std::vector<std::int64_t>& labels,
      const mr::Executor& exec = mr::serial_executor());

 private:
  mr::Ensemble ensemble_;
  mr::Thresholds thresholds_;
  std::optional<std::vector<std::size_t>> priority_;
};

}  // namespace pgmr::polygraph
