#include "perf/cost_model.h"

#include <algorithm>
#include <stdexcept>

namespace pgmr::perf {

InferenceCost CostModel::network_cost(const nn::CostStats& stats,
                                      int bits) const {
  if (bits < 1 || bits > 32) {
    throw std::invalid_argument("CostModel: bits must be in [1, 32]");
  }
  const double pack = static_cast<double>(bits) / 32.0;
  const double bytes =
      static_cast<double>(stats.weight_bytes + stats.activation_bytes) * pack;
  const double compute_s =
      static_cast<double>(stats.macs) / hw_.peak_macs_per_s;
  const double memory_s = bytes / hw_.mem_bandwidth_bytes_per_s;
  InferenceCost c;
  c.latency_s = std::max(compute_s, memory_s);
  c.energy_j = static_cast<double>(stats.macs) * hw_.energy_per_mac_j +
               bytes * hw_.energy_per_byte_j;
  return c;
}

InferenceCost CostModel::network_cost(const nn::CostStats& stats, int bits,
                                      nn::Protection protection) const {
  nn::CostStats adjusted = stats;
  if (protection == nn::Protection::full) adjusted.macs += stats.abft_macs;
  return network_cost(adjusted, bits);
}

InferenceCost CostModel::preprocess_cost(const InferenceCost& member) const {
  InferenceCost c;
  c.latency_s = member.latency_s * hw_.preprocess_fraction;
  c.energy_j = member.energy_j * hw_.preprocess_fraction;
  return c;
}

InferenceCost CostModel::system_sequential(
    const std::vector<InferenceCost>& members) const {
  InferenceCost total;
  for (const InferenceCost& m : members) {
    total += m;
    total += preprocess_cost(m);
  }
  total.latency_s += hw_.decision_latency_s;
  total.energy_j += hw_.decision_energy_j;
  return total;
}

InferenceCost CostModel::system_batched(
    const std::vector<InferenceCost>& members, int gpus) const {
  if (gpus < 1) throw std::invalid_argument("CostModel: gpus must be >= 1");
  InferenceCost total;
  for (std::size_t i = 0; i < members.size(); i += static_cast<std::size_t>(gpus)) {
    double batch_latency = 0.0;
    const std::size_t end =
        std::min(members.size(), i + static_cast<std::size_t>(gpus));
    for (std::size_t j = i; j < end; ++j) {
      const InferenceCost with_prep{
          members[j].latency_s * (1.0 + hw_.preprocess_fraction),
          members[j].energy_j * (1.0 + hw_.preprocess_fraction)};
      batch_latency = std::max(batch_latency, with_prep.latency_s);
      total.energy_j += with_prep.energy_j;
    }
    total.latency_s += batch_latency;
  }
  total.latency_s += hw_.decision_latency_s;
  total.energy_j += hw_.decision_energy_j;
  return total;
}

InferenceCost CostModel::system_staged(
    const std::vector<InferenceCost>& members,
    const std::vector<std::int64_t>& activation_histogram) const {
  if (activation_histogram.size() > members.size()) {
    throw std::invalid_argument(
        "CostModel: activation histogram longer than member list");
  }
  std::int64_t total_samples = 0;
  for (std::int64_t n : activation_histogram) total_samples += n;
  if (total_samples == 0) {
    throw std::invalid_argument("CostModel: empty activation histogram");
  }

  // Prefix costs: cost of running the first k members sequentially.
  std::vector<InferenceCost> prefix(members.size() + 1);
  for (std::size_t k = 0; k < members.size(); ++k) {
    prefix[k + 1] = prefix[k];
    prefix[k + 1] += members[k];
    InferenceCost prep;
    prep.latency_s = members[k].latency_s * hw_.preprocess_fraction;
    prep.energy_j = members[k].energy_j * hw_.preprocess_fraction;
    prefix[k + 1] += prep;
  }

  InferenceCost expected;
  for (std::size_t k = 0; k < activation_histogram.size(); ++k) {
    const double weight = static_cast<double>(activation_histogram[k]) /
                          static_cast<double>(total_samples);
    expected.latency_s += weight * prefix[k + 1].latency_s;
    expected.energy_j += weight * prefix[k + 1].energy_j;
  }
  expected.latency_s += hw_.decision_latency_s;
  expected.energy_j += hw_.decision_energy_j;
  return expected;
}

}  // namespace pgmr::perf
