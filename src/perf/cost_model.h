// Analytic energy/latency model (substitute for GPGPUsim + GPUWattch).
//
// Latency follows a roofline: max(compute time, memory time). Energy sums a
// per-MAC compute term and a per-byte traffic term. Reduced precision packs
// values, scaling memory traffic by bits/32 — exactly the mechanism the
// paper exploits (Section III-D): packing reduces on/off-chip traffic,
// which raises utilization of the compute units.
//
// All benches report costs *normalized to the baseline network*, so only
// relative constants matter; the defaults are in the right ballpark for a
// TITAN X (Pascal), the paper's measurement platform.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/abft.h"
#include "nn/cost.h"

namespace pgmr::perf {

/// Hardware constants for the roofline.
struct HardwareModel {
  double peak_macs_per_s = 10.9e12;            ///< fp32 FMA throughput
  double mem_bandwidth_bytes_per_s = 480.0e9;  ///< DRAM bandwidth
  double energy_per_mac_j = 4.6e-12;
  double energy_per_byte_j = 20.0e-12;
  /// Preprocessing latency as a fraction of one member CNN inference
  /// (paper: 2.5 % for AlexNet, 0.6 % for ResNet34).
  double preprocess_fraction = 0.025;
  /// Fixed CPU-side decision-engine cost per inference. The paper measures
  /// this as negligible next to CNN compute; since this reproduction's
  /// networks are scaled down ~1000x, the default is scaled down too so the
  /// constant stays negligible *relative to the members* (override for
  /// absolute studies).
  double decision_latency_s = 20.0e-9;
  double decision_energy_j = 0.4e-9;
};

/// Latency and energy of one inference (or one system invocation).
struct InferenceCost {
  double latency_s = 0.0;
  double energy_j = 0.0;

  InferenceCost& operator+=(const InferenceCost& o) {
    latency_s += o.latency_s;
    energy_j += o.energy_j;
    return *this;
  }
};

/// Prices network inferences and PolygraphMR system schedules.
class CostModel {
 public:
  explicit CostModel(HardwareModel hw = {}) : hw_(hw) {}

  const HardwareModel& hardware() const { return hw_; }

  /// Cost of one forward pass with the given static stats at `bits`
  /// unified precision (32 = fp32 baseline).
  InferenceCost network_cost(const nn::CostStats& stats, int bits) const;

  /// As above, but accounting for the member's ABFT protection level: full
  /// protection adds stats.abft_macs of verification work per pass.
  /// final_fc verification is one dot product over the FC fan-in — orders
  /// of magnitude below any conv layer — and is priced as free, matching
  /// the historical cost model.
  InferenceCost network_cost(const nn::CostStats& stats, int bits,
                             nn::Protection protection) const;

  /// Sequential single-GPU schedule: members run back to back, each with
  /// preprocessing overhead, plus one decision-engine invocation.
  InferenceCost system_sequential(
      const std::vector<InferenceCost>& members) const;

  /// Multi-GPU schedule: members are dispatched in batches of `gpus` that
  /// run concurrently (latency = sum of per-batch maxima); energy is
  /// unchanged. Models the NVIDIA DRIVE AGX two-GPU scenario.
  InferenceCost system_batched(const std::vector<InferenceCost>& members,
                               int gpus) const;

  /// Expected cost under RADE staged activation: activation_histogram[k]
  /// is the number of test samples that needed exactly k+1 members; the
  /// expected cost averages prefix costs of the priority-ordered members.
  InferenceCost system_staged(
      const std::vector<InferenceCost>& members,
      const std::vector<std::int64_t>& activation_histogram) const;

 private:
  /// Per-member preprocessing overhead derived from that member's latency.
  InferenceCost preprocess_cost(const InferenceCost& member) const;

  HardwareModel hw_;
};

}  // namespace pgmr::perf
