#include "adv/fgsm.h"

#include <algorithm>
#include <stdexcept>

#include "nn/loss.h"

namespace pgmr::adv {

Tensor input_gradient(nn::Network& net, const Tensor& images,
                      const std::vector<std::int64_t>& labels) {
  const Tensor logits = net.forward(images, /*train=*/true);
  const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
  return net.backward(loss.grad_logits);
}

Tensor fgsm_attack(nn::Network& net, const Tensor& images,
                   const std::vector<std::int64_t>& labels, float epsilon) {
  if (epsilon < 0.0F) throw std::invalid_argument("fgsm: negative epsilon");
  const Tensor grad = input_gradient(net, images, labels);
  Tensor adv = images;
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    const float sign = grad[i] > 0.0F ? 1.0F : (grad[i] < 0.0F ? -1.0F : 0.0F);
    adv[i] = std::clamp(adv[i] + epsilon * sign, 0.0F, 1.0F);
  }
  return adv;
}

Tensor bim_attack(nn::Network& net, const Tensor& images,
                  const std::vector<std::int64_t>& labels, float epsilon,
                  int steps) {
  if (steps < 1) throw std::invalid_argument("bim: steps must be >= 1");
  const float step_eps = epsilon / static_cast<float>(steps);
  Tensor adv = images;
  for (int s = 0; s < steps; ++s) {
    adv = fgsm_attack(net, adv, labels, step_eps);
    // Project back into the epsilon ball around the original images.
    for (std::int64_t i = 0; i < adv.numel(); ++i) {
      adv[i] = std::clamp(adv[i], images[i] - epsilon, images[i] + epsilon);
      adv[i] = std::clamp(adv[i], 0.0F, 1.0F);
    }
  }
  return adv;
}

}  // namespace pgmr::adv
