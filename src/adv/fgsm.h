// Adversarial-input generation (paper Section V: Szegedy et al.,
// DeepFool, JSMA family). Implements the fast gradient-sign method so the
// reproduction can ask the natural follow-up question: does PolygraphMR's
// disagreement signal flag adversarial inputs as unreliable?
//
// FGSM: x_adv = clamp(x + eps * sign(d loss / d x)). Requires the loss
// gradient at the *input*, which the nn module's backward pass provides.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.h"

namespace pgmr::adv {

/// Gradient of the mean cross-entropy loss w.r.t. the input batch.
/// Runs forward(train=true) + backward through `net`; parameter gradients
/// are accumulated as a side effect (callers training the net afterwards
/// should zero them).
Tensor input_gradient(nn::Network& net, const Tensor& images,
                      const std::vector<std::int64_t>& labels);

/// Untargeted FGSM attack: perturbs every image by `epsilon` in the
/// direction that increases the loss; output is clamped to [0, 1].
Tensor fgsm_attack(nn::Network& net, const Tensor& images,
                   const std::vector<std::int64_t>& labels, float epsilon);

/// Iterated FGSM (BIM): `steps` FGSM steps of size epsilon/steps, each
/// re-linearized; a stronger attack at the same total budget.
Tensor bim_attack(nn::Network& net, const Tensor& images,
                  const std::vector<std::int64_t>& labels, float epsilon,
                  int steps);

}  // namespace pgmr::adv
