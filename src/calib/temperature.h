// Network calibration via temperature scaling (paper Section IV-E,
// following Guo et al., ICML 2017).
//
// A single scalar T rescales the logits before the softmax; T is fit by
// minimizing validation NLL. The paper's point — reproduced by bench
// fig14 — is that this shifts confidences but cannot move the TP/FP Pareto
// frontier, so it does not fix the reliability problem.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace pgmr::calib {

/// Mean negative log-likelihood of softmax(logits / temperature).
double negative_log_likelihood(const Tensor& logits,
                               const std::vector<std::int64_t>& labels,
                               float temperature);

/// Fits the temperature by golden-section search of the NLL over
/// [0.25, 10]. Returns the minimizing T (1.0 means already calibrated).
float fit_temperature(const Tensor& logits,
                      const std::vector<std::int64_t>& labels);

/// Expected calibration error of [N, C] probabilities with equal-width
/// confidence bins: sum_b (n_b / N) * |acc_b - conf_b|.
double expected_calibration_error(const Tensor& probs,
                                  const std::vector<std::int64_t>& labels,
                                  int bins = 10);

}  // namespace pgmr::calib
