#include "calib/mc_dropout.h"

#include <stdexcept>
#include <vector>

#include "nn/softmax.h"

namespace pgmr::calib {
namespace {

std::vector<Tensor> stochastic_passes(nn::Network& net, const Tensor& images,
                                      int passes) {
  if (passes < 1) {
    throw std::invalid_argument("mc_dropout: passes must be >= 1");
  }
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(passes));
  for (int p = 0; p < passes; ++p) {
    // train=true activates dropout masks; each pass draws fresh masks from
    // the layers' internal RNG streams.
    out.push_back(nn::softmax(net.forward(images, /*train=*/true)));
  }
  return out;
}

}  // namespace

Tensor mc_dropout_probabilities(nn::Network& net, const Tensor& images,
                                int passes) {
  const auto samples = stochastic_passes(net, images, passes);
  Tensor mean = samples.front();
  for (std::size_t p = 1; p < samples.size(); ++p) mean += samples[p];
  mean *= 1.0F / static_cast<float>(passes);
  return mean;
}

Tensor mc_dropout_variance(nn::Network& net, const Tensor& images,
                           int passes) {
  const auto samples = stochastic_passes(net, images, passes);
  const std::int64_t n = samples.front().shape()[0];
  // Top-1 class from the mean distribution, then variance of its
  // probability across passes.
  Tensor mean = samples.front();
  for (std::size_t p = 1; p < samples.size(); ++p) mean += samples[p];
  mean *= 1.0F / static_cast<float>(passes);

  Tensor variance(Shape{n});
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t top = mean.argmax_row(i);
    double sum = 0.0, sum2 = 0.0;
    for (const Tensor& s : samples) {
      const double v = s.at(i, top);
      sum += v;
      sum2 += v * v;
    }
    const double m = sum / passes;
    variance[i] = static_cast<float>(
        std::max(0.0, sum2 / passes - m * m));
  }
  return variance;
}

}  // namespace pgmr::calib
