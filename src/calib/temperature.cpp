#include "calib/temperature.h"

#include <cmath>
#include <stdexcept>

#include "nn/softmax.h"

namespace pgmr::calib {

double negative_log_likelihood(const Tensor& logits,
                               const std::vector<std::int64_t>& labels,
                               float temperature) {
  const Tensor probs = nn::softmax_with_temperature(logits, temperature);
  if (static_cast<std::int64_t>(labels.size()) != probs.shape()[0]) {
    throw std::invalid_argument("negative_log_likelihood: label mismatch");
  }
  double total = 0.0;
  for (std::int64_t n = 0; n < probs.shape()[0]; ++n) {
    const float p = probs.at(n, labels[static_cast<std::size_t>(n)]);
    total += -std::log(std::max(p, 1e-12F));
  }
  return total / static_cast<double>(labels.size());
}

float fit_temperature(const Tensor& logits,
                      const std::vector<std::int64_t>& labels) {
  // Golden-section search: NLL(T) is unimodal in T for fixed logits.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = 0.25, hi = 10.0;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = negative_log_likelihood(logits, labels, static_cast<float>(x1));
  double f2 = negative_log_likelihood(logits, labels, static_cast<float>(x2));
  for (int iter = 0; iter < 60 && hi - lo > 1e-4; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = negative_log_likelihood(logits, labels, static_cast<float>(x1));
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = negative_log_likelihood(logits, labels, static_cast<float>(x2));
    }
  }
  return static_cast<float>((lo + hi) / 2.0);
}

double expected_calibration_error(const Tensor& probs,
                                  const std::vector<std::int64_t>& labels,
                                  int bins) {
  if (bins < 1) throw std::invalid_argument("ECE: bins must be >= 1");
  const std::int64_t n_samples = probs.shape()[0];
  if (static_cast<std::int64_t>(labels.size()) != n_samples) {
    throw std::invalid_argument("ECE: label count mismatch");
  }
  std::vector<std::int64_t> count(static_cast<std::size_t>(bins), 0);
  std::vector<double> conf_sum(static_cast<std::size_t>(bins), 0.0);
  std::vector<std::int64_t> correct(static_cast<std::size_t>(bins), 0);
  for (std::int64_t n = 0; n < n_samples; ++n) {
    const float conf = probs.max_row(n);
    const std::int64_t pred = probs.argmax_row(n);
    int b = static_cast<int>(conf * static_cast<float>(bins));
    b = std::min(b, bins - 1);
    ++count[static_cast<std::size_t>(b)];
    conf_sum[static_cast<std::size_t>(b)] += conf;
    if (pred == labels[static_cast<std::size_t>(n)]) {
      ++correct[static_cast<std::size_t>(b)];
    }
  }
  double ece = 0.0;
  for (int b = 0; b < bins; ++b) {
    const auto idx = static_cast<std::size_t>(b);
    if (count[idx] == 0) continue;
    const double acc = static_cast<double>(correct[idx]) /
                       static_cast<double>(count[idx]);
    const double conf = conf_sum[idx] / static_cast<double>(count[idx]);
    ece += static_cast<double>(count[idx]) / static_cast<double>(n_samples) *
           std::fabs(acc - conf);
  }
  return ece;
}

}  // namespace pgmr::calib
