// Monte-Carlo dropout uncertainty (Gal & Ghahramani, ICML 2016 — cited in
// the paper's Section V as the 10-100x-overhead alternative family).
//
// Runs several stochastic forward passes with dropout active and averages
// the softmax outputs; the averaged top-1 probability is the uncertainty
// gate. Only meaningful for networks that (a) contain Dropout layers and
// (b) contain no BatchNorm (train-mode forward would otherwise switch BN
// to batch statistics) — of the zoo recipes that is exactly alexnet.
#pragma once

#include <cstdint>

#include "nn/network.h"

namespace pgmr::calib {

/// Mean softmax over `passes` dropout-active forward passes, [N, C].
/// Passes must be >= 1; with a dropout-free network every pass is
/// identical and the result equals Network::probabilities.
Tensor mc_dropout_probabilities(nn::Network& net, const Tensor& images,
                                int passes);

/// Per-sample predictive variance of the top-1 probability across passes —
/// a second uncertainty signal (high variance = unstable prediction).
/// Returns a [N] tensor (rank-1).
Tensor mc_dropout_variance(nn::Network& net, const Tensor& images,
                           int passes);

}  // namespace pgmr::calib
