#include "prep/preprocessor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pgmr::prep {
namespace {

constexpr int kBins = 64;

struct PlaneView {
  float* data;
  std::int64_t h;
  std::int64_t w;
};

/// Applies `fn` to every (image, channel) plane of a batch copy.
template <typename Fn>
Tensor transform_planes(const Tensor& images, Fn fn) {
  if (images.shape().rank() != 4) {
    throw std::invalid_argument("Preprocessor: expected [N,C,H,W] batch");
  }
  Tensor out = images;
  const std::int64_t planes = images.shape()[0] * images.shape()[1];
  const std::int64_t h = images.shape()[2];
  const std::int64_t w = images.shape()[3];
  for (std::int64_t p = 0; p < planes; ++p) {
    PlaneView view{out.data() + p * h * w, h, w};
    fn(view);
  }
  return out;
}

int bin_of(float v) {
  const int b = static_cast<int>(v * kBins);
  return std::clamp(b, 0, kBins - 1);
}

/// Histogram-equalization mapping for `count[kBins]` covering `total` pixels.
void cdf_mapping(const std::int64_t* count, std::int64_t total,
                 float* mapping) {
  std::int64_t acc = 0;
  for (int b = 0; b < kBins; ++b) {
    acc += count[b];
    mapping[b] = total > 0 ? static_cast<float>(acc) / static_cast<float>(total)
                           : 0.0F;
  }
}

float clampf(float v) { return std::min(1.0F, std::max(0.0F, v)); }

void bilinear_resize(const float* src, std::int64_t sh, std::int64_t sw,
                     float* dst, std::int64_t dh, std::int64_t dw) {
  for (std::int64_t y = 0; y < dh; ++y) {
    const float fy = dh > 1 ? static_cast<float>(y) *
                                  static_cast<float>(sh - 1) /
                                  static_cast<float>(dh - 1)
                            : 0.0F;
    const auto y0 = static_cast<std::int64_t>(fy);
    const std::int64_t y1 = std::min(y0 + 1, sh - 1);
    const float wy = fy - static_cast<float>(y0);
    for (std::int64_t x = 0; x < dw; ++x) {
      const float fx = dw > 1 ? static_cast<float>(x) *
                                    static_cast<float>(sw - 1) /
                                    static_cast<float>(dw - 1)
                              : 0.0F;
      const auto x0 = static_cast<std::int64_t>(fx);
      const std::int64_t x1 = std::min(x0 + 1, sw - 1);
      const float wx = fx - static_cast<float>(x0);
      const float top = src[y0 * sw + x0] * (1.0F - wx) + src[y0 * sw + x1] * wx;
      const float bot = src[y1 * sw + x0] * (1.0F - wx) + src[y1 * sw + x1] * wx;
      dst[y * dw + x] = top * (1.0F - wy) + bot * wy;
    }
  }
}

}  // namespace

Tensor FlipX::apply(const Tensor& images) const {
  return transform_planes(images, [](PlaneView p) {
    for (std::int64_t y = 0; y < p.h; ++y) {
      std::reverse(p.data + y * p.w, p.data + (y + 1) * p.w);
    }
  });
}

Tensor FlipY::apply(const Tensor& images) const {
  return transform_planes(images, [](PlaneView p) {
    for (std::int64_t y = 0; y < p.h / 2; ++y) {
      std::swap_ranges(p.data + y * p.w, p.data + (y + 1) * p.w,
                       p.data + (p.h - 1 - y) * p.w);
    }
  });
}

Gamma::Gamma(float gamma) : gamma_(gamma) {
  if (gamma <= 0.0F) throw std::invalid_argument("Gamma: gamma must be > 0");
}

std::string Gamma::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Gamma(%.2f)", static_cast<double>(gamma_));
  return buf;
}

Tensor Gamma::apply(const Tensor& images) const {
  const float g = gamma_;
  return transform_planes(images, [g](PlaneView p) {
    for (std::int64_t i = 0; i < p.h * p.w; ++i) {
      p.data[i] = std::pow(clampf(p.data[i]), g);
    }
  });
}

Tensor Hist::apply(const Tensor& images) const {
  return transform_planes(images, [](PlaneView p) {
    std::int64_t count[kBins] = {};
    const std::int64_t total = p.h * p.w;
    for (std::int64_t i = 0; i < total; ++i) ++count[bin_of(p.data[i])];
    float mapping[kBins];
    cdf_mapping(count, total, mapping);
    for (std::int64_t i = 0; i < total; ++i) {
      p.data[i] = mapping[bin_of(p.data[i])];
    }
  });
}

AdHist::AdHist(int tiles, float clip_limit)
    : tiles_(tiles), clip_limit_(clip_limit) {
  if (tiles < 1 || clip_limit < 1.0F) {
    throw std::invalid_argument("AdHist: invalid tiling/clip configuration");
  }
}

Tensor AdHist::apply(const Tensor& images) const {
  const int tiles = tiles_;
  const float clip = clip_limit_;
  return transform_planes(images, [tiles, clip](PlaneView p) {
    const std::int64_t th = p.h / tiles;
    const std::int64_t tw = p.w / tiles;
    if (th == 0 || tw == 0) {
      throw std::invalid_argument("AdHist: image smaller than tile grid");
    }
    // Per-tile clipped-equalization mappings.
    std::vector<float> mapping(static_cast<std::size_t>(tiles * tiles * kBins));
    for (int ty = 0; ty < tiles; ++ty) {
      for (int tx = 0; tx < tiles; ++tx) {
        std::int64_t count[kBins] = {};
        const std::int64_t y0 = ty * th;
        const std::int64_t x0 = tx * tw;
        // Last row/column of tiles absorbs any remainder.
        const std::int64_t y1 = (ty == tiles - 1) ? p.h : y0 + th;
        const std::int64_t x1 = (tx == tiles - 1) ? p.w : x0 + tw;
        const std::int64_t total = (y1 - y0) * (x1 - x0);
        for (std::int64_t y = y0; y < y1; ++y) {
          for (std::int64_t x = x0; x < x1; ++x) {
            ++count[bin_of(p.data[y * p.w + x])];
          }
        }
        // Clip and redistribute (the "contrast limiting" in CLAHE).
        const auto limit = static_cast<std::int64_t>(
            clip * static_cast<float>(total) / kBins);
        std::int64_t excess = 0;
        for (int b = 0; b < kBins; ++b) {
          if (count[b] > limit) {
            excess += count[b] - limit;
            count[b] = limit;
          }
        }
        const std::int64_t share = excess / kBins;
        for (int b = 0; b < kBins; ++b) count[b] += share;
        cdf_mapping(count, total,
                    mapping.data() + (ty * tiles + tx) * kBins);
      }
    }
    // Bilinear interpolation between tile-center mappings.
    std::vector<float> out(static_cast<std::size_t>(p.h * p.w));
    for (std::int64_t y = 0; y < p.h; ++y) {
      const float gy = (static_cast<float>(y) + 0.5F) / static_cast<float>(th) - 0.5F;
      const int ty0 = std::clamp(static_cast<int>(std::floor(gy)), 0, tiles - 1);
      const int ty1 = std::min(ty0 + 1, tiles - 1);
      const float wy = std::clamp(gy - static_cast<float>(ty0), 0.0F, 1.0F);
      for (std::int64_t x = 0; x < p.w; ++x) {
        const float gx = (static_cast<float>(x) + 0.5F) / static_cast<float>(tw) - 0.5F;
        const int tx0 = std::clamp(static_cast<int>(std::floor(gx)), 0, tiles - 1);
        const int tx1 = std::min(tx0 + 1, tiles - 1);
        const float wx = std::clamp(gx - static_cast<float>(tx0), 0.0F, 1.0F);
        const int b = bin_of(p.data[y * p.w + x]);
        const float m00 = mapping[(ty0 * tiles + tx0) * kBins + b];
        const float m01 = mapping[(ty0 * tiles + tx1) * kBins + b];
        const float m10 = mapping[(ty1 * tiles + tx0) * kBins + b];
        const float m11 = mapping[(ty1 * tiles + tx1) * kBins + b];
        const float top = m00 * (1.0F - wx) + m01 * wx;
        const float bot = m10 * (1.0F - wx) + m11 * wx;
        out[static_cast<std::size_t>(y * p.w + x)] = top * (1.0F - wy) + bot * wy;
      }
    }
    std::copy(out.begin(), out.end(), p.data);
  });
}

ConNorm::ConNorm(int window) : window_(window) {
  if (window < 3 || window % 2 == 0) {
    throw std::invalid_argument("ConNorm: window must be odd and >= 3");
  }
}

Tensor ConNorm::apply(const Tensor& images) const {
  const int half = window_ / 2;
  return transform_planes(images, [half](PlaneView p) {
    std::vector<float> out(static_cast<std::size_t>(p.h * p.w));
    for (std::int64_t y = 0; y < p.h; ++y) {
      for (std::int64_t x = 0; x < p.w; ++x) {
        float sum = 0.0F, sum2 = 0.0F;
        int n = 0;
        for (std::int64_t dy = -half; dy <= half; ++dy) {
          const std::int64_t yy = y + dy;
          if (yy < 0 || yy >= p.h) continue;
          for (std::int64_t dx = -half; dx <= half; ++dx) {
            const std::int64_t xx = x + dx;
            if (xx < 0 || xx >= p.w) continue;
            const float v = p.data[yy * p.w + xx];
            sum += v;
            sum2 += v * v;
            ++n;
          }
        }
        const float mean = sum / static_cast<float>(n);
        const float var =
            std::max(0.0F, sum2 / static_cast<float>(n) - mean * mean);
        const float stddev = std::sqrt(var) + 0.02F;
        out[static_cast<std::size_t>(y * p.w + x)] =
            clampf(0.5F + 0.25F * (p.data[y * p.w + x] - mean) / stddev);
      }
    }
    std::copy(out.begin(), out.end(), p.data);
  });
}

Tensor ImAdj::apply(const Tensor& images) const {
  return transform_planes(images, [](PlaneView p) {
    const std::int64_t total = p.h * p.w;
    std::vector<float> sorted(p.data, p.data + total);
    const auto lo_idx = static_cast<std::size_t>(0.01 * static_cast<double>(total));
    const auto hi_idx = static_cast<std::size_t>(0.99 * static_cast<double>(total));
    std::nth_element(sorted.begin(), sorted.begin() + lo_idx, sorted.end());
    const float lo = sorted[lo_idx];
    std::nth_element(sorted.begin(), sorted.begin() + hi_idx, sorted.end());
    const float hi = sorted[hi_idx];
    const float range = std::max(hi - lo, 1e-3F);
    for (std::int64_t i = 0; i < total; ++i) {
      p.data[i] = clampf((p.data[i] - lo) / range);
    }
  });
}

Scale::Scale(float factor) : factor_(factor) {
  if (factor <= 0.0F || factor >= 1.0F) {
    throw std::invalid_argument("Scale: factor must be in (0, 1)");
  }
}

std::string Scale::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Scale(%.2f)", static_cast<double>(factor_));
  return buf;
}

Tensor Scale::apply(const Tensor& images) const {
  const float factor = factor_;
  return transform_planes(images, [factor](PlaneView p) {
    const auto sh = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(std::lround(factor * static_cast<float>(p.h))));
    const auto sw = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(std::lround(factor * static_cast<float>(p.w))));
    std::vector<float> small(static_cast<std::size_t>(sh * sw));
    bilinear_resize(p.data, p.h, p.w, small.data(), sh, sw);
    bilinear_resize(small.data(), sh, sw, p.data, p.h, p.w);
  });
}

std::unique_ptr<Preprocessor> make_preprocessor(const std::string& spec) {
  if (spec == "ORG") return std::make_unique<Identity>();
  if (spec == "FlipX") return std::make_unique<FlipX>();
  if (spec == "FlipY") return std::make_unique<FlipY>();
  if (spec == "Hist") return std::make_unique<Hist>();
  if (spec == "AdHist") return std::make_unique<AdHist>();
  if (spec == "ConNorm") return std::make_unique<ConNorm>();
  if (spec == "ImAdj") return std::make_unique<ImAdj>();
  if (spec.rfind("Gamma(", 0) == 0 && spec.back() == ')') {
    return std::make_unique<Gamma>(std::stof(spec.substr(6)));
  }
  if (spec.rfind("Scale(", 0) == 0 && spec.back() == ')') {
    return std::make_unique<Scale>(std::stof(spec.substr(6)));
  }
  throw std::invalid_argument("make_preprocessor: unknown spec '" + spec + "'");
}

std::vector<std::string> standard_pool() {
  return {"AdHist",      "ConNorm",     "FlipX",       "FlipY",
          "Gamma(0.50)", "Gamma(1.50)", "Gamma(2.00)", "Hist",
          "ImAdj",       "Scale(0.80)"};
}

}  // namespace pgmr::prep
