// Layer 1 of PolygraphMR: the pool of image preprocessors (paper Table I).
//
// Each preprocessor is a pure, deterministic transform over [N, C, H, W]
// image batches in [0, 1]. Behaviour diversity in the MR system comes from
// training/inferring each member CNN on a differently-preprocessed view of
// the same input.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace pgmr::prep {

/// Abstract image transform. Implementations are stateless and thread-safe.
class Preprocessor {
 public:
  virtual ~Preprocessor() = default;

  /// Canonical spec string ("FlipX", "Gamma(2.0)", ...); parseable by
  /// make_preprocessor, so configurations serialize as plain text.
  virtual std::string name() const = 0;

  /// Transforms a batch; output has the same shape and stays in [0, 1].
  virtual Tensor apply(const Tensor& images) const = 0;
};

/// Identity transform — the paper's "ORG" baseline member.
class Identity final : public Preprocessor {
 public:
  std::string name() const override { return "ORG"; }
  Tensor apply(const Tensor& images) const override { return images; }
};

/// Horizontal flip (mirror across the vertical axis).
class FlipX final : public Preprocessor {
 public:
  std::string name() const override { return "FlipX"; }
  Tensor apply(const Tensor& images) const override;
};

/// Vertical flip (mirror across the horizontal axis).
class FlipY final : public Preprocessor {
 public:
  std::string name() const override { return "FlipY"; }
  Tensor apply(const Tensor& images) const override;
};

/// Gamma correction v -> v^gamma; gamma > 1 darkens, < 1 brightens.
class Gamma final : public Preprocessor {
 public:
  explicit Gamma(float gamma);
  std::string name() const override;
  Tensor apply(const Tensor& images) const override;

 private:
  float gamma_;
};

/// Global histogram equalization, per image and channel (paper "Hist").
class Hist final : public Preprocessor {
 public:
  std::string name() const override { return "Hist"; }
  Tensor apply(const Tensor& images) const override;
};

/// CLAHE-style locally adaptive histogram equalization (paper "AdHist"):
/// the image is tiled, each tile equalized with a clip limit, and per-pixel
/// mappings bilinearly interpolated between tile centers.
class AdHist final : public Preprocessor {
 public:
  /// `tiles` tiles per side, `clip_limit` as a multiple of the uniform bin
  /// height (2.0 is the common default).
  explicit AdHist(int tiles = 2, float clip_limit = 2.0F);
  std::string name() const override { return "AdHist"; }
  Tensor apply(const Tensor& images) const override;

 private:
  int tiles_;
  float clip_limit_;
};

/// Local contrast normalization (paper "ConNorm"): subtract a local box
/// mean and divide by the local standard deviation.
class ConNorm final : public Preprocessor {
 public:
  explicit ConNorm(int window = 5);
  std::string name() const override { return "ConNorm"; }
  Tensor apply(const Tensor& images) const override;

 private:
  int window_;
};

/// Intensity range remap (paper "ImAdj"): stretches the [p1, p99]
/// percentile range of each image channel to [0, 1].
class ImAdj final : public Preprocessor {
 public:
  std::string name() const override { return "ImAdj"; }
  Tensor apply(const Tensor& images) const override;
};

/// Down-and-up bilinear rescale by `factor` (paper "Scale 80%" uses 0.8):
/// softens high-frequency content/noise.
class Scale final : public Preprocessor {
 public:
  explicit Scale(float factor);
  std::string name() const override;
  Tensor apply(const Tensor& images) const override;

 private:
  float factor_;
};

/// Parses a spec string produced by Preprocessor::name() back into an
/// instance. Throws std::invalid_argument on unknown specs.
std::unique_ptr<Preprocessor> make_preprocessor(const std::string& spec);

/// The candidate pool the system builder searches over (Section III-G).
std::vector<std::string> standard_pool();

}  // namespace pgmr::prep
