// WeightScrubber: background re-verification of live member weights.
//
// ABFT catches corruptions large enough to break a GEMM identity *during*
// an inference; the scrubber closes the remaining gap. Off the hot path it
// periodically re-computes every member's parameter CRC32s against the
// snapshot blessed at load time, catching corruptions ABFT's tolerance
// hides (mantissa-LSB flips, bias rot in layers a given input never
// excites) before they accumulate. On a mismatch it self-heals by
// atomically rebuilding the member from its zoo archive; when the archive
// itself no longer reproduces the blessed CRCs (rotted or unreadable), the
// member is permanently fenced out of the serving quorum instead.
//
// Threading: each member is checked and (if needed) healed while holding
// the runtime's swap mutex — the same mutex the batcher holds across a
// batch — so weights never change mid-inference and fence decisions never
// race on_result. The mutex is taken per member, bounding how long any
// single batch can be delayed by scrubbing.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>

#include "mr/ensemble.h"
#include "runtime/health.h"
#include "runtime/metrics.h"

namespace pgmr::runtime {

/// What one full scrub sweep over the ensemble found and did.
struct ScrubReport {
  std::size_t members_checked = 0;  ///< members whose CRCs were re-verified
  std::size_t mismatches = 0;       ///< members with a corrupted parameter
  std::size_t reloads = 0;          ///< members healed from their archive
  std::size_t fenced = 0;           ///< members fenced (archive bad too)
};

class WeightScrubber {
 public:
  struct Options {
    /// Delay between background sweeps. start() ignores non-positive
    /// intervals (scrub_once() still works for synchronous use).
    std::chrono::milliseconds interval{1000};
  };

  /// All referees must outlive the scrubber. `swap_mutex` is the runtime's
  /// inference-vs-heal mutex (see header comment).
  WeightScrubber(mr::Ensemble& ensemble, MemberHealth& health,
                 MetricsRegistry& metrics, std::mutex& swap_mutex,
                 Options options);

  ~WeightScrubber();

  WeightScrubber(const WeightScrubber&) = delete;
  WeightScrubber& operator=(const WeightScrubber&) = delete;

  /// Launches the background sweep thread. No-op when already running or
  /// when options().interval is non-positive.
  void start();

  /// Stops and joins the background thread. Idempotent.
  void stop();

  bool running() const { return thread_.joinable(); }
  const Options& options() const { return options_; }

  /// Invoked (from the scrubbing thread, after the member's swap-mutex
  /// scope) each time a sweep fences a member — the runtime hooks the
  /// MemberReplacer wake-up and quorum gauge here. Set before start().
  void set_on_fence(std::function<void()> callback) {
    on_fence_ = std::move(callback);
  }

  /// One synchronous sweep over every member: verify CRCs, heal or fence.
  /// Callable from any thread (used directly by tests and by the
  /// background loop). Fenced members are skipped.
  ScrubReport scrub_once();

 private:
  void loop(std::stop_token st);

  mr::Ensemble& ensemble_;
  MemberHealth& health_;
  MetricsRegistry& metrics_;
  std::mutex& swap_mutex_;
  Options options_;
  std::function<void()> on_fence_;

  std::mutex wake_mutex_;
  std::condition_variable_any wake_;
  std::jthread thread_;
};

}  // namespace pgmr::runtime
