// WeightScrubber: background re-verification of live member weights.
//
// ABFT catches corruptions large enough to break a GEMM identity *during*
// an inference; the scrubber closes the remaining gap. Off the hot path it
// periodically re-computes every member's parameter CRC32s against the
// snapshot blessed at load time, catching corruptions ABFT's tolerance
// hides (mantissa-LSB flips, bias rot in layers a given input never
// excites) before they accumulate. On a mismatch it self-heals by
// atomically rebuilding the member from its zoo archive; when the archive
// itself no longer reproduces the blessed CRCs (rotted or unreadable), the
// member is permanently fenced out of the serving quorum instead.
//
// Threading: each member is checked and (if needed) healed while holding
// the runtime's swap mutex — the same mutex the batcher holds across a
// batch — so weights never change mid-inference and fence decisions never
// race on_result. The mutex is taken per member, bounding how long any
// single batch can be delayed by scrubbing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "mr/ensemble.h"
#include "runtime/health.h"
#include "runtime/metrics.h"

namespace pgmr::runtime {

/// What one scrub sweep over the ensemble found and did.
struct ScrubReport {
  std::size_t members_checked = 0;  ///< members whose CRCs were re-verified
  std::size_t tensors_checked = 0;  ///< parameter tensors fully CRC-verified
  std::size_t chunks_checked = 0;   ///< intra-tensor CRC chunks verified
  std::size_t mismatches = 0;       ///< members with a corrupted parameter
  std::size_t reloads = 0;          ///< members healed from their archive
  std::size_t fenced = 0;           ///< members fenced (archive bad too)
};

class WeightScrubber {
 public:
  struct Options {
    /// Delay between background sweeps. start() ignores non-positive
    /// intervals (scrub_once() still works for synchronous use).
    std::chrono::milliseconds interval{1000};

    /// Incremental mode: at most this many parameter tensors are CRC'd per
    /// member per sweep, resuming from a round-robin cursor, so the swap
    /// mutex is held for bounded time regardless of member size. 0 checks
    /// every tensor each sweep (the full-pass behaviour).
    std::size_t max_tensors_per_sweep = 0;

    /// Soft per-acquisition hold ceiling: once a member's CRC work has run
    /// this long the sweep releases the swap mutex after the current CRC
    /// *chunk* (at least one is always checked) and resumes mid-tensor on
    /// the next sweep — so the ceiling binds even when a single tensor's
    /// CRC outweighs it. 0 disables the ceiling. Measured hold time is
    /// exported as the scrub_hold_us histogram either way.
    std::chrono::microseconds max_hold{0};

    /// Deterministic chunk budget: at most this many intra-tensor CRC
    /// chunks (quant::QuantizedNetwork::kCrcChunkElems floats each) are
    /// verified per member per sweep, resuming mid-tensor like the hold
    /// ceiling. 0 leaves chunking to max_tensors_per_sweep/max_hold alone.
    std::size_t max_chunks_per_sweep = 0;
  };

  /// All referees must outlive the scrubber. `swap_mutex` is the runtime's
  /// inference-vs-heal mutex (see header comment).
  WeightScrubber(mr::Ensemble& ensemble, MemberHealth& health,
                 MetricsRegistry& metrics, std::mutex& swap_mutex,
                 Options options);

  ~WeightScrubber();

  WeightScrubber(const WeightScrubber&) = delete;
  WeightScrubber& operator=(const WeightScrubber&) = delete;

  /// Launches the background sweep thread. No-op when already running or
  /// when options().interval is non-positive.
  void start();

  /// Stops and joins the background thread. Idempotent.
  void stop();

  bool running() const { return thread_.joinable(); }
  const Options& options() const { return options_; }

  /// Invoked (from the scrubbing thread, after the member's swap-mutex
  /// scope) each time a sweep fences a member — the runtime hooks the
  /// MemberReplacer wake-up and quorum gauge here. Set before start().
  void set_on_fence(std::function<void()> callback) {
    on_fence_ = std::move(callback);
  }

  /// One synchronous sweep over every member: verify CRCs (all tensors, or
  /// the next cursor window in incremental mode), heal or fence. Callable
  /// from any thread (used directly by tests and by the background loop).
  /// Fenced members are skipped.
  ScrubReport scrub_once();

  /// Completed full logical CRC passes over member `m` — every tensor
  /// visited since the previous count. In incremental mode one pass spans
  /// ceil(param_count / max_tensors_per_sweep) sweeps.
  std::uint64_t full_passes(std::size_t m) const {
    return passes_[m].load(std::memory_order_relaxed);
  }

 private:
  void loop(std::stop_token st);

  mr::Ensemble& ensemble_;
  MemberHealth& health_;
  MetricsRegistry& metrics_;
  std::mutex& swap_mutex_;
  Options options_;
  std::function<void()> on_fence_;

  /// Round-robin (tensor, chunk) cursor per member (guarded by
  /// swap_mutex_): chunk > 0 means a sweep was interrupted mid-tensor and
  /// resumes there. passes_ counts completed full passes (atomic for test
  /// observers).
  struct Cursor {
    std::size_t tensor = 0;
    std::size_t chunk = 0;
  };
  std::vector<Cursor> cursors_;
  std::vector<std::atomic<std::uint64_t>> passes_;

  std::mutex wake_mutex_;
  std::condition_variable_any wake_;
  std::jthread thread_;
};

}  // namespace pgmr::runtime
