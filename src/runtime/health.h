// MemberHealth: the per-member circuit breaker behind the serving
// runtime's fault isolation.
//
// Each ensemble member moves through three states:
//
//   healthy ──(quarantine_after consecutive faults)──► quarantined
//   quarantined ──(cooldown elapsed)──► half_open (runs as a probe)
//   half_open ──(probe ok)──► healthy      (fault streak reset)
//   half_open ──(probe fault)──► quarantined (fresh cooldown)
//   any ──(force_fence: weights corrupt, archive unrecoverable)──► fenced
//   any ──(fence_after_quarantines-th quarantine trip)──► fenced
//   fenced ──(on_replaced: fresh member hot-swapped in)──► half_open
//
// fenced is terminal for the *member*: it never probes again and never
// runs — unlike quarantine it reflects known-bad state (corrupt weights
// with no trustworthy archive, or a member that keeps re-tripping the
// breaker), not a transient fault streak. The *slot* is recoverable: the
// MemberReplacer hot-swaps a freshly trained member in and calls
// on_replaced(), which re-admits the slot as a half-open probe.
//
// Threading: run_mask() and on_result() are called by the batcher thread
// only (one batch in flight at a time); state() / consecutive_faults()
// are safe from any thread — state lives in relaxed atomics, and the
// deadline bookkeeping is batcher-private. force_fence() touches only the
// atomic state, so the weight scrubber may call it from its own thread;
// callers serialize it against on_result via the runtime's swap mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <vector>

namespace pgmr::runtime {

enum class MemberState : int {
  healthy = 0,
  quarantined = 1,
  half_open = 2,
  fenced = 3,
};

const char* to_string(MemberState state);

class MemberHealth {
 public:
  struct Options {
    int quarantine_after = 3;  ///< consecutive faults before quarantine
    std::chrono::milliseconds cooldown{250};  ///< quarantine -> half-open
    /// Breaker escalation: a member whose cumulative quarantine trips
    /// reach this count is fenced (it keeps failing its probes — treat it
    /// as broken, not unlucky). 0 disables escalation.
    int fence_after_quarantines = 0;
  };

  MemberHealth(std::size_t members, Options options);

  std::size_t members() const { return states_.size(); }
  const Options& options() const { return options_; }

  /// Which members the next batch should run: healthy and half-open ones,
  /// plus quarantined members whose cooldown has expired (they transition
  /// to half_open and run as probes). Batcher thread only.
  std::vector<bool> run_mask(std::chrono::steady_clock::time_point now);

  /// Records one member's batch result. Returns true when this result
  /// transitioned the member *into* quarantine (a quarantine event, for
  /// metrics). Batcher thread only; call only for members that ran.
  bool on_result(std::size_t member, bool ok,
                 std::chrono::steady_clock::time_point now);

  /// Permanently removes a member from service (see header comment).
  /// Safe from any thread; serialize against on_result externally.
  void force_fence(std::size_t member) {
    set_state(member, MemberState::fenced);
  }

  /// Re-admits a fenced slot after a replacement member was hot-swapped
  /// in: state becomes half_open (the next batch runs it as a probe) and
  /// the fault/trip history is wiped — the new member has none. Call
  /// under the runtime's swap mutex so it never races on_result.
  void on_replaced(std::size_t member);

  MemberState state(std::size_t member) const {
    return static_cast<MemberState>(
        states_[member].load(std::memory_order_relaxed));
  }
  int consecutive_faults(std::size_t member) const {
    return faults_[member].load(std::memory_order_relaxed);
  }
  std::size_t quarantined_count() const;
  std::size_t fenced_count() const;
  /// Members currently eligible to serve (everything but fenced) — the
  /// live quorum size the metrics gauge reports.
  std::size_t in_service_count() const { return members() - fenced_count(); }

 private:
  void set_state(std::size_t member, MemberState s) {
    states_[member].store(static_cast<int>(s), std::memory_order_relaxed);
  }

  Options options_;
  std::vector<std::atomic<int>> states_;
  std::vector<std::atomic<int>> faults_;
  std::vector<std::atomic<int>> trips_;  ///< cumulative quarantine entries
  // Batcher-private: when each quarantined member may probe again.
  std::vector<std::chrono::steady_clock::time_point> probe_at_;
};

}  // namespace pgmr::runtime
