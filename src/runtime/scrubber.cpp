#include "runtime/scrubber.h"

namespace pgmr::runtime {

WeightScrubber::WeightScrubber(mr::Ensemble& ensemble, MemberHealth& health,
                               MetricsRegistry& metrics,
                               std::mutex& swap_mutex, Options options)
    : ensemble_(ensemble),
      health_(health),
      metrics_(metrics),
      swap_mutex_(swap_mutex),
      options_(options),
      cursors_(ensemble.size()),
      passes_(ensemble.size()) {}

WeightScrubber::~WeightScrubber() { stop(); }

void WeightScrubber::start() {
  if (thread_.joinable() || options_.interval.count() <= 0) return;
  thread_ = std::jthread([this](std::stop_token st) { loop(st); });
}

void WeightScrubber::stop() {
  if (!thread_.joinable()) return;
  thread_.request_stop();
  wake_.notify_all();
  thread_.join();
  thread_ = std::jthread();
}

void WeightScrubber::loop(std::stop_token st) {
  std::unique_lock lock(wake_mutex_);
  while (!st.stop_requested()) {
    // Sleep first so construction + start() doesn't race member setup in
    // tests that inject faults immediately after building the runtime.
    if (wake_.wait_for(lock, st, options_.interval,
                       [&st] { return st.stop_requested(); })) {
      return;
    }
    lock.unlock();
    scrub_once();
    lock.lock();
  }
}

ScrubReport WeightScrubber::scrub_once() {
  using clock = std::chrono::steady_clock;
  ScrubReport report;
  for (std::size_t m = 0; m < ensemble_.size(); ++m) {
    bool fenced_now = false;
    std::uint64_t hold_us = 0;
    {
      // Per-member lock: a sweep never stalls the batcher for longer than
      // one member's cursor window (or one reload when healing).
      std::lock_guard guard(swap_mutex_);
      const clock::time_point hold_start = clock::now();
      if (health_.state(m) == MemberState::fenced) continue;
      mr::Member& member = ensemble_.member(m);
      ++report.members_checked;

      const std::size_t total = member.param_count();
      if (total == 0) {
        passes_[m].fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::size_t budget =
          options_.max_tensors_per_sweep == 0
              ? total
              : std::min(options_.max_tensors_per_sweep, total);
      Cursor& cursor = cursors_[m];
      if (cursor.tensor >= total) cursor = Cursor{};

      // Verify CRC chunks from the cursor until a tensor budget, chunk
      // budget or the hold ceiling stops the sweep — possibly mid-tensor,
      // where the chunk cursor resumes next sweep. At least one chunk is
      // always verified, so progress never starves.
      bool corrupt = false;
      std::size_t tensors_done = 0;
      std::size_t chunks_done = 0;
      bool stop = false;
      while (!stop && tensors_done < budget) {
        const std::size_t chunks = member.param_chunk_count(cursor.tensor);
        if (cursor.chunk >= chunks) cursor.chunk = 0;
        while (cursor.chunk < chunks) {
          if (!member.param_chunk_intact(cursor.tensor, cursor.chunk)) {
            corrupt = true;
          }
          ++report.chunks_checked;
          ++chunks_done;
          ++cursor.chunk;
          if (corrupt ||
              (options_.max_chunks_per_sweep > 0 &&
               chunks_done >= options_.max_chunks_per_sweep) ||
              // Soft hold ceiling: release the batcher after the current
              // chunk once the configured budget of lock time is spent.
              (options_.max_hold.count() > 0 &&
               clock::now() - hold_start >= options_.max_hold)) {
            stop = true;
            break;
          }
        }
        if (!corrupt && cursor.chunk >= chunks) {  // whole tensor clean
          ++report.tensors_checked;
          ++tensors_done;
          cursor.tensor = (cursor.tensor + 1) % total;
          cursor.chunk = 0;
          if (cursor.tensor == 0) {
            passes_[m].fetch_add(1, std::memory_order_relaxed);
          }
        }
      }

      if (corrupt) {
        ++report.mismatches;
        metrics_.on_crc_mismatch(m);
        // Whatever happens next, the member's weights change (heal) or the
        // member leaves service (fence): restart its verification cycle.
        cursor = Cursor{};
        const mr::Member::ReloadStatus status = member.reload_params();
        if (status == mr::Member::ReloadStatus::healed) {
          ++report.reloads;
          metrics_.on_weight_reload(m);
        } else {
          // No archive, unreadable archive, or an archive that no longer
          // reproduces the blessed CRCs: the member has no trustworthy
          // weight source left — remove it from the quorum permanently.
          ++report.fenced;
          health_.force_fence(m);
          fenced_now = true;
        }
      }
      hold_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                                hold_start)
              .count());
    }
    metrics_.on_scrub_hold_us(hold_us);
    // Outside the swap-mutex scope: the hook may wake the replacer, whose
    // swap then proceeds without waiting on this sweep.
    if (fenced_now && on_fence_) on_fence_();
  }
  metrics_.on_scrub_cycle();
  return report;
}

}  // namespace pgmr::runtime
