#include "runtime/scrubber.h"

namespace pgmr::runtime {

WeightScrubber::WeightScrubber(mr::Ensemble& ensemble, MemberHealth& health,
                               MetricsRegistry& metrics,
                               std::mutex& swap_mutex, Options options)
    : ensemble_(ensemble),
      health_(health),
      metrics_(metrics),
      swap_mutex_(swap_mutex),
      options_(options) {}

WeightScrubber::~WeightScrubber() { stop(); }

void WeightScrubber::start() {
  if (thread_.joinable() || options_.interval.count() <= 0) return;
  thread_ = std::jthread([this](std::stop_token st) { loop(st); });
}

void WeightScrubber::stop() {
  if (!thread_.joinable()) return;
  thread_.request_stop();
  wake_.notify_all();
  thread_.join();
  thread_ = std::jthread();
}

void WeightScrubber::loop(std::stop_token st) {
  std::unique_lock lock(wake_mutex_);
  while (!st.stop_requested()) {
    // Sleep first so construction + start() doesn't race member setup in
    // tests that inject faults immediately after building the runtime.
    if (wake_.wait_for(lock, st, options_.interval,
                       [&st] { return st.stop_requested(); })) {
      return;
    }
    lock.unlock();
    scrub_once();
    lock.lock();
  }
}

ScrubReport WeightScrubber::scrub_once() {
  ScrubReport report;
  for (std::size_t m = 0; m < ensemble_.size(); ++m) {
    bool fenced_now = false;
    {
      // Per-member lock: a sweep never stalls the batcher for longer than
      // one member's CRC pass (or one reload when healing).
      std::lock_guard guard(swap_mutex_);
      if (health_.state(m) == MemberState::fenced) continue;
      mr::Member& member = ensemble_.member(m);
      ++report.members_checked;
      if (member.params_intact()) continue;

      ++report.mismatches;
      metrics_.on_crc_mismatch(m);
      const mr::Member::ReloadStatus status = member.reload_params();
      if (status == mr::Member::ReloadStatus::healed) {
        ++report.reloads;
        metrics_.on_weight_reload(m);
      } else {
        // No archive, unreadable archive, or an archive that no longer
        // reproduces the blessed CRCs: the member has no trustworthy
        // weight source left — remove it from the quorum permanently.
        ++report.fenced;
        health_.force_fence(m);
        fenced_now = true;
      }
    }
    // Outside the swap-mutex scope: the hook may wake the replacer, whose
    // swap then proceeds without waiting on this sweep.
    if (fenced_now && on_fence_) on_fence_();
  }
  metrics_.on_scrub_cycle();
  return report;
}

}  // namespace pgmr::runtime
