// MpmcQueue: a bounded, blocking multi-producer/multi-consumer queue.
//
// The serving runtime's request path: submitters push (blocking when the
// queue is full, which is the runtime's backpressure mechanism) and the
// batcher pops with a deadline so it can close out a partial batch when
// max_delay expires. close() wakes everyone: pending pushes fail, pops
// drain the remaining items and then return nullopt.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace pgmr::runtime {

template <typename T>
class MpmcQueue {
 public:
  /// A zero capacity would deadlock every push; clamp to one slot.
  explicit MpmcQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks while full; returns false (dropping `item`) once closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return pop_locked();
  }

  /// Like pop(), but gives up at `deadline` (returns nullopt on timeout).
  template <typename Clock, typename Duration>
  std::optional<T> pop_until(
      const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_until(lock, deadline,
                          [this] { return closed_ || !items_.empty(); });
    return pop_locked();
  }

  /// Rejects future pushes and wakes all waiters. Items already queued
  /// remain poppable (consumers drain, then see nullopt).
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  std::optional<T> pop_locked() {
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    not_full_.notify_one();
    return out;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pgmr::runtime
