// ThreadPool: a fixed set of std::jthread workers draining a shared task
// queue. Built for the serving runtime's per-member fan-out but generic —
// future sharding/async PRs can reuse it as-is.
//
// Two entry points:
//   submit(fn)         fire-and-track; returns a future for join/rethrow.
//   parallel_for(n,fn) blocking indexed fan-out; rethrows the first
//                      iteration failure. Exposed as an mr::Executor via
//                      executor(), which is how the ensemble runs members
//                      across workers without depending on this header.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "mr/executor.h"

namespace pgmr::runtime {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least one).
  explicit ThreadPool(std::size_t threads);

  /// Waits for queued tasks' completion signals to fire, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task; the future reports completion or rethrows.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(0..n-1) across the workers and waits for all of them. The
  /// first exception (lowest-indexed is not guaranteed) is rethrown after
  /// every iteration finished, so no fn is ever abandoned mid-flight.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// This pool as the ensemble-facing parallel-for seam.
  mr::Executor executor();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;  // last member: joins before the rest die
};

}  // namespace pgmr::runtime
