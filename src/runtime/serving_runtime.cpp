#include "runtime/serving_runtime.h"

#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pgmr::runtime {

namespace {

std::size_t clamped(std::size_t v) { return v == 0 ? 1 : v; }

}  // namespace

ServingRuntime::ServingRuntime(polygraph::PolygraphSystem system,
                               RuntimeOptions options)
    : system_(std::move(system)),
      options_{clamped(options.threads), clamped(options.max_batch),
               options.max_delay, clamped(options.queue_capacity)},
      metrics_(system_.ensemble().size()),
      queue_(options_.queue_capacity),
      pool_(options_.threads),
      batcher_([this] { batcher_loop(); }) {}

ServingRuntime::~ServingRuntime() { shutdown(); }

ServingRuntime::Request ServingRuntime::make_request(Tensor image) const {
  if (image.shape().rank() != 4 || image.shape()[0] != 1) {
    throw std::invalid_argument("ServingRuntime: expected a [1,C,H,W] image");
  }
  Request r;
  r.image = std::move(image);
  r.enqueued = std::chrono::steady_clock::now();
  return r;
}

std::future<polygraph::Verdict> ServingRuntime::submit(Tensor image) {
  if (stopped_.load(std::memory_order_acquire)) {
    throw std::runtime_error("ServingRuntime::submit after shutdown");
  }
  Request r = make_request(std::move(image));
  std::future<polygraph::Verdict> future = r.promise.get_future();
  if (!queue_.push(std::move(r))) {  // lost the race with shutdown()
    metrics_.on_rejected();
    throw std::runtime_error("ServingRuntime::submit after shutdown");
  }
  metrics_.on_submitted();
  return future;
}

std::optional<std::future<polygraph::Verdict>> ServingRuntime::try_submit(
    Tensor image) {
  if (stopped_.load(std::memory_order_acquire)) {
    metrics_.on_rejected();
    return std::nullopt;
  }
  Request r = make_request(std::move(image));
  std::future<polygraph::Verdict> future = r.promise.get_future();
  if (!queue_.try_push(std::move(r))) {
    metrics_.on_rejected();
    return std::nullopt;
  }
  metrics_.on_submitted();
  return future;
}

void ServingRuntime::shutdown() {
  stopped_.store(true, std::memory_order_release);
  queue_.close();
  if (batcher_.joinable()) batcher_.join();
}

void ServingRuntime::batcher_loop() {
  while (std::optional<Request> first = queue_.pop()) {
    std::vector<Request> batch;
    batch.reserve(options_.max_batch);
    batch.push_back(std::move(*first));
    const auto deadline =
        std::chrono::steady_clock::now() + options_.max_delay;
    while (batch.size() < options_.max_batch) {
      std::optional<Request> next = queue_.pop_until(deadline);
      if (!next) break;  // linger expired, or closed and drained
      batch.push_back(std::move(*next));
    }
    run_batch(batch);
  }
}

void ServingRuntime::run_batch(std::vector<Request>& batch) {
  // Requests whose geometry disagrees with the batch head fail alone
  // instead of poisoning the whole batch.
  const Shape& head = batch.front().image.shape();
  std::vector<Request*> live;
  live.reserve(batch.size());
  for (Request& r : batch) {
    if (r.image.shape() == head) {
      live.push_back(&r);
    } else {
      r.promise.set_exception(std::make_exception_ptr(std::invalid_argument(
          "ServingRuntime: request shape differs from batch head")));
    }
  }

  const std::int64_t n = static_cast<std::int64_t>(live.size());
  Tensor images(Shape{n, head[1], head[2], head[3]});
  const std::int64_t stride = head.numel();  // [1,C,H,W] elements per image
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(images.data() + i * stride,
                live[static_cast<std::size_t>(i)]->image.data(),
                static_cast<std::size_t>(stride) * sizeof(float));
  }

  std::vector<polygraph::Verdict> verdicts;
  try {
    verdicts = system_.predict_batch(images, pool_.executor());
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (Request* r : live) r->promise.set_exception(error);
    return;
  }

  metrics_.on_batch(static_cast<std::uint64_t>(n));
  const auto now = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < n; ++i) {
    Request& r = *live[static_cast<std::size_t>(i)];
    const polygraph::Verdict& v = verdicts[static_cast<std::size_t>(i)];
    record_verdict(v);
    metrics_.on_latency_us(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - r.enqueued)
            .count()));
    r.promise.set_value(v);
  }
}

void ServingRuntime::record_verdict(const polygraph::Verdict& verdict) {
  metrics_.on_verdict(verdict.reliable);
  if (system_.staged()) {
    // Only the activated prefix of the priority order did chargeable work.
    const std::vector<std::size_t>& priority = system_.priority();
    for (int k = 0; k < verdict.activated; ++k) {
      metrics_.on_member_activated(priority[static_cast<std::size_t>(k)]);
    }
  } else {
    for (std::size_t m = 0; m < metrics_.members(); ++m) {
      metrics_.on_member_activated(m);
    }
  }
}

}  // namespace pgmr::runtime
