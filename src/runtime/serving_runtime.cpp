#include "runtime/serving_runtime.h"

#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pgmr::runtime {

namespace {

std::size_t clamped(std::size_t v) { return v == 0 ? 1 : v; }

/// Zero-valued sizing knobs mean "minimum", not "nothing": clamp them
/// before any pipeline component is built from them.
RuntimeOptions normalized(RuntimeOptions o) {
  o.threads = clamped(o.threads);
  o.max_batch = clamped(o.max_batch);
  o.queue_capacity = clamped(o.queue_capacity);
  return o;
}

}  // namespace

ServingRuntime::ServingRuntime(polygraph::PolygraphSystem system,
                               RuntimeOptions options)
    : system_(std::move(system)),
      options_(normalized(std::move(options))),
      metrics_(system_.ensemble().size()),
      health_(system_.ensemble().size(),
              MemberHealth::Options{options_.quarantine_after,
                                    options_.quarantine_cooldown,
                                    options_.fence_after_quarantines}),
      queue_(options_.queue_capacity),
      pool_(options_.threads),
      batcher_([this] { batcher_loop(); }) {
  if (!options_.protection_per_member.empty() &&
      options_.protection_per_member.size() != system_.ensemble().size()) {
    throw std::invalid_argument(
        "ServingRuntime: protection_per_member size != ensemble size");
  }
  // Apply the configured ABFT protection before any request can arrive;
  // the weights are fresh from the zoo here, so re-blessing is safe. A
  // per-member plan (from the cost-driven planner) overrides the uniform
  // level; replacements inherit their slot's level via the replacer.
  std::vector<nn::Protection> levels(
      system_.ensemble().size(), options_.protection);
  if (!options_.protection_per_member.empty()) {
    levels = options_.protection_per_member;
  }
  for (std::size_t m = 0; m < system_.ensemble().size(); ++m) {
    system_.ensemble().member(m).set_protection(levels[m]);
  }
  scrubber_ = std::make_unique<WeightScrubber>(
      system_.ensemble(), health_, metrics_, swap_mutex_,
      WeightScrubber::Options{options_.scrub_interval,
                              options_.scrub_max_tensors,
                              options_.scrub_max_hold,
                              options_.scrub_max_chunks});
  replacer_ = std::make_unique<MemberReplacer>(
      system_.ensemble(), health_, metrics_, swap_mutex_,
      std::move(levels), options_.replacement);
  scrubber_->set_on_fence([this] { on_member_fenced(); });
  if (options_.scrub_interval.count() > 0) scrubber_->start();
  if (options_.replacement.enabled) replacer_->start();
}

ServingRuntime::~ServingRuntime() { shutdown(); }

ServingRuntime::Request ServingRuntime::make_request(
    Tensor image,
    std::optional<std::chrono::steady_clock::time_point> deadline) const {
  if (image.shape().rank() != 4 || image.shape()[0] != 1) {
    throw std::invalid_argument("ServingRuntime: expected a [1,C,H,W] image");
  }
  Request r;
  r.image = std::move(image);
  r.enqueued = std::chrono::steady_clock::now();
  r.deadline = deadline;
  return r;
}

std::future<polygraph::Verdict> ServingRuntime::submit(
    Tensor image,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  if (stopped_.load(std::memory_order_acquire)) {
    throw std::runtime_error("ServingRuntime::submit after shutdown");
  }
  Request r = make_request(std::move(image), deadline);
  std::future<polygraph::Verdict> future = r.promise.get_future();
  if (!queue_.push(std::move(r))) {  // lost the race with shutdown()
    metrics_.on_rejected();
    throw std::runtime_error("ServingRuntime::submit after shutdown");
  }
  metrics_.on_submitted();
  return future;
}

std::optional<std::future<polygraph::Verdict>> ServingRuntime::try_submit(
    Tensor image,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  if (stopped_.load(std::memory_order_acquire)) {
    metrics_.on_rejected();
    return std::nullopt;
  }
  Request r = make_request(std::move(image), deadline);
  std::future<polygraph::Verdict> future = r.promise.get_future();
  if (!queue_.try_push(std::move(r))) {
    metrics_.on_rejected();
    return std::nullopt;
  }
  metrics_.on_submitted();
  return future;
}

void ServingRuntime::shutdown() {
  stopped_.store(true, std::memory_order_release);
  queue_.close();
  if (batcher_.joinable()) batcher_.join();
  if (scrubber_) scrubber_->stop();
  // Last: an in-flight replacement training run is cancelled through its
  // stop_token and never published (see zoo::TrainConfig::cancelled).
  if (replacer_) replacer_->stop();
}

void ServingRuntime::on_member_fenced() {
  metrics_.set_quorum_size(health_.in_service_count());
  if (replacer_) replacer_->notify();
}

void ServingRuntime::batcher_loop() {
  while (std::optional<Request> first = queue_.pop()) {
    std::vector<Request> batch;
    batch.reserve(options_.max_batch);
    batch.push_back(std::move(*first));
    const auto deadline =
        std::chrono::steady_clock::now() + options_.max_delay;
    while (batch.size() < options_.max_batch) {
      std::optional<Request> next = queue_.pop_until(deadline);
      if (!next) break;  // linger expired, or closed and drained
      batch.push_back(std::move(*next));
    }
    run_batch(batch);
  }
}

void ServingRuntime::run_batch(std::vector<Request>& batch) {
  // Load shedding: requests whose deadline already passed get a distinct
  // error without spending any inference on them. Then requests whose
  // geometry disagrees with the (surviving) batch head fail alone instead
  // of poisoning the whole batch.
  const auto entered = std::chrono::steady_clock::now();
  std::vector<Request*> live;
  live.reserve(batch.size());
  const Shape* head = nullptr;
  for (Request& r : batch) {
    if (r.deadline && *r.deadline < entered) {
      metrics_.on_shed();
      r.promise.set_exception(std::make_exception_ptr(DeadlineExceeded()));
      continue;
    }
    if (head == nullptr) head = &r.image.shape();
    if (r.image.shape() == *head) {
      live.push_back(&r);
    } else {
      r.promise.set_exception(std::make_exception_ptr(std::invalid_argument(
          "ServingRuntime: request shape differs from batch head")));
    }
  }
  if (live.empty()) return;  // everything shed or rejected

  const std::int64_t n = static_cast<std::int64_t>(live.size());
  Tensor images(Shape{n, (*head)[1], (*head)[2], (*head)[3]});
  const std::int64_t stride = head->numel();  // [1,C,H,W] elements per image
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(images.data() + i * stride,
                live[static_cast<std::size_t>(i)]->image.data(),
                static_cast<std::size_t>(stride) * sizeof(float));
  }

  // Member fault domains + circuit breaker: quarantined members are
  // skipped via the mask; per-member faults are isolated inside
  // predict_batch_resilient. Only a whole-ensemble failure (every active
  // member threw — indistinguishable from a poison input) escapes as an
  // exception, and deliberately does not count against member health.
  // The swap mutex keeps the scrubber from reloading (or fencing) a member
  // mid-batch: weights are immutable for the duration of the inference and
  // the health updates that follow it.
  std::unique_lock swap_guard(swap_mutex_);
  const std::vector<bool> mask = health_.run_mask(entered);
  polygraph::BatchReport report;
  try {
    report = system_.predict_batch_resilient(images, mask, pool_.executor());
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (Request* r : live) r->promise.set_exception(error);
    return;
  }

  const auto now = std::chrono::steady_clock::now();
  bool fenced_this_batch = false;
  for (std::size_t m = 0; m < report.member_faults.size(); ++m) {
    const mr::MemberFault fault = report.member_faults[m];
    if (fault == mr::MemberFault::skipped) continue;
    const bool ok = fault == mr::MemberFault::none;
    if (!ok) metrics_.on_member_fault(m);
    if (health_.on_result(m, ok, now)) metrics_.on_quarantine(m);
    // Breaker escalation (fence_after_quarantines) happens inside
    // on_result; a member that ran this batch but is fenced now was
    // fenced by it — already-fenced members never appear in the mask.
    if (!ok && health_.state(m) == MemberState::fenced) {
      fenced_this_batch = true;
    }
  }
  swap_guard.unlock();
  if (fenced_this_batch) on_member_fenced();

  metrics_.on_batch(static_cast<std::uint64_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    Request& r = *live[static_cast<std::size_t>(i)];
    const polygraph::Verdict& v =
        report.verdicts[static_cast<std::size_t>(i)];
    record_verdict(v, report);
    metrics_.on_latency_us(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - r.enqueued)
            .count()));
    r.promise.set_value(v);
  }
}

void ServingRuntime::record_verdict(const polygraph::Verdict& verdict,
                                    const polygraph::BatchReport& report) {
  metrics_.on_verdict(verdict.reliable);
  if (verdict.degraded) {
    metrics_.on_degraded_verdict();
    // Charge exactly the members that contributed under degraded quorum
    // (RADE staging is suspended while degraded).
    for (std::size_t m = 0; m < report.member_faults.size(); ++m) {
      if (report.member_faults[m] == mr::MemberFault::none) {
        metrics_.on_member_activated(m);
      }
    }
  } else if (system_.staged()) {
    // Only the activated prefix of the priority order did chargeable work.
    const std::vector<std::size_t>& priority = system_.priority();
    for (int k = 0; k < verdict.activated; ++k) {
      metrics_.on_member_activated(priority[static_cast<std::size_t>(k)]);
    }
  } else {
    for (std::size_t m = 0; m < metrics_.members(); ++m) {
      metrics_.on_member_activated(m);
    }
  }
}

}  // namespace pgmr::runtime
