#include "runtime/slo.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pgmr::runtime {

SloTracker::SloTracker(std::int64_t window) : window_(window) {
  if (window < 1) throw std::invalid_argument("slo: window must be >= 1");
}

void SloTracker::record(bool served, bool reliable, bool fp) {
  ++submitted_;
  ++current_.submitted;
  if (served) {
    ++served_;
    ++current_.served;
    if (reliable) {
      ++reliable_;
      ++current_.reliable;
    }
    if (fp) {
      ++fp_;
      ++current_.fp;
    }
  }
  if (current_.submitted == window_) {
    full_.push_back(current_);
    current_ = Window{};
  }
}

std::vector<SloTracker::Window> SloTracker::windows() const {
  std::vector<Window> all = full_;
  if (current_.submitted > 0) all.push_back(current_);
  return all;
}

std::string SloReport::to_string() const {
  std::ostringstream out;
  out << "  availability        " << availability << " (worst window "
      << worst_window_availability << ")  ["
      << (availability_ok ? "ok" : "VIOLATION") << "]\n";
  out << "  fp drift            " << fp_drift_pp << " pp (run " << fp_rate
      << " vs reference " << reference_fp_rate << ")  ["
      << (fp_drift_ok ? "ok" : "VIOLATION") << "]\n";
  out << "  recovery            " << longest_impact_run
      << " consecutive impacted window(s) of " << impacted_windows
      << " impacted / " << windows << " total  ["
      << (recovery_ok ? "ok" : "VIOLATION") << "]";
  return out.str();
}

SloReport evaluate_slo(const SloTracker& tracker, double reference_fp_rate,
                       const SloSpec& spec) {
  SloReport report;
  report.reference_fp_rate = reference_fp_rate;
  report.availability =
      tracker.submitted()
          ? static_cast<double>(tracker.served()) /
                static_cast<double>(tracker.submitted())
          : 1.0;
  report.fp_rate = tracker.served()
                       ? static_cast<double>(tracker.fp()) /
                             static_cast<double>(tracker.served())
                       : 0.0;
  report.fp_drift_pp = (report.fp_rate - reference_fp_rate) * 100.0;

  std::int64_t run = 0;
  for (const SloTracker::Window& w : tracker.windows()) {
    ++report.windows;
    report.worst_window_availability =
        std::min(report.worst_window_availability, w.availability());
    if (w.served < w.submitted) {
      ++report.impacted_windows;
      ++run;
      report.longest_impact_run = std::max(report.longest_impact_run, run);
    } else {
      run = 0;
    }
  }

  report.availability_ok =
      report.worst_window_availability >= spec.availability_floor;
  report.fp_drift_ok = report.fp_drift_pp <= spec.fp_drift_pp;
  report.recovery_ok = report.longest_impact_run <= spec.recovery_windows;
  return report;
}

}  // namespace pgmr::runtime
