// Embedded serving metrics: atomic counters plus a fixed-bucket latency
// histogram, so runtime behaviour is observable without external tooling.
//
// Writers (submitters, the batcher) bump atomics with relaxed ordering —
// metrics never synchronize the data path. Readers take a snapshot(),
// which is a plain value: consistent enough for reporting, free of locks.
//
// Schema (all counts cumulative since construction):
//   requests_submitted / completed / rejected
//   requests_shed                               -> deadline-expired drops
//   batches, batch_size_sum, max_batch_size     -> coalescing behaviour
//   reliable / unreliable                       -> verdict quality split
//   degraded_verdicts                           -> served without full quorum
//   member_activations[m]                       -> RADE activation counts
//   member_faults[m] / quarantine_events[m]     -> fault-isolation activity
//   scrub_cycles                                -> weight-scrubber sweeps
//   crc_mismatches[m] / weight_reloads[m]       -> scrubber detections/heals
//   scrub_hold histogram (per-acquisition swap-mutex hold, microseconds)
//   replacements_started / completed / failed   -> member-replacer activity
//   quorum_size (gauge)                         -> members not fenced
//   latency histogram (end-to-end, microseconds, geometric buckets)
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pgmr::runtime {

/// Geometric latency buckets: bucket b counts samples with
/// micros <= kLatencyBucketBounds[b]; the last bucket is unbounded.
inline constexpr std::array<std::uint64_t, 16> kLatencyBucketBounds = {
    50,     100,    200,     400,     800,     1600,     3200,     6400,
    12800,  25600,  51200,   102400,  204800,  409600,   819200,
    UINT64_MAX};

/// A plain-value copy of every metric, safe to pass around and print.
struct MetricsSnapshot {
  std::uint64_t requests_submitted = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t requests_shed = 0;
  std::uint64_t batches = 0;
  std::uint64_t batch_size_sum = 0;
  std::uint64_t max_batch_size = 0;
  std::uint64_t reliable = 0;
  std::uint64_t unreliable = 0;
  std::uint64_t degraded_verdicts = 0;
  std::uint64_t scrub_cycles = 0;
  std::uint64_t replacements_started = 0;
  std::uint64_t replacements_completed = 0;
  std::uint64_t replacements_failed = 0;
  std::uint64_t quorum_size = 0;  ///< gauge: members currently in service
  std::vector<std::uint64_t> member_activations;
  std::vector<std::uint64_t> member_faults;
  std::vector<std::uint64_t> quarantine_events;
  std::vector<std::uint64_t> crc_mismatches;
  std::vector<std::uint64_t> weight_reloads;
  std::array<std::uint64_t, kLatencyBucketBounds.size()> latency_buckets{};
  /// Swap-mutex hold time per scrubber acquisition (one sample per member
  /// per sweep), same geometric bounds as the latency histogram.
  std::array<std::uint64_t, kLatencyBucketBounds.size()> scrub_hold_buckets{};

  double mean_batch_size() const;

  /// Latency value (micros) at quantile q in [0,1], estimated as the upper
  /// bound of the bucket containing that quantile (conservative).
  std::uint64_t latency_quantile_us(double q) const;

  /// Scrub hold time (micros) at quantile q, same estimator as latency.
  std::uint64_t scrub_hold_quantile_us(double q) const;

  /// Multi-line "name value" text dump, one metric per line.
  std::string to_string() const;
};

/// Cross-shard aggregation: counters sum, histograms merge bucket-wise
/// (every registry shares kLatencyBucketBounds, so merged quantiles equal
/// the quantiles of the pooled samples), per-member vectors sum slot-wise
/// (padded to the widest ensemble), max_batch_size takes the max and the
/// quorum_size gauge sums — the fleet's total members in service. The
/// fleet router reports through this so serve-bench-style reports work
/// over N runtime replicas unchanged.
MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts);

/// The live registry the runtime writes into.
class MetricsRegistry {
 public:
  /// `members` sizes the per-member activation counters.
  explicit MetricsRegistry(std::size_t members);

  void on_submitted() { add(requests_submitted_); }
  void on_rejected() { add(requests_rejected_); }
  void on_shed() { add(requests_shed_); }

  void on_batch(std::uint64_t size);
  void on_verdict(bool reliable) {
    add(reliable ? reliable_ : unreliable_);
    add(requests_completed_);
  }
  void on_degraded_verdict() { add(degraded_verdicts_); }
  void on_member_activated(std::size_t member) {
    add(member_activations_[member]);
  }
  void on_member_fault(std::size_t member) { add(member_faults_[member]); }
  void on_quarantine(std::size_t member) { add(quarantine_events_[member]); }
  void on_scrub_cycle() { add(scrub_cycles_); }
  void on_crc_mismatch(std::size_t member) { add(crc_mismatches_[member]); }
  void on_weight_reload(std::size_t member) { add(weight_reloads_[member]); }
  void on_replacement_started() { add(replacements_started_); }
  void on_replacement_completed() { add(replacements_completed_); }
  void on_replacement_failed() { add(replacements_failed_); }
  /// Gauge, not a counter: the current in-service member count. Updated
  /// whenever a member is fenced or a replacement restores the slot.
  void set_quorum_size(std::uint64_t members) {
    quorum_size_.store(members, std::memory_order_relaxed);
  }
  void on_latency_us(std::uint64_t micros);
  void on_scrub_hold_us(std::uint64_t micros);

  std::size_t members() const { return member_activations_.size(); }

  /// Requests accepted so far (relaxed read; cheap enough for routing).
  std::uint64_t submitted() const {
    return requests_submitted_.load(std::memory_order_relaxed);
  }

  /// Accepted requests not yet answered or shed — the shard-load signal
  /// the fleet router's least-loaded spill uses. The three relaxed loads
  /// are not a consistent cut, so the difference saturates at zero.
  std::uint64_t in_flight() const {
    const std::uint64_t in = submitted();
    const std::uint64_t out =
        requests_completed_.load(std::memory_order_relaxed) +
        requests_shed_.load(std::memory_order_relaxed);
    return in > out ? in - out : 0;
  }

  MetricsSnapshot snapshot() const;

 private:
  static void add(std::atomic<std::uint64_t>& counter,
                  std::uint64_t delta = 1) {
    counter.fetch_add(delta, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> requests_submitted_{0};
  std::atomic<std::uint64_t> requests_completed_{0};
  std::atomic<std::uint64_t> requests_rejected_{0};
  std::atomic<std::uint64_t> requests_shed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batch_size_sum_{0};
  std::atomic<std::uint64_t> max_batch_size_{0};
  std::atomic<std::uint64_t> reliable_{0};
  std::atomic<std::uint64_t> unreliable_{0};
  std::atomic<std::uint64_t> degraded_verdicts_{0};
  std::atomic<std::uint64_t> scrub_cycles_{0};
  std::atomic<std::uint64_t> replacements_started_{0};
  std::atomic<std::uint64_t> replacements_completed_{0};
  std::atomic<std::uint64_t> replacements_failed_{0};
  std::atomic<std::uint64_t> quorum_size_{0};
  std::vector<std::atomic<std::uint64_t>> member_activations_;
  std::vector<std::atomic<std::uint64_t>> member_faults_;
  std::vector<std::atomic<std::uint64_t>> quarantine_events_;
  std::vector<std::atomic<std::uint64_t>> crc_mismatches_;
  std::vector<std::atomic<std::uint64_t>> weight_reloads_;
  std::array<std::atomic<std::uint64_t>, kLatencyBucketBounds.size()>
      latency_buckets_{};
  std::array<std::atomic<std::uint64_t>, kLatencyBucketBounds.size()>
      scrub_hold_buckets_{};
};

}  // namespace pgmr::runtime
