#include "runtime/thread_pool.h"

#include <atomic>
#include <exception>

namespace pgmr::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  // jthread joins on destruction; workers drain the queue first, so every
  // submit() future and parallel_for waiter completes before teardown.
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.emplace_back([packaged] { (*packaged)(); });
  }
  ready_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {  // nothing to fan out; skip the queue round-trip
    fn(0);
    return;
  }
  struct Join {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto join = std::make_shared<Join>();
  join->remaining = n;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < n; ++i) {
      tasks_.emplace_back([join, &fn, i] {
        std::exception_ptr error;
        try {
          fn(i);
        } catch (...) {
          error = std::current_exception();
        }
        std::lock_guard jl(join->mutex);
        if (error && !join->error) join->error = error;
        if (--join->remaining == 0) join->done.notify_all();
      });
    }
  }
  ready_.notify_all();
  std::unique_lock lock(join->mutex);
  join->done.wait(lock, [&] { return join->remaining == 0; });
  if (join->error) std::rethrow_exception(join->error);
}

mr::Executor ThreadPool::executor() {
  return [this](std::size_t n, const std::function<void(std::size_t)>& fn) {
    parallel_for(n, fn);
  };
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and fully drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace pgmr::runtime
