#include "runtime/health.h"

#include <algorithm>

namespace pgmr::runtime {

const char* to_string(MemberState state) {
  switch (state) {
    case MemberState::healthy: return "healthy";
    case MemberState::quarantined: return "quarantined";
    case MemberState::half_open: return "half_open";
    case MemberState::fenced: return "fenced";
  }
  return "unknown";
}

MemberHealth::MemberHealth(std::size_t members, Options options)
    : options_{std::max(1, options.quarantine_after),
               std::max(options.cooldown, std::chrono::milliseconds(0)),
               std::max(0, options.fence_after_quarantines)},
      states_(members),
      faults_(members),
      trips_(members),
      probe_at_(members) {}

std::vector<bool> MemberHealth::run_mask(
    std::chrono::steady_clock::time_point now) {
  std::vector<bool> mask(states_.size());
  for (std::size_t m = 0; m < states_.size(); ++m) {
    switch (state(m)) {
      case MemberState::healthy:
      case MemberState::half_open:
        mask[m] = true;
        break;
      case MemberState::quarantined:
        if (now >= probe_at_[m]) {
          set_state(m, MemberState::half_open);
          mask[m] = true;
        }
        break;
      case MemberState::fenced:
        break;  // terminal: never runs, never probes
    }
  }
  return mask;
}

bool MemberHealth::on_result(std::size_t member, bool ok,
                             std::chrono::steady_clock::time_point now) {
  if (state(member) == MemberState::fenced) return false;  // terminal
  if (ok) {
    faults_[member].store(0, std::memory_order_relaxed);
    set_state(member, MemberState::healthy);
    return false;
  }
  const int streak =
      faults_[member].fetch_add(1, std::memory_order_relaxed) + 1;
  const bool trip = state(member) == MemberState::half_open ||
                    streak >= options_.quarantine_after;
  if (trip) {
    set_state(member, MemberState::quarantined);
    probe_at_[member] = now + options_.cooldown;
    // Breaker escalation: a member that keeps earning fresh quarantines is
    // broken, not unlucky — fence it so the replacer can rebuild the slot.
    const int trips = trips_[member].fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.fence_after_quarantines > 0 &&
        trips >= options_.fence_after_quarantines) {
      set_state(member, MemberState::fenced);
    }
  }
  return trip;
}

void MemberHealth::on_replaced(std::size_t member) {
  faults_[member].store(0, std::memory_order_relaxed);
  trips_[member].store(0, std::memory_order_relaxed);
  set_state(member, MemberState::half_open);
}

std::size_t MemberHealth::quarantined_count() const {
  std::size_t n = 0;
  for (std::size_t m = 0; m < states_.size(); ++m) {
    if (state(m) == MemberState::quarantined) ++n;
  }
  return n;
}

std::size_t MemberHealth::fenced_count() const {
  std::size_t n = 0;
  for (std::size_t m = 0; m < states_.size(); ++m) {
    if (state(m) == MemberState::fenced) ++n;
  }
  return n;
}

}  // namespace pgmr::runtime
