// Windowed SLO accounting for long-running campaigns.
//
// A day-in-production campaign cannot gate on end-of-run averages alone: a
// shard outage that blacks out ten minutes of traffic disappears into a
// day-long mean. The tracker therefore buckets the request stream into
// fixed-size windows (counted in requests, not wall time, so a replay of
// the same trace produces the identical window series regardless of
// machine speed) and the evaluator gates on:
//   * worst-window availability — no window may dip below the floor the
//     fleet's redundancy promises ((N-1)/N during a single-shard outage);
//   * FP drift — the reliable-but-wrong rate may not drift more than a
//     budgeted number of percentage points above the never-faulted
//     reference run;
//   * recovery window — an impact run (consecutive windows with any lost
//     request) must end within a bounded number of windows: the breaker
//     must detect, quarantine and re-route faster than the budget.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pgmr::runtime {

/// Gate thresholds for one campaign.
struct SloSpec {
  std::int64_t window = 64;          ///< requests per accounting window
  double availability_floor = 0.75;  ///< min per-window served/submitted
  double fp_drift_pp = 0.5;          ///< max FP drift vs reference, in pp
  std::int64_t recovery_windows = 3; ///< max consecutive impacted windows
};

/// Accumulates per-request outcomes into fixed-size windows. Single
/// threaded by design: the campaign driver owns the request loop.
class SloTracker {
 public:
  explicit SloTracker(std::int64_t window);

  /// Records one request. `served` = a verdict came back (false: shed,
  /// refused, deadline-exceeded, fleet-unavailable). `reliable` and `fp`
  /// only apply to served requests; `fp` marks a reliable-but-wrong
  /// verdict (the paper's false positive).
  void record(bool served, bool reliable, bool fp);

  struct Window {
    std::int64_t submitted = 0;
    std::int64_t served = 0;
    std::int64_t reliable = 0;
    std::int64_t fp = 0;

    double availability() const {
      return submitted ? static_cast<double>(served) /
                             static_cast<double>(submitted)
                       : 1.0;
    }
  };

  /// All windows so far, including the trailing partial one (if any).
  std::vector<Window> windows() const;

  std::int64_t submitted() const { return submitted_; }
  std::int64_t served() const { return served_; }
  std::int64_t reliable() const { return reliable_; }
  std::int64_t fp() const { return fp_; }

 private:
  std::int64_t window_;
  std::int64_t submitted_ = 0, served_ = 0, reliable_ = 0, fp_ = 0;
  std::vector<Window> full_;
  Window current_;
};

/// Evaluated gates plus the numbers behind them.
struct SloReport {
  double availability = 1.0;         ///< whole-run served/submitted
  double worst_window_availability = 1.0;
  double fp_rate = 0.0;              ///< fp/served over the whole run
  double reference_fp_rate = 0.0;
  double fp_drift_pp = 0.0;          ///< (fp_rate - reference) * 100
  std::int64_t windows = 0;
  std::int64_t impacted_windows = 0;   ///< windows with any lost request
  std::int64_t longest_impact_run = 0; ///< consecutive impacted windows

  bool availability_ok = true;
  bool fp_drift_ok = true;
  bool recovery_ok = true;
  bool pass() const { return availability_ok && fp_drift_ok && recovery_ok; }

  /// Multi-line gate table for bench output.
  std::string to_string() const;
};

/// Evaluates `tracker` against `spec`, with `reference_fp_rate` measured
/// on the never-faulted reference run of the same trace.
SloReport evaluate_slo(const SloTracker& tracker, double reference_fp_rate,
                       const SloSpec& spec);

}  // namespace pgmr::runtime
