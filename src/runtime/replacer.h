// MemberReplacer: the self-healing back end of the serving runtime.
//
// Fencing (WeightScrubber finding corrupt weights with no trustworthy
// archive, or the circuit breaker escalating a member that keeps
// re-tripping) permanently removes a *member* from the quorum — but the
// *slot* is recoverable. The replacer watches for fenced slots from a
// background thread and, for each one, asks a ReplacementFactory for a
// fresh member (typically a different preprocessor variant trained by the
// zoo, preserving Layer-1 diversity), then hot-swaps it into the live
// ensemble:
//
//   fenced slot ──(factory: train/load replacement, OFF the swap mutex)──►
//   swap under the runtime's swap mutex ──► CRCs re-blessed via
//   set_protection ──► MemberHealth::on_replaced (slot probes half-open)
//   ──► quorum restored, degraded Thr_Freq renormalization falls away
//
// Threading: the factory may train for a long time, so it runs with no
// locks held and receives a stop_token (shutdown cancels training
// cooperatively; partial weights are never published — see
// zoo::TrainConfig::cancelled). Only the final swap + health reset take
// the swap mutex, so inference is stalled for one member move, not one
// training run. A pass mutex serializes the background loop against
// replace_now(), so a slot is never rebuilt twice concurrently.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "mr/ensemble.h"
#include "runtime/health.h"
#include "runtime/metrics.h"

namespace pgmr::runtime {

/// Builds the replacement member for fenced slot `member`. Runs off the
/// swap mutex (it may train a network); must honour `cancel` and return
/// nullopt when cancelled or when no viable replacement exists. `attempt`
/// counts prior failed rebuilds of this slot, letting factories move to a
/// different variant on retry.
using ReplacementFactory = std::function<std::optional<mr::Member>(
    std::size_t member, int attempt, std::stop_token cancel)>;

/// Policy knobs for background member replacement.
struct ReplacementPolicy {
  /// Master switch; without it (or without a factory) the runtime behaves
  /// exactly as before: fenced slots stay empty and the quorum degrades.
  bool enabled = false;
  /// Fallback poll period of the background loop. Fence events also wake
  /// it immediately via notify(), so this only bounds recovery latency
  /// when a notification is lost to a race.
  std::chrono::milliseconds poll{20};
  /// Rebuild attempts per slot before giving up on it (each failed factory
  /// call burns one). A successful swap resets the slot's count.
  int max_attempts = 2;
  /// CPU budget for replacement training: at most this many factory calls
  /// run concurrently per pass (clamped >= 1). The cap keeps a multi-slot
  /// recovery from starving the batcher's worker pool on a loaded box.
  std::size_t training_threads = 1;
  /// Unix nice level for replacement-training threads (> 0 deprioritizes
  /// them below the serving threads). 0 leaves priority untouched; values
  /// are ignored on platforms without per-thread setpriority.
  int training_nice = 0;
  ReplacementFactory factory;
};

/// What one replacement pass over the fenced slots did.
struct ReplaceReport {
  std::size_t attempted = 0;  ///< factory invocations started
  std::size_t replaced = 0;   ///< slots hot-swapped and re-admitted
  std::size_t failed = 0;     ///< factory failures (nullopt / throw)
};

class MemberReplacer {
 public:
  /// All referees must outlive the replacer. `swap_mutex` is the runtime's
  /// inference-vs-mutation mutex; `protection[m]` (sized like the
  /// ensemble) is applied to slot m's replacement before it goes live
  /// (set_protection re-blesses CRCs), so per-member protection plans
  /// survive hot swaps.
  MemberReplacer(mr::Ensemble& ensemble, MemberHealth& health,
                 MetricsRegistry& metrics, std::mutex& swap_mutex,
                 std::vector<nn::Protection> protection,
                 ReplacementPolicy policy);

  ~MemberReplacer();

  MemberReplacer(const MemberReplacer&) = delete;
  MemberReplacer& operator=(const MemberReplacer&) = delete;

  /// Launches the background replacement thread. No-op when already
  /// running, when the policy is disabled, or when no factory is set.
  void start();

  /// Cancels any in-flight factory call (via its stop_token) and joins the
  /// background thread. Idempotent.
  void stop();

  bool running() const { return thread_.joinable(); }
  const ReplacementPolicy& policy() const { return policy_; }

  /// Wakes the background loop immediately (called on fence events so
  /// recovery doesn't wait out the poll period). Safe from any thread.
  void notify();

  /// One synchronous replacement pass over every fenced slot — the
  /// deterministic path tests and operators use. Requires a factory;
  /// returns an empty report without one. Serialized against the
  /// background loop, so the two never rebuild the same slot twice.
  ReplaceReport replace_now();

 private:
  void loop(std::stop_token st);
  ReplaceReport replace_fenced(std::stop_token cancel);
  bool replace_member(std::size_t member, std::stop_token cancel);

  mr::Ensemble& ensemble_;
  MemberHealth& health_;
  MetricsRegistry& metrics_;
  std::mutex& swap_mutex_;
  std::vector<nn::Protection> protection_;  ///< per-slot re-bless level
  ReplacementPolicy policy_;

  std::mutex pass_mutex_;      ///< serializes replace_now vs the loop
  std::vector<int> attempts_;  ///< per-slot failed rebuilds; pass_mutex_

  std::mutex wake_mutex_;
  std::condition_variable_any wake_;
  bool notified_ = false;  ///< wake_mutex_
  std::jthread thread_;
};

}  // namespace pgmr::runtime
