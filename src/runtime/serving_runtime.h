// ServingRuntime: the request->batch->verdict serving layer over a
// PolygraphSystem.
//
// Pipeline (one dedicated batcher thread + a worker pool):
//
//   submit(image) --> bounded MPMC queue --> dynamic batcher --> [N,C,H,W]
//       batch --> ensemble members fanned across the ThreadPool -->
//       decision engine --> promise fulfilled with the Verdict
//
// The batcher coalesces queued single-image requests into batches of up to
// max_batch, waiting at most max_delay after the first request before
// closing a partial batch. Inside a batch, parallelism is per member (the
// paper's Layer-2 networks are independent), so verdicts are bit-identical
// to the serial path regardless of thread count. One batch is in flight at
// a time, which also keeps member networks single-threaded internally.
//
// Backpressure: the queue is bounded; submit() blocks when full,
// try_submit() refuses. Shutdown drains the queue — every accepted request
// gets its verdict — then rejects new submissions.
#pragma once

#include <chrono>
#include <cstddef>
#include <future>
#include <optional>
#include <thread>

#include "polygraph/system.h"
#include "runtime/metrics.h"
#include "runtime/mpmc_queue.h"
#include "runtime/thread_pool.h"

namespace pgmr::runtime {

/// Serving knobs. Defaults favour latency (tiny batches, short delay);
/// benches crank max_batch/max_delay up to show coalescing.
struct RuntimeOptions {
  std::size_t threads = 1;              ///< worker pool size
  std::size_t max_batch = 8;            ///< batch size cap (clamped >= 1)
  std::chrono::microseconds max_delay{1000};  ///< partial-batch linger
  std::size_t queue_capacity = 256;     ///< bounded request queue
};

class ServingRuntime {
 public:
  /// Takes ownership of the (already profiled/configured) system.
  ServingRuntime(polygraph::PolygraphSystem system, RuntimeOptions options);

  /// shutdown(): drains pending requests, then stops the pipeline.
  ~ServingRuntime();

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// Enqueues one [1, C, H, W] request; blocks while the queue is full.
  /// The future carries the Verdict, or the error the batch hit. Throws
  /// std::invalid_argument on bad shape and std::runtime_error after
  /// shutdown.
  std::future<polygraph::Verdict> submit(Tensor image);

  /// Non-blocking submit; nullopt (and a rejected tick) when the queue is
  /// full or the runtime stopped.
  std::optional<std::future<polygraph::Verdict>> try_submit(Tensor image);

  /// Stops accepting requests, serves everything already queued, and joins
  /// the pipeline. Idempotent; called by the destructor.
  void shutdown();

  const RuntimeOptions& options() const { return options_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsSnapshot metrics_snapshot() const { return metrics_.snapshot(); }

  /// The owned system; reconfigure (thresholds, staging) only while no
  /// requests are in flight.
  polygraph::PolygraphSystem& system() { return system_; }

 private:
  struct Request {
    Tensor image;
    std::promise<polygraph::Verdict> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  Request make_request(Tensor image) const;
  void batcher_loop();
  void run_batch(std::vector<Request>& batch);
  void record_verdict(const polygraph::Verdict& verdict);

  polygraph::PolygraphSystem system_;
  RuntimeOptions options_;
  MetricsRegistry metrics_;
  MpmcQueue<Request> queue_;
  ThreadPool pool_;
  std::atomic<bool> stopped_{false};
  std::jthread batcher_;  // last: must die before the members it uses
};

}  // namespace pgmr::runtime
