// ServingRuntime: the request->batch->verdict serving layer over a
// PolygraphSystem.
//
// Pipeline (one dedicated batcher thread + a worker pool):
//
//   submit(image) --> bounded MPMC queue --> dynamic batcher --> [N,C,H,W]
//       batch --> ensemble members fanned across the ThreadPool -->
//       decision engine --> promise fulfilled with the Verdict
//
// The batcher coalesces queued single-image requests into batches of up to
// max_batch, waiting at most max_delay after the first request before
// closing a partial batch. Inside a batch, parallelism is per member (the
// paper's Layer-2 networks are independent), so verdicts are bit-identical
// to the serial path regardless of thread count. One batch is in flight at
// a time, which also keeps member networks single-threaded internally.
//
// Backpressure: the queue is bounded; submit() blocks when full,
// try_submit() refuses. Shutdown drains the queue — every accepted request
// gets its verdict — then rejects new submissions.
//
// Resilience (see DESIGN.md "Resilience & chaos testing"):
//  * Every member runs in its own fault domain
//    (PolygraphSystem::predict_batch_resilient): a member that throws,
//    emits NaN softmax or fails the final-FC ABFT checksum loses its vote
//    for that batch instead of failing the batch.
//  * A MemberHealth circuit breaker quarantines a member after
//    quarantine_after consecutive faults and probes it half-open after
//    quarantine_cooldown; quarantined members are skipped entirely.
//  * Verdicts decided without full quorum carry Verdict::degraded, with
//    Thr_Freq re-normalized against the surviving member count.
//  * submit() takes an optional absolute deadline; the batcher sheds
//    expired requests with a DeadlineExceeded error instead of spending
//    inference on them.
//  * Members run at a configurable ABFT protection level (off / final-FC /
//    full per-layer), and an optional background WeightScrubber re-verifies
//    parameter CRCs between batches, reloading corrupted members from their
//    zoo archives (fencing them out permanently when the archive is bad).
//  * With a ReplacementPolicy, a background MemberReplacer closes the
//    loop: fenced slots are rebuilt off the serving threads and hot-swapped
//    back in, returning the quorum to full strength (see replacer.h).
#pragma once

#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "polygraph/system.h"
#include "runtime/health.h"
#include "runtime/metrics.h"
#include "runtime/mpmc_queue.h"
#include "runtime/replacer.h"
#include "runtime/scrubber.h"
#include "runtime/thread_pool.h"

namespace pgmr::runtime {

/// The error a request's future carries when its deadline passed before
/// the batcher could serve it (load shedding).
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded() : std::runtime_error("request deadline exceeded") {}
};

/// Serving knobs. Defaults favour latency (tiny batches, short delay);
/// benches crank max_batch/max_delay up to show coalescing.
struct RuntimeOptions {
  std::size_t threads = 1;              ///< worker pool size
  std::size_t max_batch = 8;            ///< batch size cap (clamped >= 1)
  std::chrono::microseconds max_delay{1000};  ///< partial-batch linger
  std::size_t queue_capacity = 256;     ///< bounded request queue
  int quarantine_after = 3;             ///< consecutive faults to quarantine
  std::chrono::milliseconds quarantine_cooldown{250};  ///< half-open delay
  /// ABFT protection applied to every member at construction.
  nn::Protection protection = nn::Protection::final_fc;
  /// Per-member protection override (the cost-driven planner's output,
  /// see mr/protection.h). When non-empty it must match the ensemble size
  /// and takes precedence over `protection`; replacements for slot m are
  /// re-blessed at protection_per_member[m].
  std::vector<nn::Protection> protection_per_member;
  /// Background weight-scrub sweep period; <= 0 disables the scrubber
  /// (scrub_now() still verifies on demand).
  std::chrono::milliseconds scrub_interval{0};
  /// Incremental scrubbing: parameter tensors CRC'd per member per sweep
  /// (round-robin cursor). 0 checks every tensor each sweep.
  std::size_t scrub_max_tensors = 0;
  /// Resumable intra-tensor scrubbing: CRC chunks (64 KiB windows) checked
  /// per member per sweep; a sweep interrupted mid-tensor resumes at its
  /// chunk cursor. 0 disables the deterministic chunk budget.
  std::size_t scrub_max_chunks = 0;
  /// Soft per-acquisition swap-mutex hold ceiling for scrub sweeps
  /// (see WeightScrubber::Options::max_hold). 0 disables the ceiling.
  std::chrono::microseconds scrub_max_hold{0};
  /// Breaker escalation: fence a member after this many cumulative
  /// quarantine trips (it keeps failing its probes). 0 disables.
  int fence_after_quarantines = 0;
  /// Self-healing: background replacement of fenced members (see
  /// MemberReplacer). Disabled by default; enabling requires a factory.
  ReplacementPolicy replacement;
};

class ServingRuntime {
 public:
  /// Takes ownership of the (already profiled/configured) system.
  ServingRuntime(polygraph::PolygraphSystem system, RuntimeOptions options);

  /// shutdown(): drains pending requests, then stops the pipeline.
  ~ServingRuntime();

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// Enqueues one [1, C, H, W] request; blocks while the queue is full.
  /// The future carries the Verdict, or the error the batch hit. Throws
  /// std::invalid_argument on bad shape and std::runtime_error after
  /// shutdown. When `deadline` is set and passes before the batcher
  /// reaches the request, the future carries DeadlineExceeded instead.
  std::future<polygraph::Verdict> submit(
      Tensor image,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt);

  /// Non-blocking submit; nullopt (and a rejected tick) when the queue is
  /// full or the runtime stopped.
  std::optional<std::future<polygraph::Verdict>> try_submit(
      Tensor image,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt);

  /// Stops accepting requests, serves everything already queued, and joins
  /// the pipeline. Idempotent; called by the destructor.
  void shutdown();

  const RuntimeOptions& options() const { return options_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsSnapshot metrics_snapshot() const { return metrics_.snapshot(); }

  /// Live circuit-breaker state (thread-safe reads).
  const MemberHealth& health() const { return health_; }

  /// One synchronous scrub sweep (CRC verify + heal/fence); see
  /// WeightScrubber. Runs regardless of whether the background scrubber
  /// is enabled — tests and operators use this for deterministic checks.
  ScrubReport scrub_now() { return scrubber_->scrub_once(); }

  /// The background scrubber (running() tells whether sweeps are active).
  const WeightScrubber& scrubber() const { return *scrubber_; }

  /// One synchronous replacement pass over every fenced member slot; see
  /// MemberReplacer::replace_now. Works whether or not the background
  /// replacer thread is running (it needs a configured factory).
  ReplaceReport replace_now() { return replacer_->replace_now(); }

  /// The background replacer (running() tells whether the loop is active).
  const MemberReplacer& replacer() const { return *replacer_; }

  /// Runs `fn` while holding the inference-vs-mutation swap mutex, so it
  /// may safely mutate live member weights (fault-injection campaigns and
  /// tests use this; nothing else should need it). Do not submit from
  /// inside `fn` — the batcher may be blocked on this mutex.
  template <typename Fn>
  auto with_swap_lock(Fn&& fn) {
    std::lock_guard guard(swap_mutex_);
    return std::forward<Fn>(fn)();
  }

  /// The owned system; reconfigure (thresholds, staging) only while no
  /// requests are in flight.
  polygraph::PolygraphSystem& system() { return system_; }

 private:
  struct Request {
    Tensor image;
    std::promise<polygraph::Verdict> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  Request make_request(
      Tensor image,
      std::optional<std::chrono::steady_clock::time_point> deadline) const;
  void batcher_loop();
  void run_batch(std::vector<Request>& batch);
  void record_verdict(const polygraph::Verdict& verdict,
                      const polygraph::BatchReport& report);
  /// A member just left the quorum: refresh the gauge, wake the replacer.
  void on_member_fenced();

  polygraph::PolygraphSystem system_;
  RuntimeOptions options_;
  MetricsRegistry metrics_;
  MemberHealth health_;
  MpmcQueue<Request> queue_;
  ThreadPool pool_;
  /// Serializes inference (run_batch) against scrubber/replacer swaps.
  std::mutex swap_mutex_;
  std::unique_ptr<WeightScrubber> scrubber_;
  std::unique_ptr<MemberReplacer> replacer_;
  std::atomic<bool> stopped_{false};
  std::jthread batcher_;  // last: must die before the members it uses
};

}  // namespace pgmr::runtime
