#include "runtime/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pgmr::runtime {

double MetricsSnapshot::mean_batch_size() const {
  return batches ? static_cast<double>(batch_size_sum) /
                       static_cast<double>(batches)
                 : 0.0;
}

namespace {

/// Nearest-rank quantile over a geometric-bucket histogram, estimated as
/// the upper bound of the bucket containing the target rank.
std::uint64_t bucket_quantile(
    const std::array<std::uint64_t, kLatencyBucketBounds.size()>& buckets,
    double q) {
  std::uint64_t total = 0;
  for (std::uint64_t c : buckets) total += c;
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest rank r with r/total >= q (at least 1).
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= target) return kLatencyBucketBounds[b];
  }
  return kLatencyBucketBounds.back();
}

}  // namespace

std::uint64_t MetricsSnapshot::latency_quantile_us(double q) const {
  return bucket_quantile(latency_buckets, q);
}

std::uint64_t MetricsSnapshot::scrub_hold_quantile_us(double q) const {
  return bucket_quantile(scrub_hold_buckets, q);
}

std::string MetricsSnapshot::to_string() const {
  std::string out;
  char line[96];
  const auto emit = [&out, &line](const char* name, std::uint64_t v) {
    std::snprintf(line, sizeof(line), "%-24s %llu\n", name,
                  static_cast<unsigned long long>(v));
    out += line;
  };
  emit("requests_submitted", requests_submitted);
  emit("requests_completed", requests_completed);
  emit("requests_rejected", requests_rejected);
  emit("requests_shed", requests_shed);
  emit("batches", batches);
  emit("batch_size_sum", batch_size_sum);
  emit("max_batch_size", max_batch_size);
  std::snprintf(line, sizeof(line), "%-24s %.2f\n", "mean_batch_size",
                mean_batch_size());
  out += line;
  emit("reliable", reliable);
  emit("unreliable", unreliable);
  emit("degraded_verdicts", degraded_verdicts);
  for (std::size_t m = 0; m < member_activations.size(); ++m) {
    std::snprintf(line, sizeof(line), "member_activations[%zu]   %llu\n", m,
                  static_cast<unsigned long long>(member_activations[m]));
    out += line;
  }
  for (std::size_t m = 0; m < member_faults.size(); ++m) {
    std::snprintf(line, sizeof(line), "member_faults[%zu]        %llu\n", m,
                  static_cast<unsigned long long>(member_faults[m]));
    out += line;
  }
  for (std::size_t m = 0; m < quarantine_events.size(); ++m) {
    std::snprintf(line, sizeof(line), "quarantine_events[%zu]    %llu\n", m,
                  static_cast<unsigned long long>(quarantine_events[m]));
    out += line;
  }
  emit("scrub_cycles", scrub_cycles);
  emit("replacements_started", replacements_started);
  emit("replacements_completed", replacements_completed);
  emit("replacements_failed", replacements_failed);
  emit("quorum_size", quorum_size);
  for (std::size_t m = 0; m < crc_mismatches.size(); ++m) {
    std::snprintf(line, sizeof(line), "crc_mismatches[%zu]       %llu\n", m,
                  static_cast<unsigned long long>(crc_mismatches[m]));
    out += line;
  }
  for (std::size_t m = 0; m < weight_reloads.size(); ++m) {
    std::snprintf(line, sizeof(line), "weight_reloads[%zu]       %llu\n", m,
                  static_cast<unsigned long long>(weight_reloads[m]));
    out += line;
  }
  for (const double q : {0.5, 0.9, 0.99}) {
    char name[32];
    std::snprintf(name, sizeof(name), "latency_p%.0f_us", q * 100);
    emit(name, latency_quantile_us(q));
  }
  for (const double q : {0.5, 0.99}) {
    char name[32];
    std::snprintf(name, sizeof(name), "scrub_hold_p%.0f_us", q * 100);
    emit(name, scrub_hold_quantile_us(q));
  }
  return out;
}

namespace {

/// result[i] += part[i], growing result to fit (shards may differ in
/// ensemble width; absent slots count zero).
void accumulate(std::vector<std::uint64_t>& result,
                const std::vector<std::uint64_t>& part) {
  if (part.size() > result.size()) result.resize(part.size(), 0);
  for (std::size_t i = 0; i < part.size(); ++i) result[i] += part[i];
}

}  // namespace

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts) {
  MetricsSnapshot merged;
  for (const MetricsSnapshot& p : parts) {
    merged.requests_submitted += p.requests_submitted;
    merged.requests_completed += p.requests_completed;
    merged.requests_rejected += p.requests_rejected;
    merged.requests_shed += p.requests_shed;
    merged.batches += p.batches;
    merged.batch_size_sum += p.batch_size_sum;
    merged.max_batch_size = std::max(merged.max_batch_size, p.max_batch_size);
    merged.reliable += p.reliable;
    merged.unreliable += p.unreliable;
    merged.degraded_verdicts += p.degraded_verdicts;
    merged.scrub_cycles += p.scrub_cycles;
    merged.replacements_started += p.replacements_started;
    merged.replacements_completed += p.replacements_completed;
    merged.replacements_failed += p.replacements_failed;
    merged.quorum_size += p.quorum_size;
    accumulate(merged.member_activations, p.member_activations);
    accumulate(merged.member_faults, p.member_faults);
    accumulate(merged.quarantine_events, p.quarantine_events);
    accumulate(merged.crc_mismatches, p.crc_mismatches);
    accumulate(merged.weight_reloads, p.weight_reloads);
    for (std::size_t b = 0; b < p.latency_buckets.size(); ++b) {
      merged.latency_buckets[b] += p.latency_buckets[b];
    }
    for (std::size_t b = 0; b < p.scrub_hold_buckets.size(); ++b) {
      merged.scrub_hold_buckets[b] += p.scrub_hold_buckets[b];
    }
  }
  return merged;
}

MetricsRegistry::MetricsRegistry(std::size_t members)
    : quorum_size_{members},
      member_activations_(members),
      member_faults_(members),
      quarantine_events_(members),
      crc_mismatches_(members),
      weight_reloads_(members) {}

void MetricsRegistry::on_batch(std::uint64_t size) {
  add(batches_);
  add(batch_size_sum_, size);
  std::uint64_t seen = max_batch_size_.load(std::memory_order_relaxed);
  while (size > seen && !max_batch_size_.compare_exchange_weak(
                            seen, size, std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::on_latency_us(std::uint64_t micros) {
  for (std::size_t b = 0; b < kLatencyBucketBounds.size(); ++b) {
    if (micros <= kLatencyBucketBounds[b]) {
      add(latency_buckets_[b]);
      return;
    }
  }
}

void MetricsRegistry::on_scrub_hold_us(std::uint64_t micros) {
  for (std::size_t b = 0; b < kLatencyBucketBounds.size(); ++b) {
    if (micros <= kLatencyBucketBounds[b]) {
      add(scrub_hold_buckets_[b]);
      return;
    }
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  s.requests_submitted = requests_submitted_.load(std::memory_order_relaxed);
  s.requests_completed = requests_completed_.load(std::memory_order_relaxed);
  s.requests_rejected = requests_rejected_.load(std::memory_order_relaxed);
  s.requests_shed = requests_shed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batch_size_sum = batch_size_sum_.load(std::memory_order_relaxed);
  s.max_batch_size = max_batch_size_.load(std::memory_order_relaxed);
  s.reliable = reliable_.load(std::memory_order_relaxed);
  s.unreliable = unreliable_.load(std::memory_order_relaxed);
  s.degraded_verdicts = degraded_verdicts_.load(std::memory_order_relaxed);
  s.member_activations.reserve(member_activations_.size());
  for (const auto& a : member_activations_) {
    s.member_activations.push_back(a.load(std::memory_order_relaxed));
  }
  s.member_faults.reserve(member_faults_.size());
  for (const auto& f : member_faults_) {
    s.member_faults.push_back(f.load(std::memory_order_relaxed));
  }
  s.quarantine_events.reserve(quarantine_events_.size());
  for (const auto& q : quarantine_events_) {
    s.quarantine_events.push_back(q.load(std::memory_order_relaxed));
  }
  s.scrub_cycles = scrub_cycles_.load(std::memory_order_relaxed);
  s.replacements_started =
      replacements_started_.load(std::memory_order_relaxed);
  s.replacements_completed =
      replacements_completed_.load(std::memory_order_relaxed);
  s.replacements_failed = replacements_failed_.load(std::memory_order_relaxed);
  s.quorum_size = quorum_size_.load(std::memory_order_relaxed);
  s.crc_mismatches.reserve(crc_mismatches_.size());
  for (const auto& c : crc_mismatches_) {
    s.crc_mismatches.push_back(c.load(std::memory_order_relaxed));
  }
  s.weight_reloads.reserve(weight_reloads_.size());
  for (const auto& r : weight_reloads_) {
    s.weight_reloads.push_back(r.load(std::memory_order_relaxed));
  }
  for (std::size_t b = 0; b < latency_buckets_.size(); ++b) {
    s.latency_buckets[b] = latency_buckets_[b].load(std::memory_order_relaxed);
  }
  for (std::size_t b = 0; b < scrub_hold_buckets_.size(); ++b) {
    s.scrub_hold_buckets[b] =
        scrub_hold_buckets_[b].load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace pgmr::runtime
