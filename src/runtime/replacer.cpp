#include "runtime/replacer.h"

#include <algorithm>
#include <atomic>
#include <utility>

#ifdef __linux__
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace pgmr::runtime {

namespace {

/// Lowers the *calling thread's* scheduling priority (Linux exposes
/// per-thread nice via setpriority on the tid). Called only from worker
/// threads the replacer owns, never from a caller's thread.
void apply_training_nice(int level) {
#ifdef __linux__
  if (level > 0) {
    setpriority(PRIO_PROCESS, static_cast<id_t>(syscall(SYS_gettid)), level);
  }
#else
  (void)level;
#endif
}

}  // namespace

MemberReplacer::MemberReplacer(mr::Ensemble& ensemble, MemberHealth& health,
                               MetricsRegistry& metrics,
                               std::mutex& swap_mutex,
                               std::vector<nn::Protection> protection,
                               ReplacementPolicy policy)
    : ensemble_(ensemble),
      health_(health),
      metrics_(metrics),
      swap_mutex_(swap_mutex),
      protection_(std::move(protection)),
      policy_(std::move(policy)),
      attempts_(ensemble.size(), 0) {
  protection_.resize(ensemble.size(), nn::Protection::final_fc);
}

MemberReplacer::~MemberReplacer() { stop(); }

void MemberReplacer::start() {
  if (thread_.joinable() || !policy_.enabled || !policy_.factory) return;
  thread_ = std::jthread([this](std::stop_token st) { loop(st); });
}

void MemberReplacer::stop() {
  if (!thread_.joinable()) return;
  thread_.request_stop();  // also cancels the in-flight factory call
  wake_.notify_all();
  thread_.join();
  thread_ = std::jthread();
}

void MemberReplacer::notify() {
  {
    std::lock_guard guard(wake_mutex_);
    notified_ = true;
  }
  wake_.notify_all();
}

ReplaceReport MemberReplacer::replace_now() {
  if (!policy_.factory) return {};
  std::lock_guard pass(pass_mutex_);
  return replace_fenced(std::stop_token());
}

void MemberReplacer::loop(std::stop_token st) {
  std::unique_lock lock(wake_mutex_);
  while (!st.stop_requested()) {
    wake_.wait_for(lock, st, policy_.poll, [this] { return notified_; });
    notified_ = false;
    if (st.stop_requested()) return;
    lock.unlock();
    // Cheap pre-check off the pass mutex: fenced_count reads only relaxed
    // atomics, so the idle loop never contends with replace_now().
    if (health_.fenced_count() > 0) {
      std::lock_guard pass(pass_mutex_);
      replace_fenced(st);
    }
    lock.lock();
  }
}

ReplaceReport MemberReplacer::replace_fenced(std::stop_token cancel) {
  ReplaceReport report;
  std::vector<std::size_t> slots;
  for (std::size_t m = 0; m < ensemble_.size(); ++m) {
    if (health_.state(m) != MemberState::fenced) continue;
    if (attempts_[m] >= policy_.max_attempts) continue;  // slot given up on
    slots.push_back(m);
  }
  if (slots.empty()) return report;

  // Workers pull slots off a shared cursor; results land in per-slot
  // status cells so the report and attempts_ bookkeeping (pass_mutex_ is
  // held by our caller) happen single-threaded after the join. A slot
  // never claimed before cancellation stays kNotStarted and is not
  // charged an attempt.
  enum : int { kNotStarted = 0, kReplaced = 1, kFailed = 2 };
  std::vector<std::atomic<int>> status(slots.size());
  std::atomic<std::size_t> next{0};
  const auto drain = [&](bool renice) {
    if (renice) apply_training_nice(policy_.training_nice);
    for (std::size_t i = next.fetch_add(1); i < slots.size();
         i = next.fetch_add(1)) {
      if (cancel.stop_requested()) break;
      metrics_.on_replacement_started();
      status[i].store(replace_member(slots[i], cancel) ? kReplaced : kFailed,
                      std::memory_order_relaxed);
    }
  };

  const std::size_t workers = std::min(
      std::max<std::size_t>(policy_.training_threads, 1), slots.size());
  if (workers == 1 && policy_.training_nice <= 0) {
    drain(false);  // inline; never renice a thread we don't own
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&drain] { drain(true); });
    }
    pool.clear();  // joins every worker
  }

  for (std::size_t i = 0; i < slots.size(); ++i) {
    const int outcome = status[i].load(std::memory_order_relaxed);
    if (outcome == kNotStarted) continue;
    ++report.attempted;
    if (outcome == kReplaced) {
      ++report.replaced;
      attempts_[slots[i]] = 0;  // the new member starts with a clean record
    } else {
      ++report.failed;
      ++attempts_[slots[i]];
      metrics_.on_replacement_failed();
    }
  }
  return report;
}

bool MemberReplacer::replace_member(std::size_t member,
                                    std::stop_token cancel) {
  std::optional<mr::Member> fresh;
  try {
    // No locks held: the factory may train for seconds while batches and
    // scrub sweeps keep flowing on the degraded quorum.
    fresh = policy_.factory(member, attempts_[member], cancel);
  } catch (...) {
    fresh.reset();
  }
  if (!fresh.has_value() || cancel.stop_requested()) return false;
  // Bless the replacement's CRC snapshot at the slot's protection level
  // while it is still private to this thread — by the time the batcher or
  // scrubber can see it, its golden checksums are already in place.
  fresh->set_protection(protection_[member]);

  std::lock_guard swap(swap_mutex_);
  ensemble_.replace(member, std::move(*fresh));
  health_.on_replaced(member);
  metrics_.on_replacement_completed();
  metrics_.set_quorum_size(health_.in_service_count());
  return true;
}

}  // namespace pgmr::runtime
