#include "runtime/replacer.h"

#include <utility>

namespace pgmr::runtime {

MemberReplacer::MemberReplacer(mr::Ensemble& ensemble, MemberHealth& health,
                               MetricsRegistry& metrics,
                               std::mutex& swap_mutex,
                               nn::Protection protection,
                               ReplacementPolicy policy)
    : ensemble_(ensemble),
      health_(health),
      metrics_(metrics),
      swap_mutex_(swap_mutex),
      protection_(protection),
      policy_(std::move(policy)),
      attempts_(ensemble.size(), 0) {}

MemberReplacer::~MemberReplacer() { stop(); }

void MemberReplacer::start() {
  if (thread_.joinable() || !policy_.enabled || !policy_.factory) return;
  thread_ = std::jthread([this](std::stop_token st) { loop(st); });
}

void MemberReplacer::stop() {
  if (!thread_.joinable()) return;
  thread_.request_stop();  // also cancels the in-flight factory call
  wake_.notify_all();
  thread_.join();
  thread_ = std::jthread();
}

void MemberReplacer::notify() {
  {
    std::lock_guard guard(wake_mutex_);
    notified_ = true;
  }
  wake_.notify_all();
}

ReplaceReport MemberReplacer::replace_now() {
  if (!policy_.factory) return {};
  std::lock_guard pass(pass_mutex_);
  return replace_fenced(std::stop_token());
}

void MemberReplacer::loop(std::stop_token st) {
  std::unique_lock lock(wake_mutex_);
  while (!st.stop_requested()) {
    wake_.wait_for(lock, st, policy_.poll, [this] { return notified_; });
    notified_ = false;
    if (st.stop_requested()) return;
    lock.unlock();
    // Cheap pre-check off the pass mutex: fenced_count reads only relaxed
    // atomics, so the idle loop never contends with replace_now().
    if (health_.fenced_count() > 0) {
      std::lock_guard pass(pass_mutex_);
      replace_fenced(st);
    }
    lock.lock();
  }
}

ReplaceReport MemberReplacer::replace_fenced(std::stop_token cancel) {
  ReplaceReport report;
  for (std::size_t m = 0; m < ensemble_.size(); ++m) {
    if (cancel.stop_requested()) break;
    if (health_.state(m) != MemberState::fenced) continue;
    if (attempts_[m] >= policy_.max_attempts) continue;  // slot given up on
    ++report.attempted;
    metrics_.on_replacement_started();
    if (replace_member(m, cancel)) {
      ++report.replaced;
      attempts_[m] = 0;  // the new member starts with a clean record
    } else {
      ++report.failed;
      ++attempts_[m];
      metrics_.on_replacement_failed();
    }
  }
  return report;
}

bool MemberReplacer::replace_member(std::size_t member,
                                    std::stop_token cancel) {
  std::optional<mr::Member> fresh;
  try {
    // No locks held: the factory may train for seconds while batches and
    // scrub sweeps keep flowing on the degraded quorum.
    fresh = policy_.factory(member, attempts_[member], cancel);
  } catch (...) {
    fresh.reset();
  }
  if (!fresh.has_value() || cancel.stop_requested()) return false;
  // Bless the replacement's CRC snapshot at the serving protection level
  // while it is still private to this thread — by the time the batcher or
  // scrubber can see it, its golden checksums are already in place.
  fresh->set_protection(protection_);

  std::lock_guard swap(swap_mutex_);
  ensemble_.replace(member, std::move(*fresh));
  health_.on_replaced(member);
  metrics_.on_replacement_completed();
  metrics_.set_quorum_size(health_.in_service_count());
  return true;
}

}  // namespace pgmr::runtime
