// The six benchmark CNN architectures (paper Table II), scaled to run on
// one CPU core while keeping each family's topology: plain stacks
// (LeNet/ConvNet/AlexNet), residual stages (ResNet20/34) and dense blocks
// with transitions (DenseNet40). See DESIGN.md for the substitution note.
#pragma once

#include <cstdint>

#include "nn/network.h"
#include "tensor/random.h"

namespace pgmr::zoo {

/// Input geometry every model constructor receives.
struct InputSpec {
  std::int64_t channels = 3;
  std::int64_t size = 16;
  std::int64_t classes = 10;
};

/// LeNet-5 family: two conv+pool stages and two dense layers (MNIST tier).
nn::Network make_lenet5(const InputSpec& in, Rng& rng);

/// cuda-convnet "ConvNet" family: two small conv stages + linear classifier.
/// Deliberately weak — the paper's 74.7 % CIFAR baseline.
nn::Network make_convnet(const InputSpec& in, Rng& rng);

/// ResNet20 family: 3 stages x 3 basic residual blocks with BN.
nn::Network make_resnet20(const InputSpec& in, Rng& rng);

/// DenseNet40 family: 3 dense blocks (growth-rate concatenation) with
/// 1x1-conv transitions.
nn::Network make_densenet(const InputSpec& in, Rng& rng);

/// AlexNet family: three conv+pool stages with dropout-regularized
/// dense head (ImageNet tier).
nn::Network make_alexnet(const InputSpec& in, Rng& rng);

/// ResNet34 family: deeper residual network, 3 stages x {2,3,2} blocks.
nn::Network make_resnet34(const InputSpec& in, Rng& rng);

}  // namespace pgmr::zoo
