// Mini-batch SGD training loop plus batched inference helpers.
#pragma once

#include <cstdint>
#include <functional>

#include "data/dataset.h"
#include "nn/network.h"

namespace pgmr::zoo {

/// Training hyperparameters for one network.
struct TrainConfig {
  int epochs = 8;
  std::int64_t batch_size = 32;
  float learning_rate = 0.05F;
  float momentum = 0.9F;
  float weight_decay = 1e-4F;
  /// Learning rate is multiplied by `lr_decay` every `lr_decay_epochs`.
  float lr_decay = 0.5F;
  int lr_decay_epochs = 3;
  std::uint64_t shuffle_seed = 7;
  bool verbose = false;
  /// Cooperative cancellation for background (replacement) training: when
  /// set, polled between mini-batches; train_network returns early once it
  /// reports true. The weights are then PARTIAL — callers must discard
  /// them, never publish them to the zoo cache.
  std::function<bool()> cancelled;
};

/// Trains `net` in place on `train`; returns the final-epoch mean loss.
float train_network(nn::Network& net, const data::Dataset& train,
                    const TrainConfig& config);

/// Batched forward pass over a whole dataset; returns [N, C] logits.
Tensor logits_on(nn::Network& net, const data::Dataset& ds,
                 std::int64_t batch_size = 64);

/// Batched softmax probabilities over a whole dataset.
Tensor probabilities_on(nn::Network& net, const data::Dataset& ds,
                        std::int64_t batch_size = 64);

/// Top-1 accuracy of `net` on `ds`.
double accuracy(nn::Network& net, const data::Dataset& ds);

}  // namespace pgmr::zoo
