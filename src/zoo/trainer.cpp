#include "zoo/trainer.h"

#include <cstdio>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/softmax.h"

namespace pgmr::zoo {

float train_network(nn::Network& net, const data::Dataset& train,
                    const TrainConfig& config) {
  nn::SGD::Config opt_config;
  opt_config.learning_rate = config.learning_rate;
  opt_config.momentum = config.momentum;
  opt_config.weight_decay = config.weight_decay;
  nn::SGD optimizer(net.params(), net.grads(), opt_config);

  Rng rng(config.shuffle_seed);
  float last_epoch_loss = 0.0F;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (epoch > 0 && config.lr_decay_epochs > 0 &&
        epoch % config.lr_decay_epochs == 0) {
      optimizer.set_learning_rate(optimizer.learning_rate() * config.lr_decay);
    }
    const std::vector<std::int64_t> order =
        data::shuffled_indices(train.size(), rng);
    double epoch_loss = 0.0;
    std::int64_t batches = 0;
    for (std::int64_t start = 0; start < train.size();
         start += config.batch_size) {
      if (config.cancelled && config.cancelled()) return last_epoch_loss;
      const std::int64_t end =
          std::min(train.size(), start + config.batch_size);
      const std::vector<std::int64_t> batch_idx(order.begin() + start,
                                                order.begin() + end);
      const data::Dataset batch = train.gather(batch_idx);
      optimizer.zero_grad();
      const Tensor logits = net.forward(batch.images, /*train=*/true);
      const nn::LossResult loss = nn::softmax_cross_entropy(logits, batch.labels);
      net.backward(loss.grad_logits);
      optimizer.step();
      epoch_loss += loss.loss;
      ++batches;
    }
    last_epoch_loss = static_cast<float>(epoch_loss / std::max<std::int64_t>(batches, 1));
    if (config.verbose) {
      std::printf("  [%s] epoch %d/%d loss %.4f\n", net.name().c_str(),
                  epoch + 1, config.epochs,
                  static_cast<double>(last_epoch_loss));
      std::fflush(stdout);
    }
  }
  return last_epoch_loss;
}

Tensor logits_on(nn::Network& net, const data::Dataset& ds,
                 std::int64_t batch_size) {
  const Shape out_shape = net.output_shape(
      Shape{1, ds.channels(), ds.height(), ds.width()});
  Tensor logits(Shape{ds.size(), out_shape[1]});
  for (std::int64_t start = 0; start < ds.size(); start += batch_size) {
    const std::int64_t end = std::min(ds.size(), start + batch_size);
    const data::Dataset batch = ds.slice(start, end);
    const Tensor batch_logits = net.forward(batch.images, /*train=*/false);
    std::copy(batch_logits.data(),
              batch_logits.data() + batch_logits.numel(),
              logits.data() + start * out_shape[1]);
  }
  return logits;
}

Tensor probabilities_on(nn::Network& net, const data::Dataset& ds,
                        std::int64_t batch_size) {
  return nn::softmax(logits_on(net, ds, batch_size));
}

double accuracy(nn::Network& net, const data::Dataset& ds) {
  const Tensor logits = logits_on(net, ds);
  std::int64_t correct = 0;
  for (std::int64_t n = 0; n < ds.size(); ++n) {
    if (logits.argmax_row(n) == ds.labels[static_cast<std::size_t>(n)]) {
      ++correct;
    }
  }
  return ds.size() ? static_cast<double>(correct) / static_cast<double>(ds.size())
                   : 0.0;
}

}  // namespace pgmr::zoo
