// The benchmark zoo: dataset tiers, model recipes, and a disk cache of
// trained networks so every test/bench trains each variant at most once.
//
// Cache layout: $PGMR_CACHE_DIR (default ".pgmr_cache/") holds one archive
// per (benchmark, preprocessor, variant) triple. Variants are independent
// random-weight initializations — variant 0 is the canonical network,
// higher variants exist for the traditional-MR experiments (Figs 5, 13).
#pragma once

#include <optional>
#include <stop_token>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "mr/ensemble.h"
#include "zoo/models.h"
#include "zoo/trainer.h"

namespace pgmr::zoo {

/// One paper benchmark: a dataset tier plus a model recipe (Table II row).
struct Benchmark {
  std::string id;          ///< "lenet5", "convnet", "resnet20", ...
  std::string dataset_id;  ///< "smnist", "scifar", "simagenet"
  InputSpec input;
  TrainConfig train;
};

/// All six Table II benchmarks, in the paper's order.
const std::vector<Benchmark>& all_benchmarks();

/// Looks a benchmark up by id; throws std::invalid_argument when unknown.
const Benchmark& find_benchmark(const std::string& id);

/// Deterministically regenerates the benchmark's train/val/test splits.
data::DatasetSplits benchmark_splits(const Benchmark& bm);

/// Directory trained models are cached in ($PGMR_CACHE_DIR or .pgmr_cache).
std::string cache_dir();

/// Cache path of the archive for (benchmark, preprocessor, variant) — where
/// trained_network publishes and the runtime scrubber reloads from.
std::string archive_path(const Benchmark& bm, const std::string& prep_spec,
                         int variant = 0);

/// Returns the trained network for (benchmark, preprocessor, variant),
/// training on the preprocessed train split and caching on first use.
/// `prep_spec` is a Preprocessor::name() string; "ORG" trains on raw data.
nn::Network trained_network(const Benchmark& bm, const std::string& prep_spec,
                            int variant = 0);

/// Cancellable variant for background (replacement) training: returns
/// nullopt — publishing nothing to the cache — when `cancel` fires before
/// or during the training run. Cache hits load immediately either way.
std::optional<nn::Network> trained_network(const Benchmark& bm,
                                           const std::string& prep_spec,
                                           int variant, std::stop_token cancel);

/// A concrete recipe for rebuilding one fenced ensemble slot.
struct ReplacementSpec {
  std::string prep_spec;  ///< Preprocessor::name() of the new member
  int variant = 0;        ///< random-init variant (see trained_network)
};

/// Picks the replacement for a fenced member so ensemble diversity is
/// preserved: the first candidate_pool preprocessor not already serving in
/// `in_use` wins (a fresh Layer-1 view, the paper's diversity argument).
/// When the pool is exhausted, falls back to a fresh random-init variant
/// of the fenced member's own preprocessor (`attempt` + 1, so retries
/// after a failed replacement keep moving to unexplored seeds).
ReplacementSpec choose_replacement(const Benchmark& bm,
                                   const std::vector<std::string>& in_use,
                                   const std::string& fenced_prep,
                                   int attempt = 0);

/// Builds a ready-to-hot-swap Member for `spec`: trains (or cache-loads)
/// the network off the serving threads, pairs it with its preprocessor and
/// wires archive_source so the weight scrubber can heal the new member
/// too. nullopt when `cancel` fired before training finished.
std::optional<mr::Member> make_replacement_member(const Benchmark& bm,
                                                  const ReplacementSpec& spec,
                                                  int bits,
                                                  std::stop_token cancel);

/// One cache-maintenance pass over `dir`: deletes *.net files whose header
/// no reader version can parse (foreign magic, unknown version, truncated
/// header — e.g. the old epoch-timestamp seed archives), keeping current
/// and legacy-readable archives. Readable-but-rotted payloads are left for
/// the zoo's load-time self-heal. Also runs automatically the first time a
/// process touches a cache directory.
struct CachePruneReport {
  int scanned = 0;  ///< *.net files examined
  int pruned = 0;   ///< irrecoverable files deleted
  int kept = 0;     ///< readable (current or legacy) archives left in place
};
CachePruneReport prune_cache(const std::string& dir);

/// Candidate preprocessor pool the greedy builder searches for this
/// benchmark. The ImageNet-tier pool is kept smaller because each
/// candidate costs a full training run of the (heavier) network.
std::vector<std::string> candidate_pool(const Benchmark& bm);

/// Assembles a PolygraphMR-style ensemble: one member per preprocessor
/// spec, each running at `bits` precision (32 = full).
mr::Ensemble make_ensemble(const Benchmark& bm,
                           const std::vector<std::string>& prep_specs,
                           int bits = 32);

/// Assembles a traditional-MR ensemble: `copies` random-init variants of
/// the baseline network, all fed the raw input.
mr::Ensemble make_random_init_ensemble(const Benchmark& bm, int copies,
                                       int bits = 32);

}  // namespace pgmr::zoo
