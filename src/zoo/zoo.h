// The benchmark zoo: dataset tiers, model recipes, and a disk cache of
// trained networks so every test/bench trains each variant at most once.
//
// Cache layout: $PGMR_CACHE_DIR (default ".pgmr_cache/") holds one archive
// per (benchmark, preprocessor, variant) triple. Variants are independent
// random-weight initializations — variant 0 is the canonical network,
// higher variants exist for the traditional-MR experiments (Figs 5, 13).
#pragma once

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "mr/ensemble.h"
#include "zoo/models.h"
#include "zoo/trainer.h"

namespace pgmr::zoo {

/// One paper benchmark: a dataset tier plus a model recipe (Table II row).
struct Benchmark {
  std::string id;          ///< "lenet5", "convnet", "resnet20", ...
  std::string dataset_id;  ///< "smnist", "scifar", "simagenet"
  InputSpec input;
  TrainConfig train;
};

/// All six Table II benchmarks, in the paper's order.
const std::vector<Benchmark>& all_benchmarks();

/// Looks a benchmark up by id; throws std::invalid_argument when unknown.
const Benchmark& find_benchmark(const std::string& id);

/// Deterministically regenerates the benchmark's train/val/test splits.
data::DatasetSplits benchmark_splits(const Benchmark& bm);

/// Directory trained models are cached in ($PGMR_CACHE_DIR or .pgmr_cache).
std::string cache_dir();

/// Cache path of the archive for (benchmark, preprocessor, variant) — where
/// trained_network publishes and the runtime scrubber reloads from.
std::string archive_path(const Benchmark& bm, const std::string& prep_spec,
                         int variant = 0);

/// Returns the trained network for (benchmark, preprocessor, variant),
/// training on the preprocessed train split and caching on first use.
/// `prep_spec` is a Preprocessor::name() string; "ORG" trains on raw data.
nn::Network trained_network(const Benchmark& bm, const std::string& prep_spec,
                            int variant = 0);

/// Candidate preprocessor pool the greedy builder searches for this
/// benchmark. The ImageNet-tier pool is kept smaller because each
/// candidate costs a full training run of the (heavier) network.
std::vector<std::string> candidate_pool(const Benchmark& bm);

/// Assembles a PolygraphMR-style ensemble: one member per preprocessor
/// spec, each running at `bits` precision (32 = full).
mr::Ensemble make_ensemble(const Benchmark& bm,
                           const std::vector<std::string>& prep_specs,
                           int bits = 32);

/// Assembles a traditional-MR ensemble: `copies` random-init variants of
/// the baseline network, all fed the raw input.
mr::Ensemble make_random_init_ensemble(const Benchmark& bm, int copies,
                                       int bits = 32);

}  // namespace pgmr::zoo
