#include "zoo/models.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/blocks.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"

namespace pgmr::zoo {
namespace {

using nn::BatchNorm;
using nn::Conv2D;
using nn::Dense;
using nn::DenseBlock;
using nn::Dropout;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::MaxPool2D;
using nn::ReLU;
using nn::ResidualBlock;
using nn::Sequential;

std::unique_ptr<Conv2D> conv(std::int64_t in_c, std::int64_t out_c,
                             std::int64_t k, std::int64_t stride,
                             std::int64_t pad, Rng& rng) {
  auto layer = std::make_unique<Conv2D>(in_c, out_c, k, stride, pad);
  layer->init(rng);
  return layer;
}

std::unique_ptr<Dense> dense(std::int64_t in_f, std::int64_t out_f, Rng& rng) {
  auto layer = std::make_unique<Dense>(in_f, out_f);
  layer->init(rng);
  return layer;
}

/// conv3x3 -> BN -> ReLU -> conv3x3 -> BN body with optional strided entry;
/// the ResNet basic block used by both residual models.
std::unique_ptr<ResidualBlock> basic_block(std::int64_t in_c,
                                           std::int64_t out_c,
                                           std::int64_t stride, Rng& rng) {
  auto body = std::make_unique<Sequential>();
  body->add(conv(in_c, out_c, 3, stride, 1, rng));
  body->add(std::make_unique<BatchNorm>(out_c));
  body->add(std::make_unique<ReLU>());
  body->add(conv(out_c, out_c, 3, 1, 1, rng));
  body->add(std::make_unique<BatchNorm>(out_c));
  std::unique_ptr<Conv2D> projection;
  if (in_c != out_c || stride != 1) {
    projection = conv(in_c, out_c, 1, stride, 0, rng);
  }
  return std::make_unique<ResidualBlock>(std::move(body),
                                         std::move(projection));
}

/// BN -> ReLU -> conv3x3(growth) unit of a dense block.
std::unique_ptr<Sequential> dense_unit(std::int64_t in_c, std::int64_t growth,
                                       Rng& rng) {
  auto unit = std::make_unique<Sequential>();
  unit->add(std::make_unique<BatchNorm>(in_c));
  unit->add(std::make_unique<ReLU>());
  unit->add(conv(in_c, growth, 3, 1, 1, rng));
  return unit;
}

}  // namespace

nn::Network make_lenet5(const InputSpec& in, Rng& rng) {
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(conv(in.channels, 6, 5, 1, 2, rng));
  layers.push_back(std::make_unique<ReLU>());
  layers.push_back(std::make_unique<MaxPool2D>(2));
  layers.push_back(conv(6, 12, 3, 1, 1, rng));
  layers.push_back(std::make_unique<ReLU>());
  layers.push_back(std::make_unique<MaxPool2D>(2));
  layers.push_back(std::make_unique<Flatten>());
  const std::int64_t feat = 12 * (in.size / 4) * (in.size / 4);
  layers.push_back(dense(feat, 64, rng));
  layers.push_back(std::make_unique<ReLU>());
  layers.push_back(dense(64, in.classes, rng));
  return nn::Network("lenet5", std::move(layers));
}

nn::Network make_convnet(const InputSpec& in, Rng& rng) {
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(conv(in.channels, 8, 3, 1, 1, rng));
  layers.push_back(std::make_unique<ReLU>());
  layers.push_back(std::make_unique<MaxPool2D>(2));
  layers.push_back(conv(8, 16, 3, 1, 1, rng));
  layers.push_back(std::make_unique<ReLU>());
  layers.push_back(std::make_unique<MaxPool2D>(2));
  layers.push_back(std::make_unique<Flatten>());
  const std::int64_t feat = 16 * (in.size / 4) * (in.size / 4);
  layers.push_back(dense(feat, in.classes, rng));
  return nn::Network("convnet", std::move(layers));
}

nn::Network make_resnet20(const InputSpec& in, Rng& rng) {
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(conv(in.channels, 6, 3, 1, 1, rng));
  layers.push_back(std::make_unique<BatchNorm>(6));
  layers.push_back(std::make_unique<ReLU>());
  // Three stages of three basic blocks, widths 6/12/24 (paper: 16/32/64).
  const std::int64_t widths[3] = {6, 12, 24};
  std::int64_t channels = 6;
  for (int stage = 0; stage < 3; ++stage) {
    for (int block = 0; block < 3; ++block) {
      const std::int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      layers.push_back(basic_block(channels, widths[stage], stride, rng));
      channels = widths[stage];
    }
  }
  layers.push_back(std::make_unique<GlobalAvgPool>());
  layers.push_back(dense(channels, in.classes, rng));
  return nn::Network("resnet20", std::move(layers));
}

nn::Network make_densenet(const InputSpec& in, Rng& rng) {
  constexpr std::int64_t kGrowth = 6;
  constexpr int kUnitsPerBlock = 3;
  std::vector<std::unique_ptr<nn::Layer>> layers;
  std::int64_t channels = 8;
  layers.push_back(conv(in.channels, channels, 3, 1, 1, rng));
  for (int block = 0; block < 3; ++block) {
    std::vector<std::unique_ptr<Sequential>> units;
    for (int u = 0; u < kUnitsPerBlock; ++u) {
      units.push_back(dense_unit(channels + u * kGrowth, kGrowth, rng));
    }
    layers.push_back(std::make_unique<DenseBlock>(std::move(units), channels,
                                                  kGrowth));
    channels += kUnitsPerBlock * kGrowth;
    if (block < 2) {
      // Transition: BN-ReLU-conv1x1 halving channels, then 2x2 pooling.
      const std::int64_t next = channels / 2;
      layers.push_back(std::make_unique<BatchNorm>(channels));
      layers.push_back(std::make_unique<ReLU>());
      layers.push_back(conv(channels, next, 1, 1, 0, rng));
      layers.push_back(std::make_unique<MaxPool2D>(2));
      channels = next;
    }
  }
  layers.push_back(std::make_unique<BatchNorm>(channels));
  layers.push_back(std::make_unique<ReLU>());
  layers.push_back(std::make_unique<GlobalAvgPool>());
  layers.push_back(dense(channels, in.classes, rng));
  return nn::Network("densenet40", std::move(layers));
}

nn::Network make_alexnet(const InputSpec& in, Rng& rng) {
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(conv(in.channels, 8, 5, 1, 2, rng));
  layers.push_back(std::make_unique<ReLU>());
  layers.push_back(std::make_unique<MaxPool2D>(2));
  layers.push_back(conv(8, 16, 3, 1, 1, rng));
  layers.push_back(std::make_unique<ReLU>());
  layers.push_back(std::make_unique<MaxPool2D>(2));
  layers.push_back(conv(16, 24, 3, 1, 1, rng));
  layers.push_back(std::make_unique<ReLU>());
  layers.push_back(std::make_unique<MaxPool2D>(2));
  layers.push_back(std::make_unique<Flatten>());
  const std::int64_t feat = 24 * (in.size / 8) * (in.size / 8);
  layers.push_back(dense(feat, 96, rng));
  layers.push_back(std::make_unique<ReLU>());
  layers.push_back(std::make_unique<Dropout>(0.25F, rng.engine()()));
  layers.push_back(dense(96, in.classes, rng));
  return nn::Network("alexnet", std::move(layers));
}

nn::Network make_resnet34(const InputSpec& in, Rng& rng) {
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(conv(in.channels, 6, 3, 1, 1, rng));
  layers.push_back(std::make_unique<BatchNorm>(6));
  layers.push_back(std::make_unique<ReLU>());
  // Deeper than resnet20-lite: stages of {2, 3, 2} blocks, widths 6/12/24.
  const std::int64_t widths[3] = {6, 12, 24};
  const int blocks[3] = {2, 3, 2};
  std::int64_t channels = 6;
  for (int stage = 0; stage < 3; ++stage) {
    for (int block = 0; block < blocks[stage]; ++block) {
      const std::int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      layers.push_back(basic_block(channels, widths[stage], stride, rng));
      channels = widths[stage];
    }
  }
  layers.push_back(std::make_unique<GlobalAvgPool>());
  layers.push_back(dense(channels, in.classes, rng));
  return nn::Network("resnet34", std::move(layers));
}

}  // namespace pgmr::zoo
