#include "zoo/zoo.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <mutex>
#include <set>
#include <stdexcept>
#include <system_error>

#include "prep/preprocessor.h"
#include "tensor/serialize.h"

namespace pgmr::zoo {
namespace {

TrainConfig basic_train(int epochs, float lr) {
  TrainConfig c;
  c.epochs = epochs;
  c.learning_rate = lr;
  return c;
}

nn::Network build_model(const Benchmark& bm, Rng& rng) {
  if (bm.id == "lenet5") return make_lenet5(bm.input, rng);
  if (bm.id == "convnet") return make_convnet(bm.input, rng);
  if (bm.id == "resnet20") return make_resnet20(bm.input, rng);
  if (bm.id == "densenet40") return make_densenet(bm.input, rng);
  if (bm.id == "alexnet") return make_alexnet(bm.input, rng);
  if (bm.id == "resnet34") return make_resnet34(bm.input, rng);
  throw std::invalid_argument("build_model: unknown benchmark " + bm.id);
}

/// Stable seed per (benchmark, prep, variant) so cached artifacts and fresh
/// training runs always agree.
std::uint64_t variant_seed(const Benchmark& bm, const std::string& prep_spec,
                           int variant) {
  const std::string key =
      bm.id + "|" + prep_spec + "|" + std::to_string(variant);
  return std::hash<std::string>{}(key) | 1ULL;
}

/// Bump whenever dataset generators, model recipes or training configs
/// change: stale cached weights would otherwise silently poison results.
constexpr int kZooCacheVersion = 3;

/// File-system-safe cache key ("Gamma(2.00)" -> "Gamma_2.00_").
std::string sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '(' || c == ')' || c == '/' || c == ' ') c = '_';
  }
  return out;
}

/// Scan-time garbage collection: the first time this process touches a
/// cache directory, sweep out archives no reader version can parse (the
/// epoch-timestamp seed archives were silently retrained on every miss
/// before this existed). Once per dir per process — the check is a small
/// header read per file, but there is no point repeating it.
void prune_cache_on_first_scan(const std::string& dir) {
  static std::mutex mutex;
  static std::set<std::string> scanned;
  {
    std::lock_guard guard(mutex);
    if (!scanned.insert(dir).second) return;
  }
  const CachePruneReport report = prune_cache(dir);
  if (report.pruned > 0) {
    std::fprintf(stderr,
                 "[zoo] pruned %d irrecoverable archive(s) from %s "
                 "(%d readable kept)\n",
                 report.pruned, dir.c_str(), report.kept);
  }
}

}  // namespace

const std::vector<Benchmark>& all_benchmarks() {
  static const std::vector<Benchmark> benchmarks = [] {
    std::vector<Benchmark> b;
    b.push_back({"lenet5", "smnist", InputSpec{1, 16, 10}, basic_train(6, 0.05F)});
    b.push_back({"convnet", "scifar", InputSpec{3, 16, 10}, basic_train(6, 0.05F)});
    b.push_back({"resnet20", "scifar", InputSpec{3, 16, 10}, basic_train(8, 0.05F)});
    b.push_back({"densenet40", "scifar", InputSpec{3, 16, 10}, basic_train(8, 0.05F)});
    b.push_back({"alexnet", "simagenet", InputSpec{3, 24, 20}, basic_train(8, 0.05F)});
    b.push_back({"resnet34", "simagenet", InputSpec{3, 24, 20}, basic_train(6, 0.05F)});
    return b;
  }();
  return benchmarks;
}

const Benchmark& find_benchmark(const std::string& id) {
  for (const Benchmark& b : all_benchmarks()) {
    if (b.id == id) return b;
  }
  throw std::invalid_argument("find_benchmark: unknown benchmark " + id);
}

data::DatasetSplits benchmark_splits(const Benchmark& bm) {
  data::SyntheticSpec spec;
  if (bm.dataset_id == "smnist") {
    spec = data::smnist_spec(5000);
  } else if (bm.dataset_id == "scifar") {
    spec = data::scifar_spec(5000);
  } else if (bm.dataset_id == "simagenet") {
    spec = data::simagenet_spec(6000);
  } else {
    throw std::invalid_argument("benchmark_splits: unknown dataset " +
                                bm.dataset_id);
  }
  const data::Dataset full = data::generate_synthetic(spec);
  const std::int64_t test_n = 1000;
  const std::int64_t val_n = 1000;
  return data::split_dataset(full, full.size() - val_n - test_n, val_n, test_n);
}

std::string cache_dir() {
  if (const char* env = std::getenv("PGMR_CACHE_DIR")) return env;
  return ".pgmr_cache";
}

std::string archive_path(const Benchmark& bm, const std::string& prep_spec,
                         int variant) {
  return cache_dir() + "/" + bm.id + "_" + sanitize(prep_spec) + "_v" +
         std::to_string(variant) + "_c" + std::to_string(kZooCacheVersion) +
         ".net";
}

std::optional<nn::Network> trained_network(const Benchmark& bm,
                                           const std::string& prep_spec,
                                           int variant, std::stop_token cancel) {
  std::filesystem::create_directories(cache_dir());
  prune_cache_on_first_scan(cache_dir());
  const std::string path = archive_path(bm, prep_spec, variant);
  if (archive_exists(path)) {
    try {
      return nn::Network::load(path);
    } catch (const std::exception& e) {
      // Self-heal: a stale or foreign-format archive must not wedge every
      // consumer of the zoo; retrain and republish instead.
      std::fprintf(stderr, "[zoo] cached archive %s is unreadable (%s); "
                   "retraining\n", path.c_str(), e.what());
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
  }
  if (cancel.stop_requested()) return std::nullopt;

  Rng rng(variant_seed(bm, prep_spec, variant));
  nn::Network net = build_model(bm, rng);

  data::DatasetSplits splits = benchmark_splits(bm);
  const auto prep = prep::make_preprocessor(prep_spec);
  data::Dataset train = splits.train;
  train.images = prep->apply(train.images);

  TrainConfig config = bm.train;
  config.shuffle_seed = rng.engine()();
  config.cancelled = [cancel] { return cancel.stop_requested(); };
  std::printf("[zoo] training %s (%s, variant %d)...\n", bm.id.c_str(),
              prep_spec.c_str(), variant);
  std::fflush(stdout);
  train_network(net, train, config);
  // A cancelled run left the weights partial: publish nothing.
  if (cancel.stop_requested()) return std::nullopt;
  // Atomic publish: write to a process-unique temp file, then rename, so a
  // concurrent reader never sees a half-written archive and concurrent
  // writers (parallel ctest) never clobber each other's temp file.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  net.save(tmp);
  std::filesystem::rename(tmp, path);
  return net;
}

nn::Network trained_network(const Benchmark& bm, const std::string& prep_spec,
                            int variant) {
  // Without a cancellation source the cancellable path always completes.
  return std::move(*trained_network(bm, prep_spec, variant, std::stop_token()));
}

ReplacementSpec choose_replacement(const Benchmark& bm,
                                   const std::vector<std::string>& in_use,
                                   const std::string& fenced_prep,
                                   int attempt) {
  const auto taken = [&in_use](const std::string& spec) {
    return std::find(in_use.begin(), in_use.end(), spec) != in_use.end();
  };
  for (const std::string& spec : candidate_pool(bm)) {
    if (!taken(spec)) return {spec, 0};
  }
  // Every preprocessor view is already serving: fall back to a fresh
  // random-init variant of the fenced member's own view (traditional-MR
  // style diversity). Variant 0 is the one that just failed us.
  return {fenced_prep.empty() ? std::string("ORG") : fenced_prep, attempt + 1};
}

std::optional<mr::Member> make_replacement_member(const Benchmark& bm,
                                                  const ReplacementSpec& spec,
                                                  int bits,
                                                  std::stop_token cancel) {
  std::optional<nn::Network> net =
      trained_network(bm, spec.prep_spec, spec.variant, cancel);
  if (!net.has_value()) return std::nullopt;
  mr::Member member(prep::make_preprocessor(spec.prep_spec), std::move(*net),
                    bits);
  member.set_archive_source(archive_path(bm, spec.prep_spec, spec.variant));
  return member;
}

CachePruneReport prune_cache(const std::string& dir) {
  namespace fs = std::filesystem;
  CachePruneReport report;
  if (!fs::is_directory(dir)) return report;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    // Extension filtering also skips in-flight "*.net.tmp.<pid>" publishes.
    if (!entry.is_regular_file() || entry.path().extension() != ".net") {
      continue;
    }
    ++report.scanned;
    try {
      BinaryReader header(entry.path().string(),
                          BinaryReader::Compat::allow_legacy);
      ++report.kept;  // current or legacy: some reader can make sense of it
    } catch (const std::exception&) {
      // No reader version can even parse the header: the archive can only
      // waste scans and mislead humans. Tolerate a concurrent prune racing
      // us to the unlink.
      std::error_code ec;
      if (fs::remove(entry.path(), ec) && !ec) {
        ++report.pruned;
      } else {
        ++report.kept;
      }
    }
  }
  return report;
}

std::vector<std::string> candidate_pool(const Benchmark& bm) {
  if (bm.dataset_id == "simagenet") {
    return {"ConNorm", "FlipX", "FlipY", "Gamma(1.50)", "Gamma(2.00)"};
  }
  return {"AdHist",      "ConNorm",     "FlipX", "FlipY",
          "Gamma(1.50)", "Gamma(2.00)", "Hist",  "ImAdj"};
}

mr::Ensemble make_ensemble(const Benchmark& bm,
                           const std::vector<std::string>& prep_specs,
                           int bits) {
  mr::Ensemble ensemble;
  for (const std::string& spec : prep_specs) {
    mr::Member member(prep::make_preprocessor(spec),
                      trained_network(bm, spec), bits);
    member.set_archive_source(archive_path(bm, spec));
    ensemble.add(std::move(member));
  }
  return ensemble;
}

mr::Ensemble make_random_init_ensemble(const Benchmark& bm, int copies,
                                       int bits) {
  mr::Ensemble ensemble;
  for (int v = 0; v < copies; ++v) {
    mr::Member member(std::make_unique<prep::Identity>(),
                      trained_network(bm, "ORG", v), bits);
    member.set_archive_source(archive_path(bm, "ORG", v));
    ensemble.add(std::move(member));
  }
  return ensemble;
}

}  // namespace pgmr::zoo
