#include "quant/quantized_network.h"

#include <algorithm>

#include "nn/softmax.h"
#include "tensor/crc32.h"

namespace pgmr::quant {

QuantizedNetwork::QuantizedNetwork(nn::Network network, int bits,
                                   nn::Protection protection)
    : network_(std::move(network)), bits_(bits), protection_(protection) {
  for (Tensor* p : network_.params()) {
    truncate_tensor(*p, bits_);
  }
  refresh_checksum();
}

void QuantizedNetwork::set_protection(nn::Protection protection) {
  protection_ = protection;
  refresh_checksum();
}

void QuantizedNetwork::refresh_checksum() {
  auto& layers = network_.mutable_layers();
  layer_golden_.assign(layers.size(), nn::AbftChecksum{});
  switch (protection_) {
    case nn::Protection::off:
      break;
    case nn::Protection::final_fc:
      if (!layers.empty() && layers.back()->kind() == "dense") {
        layer_golden_.back() = layers.back()->abft_checksum();
      }
      break;
    case nn::Protection::full:
      for (std::size_t l = 0; l < layers.size(); ++l) {
        layer_golden_[l] = layers[l]->abft_checksum();
      }
      break;
  }
  golden_crcs_ = current_param_crcs();
}

std::vector<std::uint32_t> QuantizedNetwork::current_param_crcs() {
  std::vector<std::uint32_t> crcs;
  for (Tensor* p : network_.params()) {
    crcs.push_back(crc32(p->data(), static_cast<std::size_t>(p->numel()) *
                                        sizeof(float)));
  }
  return crcs;
}

bool QuantizedNetwork::params_intact() { return first_corrupt_param() < 0; }

int QuantizedNetwork::first_corrupt_param() {
  const std::vector<std::uint32_t> now = current_param_crcs();
  const std::size_t n = std::min(now.size(), golden_crcs_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (now[i] != golden_crcs_[i]) return static_cast<int>(i);
  }
  if (now.size() != golden_crcs_.size()) return static_cast<int>(n);
  return -1;
}

Tensor QuantizedNetwork::forward(const Tensor& input, AbftCheck* abft) {
  if (abft != nullptr) *abft = AbftCheck{};
  Tensor x = input;
  truncate_tensor(x, bits_);
  auto& layers = network_.mutable_layers();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const bool verify = abft != nullptr && l < layer_golden_.size() &&
                        !layer_golden_[l].empty();
    if (!verify) {
      x = layers[l]->forward(x, /*train=*/false);
      truncate_tensor(x, bits_);
      continue;
    }
    // Verification runs on the pre-truncation output (truncation would add
    // its own error on top of the GEMM's).
    nn::AbftLayerCheck check;
    x = layers[l]->forward_abft(x, layer_golden_[l], &check);
    if (check.checked) {
      abft->checked = true;
      ++abft->layers_checked;
      abft->max_rel_error =
          std::max(abft->max_rel_error, check.max_rel_error);
      if (!check.ok && abft->ok) {
        abft->ok = false;
        abft->failed_layer = static_cast<int>(l);
        abft->failed_kind = layers[l]->kind();
      }
    }
    truncate_tensor(x, bits_);
  }
  return x;
}

Tensor QuantizedNetwork::probabilities(const Tensor& input, AbftCheck* abft) {
  return nn::softmax(forward(input, abft));
}

}  // namespace pgmr::quant
