#include "quant/quantized_network.h"

#include "nn/softmax.h"

namespace pgmr::quant {

QuantizedNetwork::QuantizedNetwork(nn::Network network, int bits)
    : network_(std::move(network)), bits_(bits) {
  for (Tensor* p : network_.params()) {
    truncate_tensor(*p, bits_);
  }
}

Tensor QuantizedNetwork::forward(const Tensor& input) {
  Tensor x = input;
  truncate_tensor(x, bits_);
  for (auto& layer : network_.mutable_layers()) {
    x = layer->forward(x, /*train=*/false);
    truncate_tensor(x, bits_);
  }
  return x;
}

Tensor QuantizedNetwork::probabilities(const Tensor& input) {
  return nn::softmax(forward(input));
}

}  // namespace pgmr::quant
