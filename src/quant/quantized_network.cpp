#include "quant/quantized_network.h"

#include <algorithm>
#include <vector>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/softmax.h"
#include "tensor/crc32.h"

namespace pgmr::quant {

QuantizedNetwork::QuantizedNetwork(nn::Network network, int bits,
                                   nn::Protection protection)
    : network_(std::move(network)), bits_(bits), protection_(protection) {
  for (Tensor* p : network_.params()) {
    truncate_tensor(*p, bits_);
  }
  refresh_checksum();
}

void QuantizedNetwork::set_protection(nn::Protection protection) {
  protection_ = protection;
  refresh_checksum();
}

bool QuantizedNetwork::foldable_at(std::size_t l) const {
  // Top-level conv→BN folding skips the activation truncation between the
  // two layers, so it is only bit-identical at full precision; at reduced
  // bits the pair keeps its separate gemm + affine checks instead.
  if (bits_ != kFullBits) return false;
  const auto& layers = network_.layers();
  if (l + 1 >= layers.size()) return false;
  if (layers[l]->kind() != "conv2d" || layers[l + 1]->kind() != "batchnorm") {
    return false;
  }
  const auto* conv = static_cast<const nn::Conv2D*>(layers[l].get());
  const auto* bn = static_cast<const nn::BatchNorm*>(layers[l + 1].get());
  return conv->out_channels() == bn->channels();
}

void QuantizedNetwork::refresh_checksum() {
  auto& layers = network_.mutable_layers();
  layer_golden_.assign(layers.size(), nn::AbftChecksum{});
  switch (protection_) {
    case nn::Protection::off:
      break;
    case nn::Protection::final_fc:
      if (!layers.empty() && layers.back()->kind() == "dense") {
        layer_golden_.back() = layers.back()->abft_checksum();
      }
      break;
    case nn::Protection::full:
      for (std::size_t l = 0; l < layers.size(); ++l) {
        if (foldable_at(l)) {
          const auto* conv = static_cast<const nn::Conv2D*>(layers[l].get());
          const auto* bn =
              static_cast<const nn::BatchNorm*>(layers[l + 1].get());
          Tensor scale, shift;
          bn->effective_affine(&scale, &shift);
          layer_golden_[l] = conv->abft_checksum_folded(scale, shift);
          ++l;  // the BN slot stays empty: the fold covers it
          continue;
        }
        layer_golden_[l] = layers[l]->abft_checksum();
      }
      break;
  }
  golden_crcs_ = current_param_crcs();
  golden_chunk_crcs_.clear();
  for (Tensor* p : network_.params()) {
    std::vector<std::uint32_t> chunks;
    const std::int64_t n = p->numel();
    for (std::int64_t at = 0; at == 0 || at < n; at += kCrcChunkElems) {
      const std::int64_t len = std::min<std::int64_t>(kCrcChunkElems, n - at);
      chunks.push_back(crc32(p->data() + at,
                             static_cast<std::size_t>(len) * sizeof(float)));
    }
    golden_chunk_crcs_.push_back(std::move(chunks));
  }
}

std::vector<std::uint32_t> QuantizedNetwork::current_param_crcs() {
  std::vector<std::uint32_t> crcs;
  for (Tensor* p : network_.params()) {
    crcs.push_back(crc32(p->data(), static_cast<std::size_t>(p->numel()) *
                                        sizeof(float)));
  }
  return crcs;
}

bool QuantizedNetwork::params_intact() { return first_corrupt_param() < 0; }

std::size_t QuantizedNetwork::param_count() {
  return network_.params().size();
}

bool QuantizedNetwork::param_intact(std::size_t i) {
  const std::vector<Tensor*> params = network_.params();
  // A size drift between live params and the golden snapshot is itself a
  // corruption signal, never a pass.
  if (i >= params.size() || i >= golden_crcs_.size()) return false;
  const Tensor* p = params[i];
  return crc32(p->data(),
               static_cast<std::size_t>(p->numel()) * sizeof(float)) ==
         golden_crcs_[i];
}

std::size_t QuantizedNetwork::param_chunk_count(std::size_t i) {
  if (i >= golden_chunk_crcs_.size()) return 0;
  return golden_chunk_crcs_[i].size();
}

bool QuantizedNetwork::param_chunk_intact(std::size_t i, std::size_t chunk) {
  const std::vector<Tensor*> params = network_.params();
  if (i >= params.size() || i >= golden_chunk_crcs_.size()) return false;
  const std::vector<std::uint32_t>& golden = golden_chunk_crcs_[i];
  if (chunk >= golden.size()) return false;
  const Tensor* p = params[i];
  const std::int64_t at = static_cast<std::int64_t>(chunk) * kCrcChunkElems;
  // The golden chunking implies the blessed numel; a live tensor that no
  // longer covers this chunk has drifted in size — corruption, not a pass.
  if (at > p->numel()) return false;
  const std::int64_t len = std::min<std::int64_t>(kCrcChunkElems,
                                                  p->numel() - at);
  return crc32(p->data() + at,
               static_cast<std::size_t>(len) * sizeof(float)) == golden[chunk];
}

int QuantizedNetwork::first_corrupt_param() {
  const std::vector<std::uint32_t> now = current_param_crcs();
  const std::size_t n = std::min(now.size(), golden_crcs_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (now[i] != golden_crcs_[i]) return static_cast<int>(i);
  }
  if (now.size() != golden_crcs_.size()) return static_cast<int>(n);
  return -1;
}

Tensor QuantizedNetwork::forward(const Tensor& input, AbftCheck* abft) {
  if (abft != nullptr) *abft = AbftCheck{};
  Tensor x = input;
  truncate_tensor(x, bits_);
  auto& layers = network_.mutable_layers();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const bool verify = abft != nullptr && l < layer_golden_.size() &&
                        !layer_golden_[l].empty();
    if (!verify) {
      x = layers[l]->forward(x, /*train=*/false);
      truncate_tensor(x, bits_);
      if (tap_) tap_(x, static_cast<int>(l));
      continue;
    }
    // Verification runs on the pre-truncation output (truncation would add
    // its own error on top of the GEMM's).
    nn::AbftLayerCheck check;
    if (layer_golden_[l].form == nn::AbftForm::folded) {
      // Folded conv→BN: run both layers as one verified unit against the
      // BatchNorm output (only emitted at kFullBits, where skipping the
      // inter-layer truncation is the identity).
      auto* conv = static_cast<nn::Conv2D*>(layers[l].get());
      std::vector<float> cols;
      Tensor conv_out = conv->forward_save_cols(x, &cols);
      x = layers[l + 1]->forward(conv_out, /*train=*/false);
      nn::abft_verify_folded(cols, x, layer_golden_[l], &check);
      if (check.checked) {
        abft->checked = true;
        ++abft->layers_checked;
        abft->max_rel_error =
            std::max(abft->max_rel_error, check.max_rel_error);
        if (!check.ok && abft->ok) {
          abft->ok = false;
          abft->failed_layer = static_cast<int>(l);
          abft->failed_kind = "conv2d+batchnorm";
        }
      }
      truncate_tensor(x, bits_);
      // The folded pair taps once, on the BN output, at the conv's index.
      if (tap_) tap_(x, static_cast<int>(l));
      ++l;
      continue;
    }
    x = layers[l]->forward_abft(x, layer_golden_[l], &check);
    if (check.checked) {
      abft->checked = true;
      ++abft->layers_checked;
      abft->max_rel_error =
          std::max(abft->max_rel_error, check.max_rel_error);
      if (!check.ok && abft->ok) {
        abft->ok = false;
        abft->failed_layer = static_cast<int>(l);
        abft->failed_kind = layers[l]->kind();
      }
    }
    truncate_tensor(x, bits_);
    if (tap_) tap_(x, static_cast<int>(l));
  }
  return x;
}

Tensor QuantizedNetwork::probabilities(const Tensor& input, AbftCheck* abft) {
  return nn::softmax(forward(input, abft));
}

}  // namespace pgmr::quant
