#include "quant/quantized_network.h"

#include <cmath>
#include <cstdlib>

#include "nn/softmax.h"

namespace pgmr::quant {
namespace {

/// The final Dense layer, or nullptr when the network ends differently.
nn::Layer* final_dense(nn::Network& net) {
  if (net.mutable_layers().empty()) return nullptr;
  nn::Layer* last = net.mutable_layers().back().get();
  return last->kind() == "dense" ? last : nullptr;
}

}  // namespace

QuantizedNetwork::QuantizedNetwork(nn::Network network, int bits)
    : network_(std::move(network)), bits_(bits) {
  for (Tensor* p : network_.params()) {
    truncate_tensor(*p, bits_);
  }
  refresh_checksum();
}

void QuantizedNetwork::refresh_checksum() {
  abft_colsum_ = Tensor();
  abft_bias_sum_ = 0.0F;
  nn::Layer* fc = final_dense(network_);
  if (fc == nullptr) return;
  const auto params = fc->params();
  if (params.size() < 2 || params[0]->shape().rank() != 2) return;
  const Tensor& weight = *params[0];  // [out_f, in_f]
  const Tensor& bias = *params[1];    // [out_f]
  const std::int64_t out_f = weight.shape()[0];
  const std::int64_t in_f = weight.shape()[1];
  abft_colsum_ = Tensor(Shape{in_f});
  for (std::int64_t o = 0; o < out_f; ++o) {
    for (std::int64_t i = 0; i < in_f; ++i) {
      abft_colsum_[i] += weight[o * in_f + i];
    }
  }
  abft_bias_sum_ = bias.sum();
}

Tensor QuantizedNetwork::forward(const Tensor& input, AbftCheck* abft) {
  if (abft != nullptr) *abft = AbftCheck{};
  Tensor x = input;
  truncate_tensor(x, bits_);
  auto& layers = network_.mutable_layers();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const bool verify = abft != nullptr && l + 1 == layers.size() &&
                        !abft_colsum_.empty() &&
                        x.shape().rank() == 2 &&
                        x.shape()[1] == abft_colsum_.numel();
    if (!verify) {
      x = layers[l]->forward(x, /*train=*/false);
      truncate_tensor(x, bits_);
      continue;
    }
    // ABFT verification of the final FC GEMM: compare each output row sum
    // against the golden-column-sum prediction from the FC input. Runs on
    // the pre-truncation output (truncation would add its own error).
    const Tensor fc_in = x;
    x = layers[l]->forward(x, /*train=*/false);
    abft->checked = true;
    const std::int64_t n = x.shape()[0];
    const std::int64_t out_f = x.shape()[1];
    const std::int64_t in_f = abft_colsum_.numel();
    for (std::int64_t row = 0; row < n; ++row) {
      float expected = abft_bias_sum_;
      for (std::int64_t i = 0; i < in_f; ++i) {
        expected += fc_in[row * in_f + i] * abft_colsum_[i];
      }
      float actual = 0.0F;
      for (std::int64_t o = 0; o < out_f; ++o) {
        actual += x[row * out_f + o];
      }
      const float rel =
          std::abs(actual - expected) / (1.0F + std::abs(expected));
      // A NaN/Inf discrepancy (corrupted weights overflowing the GEMM)
      // must fail the check, so compare through the negation.
      if (!(rel <= kAbftTolerance)) abft->ok = false;
      if (std::isfinite(rel)) {
        abft->max_rel_error = std::max(abft->max_rel_error, rel);
      }
    }
    truncate_tensor(x, bits_);
  }
  return x;
}

Tensor QuantizedNetwork::probabilities(const Tensor& input, AbftCheck* abft) {
  return nn::softmax(forward(input, abft));
}

}  // namespace pgmr::quant
