#include "quant/precision.h"

#include <algorithm>
#include <bit>

namespace pgmr::quant {

float truncate_value(float v, int bits) {
  if (bits >= kFullBits) return v;
  const int mantissa_bits = std::max(bits, kMinBits) - 9;
  const std::uint32_t drop = static_cast<std::uint32_t>(23 - mantissa_bits);
  const auto raw = std::bit_cast<std::uint32_t>(v);
  const std::uint32_t mask = ~((1U << drop) - 1U);
  return std::bit_cast<float>(raw & mask);
}

void truncate_tensor(Tensor& t, int bits) {
  if (bits >= kFullBits) return;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = truncate_value(t[i], bits);
  }
}

}  // namespace pgmr::quant
