// QuantizedNetwork: a Network executed at reduced unified precision.
//
// Weights are truncated once at construction; activations are truncated
// after every layer, simulating the paper's truncating load/store path.
//
// The wrapper also carries an ABFT-style column-sum checksum over the final
// fully-connected layer (FT-CNN style): the column sums of the FC weight
// matrix are captured once at construction, when the weights are known
// good. At inference, sum_o y[n,o] must equal dot(x[n,:], colsum) + sum(b);
// a stored-weight corruption (e.g. a high-exponent bit flip from the fault
// injector) breaks that identity and is reported through AbftCheck without
// any second GEMM.
#pragma once

#include "nn/network.h"
#include "quant/precision.h"

namespace pgmr::quant {

/// Result of the final-FC checksum verification for one forward pass.
struct AbftCheck {
  bool checked = false;  ///< false when the net has no final Dense layer
  bool ok = true;        ///< false on checksum mismatch (or non-finite sums)
  float max_rel_error = 0.0F;  ///< worst row |actual-expected|/(1+|expected|)
};

/// Relative tolerance for the FC checksum; float GEMM accumulation over the
/// fan-in stays orders of magnitude below this, while exponent-bit weight
/// corruption overshoots it by many orders.
inline constexpr float kAbftTolerance = 2e-3F;

/// Owns an independent copy of a network and runs it at `bits` precision.
/// Obtain the copy by re-loading the cached model from disk (Network is
/// move-only by design).
class QuantizedNetwork {
 public:
  /// Takes ownership of `network`, truncates all its parameters and caches
  /// the golden FC column checksums.
  QuantizedNetwork(nn::Network network, int bits);

  const std::string& name() const { return network_.name(); }
  int bits() const { return bits_; }

  /// Forward pass with per-layer activation truncation; returns logits.
  /// When `abft` is non-null the final-FC checksum is verified into it.
  Tensor forward(const Tensor& input, AbftCheck* abft = nullptr);

  /// forward() followed by softmax — the layer-2 output PolygraphMR uses.
  Tensor probabilities(const Tensor& input, AbftCheck* abft = nullptr);

  /// Cost of one forward pass at the wrapped precision is derived by the
  /// perf module from this plus bits(); expose the underlying network.
  const nn::Network& network() const { return network_; }

  /// Mutable access for fault injection (chaos/injector campaigns). Note
  /// that deliberate weight edits are exactly what the ABFT checksum
  /// detects; call refresh_checksum() after a *legitimate* weight change.
  nn::Network& mutable_network() { return network_; }

  /// Recaptures the golden FC column sums from the current weights.
  void refresh_checksum();

 private:
  nn::Network network_;
  int bits_;
  // Golden checksum state for the final Dense layer (empty when absent):
  // abft_colsum_[i] = sum_o W[o,i] and abft_bias_sum_ = sum_o b[o], taken
  // when the weights were known good.
  Tensor abft_colsum_;
  float abft_bias_sum_ = 0.0F;
};

}  // namespace pgmr::quant
