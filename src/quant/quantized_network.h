// QuantizedNetwork: a Network executed at reduced unified precision.
//
// Weights are truncated once at construction; activations are truncated
// after every layer, simulating the paper's truncating load/store path.
//
// The wrapper also carries ABFT (Huang–Abraham) column-sum checksums over
// the network's GEMM layers, captured while the weights are known good.
// Three protection levels (nn::Protection):
//   off       — no checksums, bit-identical fast path;
//   final_fc  — the final Dense layer only (FT-CNN style, the historical
//               default): sum_o y[n,o] must equal dot(x[n,:], colsum) + sum(b);
//   full      — every Conv2D and Dense layer, including those nested in
//               Sequential/ResidualBlock/DenseBlock composites.
// A stored-weight corruption (e.g. a high-exponent bit flip from the fault
// injector) breaks the checked identity by orders of magnitude and is
// reported through AbftCheck with the first failing layer — without any
// second GEMM.
//
// Independently of ABFT, the wrapper snapshots a CRC32 of every parameter
// tensor at blessing time; the runtime's weight scrubber re-computes these
// off the hot path to catch corruptions ABFT's tolerance hides (e.g.
// mantissa-LSB flips) and to decide when a member needs reloading.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nn/abft.h"
#include "nn/network.h"
#include "quant/precision.h"

namespace pgmr::quant {

/// Result of the ABFT checksum verification for one forward pass.
struct AbftCheck {
  bool checked = false;  ///< at least one layer verification ran
  bool ok = true;        ///< false on checksum mismatch (or non-finite sums)
  float max_rel_error = 0.0F;  ///< worst |actual-expected|/(1+|expected|)
  int layers_checked = 0;      ///< top-level layers that ran a verification
  int failed_layer = -1;       ///< first failing top-level layer index
  std::string failed_kind;     ///< kind() of the first failing layer
};

/// Relative tolerance for the checksum comparisons (see nn/abft.h).
inline constexpr float kAbftTolerance = nn::kAbftTolerance;

/// Owns an independent copy of a network and runs it at `bits` precision.
/// Obtain the copy by re-loading the cached model from disk (Network is
/// move-only by design).
class QuantizedNetwork {
 public:
  /// Takes ownership of `network`, truncates all its parameters and blesses
  /// the result: captures the golden ABFT checksums for `protection` and
  /// the golden parameter CRCs.
  QuantizedNetwork(nn::Network network, int bits,
                   nn::Protection protection = nn::Protection::final_fc);

  const std::string& name() const { return network_.name(); }
  int bits() const { return bits_; }

  nn::Protection protection() const { return protection_; }

  /// Switches the protection level and re-blesses the *current* weights
  /// (recaptures checksums and CRCs) — call only while they are known good.
  void set_protection(nn::Protection protection);

  /// Forward pass with per-layer activation truncation; returns logits.
  /// When `abft` is non-null the protected layers are verified into it.
  Tensor forward(const Tensor& input, AbftCheck* abft = nullptr);

  /// Observation/corruption hook on the in-flight activation tensor, called
  /// after each top-level layer's truncation with that layer's index. This
  /// is the seam activation-resolution fault injection uses (see
  /// fault/chaos.h): a corruption written here happens *between* layers, so
  /// ABFT — which verifies each GEMM against its actual input — cannot see
  /// it; only the MR vote (and the non-finite output check) stands between
  /// it and the verdict. For a folded conv→BN pair the tap fires once, on
  /// the BatchNorm output, with the pair's first (conv) layer index. An
  /// empty function clears the tap. Not thread-safe against a concurrent
  /// forward(); install before serving or under the runtime's swap lock.
  using ForwardTap = std::function<void(Tensor& activation, int layer)>;
  void set_forward_tap(ForwardTap tap) { tap_ = std::move(tap); }

  /// forward() followed by softmax — the layer-2 output PolygraphMR uses.
  Tensor probabilities(const Tensor& input, AbftCheck* abft = nullptr);

  /// Cost of one forward pass at the wrapped precision is derived by the
  /// perf module from this plus bits(); expose the underlying network.
  const nn::Network& network() const { return network_; }

  /// Mutable access for fault injection (chaos/injector campaigns). Note
  /// that deliberate weight edits are exactly what the ABFT checksum and
  /// parameter CRCs detect; call refresh_checksum() after a *legitimate*
  /// weight change.
  nn::Network& mutable_network() { return network_; }

  /// Re-blesses the current weights: recaptures the golden ABFT checksums
  /// at the active protection level and re-snapshots the parameter CRCs.
  void refresh_checksum();

  /// Golden CRC32 per parameter tensor, in params() order, taken at the
  /// last blessing (construction / refresh_checksum / set_protection).
  const std::vector<std::uint32_t>& golden_param_crcs() const {
    return golden_crcs_;
  }

  /// CRC32 per parameter tensor over the *current* weights.
  std::vector<std::uint32_t> current_param_crcs();

  /// True when every current parameter CRC matches its golden snapshot.
  bool params_intact();

  /// Index (params() order) of the first corrupted parameter, -1 if intact.
  int first_corrupt_param();

  /// Number of parameter tensors — the unit of incremental scrubbing.
  std::size_t param_count();

  /// CRC check of a single parameter tensor (params() order); false for an
  /// out-of-range index or a live/golden size drift.
  bool param_intact(std::size_t i);

  /// Chunk granularity of the resumable CRC snapshot: a parameter tensor
  /// is blessed as independent CRC32s over kCrcChunkElems-float windows,
  /// so the scrubber can verify (and be interrupted inside) a tensor far
  /// larger than one swap-mutex hold budget. 16384 floats = 64 KiB.
  static constexpr std::int64_t kCrcChunkElems = 16384;

  /// Chunks in parameter tensor `i` (ceil(numel / kCrcChunkElems), at
  /// least 1 for an in-range tensor); 0 for an out-of-range index.
  std::size_t param_chunk_count(std::size_t i);

  /// CRC check of one chunk of parameter tensor `i`; false out of range or
  /// on live/golden size drift — a drift is a corruption signal.
  bool param_chunk_intact(std::size_t i, std::size_t chunk);

 private:
  /// True when layers [l, l+1] are a conv→BN pair the checksum can fold.
  bool foldable_at(std::size_t l) const;

  nn::Network network_;
  int bits_;
  nn::Protection protection_;
  /// Golden checksum per top-level layer; empty entries are unprotected.
  std::vector<nn::AbftChecksum> layer_golden_;
  std::vector<std::uint32_t> golden_crcs_;
  /// Per-tensor chunked CRC snapshot (kCrcChunkElems floats per chunk),
  /// captured at the same blessings as golden_crcs_.
  std::vector<std::vector<std::uint32_t>> golden_chunk_crcs_;
  ForwardTap tap_;
};

}  // namespace pgmr::quant
