// QuantizedNetwork: a Network executed at reduced unified precision.
//
// Weights are truncated once at construction; activations are truncated
// after every layer, simulating the paper's truncating load/store path.
#pragma once

#include "nn/network.h"
#include "quant/precision.h"

namespace pgmr::quant {

/// Owns an independent copy of a network and runs it at `bits` precision.
/// Obtain the copy by re-loading the cached model from disk (Network is
/// move-only by design).
class QuantizedNetwork {
 public:
  /// Takes ownership of `network` and truncates all its parameters.
  QuantizedNetwork(nn::Network network, int bits);

  const std::string& name() const { return network_.name(); }
  int bits() const { return bits_; }

  /// Forward pass with per-layer activation truncation; returns logits.
  Tensor forward(const Tensor& input);

  /// forward() followed by softmax — the layer-2 output PolygraphMR uses.
  Tensor probabilities(const Tensor& input);

  /// Cost of one forward pass at the wrapped precision is derived by the
  /// perf module from this plus bits(); expose the underlying network.
  const nn::Network& network() const { return network_; }

 private:
  nn::Network network_;
  int bits_;
};

}  // namespace pgmr::quant
