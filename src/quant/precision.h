// Reduced-precision simulation (paper Section III-D, RAMR).
//
// The paper truncates values on load/store with custom CUDA kernels; here
// the same numerical effect is produced in software by zeroing the low
// mantissa bits of IEEE-754 floats. A "B-bit" value keeps 1 sign bit, the
// full 8-bit exponent, and (B - 9) mantissa bits — matching the paper's
// 10..32-bit unified-precision axis (e.g. 17 bits = 8-bit mantissa).
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace pgmr::quant {

/// Total bit-widths representable by the truncation scheme.
constexpr int kMinBits = 9;   ///< sign + exponent only (zero mantissa bits)
constexpr int kFullBits = 32; ///< identity (full fp32)

/// Truncates one float to `bits` total bits. bits >= 32 is the identity;
/// bits are clamped below at kMinBits.
float truncate_value(float v, int bits);

/// Truncates every element of `t` in place.
void truncate_tensor(Tensor& t, int bits);

}  // namespace pgmr::quant
