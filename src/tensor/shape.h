// Shape: dimension vector for dense row-major tensors.
//
// PolygraphMR's networks use rank-2 (N x F) and rank-4 (N x C x H x W)
// tensors exclusively, but Shape supports any rank up to kMaxRank so the
// framework stays generic.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>

namespace pgmr {

/// A small fixed-capacity dimension list. Value type, cheap to copy.
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 6;

  Shape() = default;

  /// Construct from an explicit dimension list, e.g. Shape{32, 3, 16, 16}.
  /// Throws std::invalid_argument on rank > kMaxRank or any zero dimension.
  Shape(std::initializer_list<std::int64_t> dims) {
    if (dims.size() > kMaxRank) {
      throw std::invalid_argument("Shape: rank exceeds kMaxRank");
    }
    for (std::int64_t d : dims) {
      if (d <= 0) throw std::invalid_argument("Shape: non-positive dimension");
      dims_[rank_++] = d;
    }
  }

  /// Number of dimensions.
  std::size_t rank() const { return rank_; }

  /// Dimension at axis i (bounds-checked).
  std::int64_t dim(std::size_t i) const {
    if (i >= rank_) throw std::out_of_range("Shape::dim: axis out of range");
    return dims_[i];
  }

  std::int64_t operator[](std::size_t i) const { return dim(i); }

  /// Total number of elements (product of dimensions); 1 for rank 0.
  std::int64_t numel() const {
    std::int64_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  bool operator==(const Shape& other) const {
    if (rank_ != other.rank_) return false;
    for (std::size_t i = 0; i < rank_; ++i) {
      if (dims_[i] != other.dims_[i]) return false;
    }
    return true;
  }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Human-readable form, e.g. "[32, 3, 16, 16]".
  std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < rank_; ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(dims_[i]);
    }
    s += "]";
    return s;
  }

 private:
  std::array<std::int64_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace pgmr
