#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pgmr {

Tensor::Tensor(Shape shape)
    : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), 0.0F) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(shape), data_(std::move(values)) {
  if (static_cast<std::int64_t>(data_.size()) != shape_.numel()) {
    throw std::invalid_argument("Tensor: value count does not match shape " +
                                shape_.to_string());
  }
}

void Tensor::check_rank(std::size_t expected) const {
  if (shape_.rank() != expected) {
    throw std::invalid_argument("Tensor: expected rank " +
                                std::to_string(expected) + ", got shape " +
                                shape_.to_string());
  }
}

float& Tensor::at(std::int64_t n, std::int64_t f) {
  check_rank(2);
  return data_[static_cast<std::size_t>(n * shape_[1] + f)];
}

float Tensor::at(std::int64_t n, std::int64_t f) const {
  check_rank(2);
  return data_[static_cast<std::size_t>(n * shape_[1] + f)];
}

float& Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) {
  check_rank(4);
  const std::int64_t idx =
      ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  return data_[static_cast<std::size_t>(idx)];
}

float Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w) const {
  check_rank(4);
  const std::int64_t idx =
      ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  return data_[static_cast<std::size_t>(idx)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("Tensor::reshaped: element count mismatch (" +
                                shape_.to_string() + " -> " +
                                new_shape.to_string() + ")");
  }
  return Tensor(new_shape, data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  if (shape_ != other.shape_) {
    throw std::invalid_argument("Tensor::operator+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  if (shape_ != other.shape_) {
    throw std::invalid_argument("Tensor::operator-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

std::int64_t Tensor::argmax() const {
  if (data_.empty()) throw std::logic_error("Tensor::argmax: empty tensor");
  return std::distance(data_.begin(),
                       std::max_element(data_.begin(), data_.end()));
}

std::int64_t Tensor::argmax_row(std::int64_t n) const {
  check_rank(2);
  const std::int64_t cols = shape_[1];
  const float* row = data_.data() + n * cols;
  return std::distance(row, std::max_element(row, row + cols));
}

float Tensor::max_row(std::int64_t n) const {
  check_rank(2);
  const std::int64_t cols = shape_[1];
  const float* row = data_.data() + n * cols;
  return *std::max_element(row, row + cols);
}

Tensor Tensor::slice_sample(std::int64_t n) const {
  if (n < 0 || shape_.rank() == 0 || n >= shape_[0]) {
    throw std::out_of_range("Tensor::slice_sample: sample index out of range");
  }
  const std::int64_t per_sample = numel() / shape_[0];
  std::vector<float> out(data_.begin() + n * per_sample,
                         data_.begin() + (n + 1) * per_sample);
  if (shape_.rank() == 4) {
    return Tensor(Shape{1, shape_[1], shape_[2], shape_[3]}, std::move(out));
  }
  if (shape_.rank() == 2) {
    return Tensor(Shape{1, shape_[1]}, std::move(out));
  }
  throw std::invalid_argument("Tensor::slice_sample: unsupported rank");
}

bool allclose(const Tensor& a, const Tensor& b, float tol) {
  if (a.shape() != b.shape()) return false;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace pgmr
