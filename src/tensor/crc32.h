// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over raw bytes.
//
// The integrity primitive behind the archive format's per-tensor payload
// guard and the runtime's in-memory weight scrubber: cheap enough to run
// over every parameter tensor periodically, and exact — unlike the ABFT
// column-sum checks, a single flipped mantissa LSB changes the CRC.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pgmr {

/// CRC-32 of `n` bytes at `p`, continuing from `seed` (pass the previous
/// return value to checksum discontiguous buffers as one stream).
std::uint32_t crc32(const void* p, std::size_t n, std::uint32_t seed = 0);

}  // namespace pgmr
