#include "tensor/serialize.h"

#include <stdexcept>

#include "tensor/crc32.h"

namespace pgmr {
namespace {

constexpr std::uint32_t kMagic = 0x50474D52;  // "PGMR"
constexpr std::uint32_t kLegacyVersion = 1;   // pre-CRC payloads

/// CRC-32 over a tensor's shape descriptor and float payload — what v2
/// archives append after the values so bit rot is caught at load time.
std::uint32_t tensor_crc(const std::vector<std::int64_t>& dims,
                         const std::vector<float>& values) {
  std::uint32_t c = crc32(dims.data(), dims.size() * sizeof(std::int64_t));
  return crc32(values.data(), values.size() * sizeof(float), c);
}

}  // namespace

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw std::runtime_error("BinaryWriter: cannot open " + path);
  write_u32(kMagic);
  write_u32(kArchiveVersion);
}

void BinaryWriter::raw(const void* p, std::size_t n) {
  out_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  if (!out_) throw std::runtime_error("BinaryWriter: write failed");
}

void BinaryWriter::write_u32(std::uint32_t v) { raw(&v, sizeof(v)); }
void BinaryWriter::write_i64(std::int64_t v) { raw(&v, sizeof(v)); }
void BinaryWriter::write_f32(float v) { raw(&v, sizeof(v)); }
void BinaryWriter::write_f64(double v) { raw(&v, sizeof(v)); }

void BinaryWriter::write_string(const std::string& s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  if (!s.empty()) raw(s.data(), s.size());
}

void BinaryWriter::write_floats(const std::vector<float>& v) {
  write_i64(static_cast<std::int64_t>(v.size()));
  if (!v.empty()) raw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::write_tensor(const Tensor& t) {
  write_u32(static_cast<std::uint32_t>(t.shape().rank()));
  std::vector<std::int64_t> dims(t.shape().rank());
  for (std::size_t i = 0; i < t.shape().rank(); ++i) {
    dims[i] = t.shape()[i];
    write_i64(dims[i]);
  }
  write_floats(t.values());
  write_u32(tensor_crc(dims, t.values()));
}

void BinaryWriter::close() {
  out_.flush();
  if (!out_) throw std::runtime_error("BinaryWriter: flush failed");
  out_.close();
}

BinaryReader::BinaryReader(const std::string& path, Compat compat)
    : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("BinaryReader: cannot open " + path);
  if (read_u32() != kMagic) {
    throw std::runtime_error("BinaryReader: bad magic in " + path);
  }
  version_ = read_u32();
  const bool legacy_ok =
      compat == Compat::allow_legacy && version_ == kLegacyVersion;
  if (version_ != kArchiveVersion && !legacy_ok) {
    throw std::runtime_error("BinaryReader: unsupported version in " + path);
  }
}

void BinaryReader::raw(void* p, std::size_t n) {
  in_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (in_.gcount() != static_cast<std::streamsize>(n)) {
    throw std::runtime_error("BinaryReader: truncated archive");
  }
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v = 0;
  raw(&v, sizeof(v));
  return v;
}

std::int64_t BinaryReader::read_i64() {
  std::int64_t v = 0;
  raw(&v, sizeof(v));
  return v;
}

float BinaryReader::read_f32() {
  float v = 0;
  raw(&v, sizeof(v));
  return v;
}

double BinaryReader::read_f64() {
  double v = 0;
  raw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint32_t n = read_u32();
  std::string s(n, '\0');
  if (n > 0) raw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::read_floats() {
  const std::int64_t n = read_i64();
  if (n < 0) throw std::runtime_error("BinaryReader: negative float count");
  std::vector<float> v(static_cast<std::size_t>(n));
  if (n > 0) raw(v.data(), v.size() * sizeof(float));
  return v;
}

Tensor BinaryReader::read_tensor() {
  const std::uint32_t rank = read_u32();
  if (rank > Shape::kMaxRank) {
    throw std::runtime_error("BinaryReader: tensor rank too large");
  }
  std::vector<std::int64_t> dims(rank);
  for (auto& d : dims) d = read_i64();
  std::vector<float> values = read_floats();
  if (version_ >= kArchiveVersion) {
    const std::uint32_t stored = read_u32();
    if (stored != tensor_crc(dims, values)) {
      throw std::runtime_error("BinaryReader: tensor CRC mismatch");
    }
  }
  Shape shape;
  switch (rank) {
    case 0: shape = Shape{}; break;
    case 1: shape = Shape{dims[0]}; break;
    case 2: shape = Shape{dims[0], dims[1]}; break;
    case 3: shape = Shape{dims[0], dims[1], dims[2]}; break;
    case 4: shape = Shape{dims[0], dims[1], dims[2], dims[3]}; break;
    case 5: shape = Shape{dims[0], dims[1], dims[2], dims[3], dims[4]}; break;
    default:
      shape = Shape{dims[0], dims[1], dims[2], dims[3], dims[4], dims[5]};
      break;
  }
  return Tensor(shape, std::move(values));
}

bool archive_exists(const std::string& path) {
  try {
    BinaryReader reader(path);
    return true;
  } catch (const std::runtime_error&) {
    return false;
  }
}

}  // namespace pgmr
