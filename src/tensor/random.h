// Rng: deterministic random source used across PolygraphMR.
//
// Every stochastic step in the reproduction — dataset synthesis, weight
// initialization, shuffling, dropout — draws from an explicitly seeded Rng
// so that training runs, tests, and benches are bit-reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace pgmr {

/// Seeded pseudo-random generator (mt19937_64 underneath). Not thread-safe;
/// use one Rng per logical stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  /// Standard normal scaled by `stddev` around `mean`.
  float normal(float mean, float stddev) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// True with probability p.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Derives an independent child stream; used to give each ensemble member
  /// its own reproducible randomness.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pgmr
