// Tensor: dense row-major float32 tensor with value semantics.
//
// This is the single numeric container shared by every PolygraphMR module:
// images, activations, weights, gradients and softmax vectors are all
// Tensors. Storage is contiguous; layout for rank-4 tensors is NCHW.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/shape.h"

namespace pgmr {

/// Dense row-major float tensor. Copyable, movable; copies are deep.
class Tensor {
 public:
  /// Empty tensor (rank 0, one element? no: zero elements, null shape).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with explicit contents (size must match).
  /// Throws std::invalid_argument on size mismatch.
  Tensor(Shape shape, std::vector<float> values);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Flat element access (bounds-checked in debug via vector::at semantics
  /// is avoided for speed; callers must stay in range).
  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Rank-2 access: element (n, f).
  float& at(std::int64_t n, std::int64_t f);
  float at(std::int64_t n, std::int64_t f) const;

  /// Rank-4 NCHW access: element (n, c, h, w).
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;

  /// Returns a tensor with the same data reinterpreted under a new shape.
  /// Throws std::invalid_argument if element counts differ.
  Tensor reshaped(Shape new_shape) const;

  /// Fill every element with `value`.
  void fill(float value);

  /// Elementwise in-place operations (shapes must match exactly).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);

  /// Sum of all elements.
  float sum() const;

  /// Index of the maximum element across the whole tensor.
  std::int64_t argmax() const;

  /// Index of the maximum element within row n of a rank-2 tensor.
  std::int64_t argmax_row(std::int64_t n) const;

  /// Maximum value within row n of a rank-2 tensor.
  float max_row(std::int64_t n) const;

  /// Extracts row n of a rank-2 tensor (a length-F rank-1 tensor) or
  /// sample n of a rank-4 tensor (a rank-3 C x H x W tensor... returned as
  /// rank-4 with N=1 for layer compatibility).
  Tensor slice_sample(std::int64_t n) const;

  /// Underlying storage, for serialization and tests.
  const std::vector<float>& values() const { return data_; }

 private:
  void check_rank(std::size_t expected) const;

  Shape shape_;
  std::vector<float> data_;
};

/// Returns true when every pair of elements differs by at most `tol`.
bool allclose(const Tensor& a, const Tensor& b, float tol = 1e-5F);

}  // namespace pgmr
