// Binary serialization for trained models and cached datasets.
//
// A tiny length-prefixed binary format: PODs are written little-endian
// as-is (we only target x86-64 here), strings and tensors carry explicit
// sizes, and every archive starts with a magic + version header so stale
// caches are rejected instead of misread.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace pgmr {

/// Streaming binary writer. Throws std::runtime_error on I/O failure.
class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the archive header.
  explicit BinaryWriter(const std::string& path);

  void write_u32(std::uint32_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_floats(const std::vector<float>& v);
  void write_tensor(const Tensor& t);

  /// Flushes and closes; throws if the stream is in a failed state.
  void close();

 private:
  void raw(const void* p, std::size_t n);
  std::ofstream out_;
};

/// Streaming binary reader mirroring BinaryWriter. Throws std::runtime_error
/// on truncated input or header mismatch.
class BinaryReader {
 public:
  /// Opens `path` and validates the archive header.
  explicit BinaryReader(const std::string& path);

  std::uint32_t read_u32();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_floats();
  Tensor read_tensor();

 private:
  void raw(void* p, std::size_t n);
  std::ifstream in_;
};

/// True when a readable archive with a valid header exists at `path`.
bool archive_exists(const std::string& path);

}  // namespace pgmr
