// Binary serialization for trained models and cached datasets.
//
// A tiny length-prefixed binary format: PODs are written little-endian
// as-is (we only target x86-64 here), strings and tensors carry explicit
// sizes, and every archive starts with a magic + version header so stale
// caches are rejected instead of misread.
//
// Format v2 guards every tensor payload with a trailing CRC-32 over the
// shape descriptor and the float data, so a flipped bit anywhere in a
// stored parameter surfaces as a load-time error instead of a silent
// mispredicting network. v1 archives (no CRC) are rejected by default —
// the zoo's self-heal path retrains them — but can be read explicitly via
// Compat::allow_legacy for in-place migration (tools/migrate_cache).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace pgmr {

/// Current archive format version (v2 = CRC-guarded tensor payloads).
inline constexpr std::uint32_t kArchiveVersion = 2;

/// Streaming binary writer. Throws std::runtime_error on I/O failure.
class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the archive header.
  explicit BinaryWriter(const std::string& path);

  void write_u32(std::uint32_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_floats(const std::vector<float>& v);
  void write_tensor(const Tensor& t);

  /// Flushes and closes; throws if the stream is in a failed state.
  void close();

 private:
  void raw(const void* p, std::size_t n);
  std::ofstream out_;
};

/// Streaming binary reader mirroring BinaryWriter. Throws std::runtime_error
/// on truncated input, header mismatch, or a tensor CRC mismatch.
class BinaryReader {
 public:
  /// Opt-in acceptance of pre-CRC (v1) archives, for migration tooling
  /// only; normal consumers reject them so stale caches self-heal.
  enum class Compat { strict, allow_legacy };

  /// Opens `path` and validates the archive header.
  explicit BinaryReader(const std::string& path,
                        Compat compat = Compat::strict);

  /// Format version of the open archive (kArchiveVersion unless legacy).
  std::uint32_t version() const { return version_; }

  std::uint32_t read_u32();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_floats();

  /// Reads a tensor and (v2+) verifies its payload CRC-32, throwing
  /// std::runtime_error on mismatch.
  Tensor read_tensor();

 private:
  void raw(void* p, std::size_t n);
  std::ifstream in_;
  std::uint32_t version_ = kArchiveVersion;
};

/// True when a readable archive with a valid header exists at `path`.
bool archive_exists(const std::string& path);

}  // namespace pgmr
