#include "nn/optimizer.h"

#include <stdexcept>

namespace pgmr::nn {

SGD::SGD(std::vector<Tensor*> params, std::vector<Tensor*> grads,
         Config config)
    : params_(std::move(params)), grads_(std::move(grads)), config_(config) {
  if (params_.size() != grads_.size()) {
    throw std::invalid_argument("SGD: params/grads size mismatch");
  }
  velocity_.reserve(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i]->shape() != grads_[i]->shape()) {
      throw std::invalid_argument("SGD: param/grad shape mismatch at " +
                                  std::to_string(i));
    }
    velocity_.emplace_back(params_[i]->shape());
  }
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& w = *params_[i];
    const Tensor& g = *grads_[i];
    Tensor& v = velocity_[i];
    for (std::int64_t j = 0; j < w.numel(); ++j) {
      const float grad = g[j] + config_.weight_decay * w[j];
      v[j] = config_.momentum * v[j] - config_.learning_rate * grad;
      w[j] += v[j];
    }
  }
}

void SGD::zero_grad() {
  for (Tensor* g : grads_) g->fill(0.0F);
}

}  // namespace pgmr::nn
