// Layer: the polymorphic building block of every CNN in this repo.
//
// Contract:
//  * forward(x, train) consumes an activation tensor and produces the next
//    one; when `train` is true the layer may cache whatever it needs for
//    backward and may behave stochastically (Dropout) or use batch
//    statistics (BatchNorm).
//  * backward(dy) must be called after a forward(x, true) with the gradient
//    of the loss w.r.t. this layer's output; it accumulates parameter
//    gradients internally and returns the gradient w.r.t. its input.
//  * params()/grads() expose trainable state to the optimizer in matching
//    order.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/abft.h"
#include "nn/cost.h"
#include "tensor/random.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace pgmr::nn {

/// Abstract network layer. Layers own their parameters (value-semantic
/// Tensors); Networks own layers via unique_ptr.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Stable type tag used by the serializer ("conv2d", "dense", ...).
  virtual std::string kind() const = 0;

  /// Computes the layer output. `train` enables caching for backward and
  /// training-time behaviour (dropout masks, batch statistics).
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Backpropagates `grad_output` (same shape as the last forward output),
  /// accumulating parameter gradients; returns gradient w.r.t. the input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters, in a fixed order matched by grads().
  virtual std::vector<Tensor*> params() { return {}; }

  /// Accumulated parameter gradients, same order as params().
  virtual std::vector<Tensor*> grads() { return {}; }

  /// Shape of the output produced for an input of shape `in`.
  virtual Shape output_shape(const Shape& in) const = 0;

  /// Static cost of one forward pass for an input of shape `in`.
  virtual CostStats cost(const Shape& in) const;

  /// Golden column-sum checksum over this layer's current GEMM weights,
  /// for ABFT verification. Empty for layers without GEMM support
  /// (activations, pooling, batchnorm, ...).
  virtual AbftChecksum abft_checksum() const { return {}; }

  /// Eval-mode forward with ABFT verification of the layer's GEMM against
  /// `golden` (a checksum previously returned by abft_checksum). The output
  /// is bit-identical to forward(input, false); the verdict is aggregated
  /// into `check`. Layers without ABFT support run unchecked.
  virtual Tensor forward_abft(const Tensor& input, const AbftChecksum& golden,
                              AbftLayerCheck* check);

  /// Serializes hyperparameters and parameters (not optimizer state).
  virtual void save(BinaryWriter& w) const = 0;
};

/// Serializes `layer` with its type tag so load_layer can reconstruct it.
void save_layer(BinaryWriter& w, const Layer& layer);

/// Reconstructs a layer previously written with save_layer.
/// Throws std::runtime_error for unknown type tags.
std::unique_ptr<Layer> load_layer(BinaryReader& r);

}  // namespace pgmr::nn
