#include "nn/conv2d.h"

#include <stdexcept>

#include "nn/gemm.h"
#include "nn/init.h"

namespace pgmr::nn {

Conv2D::Conv2D(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Shape{out_channels, in_channels * kernel * kernel}),
      bias_(Shape{out_channels}),
      grad_weight_(Shape{out_channels, in_channels * kernel * kernel}),
      grad_bias_(Shape{out_channels}) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 ||
      pad < 0) {
    throw std::invalid_argument("Conv2D: invalid geometry");
  }
}

void Conv2D::init(Rng& rng) {
  he_init(weight_, in_c_ * kernel_ * kernel_, rng);
  bias_.fill(0.0F);
}

ConvGeometry Conv2D::geometry(const Shape& in) const {
  if (in.rank() != 4 || in[1] != in_c_) {
    throw std::invalid_argument("Conv2D: bad input shape " + in.to_string());
  }
  ConvGeometry geo;
  geo.in_channels = in_c_;
  geo.in_h = in[2];
  geo.in_w = in[3];
  geo.kernel = kernel_;
  geo.stride = stride_;
  geo.pad = pad_;
  if (geo.out_h() <= 0 || geo.out_w() <= 0) {
    throw std::invalid_argument("Conv2D: kernel larger than padded input");
  }
  return geo;
}

Shape Conv2D::output_shape(const Shape& in) const {
  const ConvGeometry geo = geometry(in);
  return Shape{in[0], out_c_, geo.out_h(), geo.out_w()};
}

Tensor Conv2D::forward(const Tensor& input, bool train) {
  return forward_impl(input, train, nullptr, nullptr);
}

AbftChecksum Conv2D::abft_checksum() const {
  const std::int64_t patch = weight_.shape()[1];
  AbftChecksum golden;
  golden.colsum = Tensor(Shape{patch});
  gemm_col_sums(weight_.data(), out_c_, patch, golden.colsum.data());
  for (std::int64_t oc = 0; oc < out_c_; ++oc) {
    golden.bias_sum += static_cast<double>(bias_[oc]);
  }
  return golden;
}

Tensor Conv2D::forward_abft(const Tensor& input, const AbftChecksum& golden,
                            AbftLayerCheck* check) {
  if (golden.empty()) return forward_impl(input, false, nullptr, nullptr);
  return forward_impl(input, false, &golden, check);
}

AbftChecksum Conv2D::abft_checksum_folded(const Tensor& scale,
                                          const Tensor& shift) const {
  if (scale.numel() != out_c_ || shift.numel() != out_c_) {
    throw std::invalid_argument("Conv2D::abft_checksum_folded: affine size " +
                                std::to_string(scale.numel()) +
                                " != out_channels");
  }
  const std::int64_t patch = weight_.shape()[1];
  AbftChecksum golden;
  golden.form = AbftForm::folded;
  golden.colsum = Tensor(Shape{patch});
  for (std::int64_t k = 0; k < patch; ++k) {
    double acc = 0.0;
    for (std::int64_t oc = 0; oc < out_c_; ++oc) {
      acc += static_cast<double>(scale[oc]) * weight_[oc * patch + k];
    }
    golden.colsum[k] = static_cast<float>(acc);
  }
  for (std::int64_t oc = 0; oc < out_c_; ++oc) {
    golden.bias_sum += static_cast<double>(scale[oc]) * bias_[oc] +
                       static_cast<double>(shift[oc]);
  }
  return golden;
}

Tensor Conv2D::forward_save_cols(const Tensor& input,
                                 std::vector<float>* cols) {
  return forward_impl(input, false, nullptr, nullptr, cols);
}

Tensor Conv2D::forward_impl(const Tensor& input, bool train,
                            const AbftChecksum* golden, AbftLayerCheck* check,
                            std::vector<float>* save_cols) {
  const ConvGeometry geo = geometry(input.shape());
  const std::int64_t batch = input.shape()[0];
  const std::int64_t oh = geo.out_h();
  const std::int64_t ow = geo.out_w();
  const std::int64_t spatial = oh * ow;
  const std::int64_t patch = geo.patch_size();

  Tensor out(Shape{batch, out_c_, oh, ow});
  std::vector<float> col(static_cast<std::size_t>(patch * spatial));

  if (train) {
    cached_in_shape_ = input.shape();
    cached_cols_.assign(static_cast<std::size_t>(batch * patch * spatial), 0.0F);
  }
  if (save_cols != nullptr) {
    save_cols->resize(static_cast<std::size_t>(batch * patch * spatial));
  }

  const std::int64_t in_per_sample = in_c_ * geo.in_h * geo.in_w;
  for (std::int64_t n = 0; n < batch; ++n) {
    im2col(input.data() + n * in_per_sample, geo, col.data());
    float* dst = out.data() + n * out_c_ * spatial;
    // out[oc, y*x] = W[oc, patch] * col[patch, y*x] + bias
    for (std::int64_t oc = 0; oc < out_c_; ++oc) {
      float* row = dst + oc * spatial;
      const float b = bias_[oc];
      for (std::int64_t s = 0; s < spatial; ++s) row[s] = b;
    }
    gemm_accumulate(weight_.data(), col.data(), dst, out_c_, patch, spatial);
    if (golden) {
      // Verify against the live im2col buffer; re-running im2col for the
      // check would double the layer's memory traffic.
      abft_verify_cols(col.data(), dst, out_c_, patch, spatial, *golden,
                       check);
    }
    if (train) {
      std::copy(col.begin(), col.end(),
                cached_cols_.begin() + n * patch * spatial);
    }
    if (save_cols != nullptr) {
      std::copy(col.begin(), col.end(),
                save_cols->begin() + n * patch * spatial);
    }
  }
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  if (cached_cols_.empty()) {
    throw std::logic_error("Conv2D::backward before forward(train=true)");
  }
  const ConvGeometry geo = geometry(cached_in_shape_);
  const std::int64_t batch = cached_in_shape_[0];
  const std::int64_t spatial = geo.out_h() * geo.out_w();
  const std::int64_t patch = geo.patch_size();
  const std::int64_t in_per_sample = in_c_ * geo.in_h * geo.in_w;

  Tensor grad_in(cached_in_shape_);
  std::vector<float> grad_col(static_cast<std::size_t>(patch * spatial));

  for (std::int64_t n = 0; n < batch; ++n) {
    const float* dy = grad_output.data() + n * out_c_ * spatial;
    const float* col = cached_cols_.data() + n * patch * spatial;

    // grad_bias[oc] += sum over spatial of dy[oc, :]
    for (std::int64_t oc = 0; oc < out_c_; ++oc) {
      float acc = 0.0F;
      for (std::int64_t s = 0; s < spatial; ++s) acc += dy[oc * spatial + s];
      grad_bias_[oc] += acc;
    }
    // grad_W[oc, patch] += dy[oc, spatial] * col^T[spatial, patch]
    gemm_a_bt(dy, col, grad_weight_.data(), out_c_, spatial, patch);
    // grad_col[patch, spatial] = W^T[patch, oc] * dy[oc, spatial]
    std::fill(grad_col.begin(), grad_col.end(), 0.0F);
    gemm_at_b(weight_.data(), dy, grad_col.data(), patch, out_c_, spatial);
    col2im(grad_col.data(), geo, grad_in.data() + n * in_per_sample);
  }
  return grad_in;
}

CostStats Conv2D::cost(const Shape& in) const {
  const ConvGeometry geo = geometry(in);
  CostStats s;
  const std::int64_t spatial = geo.out_h() * geo.out_w();
  s.macs = in[0] * out_c_ * spatial * geo.patch_size();
  s.param_count = weight_.numel() + bias_.numel();
  s.weight_bytes = s.param_count * 4;
  s.activation_bytes = (in.numel() + in[0] * out_c_ * spatial) * 4;
  // expected[j] over the patch dim plus the actual column sums of the output.
  s.abft_macs = in[0] * spatial * (geo.patch_size() + out_c_);
  return s;
}

void Conv2D::save(BinaryWriter& w) const {
  w.write_i64(in_c_);
  w.write_i64(out_c_);
  w.write_i64(kernel_);
  w.write_i64(stride_);
  w.write_i64(pad_);
  w.write_tensor(weight_);
  w.write_tensor(bias_);
}

std::unique_ptr<Conv2D> Conv2D::load(BinaryReader& r) {
  const std::int64_t in_c = r.read_i64();
  const std::int64_t out_c = r.read_i64();
  const std::int64_t kernel = r.read_i64();
  const std::int64_t stride = r.read_i64();
  const std::int64_t pad = r.read_i64();
  auto layer = std::make_unique<Conv2D>(in_c, out_c, kernel, stride, pad);
  layer->weight_ = r.read_tensor();
  layer->bias_ = r.read_tensor();
  return layer;
}

}  // namespace pgmr::nn
