// Elementwise activation layers.
#pragma once

#include "nn/layer.h"

namespace pgmr::nn {

/// Rectified linear unit, y = max(0, x).
class ReLU final : public Layer {
 public:
  std::string kind() const override { return "relu"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& in) const override { return in; }
  CostStats cost(const Shape& in) const override;
  AbftChecksum abft_checksum() const override;
  Tensor forward_abft(const Tensor& input, const AbftChecksum& golden,
                      AbftLayerCheck* check) override;
  void save(BinaryWriter&) const override {}
  static std::unique_ptr<ReLU> load(BinaryReader&) {
    return std::make_unique<ReLU>();
  }

 private:
  Tensor cached_input_;
};

/// Inverted dropout: at train time zeroes activations with probability p and
/// rescales survivors by 1/(1-p); identity at inference.
class Dropout final : public Layer {
 public:
  /// `p` is the drop probability in [0, 1); `seed` makes masks reproducible.
  Dropout(float p, std::uint64_t seed);

  std::string kind() const override { return "dropout"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& in) const override { return in; }
  void save(BinaryWriter& w) const override;
  static std::unique_ptr<Dropout> load(BinaryReader& r);

 private:
  float p_;
  std::uint64_t seed_;
  Rng rng_;
  Tensor mask_;
};

}  // namespace pgmr::nn
