#include "nn/network.h"

#include <stdexcept>

#include "nn/softmax.h"

namespace pgmr::nn {

Network::Network(std::string name, std::vector<std::unique_ptr<Layer>> layers)
    : name_(std::move(name)), layers_(std::move(layers)) {
  if (layers_.empty()) throw std::invalid_argument("Network: no layers");
}

Tensor Network::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

Tensor Network::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

Tensor Network::probabilities(const Tensor& input) {
  return softmax(forward(input, /*train=*/false));
}

std::vector<Tensor*> Network::params() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Network::grads() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->grads()) out.push_back(g);
  }
  return out;
}

Shape Network::output_shape(const Shape& in) const {
  Shape s = in;
  for (const auto& layer : layers_) s = layer->output_shape(s);
  return s;
}

CostStats Network::cost(const Shape& in) const {
  CostStats total;
  Shape s = in;
  for (const auto& layer : layers_) {
    total += layer->cost(s);
    s = layer->output_shape(s);
  }
  return total;
}

void Network::save(const std::string& path) const {
  BinaryWriter w(path);
  w.write_string(name_);
  w.write_u32(static_cast<std::uint32_t>(layers_.size()));
  for (const auto& layer : layers_) save_layer(w, *layer);
  w.close();
}

Network Network::load(const std::string& path) {
  BinaryReader r(path);
  return load_from(r);
}

Network Network::load_from(BinaryReader& r) {
  std::string name = r.read_string();
  const std::uint32_t count = r.read_u32();
  std::vector<std::unique_ptr<Layer>> layers;
  layers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) layers.push_back(load_layer(r));
  return Network(std::move(name), std::move(layers));
}

}  // namespace pgmr::nn
