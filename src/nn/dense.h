// Dense: fully-connected layer, y = x W^T + b.
#pragma once

#include "nn/layer.h"

namespace pgmr::nn {

/// Fully-connected layer over rank-2 [N, in_features] inputs.
class Dense final : public Layer {
 public:
  Dense(std::int64_t in_features, std::int64_t out_features);

  /// He-initializes weights and zeroes biases.
  void init(Rng& rng);

  std::string kind() const override { return "dense"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }
  Shape output_shape(const Shape& in) const override;
  CostStats cost(const Shape& in) const override;
  AbftChecksum abft_checksum() const override;
  Tensor forward_abft(const Tensor& input, const AbftChecksum& golden,
                      AbftLayerCheck* check) override;
  void save(BinaryWriter& w) const override;
  static std::unique_ptr<Dense> load(BinaryReader& r);

 private:
  std::int64_t in_f_, out_f_;
  Tensor weight_;  // [out_f, in_f]
  Tensor bias_;    // [out_f]
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;
};

}  // namespace pgmr::nn
