// BatchNorm: per-channel batch normalization (rank-4) or per-feature (rank-2).
#pragma once

#include "nn/layer.h"

namespace pgmr::nn {

/// Batch normalization with learnable affine (gamma, beta) and running
/// statistics for inference. For rank-4 input normalizes per channel; for
/// rank-2 per feature.
class BatchNorm final : public Layer {
 public:
  /// `channels` is the normalized axis size; `momentum` weights the running
  /// statistics update (new = (1-m)*old + m*batch).
  explicit BatchNorm(std::int64_t channels, float momentum = 0.1F,
                     float eps = 1e-5F);

  std::string kind() const override { return "batchnorm"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> grads() override { return {&grad_gamma_, &grad_beta_}; }
  Shape output_shape(const Shape& in) const override;
  CostStats cost(const Shape& in) const override;

  std::int64_t channels() const { return channels_; }

  /// Eval-time effective affine: forward(x, train=false) computes
  /// out = scale[c]·x + shift[c] with scale = gamma/sqrt(running_var+eps)
  /// and shift = beta − running_mean·scale. Adjacent convolutions fold
  /// this into their ABFT column sums (see Conv2D::abft_checksum_folded).
  void effective_affine(Tensor* scale, Tensor* shift) const;

  /// Golden affine checksum (AbftForm::affine): colsum = scale,
  /// bias_sum = sum of shifts. Standalone protection for BN layers that
  /// are not folded into an adjacent convolution (e.g. DenseNet's
  /// BN→ReLU→conv ordering).
  AbftChecksum abft_checksum() const override;
  Tensor forward_abft(const Tensor& input, const AbftChecksum& golden,
                      AbftLayerCheck* check) override;

  void save(BinaryWriter& w) const override;
  static std::unique_ptr<BatchNorm> load(BinaryReader& r);

 private:
  /// Number of elements normalized together per channel for shape `s`.
  std::int64_t group_size(const Shape& s) const;

  std::int64_t channels_;
  float momentum_, eps_;
  Tensor gamma_, beta_;
  Tensor grad_gamma_, grad_beta_;
  Tensor running_mean_, running_var_;

  // Forward cache for backward.
  Tensor cached_xhat_;
  Tensor cached_std_;  // per-channel sqrt(var + eps)
  Shape cached_in_shape_;
};

}  // namespace pgmr::nn
