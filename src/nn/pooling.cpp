#include "nn/pooling.h"

#include <limits>
#include <stdexcept>

namespace pgmr::nn {

MaxPool2D::MaxPool2D(std::int64_t window) : window_(window) {
  if (window <= 0) throw std::invalid_argument("MaxPool2D: invalid window");
}

Shape MaxPool2D::output_shape(const Shape& in) const {
  if (in.rank() != 4 || in[2] % window_ != 0 || in[3] % window_ != 0) {
    throw std::invalid_argument("MaxPool2D: input " + in.to_string() +
                                " not divisible by window");
  }
  return Shape{in[0], in[1], in[2] / window_, in[3] / window_};
}

Tensor MaxPool2D::forward(const Tensor& input, bool train) {
  const Shape out_shape = output_shape(input.shape());
  Tensor out(out_shape);
  const std::int64_t n_out = out.numel();
  if (train) {
    cached_in_shape_ = input.shape();
    argmax_.assign(static_cast<std::size_t>(n_out), 0);
  }
  const std::int64_t in_h = input.shape()[2];
  const std::int64_t in_w = input.shape()[3];
  const std::int64_t oh = out_shape[2];
  const std::int64_t ow = out_shape[3];
  const std::int64_t planes = out_shape[0] * out_shape[1];
  for (std::int64_t p = 0; p < planes; ++p) {
    const float* src = input.data() + p * in_h * in_w;
    float* dst = out.data() + p * oh * ow;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        float best = -std::numeric_limits<float>::infinity();
        std::int64_t best_idx = 0;
        for (std::int64_t dy = 0; dy < window_; ++dy) {
          for (std::int64_t dx = 0; dx < window_; ++dx) {
            const std::int64_t idx =
                (y * window_ + dy) * in_w + (x * window_ + dx);
            if (src[idx] > best) {
              best = src[idx];
              best_idx = idx;
            }
          }
        }
        dst[y * ow + x] = best;
        if (train) {
          argmax_[static_cast<std::size_t>(p * oh * ow + y * ow + x)] =
              p * in_h * in_w + best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  if (argmax_.empty()) {
    throw std::logic_error("MaxPool2D::backward before forward(train=true)");
  }
  Tensor grad_in(cached_in_shape_);
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_in[argmax_[static_cast<std::size_t>(i)]] += grad_output[i];
  }
  return grad_in;
}

CostStats MaxPool2D::cost(const Shape& in) const {
  CostStats s;
  s.activation_bytes = (in.numel() + output_shape(in).numel()) * 4;
  // range guard: one min/max scan of the input plus one of the output
  s.abft_macs = in.numel() + output_shape(in).numel();
  return s;
}

AbftChecksum MaxPool2D::abft_checksum() const {
  AbftChecksum g;
  g.form = AbftForm::guard;
  return g;
}

Tensor MaxPool2D::forward_abft(const Tensor& input, const AbftChecksum&,
                               AbftLayerCheck* check) {
  float lo = 0.0F, hi = 0.0F;
  abft_minmax(input.data(), input.numel(), &lo, &hi);
  Tensor out = forward(input, /*train=*/false);
  // Every max lies inside the input's value envelope.
  abft_guard_range(out.data(), out.numel(), lo, hi, check);
  return out;
}

void MaxPool2D::save(BinaryWriter& w) const { w.write_i64(window_); }

std::unique_ptr<MaxPool2D> MaxPool2D::load(BinaryReader& r) {
  return std::make_unique<MaxPool2D>(r.read_i64());
}

Shape GlobalAvgPool::output_shape(const Shape& in) const {
  if (in.rank() != 4) {
    throw std::invalid_argument("GlobalAvgPool: expected rank-4 input");
  }
  return Shape{in[0], in[1]};
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool train) {
  const Shape out_shape = output_shape(input.shape());
  if (train) cached_in_shape_ = input.shape();
  Tensor out(out_shape);
  const std::int64_t spatial = input.shape()[2] * input.shape()[3];
  const std::int64_t planes = out_shape[0] * out_shape[1];
  for (std::int64_t p = 0; p < planes; ++p) {
    const float* src = input.data() + p * spatial;
    float acc = 0.0F;
    for (std::int64_t s = 0; s < spatial; ++s) acc += src[s];
    out[p] = acc / static_cast<float>(spatial);
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  if (cached_in_shape_.rank() != 4) {
    throw std::logic_error(
        "GlobalAvgPool::backward before forward(train=true)");
  }
  Tensor grad_in(cached_in_shape_);
  const std::int64_t spatial = cached_in_shape_[2] * cached_in_shape_[3];
  const std::int64_t planes = cached_in_shape_[0] * cached_in_shape_[1];
  for (std::int64_t p = 0; p < planes; ++p) {
    const float g = grad_output[p] / static_cast<float>(spatial);
    float* dst = grad_in.data() + p * spatial;
    for (std::int64_t s = 0; s < spatial; ++s) dst[s] = g;
  }
  return grad_in;
}

CostStats GlobalAvgPool::cost(const Shape& in) const {
  CostStats s;
  s.activation_bytes = (in.numel() + output_shape(in).numel()) * 4;
  s.abft_macs = in.numel() + output_shape(in).numel();
  return s;
}

AbftChecksum GlobalAvgPool::abft_checksum() const {
  AbftChecksum g;
  g.form = AbftForm::guard;
  return g;
}

Tensor GlobalAvgPool::forward_abft(const Tensor& input, const AbftChecksum&,
                                   AbftLayerCheck* check) {
  float lo = 0.0F, hi = 0.0F;
  abft_minmax(input.data(), input.numel(), &lo, &hi);
  Tensor out = forward(input, /*train=*/false);
  // Every average lies inside the input's value envelope.
  abft_guard_range(out.data(), out.numel(), lo, hi, check);
  return out;
}

Shape Flatten::output_shape(const Shape& in) const {
  if (in.rank() == 2) return in;
  if (in.rank() == 4) return Shape{in[0], in[1] * in[2] * in[3]};
  throw std::invalid_argument("Flatten: expected rank-2 or rank-4 input");
}

Tensor Flatten::forward(const Tensor& input, bool train) {
  if (train) cached_in_shape_ = input.shape();
  return input.reshaped(output_shape(input.shape()));
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (cached_in_shape_.rank() == 0) {
    throw std::logic_error("Flatten::backward before forward(train=true)");
  }
  return grad_output.reshaped(cached_in_shape_);
}

}  // namespace pgmr::nn
