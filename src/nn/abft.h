// Algorithm-based fault tolerance (ABFT) for GEMM-backed layers.
//
// Every Conv2D and Dense forward pass is a GEMM C = A·B (+bias). The
// classic Huang–Abraham check verifies e^T·C = (e^T·A)·B: capture the
// column sums of the weight matrix once, when the weights are known good,
// and at inference compare the output's sums against the prediction those
// golden sums make from the layer *input*. A stored-weight corruption (a
// high-exponent bit flip from the fault injector, a DRAM upset) breaks the
// identity by many orders of magnitude; the check costs one extra "output
// channel" of GEMM work (~1/out_channels overhead) and no second GEMM.
//
// This header carries the protection-level vocabulary shared by quant
// (QuantizedNetwork), mr (per-member protection) and perf (cost model).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace pgmr::nn {

/// How much of a network's datapath is ABFT-verified per forward pass.
enum class Protection {
  off,       ///< no checks (bit-identical fast path)
  final_fc,  ///< final Dense layer only (the pre-PR-3 behaviour)
  full,      ///< every Conv2D and Dense layer
};

const char* to_string(Protection p);

/// Golden weight checksum for one layer, captured while the weights are
/// known good. For a GEMM layer, `colsum[k]` sums the weight matrix over
/// its output dimension (Dense: sum_o W[o,k]; Conv2D: sum_oc W[oc,k]) and
/// `bias_sum` sums the bias vector. Composite layers (Sequential,
/// ResidualBlock, DenseBlock) carry one child checksum per inner layer
/// instead, so full-network protection reaches nested convolutions.
struct AbftChecksum {
  Tensor colsum;
  double bias_sum = 0.0;
  std::vector<AbftChecksum> children;

  bool empty() const {
    if (!colsum.empty()) return false;
    for (const AbftChecksum& c : children) {
      if (!c.empty()) return false;
    }
    return true;
  }
};

/// Outcome of verifying one layer's forward GEMM.
struct AbftLayerCheck {
  bool checked = false;        ///< a verification actually ran
  bool ok = true;              ///< false on mismatch (or non-finite sums)
  float max_rel_error = 0.0F;  ///< worst |actual-expected|/(1+|expected|)
};

/// Relative tolerance for the checks: float GEMM accumulation over these
/// fan-ins stays orders of magnitude below it, while exponent-bit weight
/// corruption overshoots it by many orders.
inline constexpr float kAbftTolerance = 2e-3F;

/// Row-sum verification for C[M,N] = A[M,K]·B^T (+bias), the Dense layout:
/// expected row sum r is dot(A[r,:], golden.colsum) + golden.bias_sum.
/// Aggregates into `check` (checked set true, ok sticky-false).
void abft_verify_rows(const float* a, const float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n,
                      const AbftChecksum& golden, AbftLayerCheck* check);

/// Column-sum verification for C[M,N] = A[M,K]·B[K,N] (+bias per row of C),
/// the im2col Conv2D layout: expected column sum j is
/// sum_k golden.colsum[k]·B[k,j] + golden.bias_sum.
void abft_verify_cols(const float* b, const float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n,
                      const AbftChecksum& golden, AbftLayerCheck* check);

}  // namespace pgmr::nn
