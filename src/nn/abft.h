// Algorithm-based fault tolerance (ABFT) for GEMM-backed layers.
//
// Every Conv2D and Dense forward pass is a GEMM C = A·B (+bias). The
// classic Huang–Abraham check verifies e^T·C = (e^T·A)·B: capture the
// column sums of the weight matrix once, when the weights are known good,
// and at inference compare the output's sums against the prediction those
// golden sums make from the layer *input*. A stored-weight corruption (a
// high-exponent bit flip from the fault injector, a DRAM upset) breaks the
// identity by many orders of magnitude; the check costs one extra "output
// channel" of GEMM work (~1/out_channels overhead) and no second GEMM.
//
// This header carries the protection-level vocabulary shared by quant
// (QuantizedNetwork), mr (per-member protection) and perf (cost model).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace pgmr::nn {

/// How much of a network's datapath is ABFT-verified per forward pass.
enum class Protection {
  off,       ///< no checks (bit-identical fast path)
  final_fc,  ///< final Dense layer only (the pre-PR-3 behaviour)
  full,      ///< every Conv2D and Dense layer
};

const char* to_string(Protection p);

/// What identity a golden checksum encodes — i.e. how forward_abft must
/// verify it.
enum class AbftForm {
  gemm,    ///< Huang–Abraham column sums over a GEMM weight matrix
  affine,  ///< per-channel eval-time affine (BatchNorm): colsum = scale,
           ///< bias_sum = sum of shifts; verified output-vs-input
  folded,  ///< conv column sums pre-multiplied by the downstream BatchNorm
           ///< scale; verified against the *BN* output so the identity
           ///< survives conv→BN without tolerance inflation
  guard,   ///< no golden tensor: output range/finiteness envelope only
};

/// Golden weight checksum for one layer, captured while the weights are
/// known good. For a GEMM layer, `colsum[k]` sums the weight matrix over
/// its output dimension (Dense: sum_o W[o,k]; Conv2D: sum_oc W[oc,k]) and
/// `bias_sum` sums the bias vector. The affine and folded forms reuse the
/// same fields (see AbftForm). Composite layers (Sequential, ResidualBlock,
/// DenseBlock) carry one child checksum per inner layer instead, so
/// full-network protection reaches nested convolutions.
struct AbftChecksum {
  AbftForm form = AbftForm::gemm;
  Tensor colsum;
  double bias_sum = 0.0;
  std::vector<AbftChecksum> children;

  bool empty() const {
    if (form == AbftForm::guard) return false;  // guards carry no tensor
    if (!colsum.empty()) return false;
    for (const AbftChecksum& c : children) {
      if (!c.empty()) return false;
    }
    return true;
  }
};

/// Outcome of verifying one layer's forward GEMM.
struct AbftLayerCheck {
  bool checked = false;        ///< a verification actually ran
  bool ok = true;              ///< false on mismatch (or non-finite sums)
  float max_rel_error = 0.0F;  ///< worst |actual-expected|/(1+|expected|)
};

/// Relative tolerance for the checks: float GEMM accumulation over these
/// fan-ins stays orders of magnitude below it, while exponent-bit weight
/// corruption overshoots it by many orders.
inline constexpr float kAbftTolerance = 2e-3F;

/// Row-sum verification for C[M,N] = A[M,K]·B^T (+bias), the Dense layout:
/// expected row sum r is dot(A[r,:], golden.colsum) + golden.bias_sum.
/// Aggregates into `check` (checked set true, ok sticky-false).
void abft_verify_rows(const float* a, const float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n,
                      const AbftChecksum& golden, AbftLayerCheck* check);

/// Column-sum verification for C[M,N] = A[M,K]·B[K,N] (+bias per row of C),
/// the im2col Conv2D layout: expected column sum j is
/// sum_k golden.colsum[k]·B[k,j] + golden.bias_sum. Also verifies the
/// folded conv→BN form when `c` points at the BatchNorm output (the folded
/// colsum/bias_sum already absorb the BN affine).
void abft_verify_cols(const float* b, const float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n,
                      const AbftChecksum& golden, AbftLayerCheck* check);

/// Batched folded conv→BN verification: `bn_out` is the BatchNorm output
/// [N, out_c, H, W] and `cols` holds the convolution's im2col buffers
/// batch-major ([N, patch, H*W], from Conv2D::forward_save_cols). `golden`
/// must be a folded checksum (Conv2D::abft_checksum_folded).
void abft_verify_folded(const std::vector<float>& cols, const Tensor& bn_out,
                        const AbftChecksum& golden, AbftLayerCheck* check);

/// Per-channel affine verification for eval-mode BatchNorm,
/// y[n,c,i] = scale[c]·x[n,c,i] + shift[c]: for every (sample, spatial
/// position) the channel sum of y must equal
/// sum_c golden.colsum[c]·x[n,c,i] + golden.bias_sum, where
/// golden.colsum = scale and golden.bias_sum = sum_c shift[c]. Detects
/// gamma/beta *and* running-statistic corruption (the golden scale bakes in
/// the blessed statistics). `spatial` is 1 for rank-2 input.
void abft_verify_affine(const float* x, const float* y, std::int64_t batch,
                        std::int64_t channels, std::int64_t spatial,
                        const AbftChecksum& golden, AbftLayerCheck* check);

/// Range + finiteness guard for non-GEMM layers (pooling, activations):
/// every y[i] must be finite and inside [lo, hi] up to a small relative
/// slack for float rounding. Marks `check` checked; ok goes sticky-false
/// on the first violation.
void abft_guard_range(const float* y, std::int64_t n, float lo, float hi,
                      AbftLayerCheck* check);

/// Finiteness-only guard: every y[i] must be finite.
void abft_guard_finite(const float* y, std::int64_t n, AbftLayerCheck* check);

/// Min/max over `n` floats for building a range-guard envelope. NaNs are
/// skipped here — one that propagates to the output still fails the guard.
void abft_minmax(const float* x, std::int64_t n, float* lo, float* hi);

}  // namespace pgmr::nn
