// SGD with momentum and weight decay — the only optimizer the zoo needs.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace pgmr::nn {

/// Classic SGD with heavy-ball momentum and L2 weight decay. Bound to a
/// fixed parameter/gradient list at construction (the tensors must outlive
/// the optimizer).
class SGD {
 public:
  struct Config {
    float learning_rate = 0.01F;
    float momentum = 0.9F;
    float weight_decay = 0.0F;
  };

  /// `params` and `grads` must be parallel lists, one gradient per
  /// parameter, with matching shapes.
  SGD(std::vector<Tensor*> params, std::vector<Tensor*> grads, Config config);

  /// Applies one update: v = mu*v - lr*(g + wd*w); w += v. Gradients are
  /// left untouched; call zero_grad() before the next accumulation.
  void step();

  /// Clears every bound gradient tensor.
  void zero_grad();

  /// Overrides the learning rate (for step-decay schedules).
  void set_learning_rate(float lr) { config_.learning_rate = lr; }
  float learning_rate() const { return config_.learning_rate; }

 private:
  std::vector<Tensor*> params_;
  std::vector<Tensor*> grads_;
  std::vector<Tensor> velocity_;
  Config config_;
};

}  // namespace pgmr::nn
