// Additional layers rounding out the framework: average pooling and the
// classic saturating activations (Sigmoid, Tanh). None of the six zoo
// recipes need them, but downstream users building their own members do —
// e.g. a historically faithful LeNet-5 uses tanh + average pooling.
#pragma once

#include "nn/layer.h"

namespace pgmr::nn {

/// Square-window average pooling with stride == window.
class AvgPool2D final : public Layer {
 public:
  explicit AvgPool2D(std::int64_t window);

  std::string kind() const override { return "avgpool2d"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& in) const override;
  CostStats cost(const Shape& in) const override;
  AbftChecksum abft_checksum() const override;
  Tensor forward_abft(const Tensor& input, const AbftChecksum& golden,
                      AbftLayerCheck* check) override;
  void save(BinaryWriter& w) const override;
  static std::unique_ptr<AvgPool2D> load(BinaryReader& r);

 private:
  std::int64_t window_;
  Shape cached_in_shape_;
};

/// Logistic sigmoid, y = 1 / (1 + exp(-x)).
class Sigmoid final : public Layer {
 public:
  std::string kind() const override { return "sigmoid"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& in) const override { return in; }
  CostStats cost(const Shape& in) const override;
  AbftChecksum abft_checksum() const override;
  Tensor forward_abft(const Tensor& input, const AbftChecksum& golden,
                      AbftLayerCheck* check) override;
  void save(BinaryWriter&) const override {}
  static std::unique_ptr<Sigmoid> load(BinaryReader&) {
    return std::make_unique<Sigmoid>();
  }

 private:
  Tensor cached_output_;
};

/// Hyperbolic tangent activation.
class Tanh final : public Layer {
 public:
  std::string kind() const override { return "tanh"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& in) const override { return in; }
  CostStats cost(const Shape& in) const override;
  AbftChecksum abft_checksum() const override;
  Tensor forward_abft(const Tensor& input, const AbftChecksum& golden,
                      AbftLayerCheck* check) override;
  void save(BinaryWriter&) const override {}
  static std::unique_ptr<Tanh> load(BinaryReader&) {
    return std::make_unique<Tanh>();
  }

 private:
  Tensor cached_output_;
};

}  // namespace pgmr::nn
