#include "nn/layer.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/blocks.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/extra_layers.h"
#include "nn/pooling.h"

namespace pgmr::nn {

CostStats Layer::cost(const Shape& in) const {
  // Default for parameter-free elementwise layers: activation traffic only.
  CostStats s;
  s.activation_bytes = 2 * in.numel() * 4;
  return s;
}

Tensor Layer::forward_abft(const Tensor& input, const AbftChecksum& golden,
                           AbftLayerCheck* check) {
  // Default for layers without GEMM support: plain eval-mode forward.
  (void)golden;
  (void)check;
  return forward(input, /*train=*/false);
}

void save_layer(BinaryWriter& w, const Layer& layer) {
  w.write_string(layer.kind());
  layer.save(w);
}

std::unique_ptr<Layer> load_layer(BinaryReader& r) {
  const std::string kind = r.read_string();
  if (kind == "conv2d") return Conv2D::load(r);
  if (kind == "dense") return Dense::load(r);
  if (kind == "relu") return ReLU::load(r);
  if (kind == "dropout") return Dropout::load(r);
  if (kind == "maxpool2d") return MaxPool2D::load(r);
  if (kind == "avgpool2d") return AvgPool2D::load(r);
  if (kind == "sigmoid") return Sigmoid::load(r);
  if (kind == "tanh") return Tanh::load(r);
  if (kind == "globalavgpool") return GlobalAvgPool::load(r);
  if (kind == "flatten") return Flatten::load(r);
  if (kind == "batchnorm") return BatchNorm::load(r);
  if (kind == "sequential") return Sequential::load(r);
  if (kind == "residual") return ResidualBlock::load(r);
  if (kind == "denseblock") return DenseBlock::load(r);
  throw std::runtime_error("load_layer: unknown layer kind '" + kind + "'");
}

}  // namespace pgmr::nn
