#include "nn/gemm.h"

namespace pgmr::nn {

void gemm_accumulate(const float* a, const float* b, float* c,
                     std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0F) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_at_b(const float* a, const float* b, float* c,
               std::int64_t m, std::int64_t k, std::int64_t n) {
  // A stored [K, M]; we want C[i,j] += sum_p A[p,i] * B[p,j].
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0F) continue;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_col_sums(const float* a, std::int64_t m, std::int64_t n,
                   float* out) {
  for (std::int64_t j = 0; j < n; ++j) out[j] = 0.0F;
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * n;
    for (std::int64_t j = 0; j < n; ++j) out[j] += arow[j];
  }
}

void gemm_a_bt(const float* a, const float* b, float* c,
               std::int64_t m, std::int64_t k, std::int64_t n) {
  // B stored [N, K]; C[i,j] += dot(A[i,:], B[j,:]).
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0F;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

}  // namespace pgmr::nn
