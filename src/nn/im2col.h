// im2col / col2im: the standard convolution-to-GEMM lowering.
#pragma once

#include <cstdint>
#include <vector>

namespace pgmr::nn {

/// Geometry of a 2-D convolution or pooling window.
struct ConvGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel = 0;  ///< square kernel size
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the lowered patch matrix: C * K * K.
  std::int64_t patch_size() const { return in_channels * kernel * kernel; }
};

/// Lowers one CHW image into a [patch_size, out_h*out_w] column matrix.
/// `col` must hold geo.patch_size() * geo.out_h() * geo.out_w() floats.
void im2col(const float* image, const ConvGeometry& geo, float* col);

/// Adjoint of im2col: scatters a column matrix back into a CHW image,
/// accumulating where patches overlap. `image` must be zeroed by the caller.
void col2im(const float* col, const ConvGeometry& geo, float* image);

}  // namespace pgmr::nn
