#include "nn/extra_layers.h"

#include <cmath>
#include <stdexcept>

namespace pgmr::nn {

AvgPool2D::AvgPool2D(std::int64_t window) : window_(window) {
  if (window <= 0) throw std::invalid_argument("AvgPool2D: invalid window");
}

Shape AvgPool2D::output_shape(const Shape& in) const {
  if (in.rank() != 4 || in[2] % window_ != 0 || in[3] % window_ != 0) {
    throw std::invalid_argument("AvgPool2D: input " + in.to_string() +
                                " not divisible by window");
  }
  return Shape{in[0], in[1], in[2] / window_, in[3] / window_};
}

Tensor AvgPool2D::forward(const Tensor& input, bool train) {
  const Shape out_shape = output_shape(input.shape());
  if (train) cached_in_shape_ = input.shape();
  Tensor out(out_shape);
  const std::int64_t in_h = input.shape()[2];
  const std::int64_t in_w = input.shape()[3];
  const std::int64_t oh = out_shape[2];
  const std::int64_t ow = out_shape[3];
  const auto area = static_cast<float>(window_ * window_);
  const std::int64_t planes = out_shape[0] * out_shape[1];
  for (std::int64_t p = 0; p < planes; ++p) {
    const float* src = input.data() + p * in_h * in_w;
    float* dst = out.data() + p * oh * ow;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        float acc = 0.0F;
        for (std::int64_t dy = 0; dy < window_; ++dy) {
          for (std::int64_t dx = 0; dx < window_; ++dx) {
            acc += src[(y * window_ + dy) * in_w + (x * window_ + dx)];
          }
        }
        dst[y * ow + x] = acc / area;
      }
    }
  }
  return out;
}

Tensor AvgPool2D::backward(const Tensor& grad_output) {
  if (cached_in_shape_.rank() != 4) {
    throw std::logic_error("AvgPool2D::backward before forward(train=true)");
  }
  Tensor grad_in(cached_in_shape_);
  const std::int64_t in_h = cached_in_shape_[2];
  const std::int64_t in_w = cached_in_shape_[3];
  const std::int64_t oh = in_h / window_;
  const std::int64_t ow = in_w / window_;
  const auto area = static_cast<float>(window_ * window_);
  const std::int64_t planes = cached_in_shape_[0] * cached_in_shape_[1];
  for (std::int64_t p = 0; p < planes; ++p) {
    const float* dy_plane = grad_output.data() + p * oh * ow;
    float* dx_plane = grad_in.data() + p * in_h * in_w;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        const float g = dy_plane[y * ow + x] / area;
        for (std::int64_t dy = 0; dy < window_; ++dy) {
          for (std::int64_t dx = 0; dx < window_; ++dx) {
            dx_plane[(y * window_ + dy) * in_w + (x * window_ + dx)] = g;
          }
        }
      }
    }
  }
  return grad_in;
}

CostStats AvgPool2D::cost(const Shape& in) const {
  CostStats s;
  s.activation_bytes = (in.numel() + output_shape(in).numel()) * 4;
  s.abft_macs = in.numel() + output_shape(in).numel();
  return s;
}

AbftChecksum AvgPool2D::abft_checksum() const {
  AbftChecksum g;
  g.form = AbftForm::guard;
  return g;
}

Tensor AvgPool2D::forward_abft(const Tensor& input, const AbftChecksum&,
                               AbftLayerCheck* check) {
  float lo = 0.0F, hi = 0.0F;
  abft_minmax(input.data(), input.numel(), &lo, &hi);
  Tensor out = forward(input, /*train=*/false);
  abft_guard_range(out.data(), out.numel(), lo, hi, check);
  return out;
}

void AvgPool2D::save(BinaryWriter& w) const { w.write_i64(window_); }

std::unique_ptr<AvgPool2D> AvgPool2D::load(BinaryReader& r) {
  return std::make_unique<AvgPool2D>(r.read_i64());
}

Tensor Sigmoid::forward(const Tensor& input, bool train) {
  Tensor out = input;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] = 1.0F / (1.0F + std::exp(-out[i]));
  }
  if (train) cached_output_ = out;
  return out;
}

CostStats Sigmoid::cost(const Shape& in) const {
  CostStats s = Layer::cost(in);
  s.abft_macs = in.numel();  // one output range scan
  return s;
}

AbftChecksum Sigmoid::abft_checksum() const {
  AbftChecksum g;
  g.form = AbftForm::guard;
  return g;
}

Tensor Sigmoid::forward_abft(const Tensor& input, const AbftChecksum&,
                             AbftLayerCheck* check) {
  Tensor out = forward(input, /*train=*/false);
  abft_guard_range(out.data(), out.numel(), 0.0F, 1.0F, check);
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  if (cached_output_.empty()) {
    throw std::logic_error("Sigmoid::backward before forward(train=true)");
  }
  Tensor grad_in = grad_output;
  for (std::int64_t i = 0; i < grad_in.numel(); ++i) {
    const float y = cached_output_[i];
    grad_in[i] *= y * (1.0F - y);
  }
  return grad_in;
}

Tensor Tanh::forward(const Tensor& input, bool train) {
  Tensor out = input;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] = std::tanh(out[i]);
  }
  if (train) cached_output_ = out;
  return out;
}

CostStats Tanh::cost(const Shape& in) const {
  CostStats s = Layer::cost(in);
  s.abft_macs = in.numel();
  return s;
}

AbftChecksum Tanh::abft_checksum() const {
  AbftChecksum g;
  g.form = AbftForm::guard;
  return g;
}

Tensor Tanh::forward_abft(const Tensor& input, const AbftChecksum&,
                          AbftLayerCheck* check) {
  Tensor out = forward(input, /*train=*/false);
  abft_guard_range(out.data(), out.numel(), -1.0F, 1.0F, check);
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  if (cached_output_.empty()) {
    throw std::logic_error("Tanh::backward before forward(train=true)");
  }
  Tensor grad_in = grad_output;
  for (std::int64_t i = 0; i < grad_in.numel(); ++i) {
    const float y = cached_output_[i];
    grad_in[i] *= 1.0F - y * y;
  }
  return grad_in;
}

}  // namespace pgmr::nn
