// Network: a named, serializable CNN — the unit that PolygraphMR replicates.
//
// Layer 2 of the paper's design instantiates several of these (one per
// preprocessor); the quant module wraps them for reduced precision; the
// zoo trains and caches them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace pgmr::nn {

/// Owning container of layers with save/load and inference helpers.
/// Move-only (layers are unique_ptr); load a fresh copy from disk when an
/// independent instance is needed (e.g. for precision truncation).
class Network {
 public:
  Network(std::string name, std::vector<std::unique_ptr<Layer>> layers);

  Network(Network&&) = default;
  Network& operator=(Network&&) = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const std::string& name() const { return name_; }

  /// Runs the full forward pass; `train` enables backward caching.
  Tensor forward(const Tensor& input, bool train = false);

  /// Backpropagates through all layers (after forward(train=true)).
  Tensor backward(const Tensor& grad_output);

  /// Inference helper: forward (eval mode) followed by softmax.
  /// Returns [N, C] class probabilities.
  Tensor probabilities(const Tensor& input);

  std::vector<Tensor*> params();
  std::vector<Tensor*> grads();

  Shape output_shape(const Shape& in) const;

  /// Static compute/traffic cost of one forward pass at `in`.
  CostStats cost(const Shape& in) const;

  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }
  std::vector<std::unique_ptr<Layer>>& mutable_layers() { return layers_; }

  /// Serializes architecture + weights to a PGMR archive at `path`.
  void save(const std::string& path) const;

  /// Loads a network previously written by save().
  static Network load(const std::string& path);

  /// Loads from an already-opened reader (e.g. a legacy-compat reader in
  /// migration tooling); the caller owns header validation policy.
  static Network load_from(BinaryReader& r);

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace pgmr::nn
