#include "nn/activations.h"

#include <algorithm>
#include <stdexcept>

namespace pgmr::nn {

Tensor ReLU::forward(const Tensor& input, bool train) {
  Tensor out = input;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] < 0.0F) out[i] = 0.0F;
  }
  if (train) cached_input_ = input;
  return out;
}

CostStats ReLU::cost(const Shape& in) const {
  CostStats s = Layer::cost(in);
  s.abft_macs = 2 * in.numel();  // input max scan + output range scan
  return s;
}

AbftChecksum ReLU::abft_checksum() const {
  AbftChecksum g;
  g.form = AbftForm::guard;
  return g;
}

Tensor ReLU::forward_abft(const Tensor& input, const AbftChecksum&,
                          AbftLayerCheck* check) {
  float lo = 0.0F, hi = 0.0F;
  abft_minmax(input.data(), input.numel(), &lo, &hi);
  Tensor out = forward(input, /*train=*/false);
  // y = max(0, x): outputs are non-negative and never exceed the input max.
  abft_guard_range(out.data(), out.numel(), 0.0F, std::max(0.0F, hi), check);
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("ReLU::backward before forward(train=true)");
  }
  Tensor grad_in = grad_output;
  for (std::int64_t i = 0; i < grad_in.numel(); ++i) {
    if (cached_input_[i] <= 0.0F) grad_in[i] = 0.0F;
  }
  return grad_in;
}

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), seed_(seed), rng_(seed) {
  if (p < 0.0F || p >= 1.0F) {
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  if (!train || p_ == 0.0F) return input;
  const float scale = 1.0F / (1.0F - p_);
  mask_ = Tensor(input.shape());
  Tensor out = input;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const bool keep = !rng_.bernoulli(p_);
    mask_[i] = keep ? scale : 0.0F;
    out[i] *= mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) {
    throw std::logic_error("Dropout::backward before forward(train=true)");
  }
  Tensor grad_in = grad_output;
  for (std::int64_t i = 0; i < grad_in.numel(); ++i) grad_in[i] *= mask_[i];
  return grad_in;
}

void Dropout::save(BinaryWriter& w) const {
  w.write_f32(p_);
  w.write_i64(static_cast<std::int64_t>(seed_));
}

std::unique_ptr<Dropout> Dropout::load(BinaryReader& r) {
  const float p = r.read_f32();
  const auto seed = static_cast<std::uint64_t>(r.read_i64());
  return std::make_unique<Dropout>(p, seed);
}

}  // namespace pgmr::nn
