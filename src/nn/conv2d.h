// Conv2D: square-kernel 2-D convolution lowered to GEMM via im2col.
#pragma once

#include <vector>

#include "nn/im2col.h"
#include "nn/layer.h"

namespace pgmr::nn {

/// 2-D convolution with bias. Weights are stored [out_c, in_c * k * k].
class Conv2D final : public Layer {
 public:
  /// Builds an uninitialized convolution; call init() or load via network
  /// deserialization before use.
  Conv2D(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad);

  /// He-initializes weights and zeroes biases.
  void init(Rng& rng);

  std::string kind() const override { return "conv2d"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }
  Shape output_shape(const Shape& in) const override;
  CostStats cost(const Shape& in) const override;
  AbftChecksum abft_checksum() const override;
  Tensor forward_abft(const Tensor& input, const AbftChecksum& golden,
                      AbftLayerCheck* check) override;

  /// Golden checksum with a downstream BatchNorm's eval affine folded in
  /// (AbftForm::folded): colsum[k] = sum_oc scale[oc]·W[oc,k] and
  /// bias_sum = sum_oc (scale[oc]·bias[oc] + shift[oc]). The Huang–Abraham
  /// identity then holds on the *BatchNorm* output, so conv→BN stacks are
  /// verified end to end with no tolerance inflation. `scale`/`shift` come
  /// from BatchNorm::effective_affine and must have out_channels entries.
  AbftChecksum abft_checksum_folded(const Tensor& scale,
                                    const Tensor& shift) const;

  /// Plain eval forward that also stashes the per-sample im2col buffers
  /// batch-major into `cols` ([N, patch, out_h*out_w]); the folded conv→BN
  /// check verifies against them after the downstream BatchNorm runs.
  /// Output is bit-identical to forward(input, false).
  Tensor forward_save_cols(const Tensor& input, std::vector<float>* cols);

  void save(BinaryWriter& w) const override;

  /// Deserializer counterpart of save(); used by load_layer.
  static std::unique_ptr<Conv2D> load(BinaryReader& r);

  std::int64_t in_channels() const { return in_c_; }
  std::int64_t out_channels() const { return out_c_; }

 private:
  ConvGeometry geometry(const Shape& in) const;
  Tensor forward_impl(const Tensor& input, bool train,
                      const AbftChecksum* golden, AbftLayerCheck* check,
                      std::vector<float>* save_cols = nullptr);

  std::int64_t in_c_, out_c_, kernel_, stride_, pad_;
  Tensor weight_;       // [out_c, in_c*k*k]
  Tensor bias_;         // [out_c]
  Tensor grad_weight_;
  Tensor grad_bias_;

  // Cached during forward(train=true) for backward.
  Shape cached_in_shape_;
  std::vector<float> cached_cols_;  // per-sample im2col matrices, batch-major
};

}  // namespace pgmr::nn
