// Softmax utilities.
//
// Layer 3 of PolygraphMR consumes softmax probability vectors, and the
// calibration experiments (Fig 14) rescale logits by a temperature before
// the softmax — both live here as free functions over rank-2 tensors.
#pragma once

#include "tensor/tensor.h"

namespace pgmr::nn {

/// Row-wise numerically stable softmax of rank-2 logits [N, C].
Tensor softmax(const Tensor& logits);

/// Temperature-scaled softmax: softmax(logits / temperature).
/// temperature == 1 reproduces softmax(); larger temperatures flatten the
/// distribution (the paper's Section IV-E calibration experiment).
Tensor softmax_with_temperature(const Tensor& logits, float temperature);

}  // namespace pgmr::nn
