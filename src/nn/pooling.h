// Pooling layers: max pooling and global average pooling.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace pgmr::nn {

/// Square-window max pooling with stride == window (non-overlapping).
class MaxPool2D final : public Layer {
 public:
  explicit MaxPool2D(std::int64_t window);

  std::string kind() const override { return "maxpool2d"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& in) const override;
  CostStats cost(const Shape& in) const override;
  AbftChecksum abft_checksum() const override;
  Tensor forward_abft(const Tensor& input, const AbftChecksum& golden,
                      AbftLayerCheck* check) override;
  void save(BinaryWriter& w) const override;
  static std::unique_ptr<MaxPool2D> load(BinaryReader& r);

 private:
  std::int64_t window_;
  Shape cached_in_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index of each output max
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool final : public Layer {
 public:
  std::string kind() const override { return "globalavgpool"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& in) const override;
  CostStats cost(const Shape& in) const override;
  AbftChecksum abft_checksum() const override;
  Tensor forward_abft(const Tensor& input, const AbftChecksum& golden,
                      AbftLayerCheck* check) override;
  void save(BinaryWriter&) const override {}
  static std::unique_ptr<GlobalAvgPool> load(BinaryReader&) {
    return std::make_unique<GlobalAvgPool>();
  }

 private:
  Shape cached_in_shape_;
};

/// Flatten: [N, C, H, W] -> [N, C*H*W]; identity on rank-2 input.
class Flatten final : public Layer {
 public:
  std::string kind() const override { return "flatten"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& in) const override;
  void save(BinaryWriter&) const override {}
  static std::unique_ptr<Flatten> load(BinaryReader&) {
    return std::make_unique<Flatten>();
  }

 private:
  Shape cached_in_shape_;
};

}  // namespace pgmr::nn
