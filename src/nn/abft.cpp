#include "nn/abft.h"

#include <algorithm>
#include <cmath>

namespace pgmr::nn {
namespace {

/// Folds one (actual, expected) pair into the aggregate check. The
/// comparison goes through the negation so a NaN/Inf discrepancy
/// (corrupted weights overflowing the GEMM) fails instead of passing.
void fold(double actual, double expected, AbftLayerCheck* check) {
  const double rel = std::abs(actual - expected) / (1.0 + std::abs(expected));
  if (!(rel <= static_cast<double>(kAbftTolerance))) check->ok = false;
  if (std::isfinite(rel)) {
    check->max_rel_error =
        std::max(check->max_rel_error, static_cast<float>(rel));
  }
}

}  // namespace

const char* to_string(Protection p) {
  switch (p) {
    case Protection::off: return "off";
    case Protection::final_fc: return "final_fc";
    case Protection::full: return "full";
  }
  return "unknown";
}

void abft_verify_rows(const float* a, const float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n,
                      const AbftChecksum& golden, AbftLayerCheck* check) {
  check->checked = true;
  const float* colsum = golden.colsum.data();
  for (std::int64_t r = 0; r < m; ++r) {
    double expected = golden.bias_sum;
    const float* arow = a + r * k;
    for (std::int64_t p = 0; p < k; ++p) {
      expected += static_cast<double>(arow[p]) * colsum[p];
    }
    double actual = 0.0;
    const float* crow = c + r * n;
    for (std::int64_t j = 0; j < n; ++j) actual += crow[j];
    fold(actual, expected, check);
  }
}

void abft_verify_cols(const float* b, const float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n,
                      const AbftChecksum& golden, AbftLayerCheck* check) {
  check->checked = true;
  const float* colsum = golden.colsum.data();
  // expected[j] = sum_p colsum[p]·B[p,j] + bias_sum, accumulated in double
  // so the check adds no rounding noise of its own.
  std::vector<double> expected(static_cast<std::size_t>(n), golden.bias_sum);
  for (std::int64_t p = 0; p < k; ++p) {
    const double w = colsum[p];
    if (w == 0.0) continue;
    const float* brow = b + p * n;
    for (std::int64_t j = 0; j < n; ++j) {
      expected[static_cast<std::size_t>(j)] += w * brow[j];
    }
  }
  for (std::int64_t j = 0; j < n; ++j) {
    double actual = 0.0;
    for (std::int64_t i = 0; i < m; ++i) actual += c[i * n + j];
    fold(actual, expected[static_cast<std::size_t>(j)], check);
  }
}

}  // namespace pgmr::nn
