#include "nn/abft.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pgmr::nn {
namespace {

/// Folds one (actual, expected) pair into the aggregate check. The
/// comparison goes through the negation so a NaN/Inf discrepancy
/// (corrupted weights overflowing the GEMM) fails instead of passing.
void fold(double actual, double expected, AbftLayerCheck* check) {
  const double rel = std::abs(actual - expected) / (1.0 + std::abs(expected));
  if (!(rel <= static_cast<double>(kAbftTolerance))) check->ok = false;
  if (std::isfinite(rel)) {
    check->max_rel_error =
        std::max(check->max_rel_error, static_cast<float>(rel));
  }
}

}  // namespace

const char* to_string(Protection p) {
  switch (p) {
    case Protection::off: return "off";
    case Protection::final_fc: return "final_fc";
    case Protection::full: return "full";
  }
  return "unknown";
}

void abft_verify_rows(const float* a, const float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n,
                      const AbftChecksum& golden, AbftLayerCheck* check) {
  check->checked = true;
  const float* colsum = golden.colsum.data();
  for (std::int64_t r = 0; r < m; ++r) {
    double expected = golden.bias_sum;
    const float* arow = a + r * k;
    for (std::int64_t p = 0; p < k; ++p) {
      expected += static_cast<double>(arow[p]) * colsum[p];
    }
    double actual = 0.0;
    const float* crow = c + r * n;
    for (std::int64_t j = 0; j < n; ++j) actual += crow[j];
    fold(actual, expected, check);
  }
}

void abft_verify_cols(const float* b, const float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n,
                      const AbftChecksum& golden, AbftLayerCheck* check) {
  check->checked = true;
  const float* colsum = golden.colsum.data();
  // expected[j] = sum_p colsum[p]·B[p,j] + bias_sum, accumulated in double
  // so the check adds no rounding noise of its own.
  std::vector<double> expected(static_cast<std::size_t>(n), golden.bias_sum);
  for (std::int64_t p = 0; p < k; ++p) {
    const double w = colsum[p];
    if (w == 0.0) continue;
    const float* brow = b + p * n;
    for (std::int64_t j = 0; j < n; ++j) {
      expected[static_cast<std::size_t>(j)] += w * brow[j];
    }
  }
  for (std::int64_t j = 0; j < n; ++j) {
    double actual = 0.0;
    for (std::int64_t i = 0; i < m; ++i) actual += c[i * n + j];
    fold(actual, expected[static_cast<std::size_t>(j)], check);
  }
}

void abft_verify_folded(const std::vector<float>& cols, const Tensor& bn_out,
                        const AbftChecksum& golden, AbftLayerCheck* check) {
  const Shape& s = bn_out.shape();
  const std::int64_t batch = s[0];
  const std::int64_t out_c = s[1];
  const std::int64_t spatial = s[2] * s[3];
  const std::int64_t patch = golden.colsum.numel();
  for (std::int64_t n = 0; n < batch; ++n) {
    abft_verify_cols(cols.data() + n * patch * spatial,
                     bn_out.data() + n * out_c * spatial, out_c, patch,
                     spatial, golden, check);
  }
}

void abft_verify_affine(const float* x, const float* y, std::int64_t batch,
                        std::int64_t channels, std::int64_t spatial,
                        const AbftChecksum& golden, AbftLayerCheck* check) {
  check->checked = true;
  const float* scale = golden.colsum.data();
  for (std::int64_t n = 0; n < batch; ++n) {
    const std::int64_t base = n * channels * spatial;
    for (std::int64_t i = 0; i < spatial; ++i) {
      double expected = golden.bias_sum;
      double actual = 0.0;
      for (std::int64_t c = 0; c < channels; ++c) {
        const std::int64_t at = base + c * spatial + i;
        expected += static_cast<double>(scale[c]) * x[at];
        actual += y[at];
      }
      fold(actual, expected, check);
    }
  }
}

void abft_guard_range(const float* y, std::int64_t n, float lo, float hi,
                      AbftLayerCheck* check) {
  check->checked = true;
  // Slack absorbs the float rounding between the recomputed envelope and
  // the layer's own arithmetic; a flipped exponent bit overshoots it by
  // orders of magnitude.
  const float slack =
      1e-5F * (1.0F + std::max(std::abs(lo), std::abs(hi)));
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = y[i];
    if (!(v >= lo - slack && v <= hi + slack)) {  // NaN fails both
      check->ok = false;
      return;
    }
  }
}

void abft_guard_finite(const float* y, std::int64_t n, AbftLayerCheck* check) {
  check->checked = true;
  for (std::int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(y[i])) {
      check->ok = false;
      return;
    }
  }
}

void abft_minmax(const float* x, std::int64_t n, float* lo, float* hi) {
  *lo = std::numeric_limits<float>::infinity();
  *hi = -std::numeric_limits<float>::infinity();
  for (std::int64_t i = 0; i < n; ++i) {
    if (x[i] < *lo) *lo = x[i];
    if (x[i] > *hi) *hi = x[i];
  }
}

}  // namespace pgmr::nn
