#include "nn/blocks.h"

#include <stdexcept>

#include "nn/batchnorm.h"

namespace pgmr::nn {
namespace {

/// True when layers[i] is a Conv2D whose output channels match a BatchNorm
/// at layers[i+1] — the pair a folded checksum covers as one unit.
bool foldable_conv_bn(const std::vector<std::unique_ptr<Layer>>& layers,
                      std::size_t i) {
  if (i + 1 >= layers.size()) return false;
  if (layers[i]->kind() != "conv2d" || layers[i + 1]->kind() != "batchnorm") {
    return false;
  }
  const auto* conv = static_cast<const Conv2D*>(layers[i].get());
  const auto* bn = static_cast<const BatchNorm*>(layers[i + 1].get());
  return conv->out_channels() == bn->channels();
}

// Splits grad of a channel-concatenated tensor back into the two parts.
void split_channels(const Tensor& grad, std::int64_t first_channels,
                    Tensor& grad_a, Tensor& grad_b) {
  const Shape& s = grad.shape();
  const std::int64_t batch = s[0];
  const std::int64_t spatial = s[2] * s[3];
  const std::int64_t c_total = s[1];
  const std::int64_t c_b = c_total - first_channels;
  grad_a = Tensor(Shape{batch, first_channels, s[2], s[3]});
  grad_b = Tensor(Shape{batch, c_b, s[2], s[3]});
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* src = grad.data() + n * c_total * spatial;
    std::copy(src, src + first_channels * spatial,
              grad_a.data() + n * first_channels * spatial);
    std::copy(src + first_channels * spatial, src + c_total * spatial,
              grad_b.data() + n * c_b * spatial);
  }
}

}  // namespace

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  const Shape& sa = a.shape();
  const Shape& sb = b.shape();
  if (sa.rank() != 4 || sb.rank() != 4 || sa[0] != sb[0] || sa[2] != sb[2] ||
      sa[3] != sb[3]) {
    throw std::invalid_argument("concat_channels: incompatible shapes " +
                                sa.to_string() + " and " + sb.to_string());
  }
  const std::int64_t spatial = sa[2] * sa[3];
  Tensor out(Shape{sa[0], sa[1] + sb[1], sa[2], sa[3]});
  for (std::int64_t n = 0; n < sa[0]; ++n) {
    float* dst = out.data() + n * (sa[1] + sb[1]) * spatial;
    const float* pa = a.data() + n * sa[1] * spatial;
    const float* pb = b.data() + n * sb[1] * spatial;
    std::copy(pa, pa + sa[1] * spatial, dst);
    std::copy(pb, pb + sb[1] * spatial, dst + sa[1] * spatial);
  }
  return out;
}

Sequential::Sequential(std::vector<std::unique_ptr<Layer>> layers)
    : layers_(std::move(layers)) {}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Tensor*> Sequential::params() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::grads() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->grads()) out.push_back(g);
  }
  return out;
}

Shape Sequential::output_shape(const Shape& in) const {
  Shape s = in;
  for (const auto& layer : layers_) s = layer->output_shape(s);
  return s;
}

CostStats Sequential::cost(const Shape& in) const {
  CostStats total;
  Shape s = in;
  for (const auto& layer : layers_) {
    total += layer->cost(s);
    s = layer->output_shape(s);
  }
  return total;
}

AbftChecksum Sequential::abft_checksum() const {
  AbftChecksum golden;
  golden.children.reserve(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    // conv2d directly followed by batchnorm: emit a folded checksum in the
    // conv slot and leave the BN slot empty; forward_abft verifies the
    // fold on the BN output, so the pair is covered as one identity.
    if (foldable_conv_bn(layers_, i)) {
      const auto* conv = static_cast<const Conv2D*>(layers_[i].get());
      const auto* bn = static_cast<const BatchNorm*>(layers_[i + 1].get());
      Tensor scale, shift;
      bn->effective_affine(&scale, &shift);
      golden.children.push_back(conv->abft_checksum_folded(scale, shift));
      golden.children.push_back(AbftChecksum{});
      ++i;
      continue;
    }
    golden.children.push_back(layers_[i]->abft_checksum());
  }
  return golden;
}

Tensor Sequential::forward_abft(const Tensor& input, const AbftChecksum& golden,
                                AbftLayerCheck* check) {
  Tensor x = input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const AbftChecksum* g =
        i < golden.children.size() ? &golden.children[i] : nullptr;
    if (g != nullptr && g->form == AbftForm::folded &&
        foldable_conv_bn(layers_, i)) {
      auto* conv = static_cast<Conv2D*>(layers_[i].get());
      std::vector<float> cols;
      Tensor conv_out = conv->forward_save_cols(x, &cols);
      x = layers_[i + 1]->forward(conv_out, /*train=*/false);
      abft_verify_folded(cols, x, *g, check);
      ++i;
      continue;
    }
    const bool protect = g != nullptr && !g->empty();
    x = protect ? layers_[i]->forward_abft(x, *g, check)
                : layers_[i]->forward(x, /*train=*/false);
  }
  return x;
}

void Sequential::save(BinaryWriter& w) const {
  w.write_u32(static_cast<std::uint32_t>(layers_.size()));
  for (const auto& layer : layers_) save_layer(w, *layer);
}

std::unique_ptr<Sequential> Sequential::load(BinaryReader& r) {
  const std::uint32_t count = r.read_u32();
  std::vector<std::unique_ptr<Layer>> layers;
  layers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) layers.push_back(load_layer(r));
  return std::make_unique<Sequential>(std::move(layers));
}

ResidualBlock::ResidualBlock(std::unique_ptr<Sequential> body,
                             std::unique_ptr<Conv2D> projection)
    : body_(std::move(body)), projection_(std::move(projection)) {
  if (!body_) throw std::invalid_argument("ResidualBlock: null body");
}

Tensor ResidualBlock::forward(const Tensor& input, bool train) {
  Tensor main = body_->forward(input, train);
  Tensor shortcut =
      projection_ ? projection_->forward(input, train) : input;
  if (main.shape() != shortcut.shape()) {
    throw std::invalid_argument(
        "ResidualBlock: body/shortcut shape mismatch " +
        main.shape().to_string() + " vs " + shortcut.shape().to_string());
  }
  main += shortcut;
  if (train) cached_sum_ = main;
  // Post-add ReLU, as in the original ResNet basic block.
  for (std::int64_t i = 0; i < main.numel(); ++i) {
    if (main[i] < 0.0F) main[i] = 0.0F;
  }
  return main;
}

AbftChecksum ResidualBlock::abft_checksum() const {
  AbftChecksum golden;
  golden.children.push_back(body_->abft_checksum());
  golden.children.push_back(projection_ ? projection_->abft_checksum()
                                        : AbftChecksum{});
  return golden;
}

Tensor ResidualBlock::forward_abft(const Tensor& input,
                                   const AbftChecksum& golden,
                                   AbftLayerCheck* check) {
  const AbftChecksum* body_golden =
      golden.children.size() > 0 && !golden.children[0].empty()
          ? &golden.children[0]
          : nullptr;
  const AbftChecksum* proj_golden =
      golden.children.size() > 1 && !golden.children[1].empty()
          ? &golden.children[1]
          : nullptr;
  Tensor main = body_golden ? body_->forward_abft(input, *body_golden, check)
                            : body_->forward(input, false);
  Tensor shortcut =
      projection_ ? (proj_golden
                         ? projection_->forward_abft(input, *proj_golden, check)
                         : projection_->forward(input, false))
                  : input;
  if (main.shape() != shortcut.shape()) {
    throw std::invalid_argument(
        "ResidualBlock: body/shortcut shape mismatch " +
        main.shape().to_string() + " vs " + shortcut.shape().to_string());
  }
  main += shortcut;
  for (std::int64_t i = 0; i < main.numel(); ++i) {
    if (main[i] < 0.0F) main[i] = 0.0F;
  }
  // The add + post-add ReLU are not GEMMs; a finiteness guard keeps a
  // corrupted shortcut from passing Inf/NaN downstream silently.
  abft_guard_finite(main.data(), main.numel(), check);
  return main;
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  if (cached_sum_.empty()) {
    throw std::logic_error(
        "ResidualBlock::backward before forward(train=true)");
  }
  Tensor grad_sum = grad_output;
  for (std::int64_t i = 0; i < grad_sum.numel(); ++i) {
    if (cached_sum_[i] <= 0.0F) grad_sum[i] = 0.0F;
  }
  Tensor grad_in = body_->backward(grad_sum);
  if (projection_) {
    grad_in += projection_->backward(grad_sum);
  } else {
    grad_in += grad_sum;
  }
  return grad_in;
}

std::vector<Tensor*> ResidualBlock::params() {
  std::vector<Tensor*> out = body_->params();
  if (projection_) {
    for (Tensor* p : projection_->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> ResidualBlock::grads() {
  std::vector<Tensor*> out = body_->grads();
  if (projection_) {
    for (Tensor* g : projection_->grads()) out.push_back(g);
  }
  return out;
}

Shape ResidualBlock::output_shape(const Shape& in) const {
  return body_->output_shape(in);
}

CostStats ResidualBlock::cost(const Shape& in) const {
  CostStats total = body_->cost(in);
  if (projection_) total += projection_->cost(in);
  return total;
}

void ResidualBlock::save(BinaryWriter& w) const {
  body_->save(w);
  w.write_u32(projection_ ? 1 : 0);
  if (projection_) projection_->save(w);
}

std::unique_ptr<ResidualBlock> ResidualBlock::load(BinaryReader& r) {
  auto body = Sequential::load(r);
  std::unique_ptr<Conv2D> projection;
  if (r.read_u32() != 0) projection = Conv2D::load(r);
  return std::make_unique<ResidualBlock>(std::move(body),
                                         std::move(projection));
}

DenseBlock::DenseBlock(std::vector<std::unique_ptr<Sequential>> units,
                       std::int64_t in_channels, std::int64_t growth)
    : units_(std::move(units)), in_channels_(in_channels), growth_(growth) {
  if (units_.empty()) throw std::invalid_argument("DenseBlock: no units");
  if (in_channels <= 0 || growth <= 0) {
    throw std::invalid_argument("DenseBlock: invalid channel config");
  }
}

Tensor DenseBlock::forward(const Tensor& input, bool train) {
  Tensor features = input;
  for (auto& unit : units_) {
    Tensor contribution = unit->forward(features, train);
    features = concat_channels(features, contribution);
  }
  return features;
}

AbftChecksum DenseBlock::abft_checksum() const {
  AbftChecksum golden;
  golden.children.reserve(units_.size());
  for (const auto& unit : units_) {
    golden.children.push_back(unit->abft_checksum());
  }
  return golden;
}

Tensor DenseBlock::forward_abft(const Tensor& input, const AbftChecksum& golden,
                                AbftLayerCheck* check) {
  Tensor features = input;
  for (std::size_t i = 0; i < units_.size(); ++i) {
    const bool protect =
        i < golden.children.size() && !golden.children[i].empty();
    Tensor contribution =
        protect ? units_[i]->forward_abft(features, golden.children[i], check)
                : units_[i]->forward(features, false);
    features = concat_channels(features, contribution);
  }
  return features;
}

Tensor DenseBlock::backward(const Tensor& grad_output) {
  Tensor grad_features = grad_output;
  for (auto it = units_.rbegin(); it != units_.rend(); ++it) {
    const std::int64_t prev_channels = grad_features.shape()[1] - growth_;
    Tensor grad_prev, grad_contribution;
    split_channels(grad_features, prev_channels, grad_prev, grad_contribution);
    grad_prev += (*it)->backward(grad_contribution);
    grad_features = std::move(grad_prev);
  }
  return grad_features;
}

std::vector<Tensor*> DenseBlock::params() {
  std::vector<Tensor*> out;
  for (auto& unit : units_) {
    for (Tensor* p : unit->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> DenseBlock::grads() {
  std::vector<Tensor*> out;
  for (auto& unit : units_) {
    for (Tensor* g : unit->grads()) out.push_back(g);
  }
  return out;
}

Shape DenseBlock::output_shape(const Shape& in) const {
  if (in.rank() != 4 || in[1] != in_channels_) {
    throw std::invalid_argument("DenseBlock: bad input shape " +
                                in.to_string());
  }
  return Shape{in[0],
               in_channels_ + static_cast<std::int64_t>(units_.size()) * growth_,
               in[2], in[3]};
}

CostStats DenseBlock::cost(const Shape& in) const {
  CostStats total;
  Shape s = in;
  for (const auto& unit : units_) {
    total += unit->cost(s);
    s = Shape{s[0], s[1] + growth_, s[2], s[3]};
  }
  return total;
}

void DenseBlock::save(BinaryWriter& w) const {
  w.write_i64(in_channels_);
  w.write_i64(growth_);
  w.write_u32(static_cast<std::uint32_t>(units_.size()));
  for (const auto& unit : units_) unit->save(w);
}

std::unique_ptr<DenseBlock> DenseBlock::load(BinaryReader& r) {
  const std::int64_t in_channels = r.read_i64();
  const std::int64_t growth = r.read_i64();
  const std::uint32_t count = r.read_u32();
  std::vector<std::unique_ptr<Sequential>> units;
  units.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) units.push_back(Sequential::load(r));
  return std::make_unique<DenseBlock>(std::move(units), in_channels, growth);
}

}  // namespace pgmr::nn
