// Adam optimizer (Kingma & Ba) — an alternative to SGD for users whose
// members train poorly with momentum SGD; the zoo recipes stay on SGD.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace pgmr::nn {

/// Adam with bias-corrected first/second moment estimates.
class Adam {
 public:
  struct Config {
    float learning_rate = 1e-3F;
    float beta1 = 0.9F;
    float beta2 = 0.999F;
    float eps = 1e-8F;
    float weight_decay = 0.0F;  ///< decoupled (AdamW-style) decay
  };

  /// `params` and `grads` are parallel lists with matching shapes.
  Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads, Config config);

  /// One update step using the currently accumulated gradients.
  void step();

  /// Clears every bound gradient tensor.
  void zero_grad();

  void set_learning_rate(float lr) { config_.learning_rate = lr; }
  float learning_rate() const { return config_.learning_rate; }

 private:
  std::vector<Tensor*> params_;
  std::vector<Tensor*> grads_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  Config config_;
  std::int64_t t_ = 0;
};

}  // namespace pgmr::nn
