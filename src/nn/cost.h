// CostStats: static compute/traffic accounting per layer.
//
// The perf module (Section IV-C of the paper: GPGPUsim + GPUWattch) is
// replaced by an analytic roofline; this struct is what every layer reports
// so the model can price an inference at any numeric precision.
#pragma once

#include <cstdint>

namespace pgmr::nn {

/// Work and traffic for one forward pass at a given input shape.
struct CostStats {
  std::int64_t macs = 0;              ///< multiply-accumulate operations
  std::int64_t param_count = 0;       ///< trainable scalars
  std::int64_t weight_bytes = 0;      ///< parameter traffic at fp32
  std::int64_t activation_bytes = 0;  ///< input+output activation traffic at fp32
  std::int64_t abft_macs = 0;         ///< extra work under full ABFT protection

  CostStats& operator+=(const CostStats& o) {
    macs += o.macs;
    param_count += o.param_count;
    weight_bytes += o.weight_bytes;
    activation_bytes += o.activation_bytes;
    abft_macs += o.abft_macs;
    return *this;
  }
};

}  // namespace pgmr::nn
