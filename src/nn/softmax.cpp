#include "nn/softmax.h"

#include <cmath>
#include <stdexcept>

namespace pgmr::nn {

Tensor softmax_with_temperature(const Tensor& logits, float temperature) {
  if (logits.shape().rank() != 2) {
    throw std::invalid_argument("softmax: expected rank-2 logits");
  }
  if (temperature <= 0.0F) {
    throw std::invalid_argument("softmax: temperature must be positive");
  }
  const std::int64_t batch = logits.shape()[0];
  const std::int64_t classes = logits.shape()[1];
  Tensor out(logits.shape());
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    float* dst = out.data() + n * classes;
    float max_v = row[0];
    for (std::int64_t c = 1; c < classes; ++c) max_v = std::max(max_v, row[c]);
    float denom = 0.0F;
    for (std::int64_t c = 0; c < classes; ++c) {
      dst[c] = std::exp((row[c] - max_v) / temperature);
      denom += dst[c];
    }
    for (std::int64_t c = 0; c < classes; ++c) dst[c] /= denom;
  }
  return out;
}

Tensor softmax(const Tensor& logits) {
  return softmax_with_temperature(logits, 1.0F);
}

}  // namespace pgmr::nn
