// Minimal single-threaded GEMM kernels backing Conv2D and Dense layers.
//
// These are deliberately simple (ikj loop order, compiler-vectorized); the
// models in this reproduction are small enough that a naive kernel keeps
// full training runs in the seconds range on one core.
#pragma once

#include <cstdint>

namespace pgmr::nn {

/// C[M,N] += A[M,K] * B[K,N]. All matrices dense row-major.
void gemm_accumulate(const float* a, const float* b, float* c,
                     std::int64_t m, std::int64_t k, std::int64_t n);

/// C[M,N] += A^T[M,K] * B[K,N] where A is stored as [K,M].
void gemm_at_b(const float* a, const float* b, float* c,
               std::int64_t m, std::int64_t k, std::int64_t n);

/// C[M,N] += A[M,K] * B^T[K,N] where B is stored as [N,K].
void gemm_a_bt(const float* a, const float* b, float* c,
               std::int64_t m, std::int64_t k, std::int64_t n);

/// out[j] = sum_i A[i,j] for row-major A[M,N] — the e^T·A vector the ABFT
/// checks capture from a weight matrix while it is known good.
void gemm_col_sums(const float* a, std::int64_t m, std::int64_t n,
                   float* out);

}  // namespace pgmr::nn
