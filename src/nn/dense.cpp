#include "nn/dense.h"

#include <stdexcept>

#include "nn/gemm.h"
#include "nn/init.h"

namespace pgmr::nn {

Dense::Dense(std::int64_t in_features, std::int64_t out_features)
    : in_f_(in_features),
      out_f_(out_features),
      weight_(Shape{out_features, in_features}),
      bias_(Shape{out_features}),
      grad_weight_(Shape{out_features, in_features}),
      grad_bias_(Shape{out_features}) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Dense: invalid feature counts");
  }
}

void Dense::init(Rng& rng) {
  he_init(weight_, in_f_, rng);
  bias_.fill(0.0F);
}

Shape Dense::output_shape(const Shape& in) const {
  if (in.rank() != 2 || in[1] != in_f_) {
    throw std::invalid_argument("Dense: bad input shape " + in.to_string());
  }
  return Shape{in[0], out_f_};
}

Tensor Dense::forward(const Tensor& input, bool train) {
  const Shape out_shape = output_shape(input.shape());
  const std::int64_t batch = input.shape()[0];
  Tensor out(out_shape);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t f = 0; f < out_f_; ++f) out.at(n, f) = bias_[f];
  }
  // out[N, out_f] += x[N, in_f] * W^T where W is [out_f, in_f]
  gemm_a_bt(input.data(), weight_.data(), out.data(), batch, in_f_, out_f_);
  if (train) cached_input_ = input;
  return out;
}

AbftChecksum Dense::abft_checksum() const {
  AbftChecksum golden;
  golden.colsum = Tensor(Shape{in_f_});
  gemm_col_sums(weight_.data(), out_f_, in_f_, golden.colsum.data());
  for (std::int64_t f = 0; f < out_f_; ++f) {
    golden.bias_sum += static_cast<double>(bias_[f]);
  }
  return golden;
}

Tensor Dense::forward_abft(const Tensor& input, const AbftChecksum& golden,
                           AbftLayerCheck* check) {
  Tensor out = forward(input, /*train=*/false);
  if (!golden.empty()) {
    abft_verify_rows(input.data(), out.data(), input.shape()[0], in_f_, out_f_,
                     golden, check);
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Dense::backward before forward(train=true)");
  }
  const std::int64_t batch = cached_input_.shape()[0];

  // grad_b[f] += sum_n dy[n, f]
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t f = 0; f < out_f_; ++f) {
      grad_bias_[f] += grad_output.at(n, f);
    }
  }
  // grad_W[out_f, in_f] += dy^T[out_f, N] * x[N, in_f]
  gemm_at_b(grad_output.data(), cached_input_.data(), grad_weight_.data(),
            out_f_, batch, in_f_);
  // grad_x[N, in_f] = dy[N, out_f] * W[out_f, in_f]
  Tensor grad_in(cached_input_.shape());
  gemm_accumulate(grad_output.data(), weight_.data(), grad_in.data(), batch,
                  out_f_, in_f_);
  return grad_in;
}

CostStats Dense::cost(const Shape& in) const {
  CostStats s;
  s.macs = in[0] * in_f_ * out_f_;
  s.param_count = weight_.numel() + bias_.numel();
  s.weight_bytes = s.param_count * 4;
  s.activation_bytes = (in.numel() + in[0] * out_f_) * 4;
  // dot(x, colsum) per row plus the actual row sums of the output.
  s.abft_macs = in[0] * (in_f_ + out_f_);
  return s;
}

void Dense::save(BinaryWriter& w) const {
  w.write_i64(in_f_);
  w.write_i64(out_f_);
  w.write_tensor(weight_);
  w.write_tensor(bias_);
}

std::unique_ptr<Dense> Dense::load(BinaryReader& r) {
  const std::int64_t in_f = r.read_i64();
  const std::int64_t out_f = r.read_i64();
  auto layer = std::make_unique<Dense>(in_f, out_f);
  layer->weight_ = r.read_tensor();
  layer->bias_ = r.read_tensor();
  return layer;
}

}  // namespace pgmr::nn
