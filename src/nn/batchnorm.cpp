#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

namespace pgmr::nn {
namespace {

// Iterates a rank-2 or rank-4 tensor channel-wise, calling fn(channel,
// flat_index) for every element belonging to that channel.
template <typename Fn>
void for_each_channel_element(const Shape& s, std::int64_t channels, Fn fn) {
  if (s.rank() == 2) {
    for (std::int64_t n = 0; n < s[0]; ++n) {
      for (std::int64_t c = 0; c < channels; ++c) fn(c, n * channels + c);
    }
    return;
  }
  const std::int64_t spatial = s[2] * s[3];
  for (std::int64_t n = 0; n < s[0]; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const std::int64_t base = (n * channels + c) * spatial;
      for (std::int64_t i = 0; i < spatial; ++i) fn(c, base + i);
    }
  }
}

}  // namespace

BatchNorm::BatchNorm(std::int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Shape{channels}),
      beta_(Shape{channels}),
      grad_gamma_(Shape{channels}),
      grad_beta_(Shape{channels}),
      running_mean_(Shape{channels}),
      running_var_(Shape{channels}) {
  if (channels <= 0) throw std::invalid_argument("BatchNorm: invalid channels");
  gamma_.fill(1.0F);
  running_var_.fill(1.0F);
}

Shape BatchNorm::output_shape(const Shape& in) const {
  const bool ok = (in.rank() == 4 && in[1] == channels_) ||
                  (in.rank() == 2 && in[1] == channels_);
  if (!ok) {
    throw std::invalid_argument("BatchNorm(" + std::to_string(channels_) +
                                "): bad input shape " + in.to_string());
  }
  return in;
}

std::int64_t BatchNorm::group_size(const Shape& s) const {
  return s.numel() / channels_;
}

Tensor BatchNorm::forward(const Tensor& input, bool train) {
  const Shape& s = output_shape(input.shape());
  const std::int64_t group = group_size(s);
  Tensor mean(Shape{channels_});
  Tensor var(Shape{channels_});

  if (train) {
    for_each_channel_element(
        s, channels_, [&](std::int64_t c, std::int64_t i) { mean[c] += input[i]; });
    for (std::int64_t c = 0; c < channels_; ++c) {
      mean[c] /= static_cast<float>(group);
    }
    for_each_channel_element(s, channels_, [&](std::int64_t c, std::int64_t i) {
      const float d = input[i] - mean[c];
      var[c] += d * d;
    });
    for (std::int64_t c = 0; c < channels_; ++c) {
      var[c] /= static_cast<float>(group);
      running_mean_[c] = (1.0F - momentum_) * running_mean_[c] + momentum_ * mean[c];
      running_var_[c] = (1.0F - momentum_) * running_var_[c] + momentum_ * var[c];
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  Tensor std_dev(Shape{channels_});
  for (std::int64_t c = 0; c < channels_; ++c) {
    std_dev[c] = std::sqrt(var[c] + eps_);
  }

  Tensor out(s);
  Tensor xhat(s);
  for_each_channel_element(s, channels_, [&](std::int64_t c, std::int64_t i) {
    xhat[i] = (input[i] - mean[c]) / std_dev[c];
    out[i] = gamma_[c] * xhat[i] + beta_[c];
  });

  if (train) {
    cached_xhat_ = std::move(xhat);
    cached_std_ = std::move(std_dev);
    cached_in_shape_ = s;
  }
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  if (cached_xhat_.empty()) {
    throw std::logic_error("BatchNorm::backward before forward(train=true)");
  }
  const Shape& s = cached_in_shape_;
  const auto group = static_cast<float>(group_size(s));

  Tensor sum_dy(Shape{channels_});
  Tensor sum_dy_xhat(Shape{channels_});
  for_each_channel_element(s, channels_, [&](std::int64_t c, std::int64_t i) {
    sum_dy[c] += grad_output[i];
    sum_dy_xhat[c] += grad_output[i] * cached_xhat_[i];
  });
  for (std::int64_t c = 0; c < channels_; ++c) {
    grad_beta_[c] += sum_dy[c];
    grad_gamma_[c] += sum_dy_xhat[c];
  }

  // dx = gamma / std * (dy - mean(dy) - xhat * mean(dy * xhat))
  Tensor grad_in(s);
  for_each_channel_element(s, channels_, [&](std::int64_t c, std::int64_t i) {
    const float term = grad_output[i] - sum_dy[c] / group -
                       cached_xhat_[i] * sum_dy_xhat[c] / group;
    grad_in[i] = gamma_[c] / cached_std_[c] * term;
  });
  return grad_in;
}

void BatchNorm::effective_affine(Tensor* scale, Tensor* shift) const {
  *scale = Tensor(Shape{channels_});
  *shift = Tensor(Shape{channels_});
  for (std::int64_t c = 0; c < channels_; ++c) {
    const float s = gamma_[c] / std::sqrt(running_var_[c] + eps_);
    (*scale)[c] = s;
    (*shift)[c] = beta_[c] - running_mean_[c] * s;
  }
}

AbftChecksum BatchNorm::abft_checksum() const {
  AbftChecksum golden;
  golden.form = AbftForm::affine;
  Tensor shift;
  effective_affine(&golden.colsum, &shift);
  for (std::int64_t c = 0; c < channels_; ++c) {
    golden.bias_sum += static_cast<double>(shift[c]);
  }
  return golden;
}

Tensor BatchNorm::forward_abft(const Tensor& input, const AbftChecksum& golden,
                               AbftLayerCheck* check) {
  Tensor out = forward(input, /*train=*/false);
  if (golden.form != AbftForm::affine || golden.colsum.empty()) return out;
  const Shape& s = input.shape();
  const std::int64_t spatial = s.rank() == 4 ? s[2] * s[3] : 1;
  abft_verify_affine(input.data(), out.data(), s[0], channels_, spatial,
                     golden, check);
  return out;
}

CostStats BatchNorm::cost(const Shape& in) const {
  CostStats s;
  s.macs = in.numel();  // one multiply-add per element
  s.param_count = 2 * channels_;
  s.weight_bytes = (2 * channels_ + 2 * channels_) * 4;  // affine + running stats
  s.activation_bytes = 2 * in.numel() * 4;
  // affine check: one scale·x multiply-add plus one y accumulate per element
  s.abft_macs = 2 * in.numel();
  return s;
}

void BatchNorm::save(BinaryWriter& w) const {
  w.write_i64(channels_);
  w.write_f32(momentum_);
  w.write_f32(eps_);
  w.write_tensor(gamma_);
  w.write_tensor(beta_);
  w.write_tensor(running_mean_);
  w.write_tensor(running_var_);
}

std::unique_ptr<BatchNorm> BatchNorm::load(BinaryReader& r) {
  const std::int64_t channels = r.read_i64();
  const float momentum = r.read_f32();
  const float eps = r.read_f32();
  auto layer = std::make_unique<BatchNorm>(channels, momentum, eps);
  layer->gamma_ = r.read_tensor();
  layer->beta_ = r.read_tensor();
  layer->running_mean_ = r.read_tensor();
  layer->running_var_ = r.read_tensor();
  return layer;
}

}  // namespace pgmr::nn
