#include "nn/im2col.h"

namespace pgmr::nn {

void im2col(const float* image, const ConvGeometry& geo, float* col) {
  const std::int64_t oh = geo.out_h();
  const std::int64_t ow = geo.out_w();
  const std::int64_t cols = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < geo.in_channels; ++c) {
    const float* plane = image + c * geo.in_h * geo.in_w;
    for (std::int64_t kh = 0; kh < geo.kernel; ++kh) {
      for (std::int64_t kw = 0; kw < geo.kernel; ++kw, ++row) {
        float* out = col + row * cols;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t in_y = y * geo.stride + kh - geo.pad;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t in_x = x * geo.stride + kw - geo.pad;
            const bool inside = in_y >= 0 && in_y < geo.in_h && in_x >= 0 &&
                                in_x < geo.in_w;
            out[y * ow + x] = inside ? plane[in_y * geo.in_w + in_x] : 0.0F;
          }
        }
      }
    }
  }
}

void col2im(const float* col, const ConvGeometry& geo, float* image) {
  const std::int64_t oh = geo.out_h();
  const std::int64_t ow = geo.out_w();
  const std::int64_t cols = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < geo.in_channels; ++c) {
    float* plane = image + c * geo.in_h * geo.in_w;
    for (std::int64_t kh = 0; kh < geo.kernel; ++kh) {
      for (std::int64_t kw = 0; kw < geo.kernel; ++kw, ++row) {
        const float* in = col + row * cols;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t in_y = y * geo.stride + kh - geo.pad;
          if (in_y < 0 || in_y >= geo.in_h) continue;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t in_x = x * geo.stride + kw - geo.pad;
            if (in_x < 0 || in_x >= geo.in_w) continue;
            plane[in_y * geo.in_w + in_x] += in[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace pgmr::nn
