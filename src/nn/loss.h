// Training loss: softmax cross-entropy with integrated gradient.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace pgmr::nn {

/// Result of a loss evaluation: mean loss over the batch plus the gradient
/// of that mean w.r.t. the logits.
struct LossResult {
  float loss = 0.0F;
  Tensor grad_logits;
};

/// Mean softmax cross-entropy over a batch. `logits` is [N, C]; `labels`
/// holds N class indices in [0, C). The returned gradient is
/// (softmax - onehot) / N, ready to feed into Network::backward.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels);

}  // namespace pgmr::nn
