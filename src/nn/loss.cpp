#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "nn/softmax.h"

namespace pgmr::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  if (logits.shape().rank() != 2) {
    throw std::invalid_argument("softmax_cross_entropy: rank-2 logits required");
  }
  const std::int64_t batch = logits.shape()[0];
  const std::int64_t classes = logits.shape()[1];
  if (static_cast<std::int64_t>(labels.size()) != batch) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }

  LossResult result;
  result.grad_logits = softmax(logits);
  double total = 0.0;
  for (std::int64_t n = 0; n < batch; ++n) {
    const std::int64_t y = labels[static_cast<std::size_t>(n)];
    if (y < 0 || y >= classes) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    const float p = result.grad_logits.at(n, y);
    total += -std::log(std::max(p, 1e-12F));
    result.grad_logits.at(n, y) -= 1.0F;
  }
  result.grad_logits *= 1.0F / static_cast<float>(batch);
  result.loss = static_cast<float>(total / static_cast<double>(batch));
  return result;
}

}  // namespace pgmr::nn
