// Composite layers: Sequential, residual blocks (ResNet) and dense blocks
// (DenseNet). These make the zoo's ResNet20/34-lite and DenseNet-lite
// architecturally faithful to the paper's benchmark networks.
#pragma once

#include <memory>
#include <vector>

#include "nn/conv2d.h"
#include "nn/layer.h"

namespace pgmr::nn {

/// Ordered chain of layers; forward applies them left to right.
class Sequential final : public Layer {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<std::unique_ptr<Layer>> layers);

  /// Appends a layer; returns *this for fluent construction.
  Sequential& add(std::unique_ptr<Layer> layer);

  std::string kind() const override { return "sequential"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  Shape output_shape(const Shape& in) const override;
  CostStats cost(const Shape& in) const override;
  AbftChecksum abft_checksum() const override;
  Tensor forward_abft(const Tensor& input, const AbftChecksum& golden,
                      AbftLayerCheck* check) override;
  void save(BinaryWriter& w) const override;
  static std::unique_ptr<Sequential> load(BinaryReader& r);

  const std::vector<std::unique_ptr<Layer>>& children() const {
    return layers_;
  }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// ResNet basic block: out = ReLU(body(x) + shortcut(x)).
/// The shortcut is identity when shapes match, else a 1x1 strided
/// projection convolution (initialized by the caller via projection()).
class ResidualBlock final : public Layer {
 public:
  /// `body` must map [N,Cin,H,W] -> [N,Cout,H/s,W/s]; when Cin != Cout or
  /// s != 1 pass a matching 1x1 `projection` conv, else pass nullptr.
  ResidualBlock(std::unique_ptr<Sequential> body,
                std::unique_ptr<Conv2D> projection);

  std::string kind() const override { return "residual"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  Shape output_shape(const Shape& in) const override;
  CostStats cost(const Shape& in) const override;
  AbftChecksum abft_checksum() const override;
  Tensor forward_abft(const Tensor& input, const AbftChecksum& golden,
                      AbftLayerCheck* check) override;
  void save(BinaryWriter& w) const override;
  static std::unique_ptr<ResidualBlock> load(BinaryReader& r);

 private:
  std::unique_ptr<Sequential> body_;
  std::unique_ptr<Conv2D> projection_;  // nullptr => identity shortcut
  Tensor cached_sum_;                   // pre-ReLU sum, for backward
};

/// DenseNet dense block: each unit sees the channel-concatenation of the
/// block input and all previous unit outputs, and contributes `growth`
/// channels: out channels = in + units * growth.
class DenseBlock final : public Layer {
 public:
  /// `units[i]` must map [N, in + i*growth, H, W] -> [N, growth, H, W].
  DenseBlock(std::vector<std::unique_ptr<Sequential>> units,
             std::int64_t in_channels, std::int64_t growth);

  std::string kind() const override { return "denseblock"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  Shape output_shape(const Shape& in) const override;
  CostStats cost(const Shape& in) const override;
  AbftChecksum abft_checksum() const override;
  Tensor forward_abft(const Tensor& input, const AbftChecksum& golden,
                      AbftLayerCheck* check) override;
  void save(BinaryWriter& w) const override;
  static std::unique_ptr<DenseBlock> load(BinaryReader& r);

 private:
  std::vector<std::unique_ptr<Sequential>> units_;
  std::int64_t in_channels_, growth_;
};

/// Concatenates two rank-4 tensors along the channel axis.
Tensor concat_channels(const Tensor& a, const Tensor& b);

}  // namespace pgmr::nn
