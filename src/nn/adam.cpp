#include "nn/adam.h"

#include <cmath>
#include <stdexcept>

namespace pgmr::nn {

Adam::Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads,
           Config config)
    : params_(std::move(params)), grads_(std::move(grads)), config_(config) {
  if (params_.size() != grads_.size()) {
    throw std::invalid_argument("Adam: params/grads size mismatch");
  }
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i]->shape() != grads_[i]->shape()) {
      throw std::invalid_argument("Adam: param/grad shape mismatch at " +
                                  std::to_string(i));
    }
    m_.emplace_back(params_[i]->shape());
    v_.emplace_back(params_[i]->shape());
  }
}

void Adam::step() {
  ++t_;
  const float bias1 =
      1.0F - std::pow(config_.beta1, static_cast<float>(t_));
  const float bias2 =
      1.0F - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& w = *params_[i];
    const Tensor& g = *grads_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::int64_t j = 0; j < w.numel(); ++j) {
      m[j] = config_.beta1 * m[j] + (1.0F - config_.beta1) * g[j];
      v[j] = config_.beta2 * v[j] + (1.0F - config_.beta2) * g[j] * g[j];
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      w[j] -= config_.learning_rate *
              (m_hat / (std::sqrt(v_hat) + config_.eps) +
               config_.weight_decay * w[j]);
    }
  }
}

void Adam::zero_grad() {
  for (Tensor* g : grads_) g->fill(0.0F);
}

}  // namespace pgmr::nn
