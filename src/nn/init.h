// Weight initialization schemes.
//
// The paper's traditional-MR baseline gets its (limited) diversity purely
// from random weight initialization, so initialization is routed through an
// explicit Rng to make that diversity reproducible per ensemble member.
#pragma once

#include <cmath>

#include "tensor/random.h"
#include "tensor/tensor.h"

namespace pgmr::nn {

/// He (Kaiming) normal initialization: N(0, sqrt(2 / fan_in)).
/// The right default for ReLU networks, which all zoo models are.
inline void he_init(Tensor& w, std::int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  for (std::int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal(0.0F, stddev);
}

/// Xavier/Glorot uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
inline void xavier_init(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                        Rng& rng) {
  const float a =
      std::sqrt(6.0F / static_cast<float>(fan_in + fan_out));
  for (std::int64_t i = 0; i < w.numel(); ++i) w[i] = rng.uniform(-a, a);
}

}  // namespace pgmr::nn
