#include "data/ppm.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace pgmr::data {
namespace {

struct Geometry {
  std::int64_t channels, h, w;
  std::int64_t offset;  // leading batch axis handled via offset 0
};

Geometry geometry_of(const Shape& s) {
  if (s.rank() == 4 && s[0] == 1) return {s[1], s[2], s[3], 0};
  if (s.rank() == 3) return {s[0], s[1], s[2], 0};
  throw std::invalid_argument("write_pnm: expected [1,C,H,W] or [C,H,W], got " +
                              s.to_string());
}

unsigned char to_byte(float v) {
  return static_cast<unsigned char>(
      std::clamp(v, 0.0F, 1.0F) * 255.0F + 0.5F);
}

}  // namespace

void write_pnm(const Tensor& image, const std::string& path) {
  const Geometry g = geometry_of(image.shape());
  if (g.channels != 1 && g.channels != 3) {
    throw std::invalid_argument("write_pnm: expected 1 or 3 channels");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_pnm: cannot open " + path);
  out << (g.channels == 3 ? "P6" : "P5") << "\n"
      << g.w << " " << g.h << "\n255\n";
  const std::int64_t plane = g.h * g.w;
  for (std::int64_t y = 0; y < g.h; ++y) {
    for (std::int64_t x = 0; x < g.w; ++x) {
      for (std::int64_t c = 0; c < g.channels; ++c) {
        const unsigned char byte = to_byte(image[c * plane + y * g.w + x]);
        out.write(reinterpret_cast<const char*>(&byte), 1);
      }
    }
  }
  if (!out) throw std::runtime_error("write_pnm: write failed for " + path);
}

Tensor upscale_nearest(const Tensor& image, int factor) {
  if (factor < 1) throw std::invalid_argument("upscale_nearest: factor < 1");
  const Geometry g = geometry_of(image.shape());
  Tensor out(Shape{1, g.channels, g.h * factor, g.w * factor});
  const std::int64_t plane = g.h * g.w;
  const std::int64_t out_plane = plane * factor * factor;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    for (std::int64_t y = 0; y < g.h * factor; ++y) {
      for (std::int64_t x = 0; x < g.w * factor; ++x) {
        out[c * out_plane + y * g.w * factor + x] =
            image[c * plane + (y / factor) * g.w + (x / factor)];
      }
    }
  }
  return out;
}

}  // namespace pgmr::data
