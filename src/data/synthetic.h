// Procedural image classification corpora.
//
// These generators are this reproduction's substitute for MNIST, CIFAR-10
// and ImageNet (see DESIGN.md). Each class is a parametric visual
// signature — an oriented stripe field, a ring-positioned disk and (for
// color tiers) a class hue — and each instance perturbs that signature.
// The difficulty knobs map one-to-one to the paper's Fig 3 misprediction
// characteristics:
//   * occlusion_prob / occlusion_size  -> "poor image detail" (Fig 3a)
//   * second_object_prob               -> "multiple objects"  (Fig 3b)
//   * class_similarity                 -> "class similarity"  (Fig 3c)
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace pgmr::data {

/// Full parameterization of a synthetic corpus. All randomness flows from
/// `seed`, so a spec generates the identical corpus on every run.
struct SyntheticSpec {
  std::string name = "synthetic";
  std::int64_t channels = 3;
  std::int64_t size = 16;          ///< square image side
  std::int64_t num_classes = 10;
  std::int64_t count = 1000;       ///< number of samples to generate
  std::uint64_t seed = 1;

  // Instance variation.
  float jitter = 0.5F;             ///< signature parameter jitter, 0..1
  float noise_std = 0.05F;         ///< additive Gaussian pixel noise
  float brightness_jitter = 0.1F;  ///< global brightness variation

  // Hard-input knobs (Fig 3 analogues).
  float occlusion_prob = 0.0F;     ///< chance of an occluding patch
  float occlusion_size = 0.3F;     ///< patch side as a fraction of image
  float second_object_prob = 0.0F; ///< chance of blending another class
  float class_similarity = 0.0F;   ///< 0 = well separated, 1 = heavy overlap
};

/// Generates a corpus from `spec`. Labels are balanced round-robin.
Dataset generate_synthetic(const SyntheticSpec& spec);

/// The three benchmark tiers standing in for the paper's datasets.
/// `count` covers train+val+test; see zoo for the canonical split sizes.

/// MNIST stand-in: 1x16x16, 10 classes, easy (LeNet-tier ~99 %).
SyntheticSpec smnist_spec(std::int64_t count, std::uint64_t seed = 11);

/// CIFAR-10 stand-in: 3x16x16, 10 classes, moderate difficulty.
SyntheticSpec scifar_spec(std::int64_t count, std::uint64_t seed = 22);

/// ImageNet stand-in: 3x24x24, 20 classes, high similarity and clutter.
SyntheticSpec simagenet_spec(std::int64_t count, std::uint64_t seed = 33);

}  // namespace pgmr::data
