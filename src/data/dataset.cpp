#include "data/dataset.h"

#include <numeric>
#include <stdexcept>

namespace pgmr::data {

Dataset Dataset::slice(std::int64_t begin, std::int64_t end) const {
  if (begin < 0 || end > size() || begin > end) {
    throw std::out_of_range("Dataset::slice: bad range");
  }
  std::vector<std::int64_t> idx(static_cast<std::size_t>(end - begin));
  std::iota(idx.begin(), idx.end(), begin);
  return gather(idx);
}

Dataset Dataset::gather(const std::vector<std::int64_t>& indices) const {
  const std::int64_t per_sample =
      images.numel() / std::max<std::int64_t>(size(), 1);
  Dataset out;
  out.name = name;
  out.num_classes = num_classes;
  out.labels.reserve(indices.size());
  std::vector<float> data;
  data.reserve(indices.size() * static_cast<std::size_t>(per_sample));
  for (std::int64_t i : indices) {
    if (i < 0 || i >= size()) {
      throw std::out_of_range("Dataset::gather: index out of range");
    }
    const float* src = images.data() + i * per_sample;
    data.insert(data.end(), src, src + per_sample);
    out.labels.push_back(labels[static_cast<std::size_t>(i)]);
  }
  out.images = Tensor(Shape{static_cast<std::int64_t>(indices.size()),
                            images.shape()[1], images.shape()[2],
                            images.shape()[3]},
                      std::move(data));
  return out;
}

std::vector<std::int64_t> shuffled_indices(std::int64_t n, Rng& rng) {
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  return idx;
}

DatasetSplits split_dataset(const Dataset& full, std::int64_t train_n,
                            std::int64_t val_n, std::int64_t test_n) {
  if (train_n + val_n + test_n > full.size()) {
    throw std::invalid_argument("split_dataset: splits exceed dataset size");
  }
  DatasetSplits s;
  s.train = full.slice(0, train_n);
  s.val = full.slice(train_n, train_n + val_n);
  s.test = full.slice(train_n + val_n, train_n + val_n + test_n);
  return s;
}

}  // namespace pgmr::data
