#include "data/synthetic.h"

#include <cmath>
#include <stdexcept>

namespace pgmr::data {
namespace {

constexpr float kPi = 3.14159265358979F;

/// Per-class generative signature.
struct ClassSignature {
  float stripe_angle;  ///< orientation of the stripe field
  float stripe_freq;   ///< spatial frequency of the stripe field
  float disk_phase;    ///< position of the disk on a centered ring
  float hue;           ///< class hue in [0, 1) (color tiers only)
};

ClassSignature signature_for(std::int64_t cls, std::int64_t num_classes) {
  const auto k = static_cast<float>(num_classes);
  const auto c = static_cast<float>(cls);
  ClassSignature s;
  s.stripe_angle = kPi * c / k;
  // Permute the secondary attributes so theta-adjacent classes differ in
  // frequency/phase — similarity then degrades gracefully, not uniformly.
  s.stripe_freq = 1.5F + 2.5F * static_cast<float>((cls * 7) % num_classes) / k;
  s.disk_phase = 2.0F * kPi * static_cast<float>((cls * 3) % num_classes) / k;
  s.hue = c / k;
  return s;
}

/// Instance-level perturbed signature.
struct InstanceParams {
  ClassSignature sig;
  float brightness;
  float disk_radius;
};

InstanceParams perturb(const ClassSignature& base, const SyntheticSpec& spec,
                       Rng& rng) {
  // The similarity knob widens jitter relative to inter-class spacing, so
  // neighbouring classes genuinely overlap in parameter space.
  const float spread = spec.jitter * (1.0F + 2.0F * spec.class_similarity);
  const auto k = static_cast<float>(spec.num_classes);
  InstanceParams p;
  p.sig = base;
  p.sig.stripe_angle += rng.normal(0.0F, spread * kPi / k);
  p.sig.stripe_freq += rng.normal(0.0F, spread * 1.2F / k * 10.0F * 0.25F);
  p.sig.disk_phase += rng.normal(0.0F, spread * 2.0F * kPi / k);
  p.sig.hue += rng.normal(0.0F, spread * 0.35F / k);
  p.brightness = 1.0F + rng.normal(0.0F, spec.brightness_jitter);
  p.disk_radius = 0.18F + rng.uniform(-0.04F, 0.04F);
  return p;
}

/// Simple HSV-ish hue to RGB weights (saturation/value fixed at 1).
void hue_to_rgb(float hue, float rgb[3]) {
  hue = hue - std::floor(hue);
  const float h = hue * 6.0F;
  const float x = 1.0F - std::fabs(std::fmod(h, 2.0F) - 1.0F);
  const int sector = static_cast<int>(h) % 6;
  const float table[6][3] = {{1, x, 0}, {x, 1, 0}, {0, 1, x},
                             {0, x, 1}, {x, 0, 1}, {1, 0, x}};
  for (int i = 0; i < 3; ++i) rgb[i] = table[sector][i];
}

/// Renders one instance into `pixels` (C*H*W floats), *adding* with weight
/// `blend` so a second object can be overlaid (Fig 3b analogue).
void render_instance(const InstanceParams& p, const SyntheticSpec& spec,
                     float blend, float* pixels) {
  const std::int64_t n = spec.size;
  const float cx = static_cast<float>(n - 1) / 2.0F;
  const float cos_a = std::cos(p.sig.stripe_angle);
  const float sin_a = std::sin(p.sig.stripe_angle);
  const float ring_r = 0.30F * static_cast<float>(n);
  const float disk_cx = cx + ring_r * std::cos(p.sig.disk_phase);
  const float disk_cy = cx + ring_r * std::sin(p.sig.disk_phase);
  const float disk_r = p.disk_radius * static_cast<float>(n);

  float rgb[3] = {1.0F, 1.0F, 1.0F};
  if (spec.channels == 3) hue_to_rgb(p.sig.hue, rgb);

  for (std::int64_t y = 0; y < n; ++y) {
    for (std::int64_t x = 0; x < n; ++x) {
      const float fx = static_cast<float>(x) - cx;
      const float fy = static_cast<float>(y) - cx;
      // Oriented sinusoidal stripe field.
      const float proj = fx * cos_a + fy * sin_a;
      float v = 0.5F + 0.35F * std::sin(2.0F * kPi * p.sig.stripe_freq * proj /
                                        static_cast<float>(n));
      // Disk signature: bright blob at the class's ring position.
      const float dx = static_cast<float>(x) - disk_cx;
      const float dy = static_cast<float>(y) - disk_cy;
      const float d2 = dx * dx + dy * dy;
      if (d2 < disk_r * disk_r) {
        v = 0.9F;
      } else if (d2 < 4.0F * disk_r * disk_r) {
        // Soft halo so the disk remains visible under noise.
        v += 0.25F * std::exp(-(d2 - disk_r * disk_r) / (disk_r * disk_r));
      }
      v *= p.brightness;
      for (std::int64_t c = 0; c < spec.channels; ++c) {
        const float channel_weight = spec.channels == 3 ? (0.35F + 0.65F * rgb[c]) : 1.0F;
        pixels[(c * n + y) * n + x] += blend * v * channel_weight;
      }
    }
  }
}

void apply_occlusion(const SyntheticSpec& spec, Rng& rng, float* pixels) {
  const std::int64_t n = spec.size;
  const auto patch =
      static_cast<std::int64_t>(spec.occlusion_size * static_cast<float>(n));
  if (patch <= 0) return;
  const std::int64_t oy = rng.randint(0, n - patch);
  const std::int64_t ox = rng.randint(0, n - patch);
  const float fill = rng.bernoulli(0.5) ? 0.05F : 0.85F;
  for (std::int64_t c = 0; c < spec.channels; ++c) {
    for (std::int64_t y = oy; y < oy + patch; ++y) {
      for (std::int64_t x = ox; x < ox + patch; ++x) {
        pixels[(c * n + y) * n + x] = fill;
      }
    }
  }
}

}  // namespace

Dataset generate_synthetic(const SyntheticSpec& spec) {
  if (spec.count <= 0 || spec.num_classes <= 1 || spec.size < 8 ||
      (spec.channels != 1 && spec.channels != 3)) {
    throw std::invalid_argument("generate_synthetic: invalid spec");
  }
  Rng rng(spec.seed);
  const std::int64_t per_sample = spec.channels * spec.size * spec.size;
  std::vector<float> data(
      static_cast<std::size_t>(spec.count * per_sample), 0.0F);
  std::vector<std::int64_t> labels(static_cast<std::size_t>(spec.count));

  // Balanced labels in shuffled order so any prefix slice stays balanced.
  for (std::int64_t i = 0; i < spec.count; ++i) {
    labels[static_cast<std::size_t>(i)] = i % spec.num_classes;
  }
  rng.shuffle(labels);

  for (std::int64_t i = 0; i < spec.count; ++i) {
    float* pixels = data.data() + i * per_sample;
    const std::int64_t cls = labels[static_cast<std::size_t>(i)];
    const InstanceParams primary =
        perturb(signature_for(cls, spec.num_classes), spec, rng);

    const bool second = rng.bernoulli(spec.second_object_prob);
    if (second) {
      // Blend a distractor from a different class; the label remains the
      // primary object's class, as in the paper's seashore/mountain example.
      std::int64_t other = rng.randint(0, spec.num_classes - 2);
      if (other >= cls) ++other;
      const InstanceParams distractor =
          perturb(signature_for(other, spec.num_classes), spec, rng);
      render_instance(primary, spec, 0.60F, pixels);
      render_instance(distractor, spec, 0.40F, pixels);
    } else {
      render_instance(primary, spec, 1.0F, pixels);
    }

    if (rng.bernoulli(spec.occlusion_prob)) {
      apply_occlusion(spec, rng, pixels);
    }

    for (std::int64_t j = 0; j < per_sample; ++j) {
      float v = pixels[j] + rng.normal(0.0F, spec.noise_std);
      pixels[j] = std::min(1.0F, std::max(0.0F, v));
    }
  }

  Dataset out;
  out.name = spec.name;
  out.num_classes = spec.num_classes;
  out.labels = std::move(labels);
  out.images = Tensor(Shape{spec.count, spec.channels, spec.size, spec.size},
                      std::move(data));
  return out;
}

SyntheticSpec smnist_spec(std::int64_t count, std::uint64_t seed) {
  SyntheticSpec s;
  s.name = "smnist";
  s.channels = 1;
  s.size = 16;
  s.num_classes = 10;
  s.count = count;
  s.seed = seed;
  s.jitter = 0.40F;
  s.noise_std = 0.05F;
  s.occlusion_prob = 0.04F;
  s.second_object_prob = 0.02F;
  s.class_similarity = 0.15F;
  return s;
}

SyntheticSpec scifar_spec(std::int64_t count, std::uint64_t seed) {
  SyntheticSpec s;
  s.name = "scifar";
  s.channels = 3;
  s.size = 16;
  s.num_classes = 10;
  s.count = count;
  s.seed = seed;
  s.jitter = 0.70F;
  s.noise_std = 0.14F;
  s.brightness_jitter = 0.15F;
  s.occlusion_prob = 0.20F;
  s.occlusion_size = 0.30F;
  s.second_object_prob = 0.12F;
  s.class_similarity = 0.60F;
  return s;
}

SyntheticSpec simagenet_spec(std::int64_t count, std::uint64_t seed) {
  SyntheticSpec s;
  s.name = "simagenet";
  s.channels = 3;
  s.size = 24;
  s.num_classes = 20;
  s.count = count;
  s.seed = seed;
  s.jitter = 0.85F;
  s.noise_std = 0.18F;
  s.brightness_jitter = 0.20F;
  s.occlusion_prob = 0.30F;
  s.occlusion_size = 0.35F;
  s.second_object_prob = 0.25F;
  s.class_similarity = 1.00F;
  return s;
}

}  // namespace pgmr::data
