// PPM/PGM image export for inspecting the synthetic corpora — the visual
// counterpart of the paper's Fig 3 example images.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace pgmr::data {

/// Writes one image to a binary PPM (3-channel) or PGM (1-channel) file.
/// `image` is [1, C, H, W] or [C, H, W]-shaped data from Dataset::sample;
/// values are clamped from [0, 1] to 8-bit. Throws std::runtime_error on
/// I/O failure, std::invalid_argument on unsupported shapes.
void write_pnm(const Tensor& image, const std::string& path);

/// Nearest-neighbour upscale (factor >= 1) so 16x16 corpora are viewable.
Tensor upscale_nearest(const Tensor& image, int factor);

}  // namespace pgmr::data
