// Dataset: labeled image collection plus split/shuffle utilities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/random.h"
#include "tensor/tensor.h"

namespace pgmr::data {

/// A labeled image set. `images` is [N, C, H, W] in [0, 1]; `labels` holds
/// N class indices. Value type; copies are deep.
struct Dataset {
  std::string name;
  Tensor images;
  std::vector<std::int64_t> labels;
  std::int64_t num_classes = 0;

  std::int64_t size() const { return images.empty() ? 0 : images.shape()[0]; }
  std::int64_t channels() const { return images.shape()[1]; }
  std::int64_t height() const { return images.shape()[2]; }
  std::int64_t width() const { return images.shape()[3]; }

  /// Extracts samples [begin, end) as a new dataset.
  Dataset slice(std::int64_t begin, std::int64_t end) const;

  /// Extracts an arbitrary subset by index list.
  Dataset gather(const std::vector<std::int64_t>& indices) const;

  /// Single sample as a [1, C, H, W] tensor.
  Tensor sample(std::int64_t i) const { return images.slice_sample(i); }
};

/// Train/validation/test partition of one generated corpus.
struct DatasetSplits {
  Dataset train;
  Dataset val;
  Dataset test;
};

/// Returns a random permutation of [0, n).
std::vector<std::int64_t> shuffled_indices(std::int64_t n, Rng& rng);

/// Cuts `full` into train/val/test of the given sizes (must sum to <= size).
DatasetSplits split_dataset(const Dataset& full, std::int64_t train_n,
                            std::int64_t val_n, std::int64_t test_n);

}  // namespace pgmr::data
