// Replayable traffic traces.
//
// A Trace is the unit of workload reproducibility: an ordered list of
// request arrivals, each with a virtual timestamp, a routing key, an input
// class and a sample index into that class's corpus. The generator
// (generator.h) synthesizes traces from a seed; save/load round-trip them
// through a small line-oriented text format so a campaign that failed in
// CI can be replayed bit-for-bit from its recorded trace — or from just
// the seed printed in the bench header, which regenerates the same trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pgmr::workload {

/// Which corpus a request's input is drawn from (see corpora.h).
enum class InputClass {
  in_dist,      ///< the benchmark's own test distribution
  drift,        ///< covariate drift: same classes, shifted render stats
  ood,          ///< far out-of-distribution (uniform noise)
  adversarial,  ///< FGSM-perturbed in-distribution inputs
};

const char* to_string(InputClass cls);

/// One request arrival.
struct TraceEvent {
  double at_seconds = 0.0;  ///< virtual arrival time from trace start
  std::uint64_t key = 0;    ///< routing key (fleet rendezvous hashing)
  std::int32_t sample = 0;  ///< index into the class's corpus
  InputClass cls = InputClass::in_dist;
};

/// A full recorded workload. `seed` is provenance: the generator seed that
/// produced (or would reproduce) these events.
struct Trace {
  std::uint64_t seed = 0;
  std::vector<TraceEvent> events;

  double duration_seconds() const {
    return events.empty() ? 0.0 : events.back().at_seconds;
  }
};

/// Writes `trace` as "pgmr-trace v1" text; throws std::runtime_error on
/// I/O failure.
void save_trace(const Trace& trace, const std::string& path);

/// Reads a trace written by save_trace. Throws std::runtime_error on I/O
/// failure or any malformed line (fail-stop: a rotted trace must never
/// silently replay as a different workload).
Trace load_trace(const std::string& path);

}  // namespace pgmr::workload
