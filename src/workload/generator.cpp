#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "tensor/random.h"

namespace pgmr::workload {
namespace {

/// Drift share at virtual time `t`: linear ramp from 0 to 2x the day
/// average (so the whole-day mean is drift_frac), clamped past the horizon.
double drift_share_at(const WorkloadSpec& spec, double t) {
  const double progress = std::min(t / spec.day_seconds, 1.0);
  return 2.0 * spec.drift_frac * progress;
}

InputClass draw_class(const WorkloadSpec& spec, double t, Rng& rng) {
  const double u = rng.uniform(0.0F, 1.0F);
  double edge = drift_share_at(spec, t);
  if (u < edge) return InputClass::drift;
  edge += spec.ood_frac;
  if (u < edge) return InputClass::ood;
  edge += spec.adversarial_frac;
  if (u < edge) return InputClass::adversarial;
  return InputClass::in_dist;
}

void validate(const WorkloadSpec& spec) {
  if (spec.requests < 1) throw std::invalid_argument("workload: no requests");
  if (spec.day_seconds <= 0.0) {
    throw std::invalid_argument("workload: day_seconds must be positive");
  }
  if (spec.diurnal_amplitude < 0.0 || spec.diurnal_amplitude >= 1.0) {
    throw std::invalid_argument(
        "workload: diurnal_amplitude must be in [0, 1)");
  }
  if (spec.burst_prob < 0.0 || spec.burst_prob > 1.0 || spec.burst_len < 1) {
    throw std::invalid_argument("workload: bad burst knobs");
  }
  if (spec.drift_frac < 0.0 || spec.ood_frac < 0.0 ||
      spec.adversarial_frac < 0.0 ||
      2.0 * spec.drift_frac + spec.ood_frac + spec.adversarial_frac > 1.0) {
    throw std::invalid_argument(
        "workload: class fractions must be non-negative and leave room for "
        "in-distribution traffic at the peak of the drift ramp");
  }
  if (spec.corpus_size < 1) {
    throw std::invalid_argument("workload: corpus_size must be >= 1");
  }
}

}  // namespace

Trace generate_trace(const WorkloadSpec& spec) {
  validate(spec);
  Rng rng(spec.seed);
  Trace trace;
  trace.seed = spec.seed;
  trace.events.reserve(static_cast<std::size_t>(spec.requests));

  const double mean_rate =
      static_cast<double>(spec.requests) / spec.day_seconds;
  double t = 0.0;
  auto emit = [&](double at, InputClass cls) {
    TraceEvent e;
    e.at_seconds = at;
    e.key = rng.engine()();
    e.sample = static_cast<std::int32_t>(rng.randint(0, spec.corpus_size - 1));
    e.cls = cls;
    trace.events.push_back(e);
  };

  while (static_cast<std::int64_t>(trace.events.size()) < spec.requests) {
    // Instantaneous diurnal rate: trough at t = 0 (night), peak mid-day.
    const double phase =
        2.0 * std::numbers::pi * (t / spec.day_seconds) - std::numbers::pi / 2;
    const double rate =
        mean_rate * (1.0 + spec.diurnal_amplitude * std::sin(phase));
    const double u = 1.0 - static_cast<double>(rng.uniform(0.0F, 1.0F));
    t += -std::log(u) / rate;  // exponential inter-arrival gap at `rate`
    const InputClass cls = draw_class(spec, t, rng);
    emit(t, cls);
    if (rng.bernoulli(spec.burst_prob)) {
      // A burst inherits its trigger's timestamp and class: the retry storm
      // hammers the same corpus the triggering request came from.
      for (int b = 0; b < spec.burst_len &&
                      static_cast<std::int64_t>(trace.events.size()) <
                          spec.requests;
           ++b) {
        emit(t, cls);
      }
    }
  }
  return trace;
}

TraceSummary summarize(const Trace& trace) {
  TraceSummary s;
  s.total = static_cast<std::int64_t>(trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    switch (trace.events[i].cls) {
      case InputClass::in_dist: ++s.in_dist; break;
      case InputClass::drift: ++s.drift; break;
      case InputClass::ood: ++s.ood; break;
      case InputClass::adversarial: ++s.adversarial; break;
    }
    if (i > 0 &&
        trace.events[i].at_seconds == trace.events[i - 1].at_seconds) {
      ++s.burst_events;
    }
  }
  s.duration_seconds = trace.duration_seconds();
  s.mean_rps = s.duration_seconds > 0.0
                   ? static_cast<double>(s.total) / s.duration_seconds
                   : 0.0;
  return s;
}

std::string to_string(const TraceSummary& s) {
  std::ostringstream out;
  out << s.total << " events over " << s.duration_seconds << "s ("
      << s.mean_rps << " rps mean): " << s.in_dist << " in-dist, " << s.drift
      << " drift, " << s.ood << " ood, " << s.adversarial << " adversarial, "
      << s.burst_events << " in bursts";
  return out.str();
}

}  // namespace pgmr::workload
