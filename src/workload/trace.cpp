#include "workload/trace.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pgmr::workload {
namespace {

constexpr const char* kMagic = "pgmr-trace v1";

InputClass class_from(const std::string& token) {
  if (token == "in_dist") return InputClass::in_dist;
  if (token == "drift") return InputClass::drift;
  if (token == "ood") return InputClass::ood;
  if (token == "adversarial") return InputClass::adversarial;
  throw std::runtime_error("trace: unknown input class '" + token + "'");
}

}  // namespace

const char* to_string(InputClass cls) {
  switch (cls) {
    case InputClass::in_dist: return "in_dist";
    case InputClass::drift: return "drift";
    case InputClass::ood: return "ood";
    case InputClass::adversarial: return "adversarial";
  }
  return "unknown";
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  out << kMagic << " seed=" << trace.seed << " events=" << trace.events.size()
      << "\n";
  // max_digits10 makes the text round-trip bit-exact: a campaign replayed
  // from a recorded trace must see the identical timestamps a replay from
  // the printed seed would regenerate.
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const TraceEvent& e : trace.events) {
    out << e.at_seconds << ' ' << e.key << ' ' << e.sample << ' '
        << to_string(e.cls) << "\n";
  }
  if (!out) throw std::runtime_error("trace: write failed for " + path);
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  std::string header;
  std::getline(in, header);
  std::uint64_t seed = 0;
  std::size_t count = 0;
  {
    std::istringstream hs(header);
    std::string word, version, seed_kv, events_kv;
    hs >> word >> version >> seed_kv >> events_kv;
    if (word + " " + version != kMagic ||
        seed_kv.rfind("seed=", 0) != 0 || events_kv.rfind("events=", 0) != 0) {
      throw std::runtime_error("trace: bad header in " + path);
    }
    seed = std::stoull(seed_kv.substr(5));
    count = std::stoull(events_kv.substr(7));
  }
  Trace trace;
  trace.seed = seed;
  trace.events.reserve(count);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    TraceEvent e;
    std::string cls;
    if (!(ls >> e.at_seconds >> e.key >> e.sample >> cls)) {
      throw std::runtime_error("trace: malformed line in " + path + ": " +
                               line);
    }
    e.cls = class_from(cls);
    if (!trace.events.empty() &&
        e.at_seconds < trace.events.back().at_seconds) {
      throw std::runtime_error("trace: timestamps not monotonic in " + path);
    }
    trace.events.push_back(e);
  }
  if (trace.events.size() != count) {
    throw std::runtime_error("trace: event count mismatch in " + path +
                             " (header says " + std::to_string(count) +
                             ", found " +
                             std::to_string(trace.events.size()) + ")");
  }
  return trace;
}

}  // namespace pgmr::workload
