// Seedable day-in-production traffic generator.
//
// Synthesizes a Trace whose arrival curve and input mix look like a
// production day compressed into a virtual horizon:
//   * diurnal arrivals — a non-homogeneous Poisson process whose rate
//     follows a sinusoid over the day (trough at the start, peak mid-day),
//     drawn by exponential inter-arrival gaps at the instantaneous rate;
//   * bursts — each arrival can trigger a burst of back-to-back requests
//     sharing its timestamp and input class (a retry storm or a scripted
//     scraper), which is what stresses the batcher and the queue bound;
//   * covariate drift that *ramps* — the drift probability grows linearly
//     from 0 at the start of the day to 2x its configured average at the
//     end, modeling a slowly rotting upstream feature, not a step change;
//   * constant OOD and adversarial floors.
// All randomness flows from WorkloadSpec::seed, so one printed seed
// reproduces the identical trace (and therefore the identical campaign).
#pragma once

#include <cstdint>
#include <string>

#include "workload/trace.h"

namespace pgmr::workload {

/// Knobs of the generated day. Defaults describe a mild production day;
/// benches override requests/day_seconds to compress it.
struct WorkloadSpec {
  std::uint64_t seed = 1;
  std::int64_t requests = 2048;    ///< total events (bursts included)
  double day_seconds = 86400.0;    ///< virtual horizon the events span
  double diurnal_amplitude = 0.6;  ///< peak-vs-mean swing, 0 (flat) .. <1
  double burst_prob = 0.01;        ///< chance an arrival triggers a burst
  int burst_len = 8;               ///< extra same-timestamp events per burst
  double drift_frac = 0.10;        ///< day-average drift share (ramps 0->2x)
  double ood_frac = 0.03;          ///< constant far-OOD share
  double adversarial_frac = 0.02;  ///< constant adversarial share
  std::int64_t corpus_size = 256;  ///< samples per corpus (see corpora.h)
};

/// Generates the trace for `spec`. Deterministic in spec (bit-identical
/// events for equal specs). Throws std::invalid_argument on nonsensical
/// knobs (no requests, non-positive horizon, fraction sums > 1, ...).
Trace generate_trace(const WorkloadSpec& spec);

/// Per-class counts and shape stats of a trace, for bench headers and the
/// `pgmr workload` subcommand.
struct TraceSummary {
  std::int64_t total = 0;
  std::int64_t in_dist = 0;
  std::int64_t drift = 0;
  std::int64_t ood = 0;
  std::int64_t adversarial = 0;
  std::int64_t burst_events = 0;  ///< events sharing a timestamp with prior
  double duration_seconds = 0.0;
  double mean_rps = 0.0;
};

TraceSummary summarize(const Trace& trace);

/// One-line rendering of a summary for logs.
std::string to_string(const TraceSummary& summary);

}  // namespace pgmr::workload
