// Input corpora backing the traffic generator's class mix.
//
// Reuses the ingredients the ext_ood_detection and ext_adversarial benches
// established, packaged so a trace's (class, sample) pair resolves to a
// concrete input tensor:
//   * in_dist      — a slice of the benchmark's own test split;
//   * drift        — the same generator family with shifted render
//                    statistics (inflated jitter + brightness), the
//                    near-OOD covariate-drift probe;
//   * ood          — uniform noise of the benchmark's input shape;
//   * adversarial  — FGSM perturbations of the in_dist slice against a
//                    victim network.
// Everything is seeded, so a (benchmark, seed, size) triple rebuilds
// byte-identical corpora on every replay.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "nn/network.h"
#include "workload/trace.h"
#include "zoo/zoo.h"

namespace pgmr::workload {

/// The four corpora a trace draws from, all sized `size`.
struct Corpora {
  data::Dataset in_dist;
  data::Dataset drift;
  data::Dataset ood;
  data::Dataset adversarial;
};

/// Builds all four corpora for `bm`. `victim` is the network FGSM attacks
/// (typically the ensemble's ORG member); epsilon is the attack budget.
/// Throws std::invalid_argument when the benchmark's test split is smaller
/// than `size`.
Corpora build_corpora(const zoo::Benchmark& bm, std::int64_t size,
                      std::uint64_t seed, nn::Network& victim,
                      float epsilon = 0.05F);

/// The corpus a trace event of class `cls` samples from.
const data::Dataset& corpus(const Corpora& corpora, InputClass cls);

}  // namespace pgmr::workload
