#include "workload/corpora.h"

#include <stdexcept>

#include "adv/fgsm.h"
#include "data/synthetic.h"
#include "tensor/random.h"

namespace pgmr::workload {
namespace {

/// Drift = the benchmark's own generator family re-rendered with shifted
/// statistics (same knobs as bench/ext_ood_detection's near-OOD probe).
data::SyntheticSpec drift_spec(const zoo::Benchmark& bm, std::int64_t size,
                               std::uint64_t seed) {
  data::SyntheticSpec spec;
  if (bm.dataset_id == "smnist") {
    spec = data::smnist_spec(size, seed);
  } else if (bm.dataset_id == "scifar") {
    spec = data::scifar_spec(size, seed);
  } else if (bm.dataset_id == "simagenet") {
    spec = data::simagenet_spec(size, seed);
  } else {
    throw std::invalid_argument("corpora: unknown dataset tier '" +
                                bm.dataset_id + "'");
  }
  spec.name += "-drift";
  spec.jitter *= 1.8F;
  spec.brightness_jitter = 0.45F;
  return spec;
}

}  // namespace

Corpora build_corpora(const zoo::Benchmark& bm, std::int64_t size,
                      std::uint64_t seed, nn::Network& victim, float epsilon) {
  if (size < 1) throw std::invalid_argument("corpora: size must be >= 1");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  if (splits.test.size() < size) {
    throw std::invalid_argument(
        "corpora: test split smaller than requested corpus size");
  }
  Corpora corpora;
  corpora.in_dist = splits.test.slice(0, size);

  corpora.drift = data::generate_synthetic(drift_spec(bm, size, seed));

  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);  // distinct stream from drift
  corpora.ood.name = "ood-noise";
  corpora.ood.num_classes = corpora.in_dist.num_classes;
  corpora.ood.images =
      Tensor(Shape{size, corpora.in_dist.channels(), corpora.in_dist.height(),
                   corpora.in_dist.width()});
  for (std::int64_t i = 0; i < corpora.ood.images.numel(); ++i) {
    corpora.ood.images[i] = rng.uniform(0.0F, 1.0F);
  }
  // Noise has no true class; labels exist only so the Dataset is well
  // formed (any verdict on these inputs counts toward flagged/FP stats by
  // the caller's rules, never toward accuracy).
  corpora.ood.labels.assign(static_cast<std::size_t>(size), 0);

  corpora.adversarial.name = "adversarial-fgsm";
  corpora.adversarial.num_classes = corpora.in_dist.num_classes;
  corpora.adversarial.images = adv::fgsm_attack(
      victim, corpora.in_dist.images, corpora.in_dist.labels, epsilon);
  corpora.adversarial.labels = corpora.in_dist.labels;
  return corpora;
}

const data::Dataset& corpus(const Corpora& corpora, InputClass cls) {
  switch (cls) {
    case InputClass::in_dist: return corpora.in_dist;
    case InputClass::drift: return corpora.drift;
    case InputClass::ood: return corpora.ood;
    case InputClass::adversarial: return corpora.adversarial;
  }
  throw std::invalid_argument("corpora: unknown input class");
}

}  // namespace pgmr::workload
