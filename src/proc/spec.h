// System spec: how a PolygraphSystem crosses the fork/exec boundary.
//
// A SystemFactory is a std::function — it cannot ride an execv. Instead
// the parent *builds* the shard's system once, then serializes everything
// a worker process needs to reconstruct it bit-for-bit into a spec
// directory:
//
//   <dir>/spec.pgmr     member table (prep spec, bits, protection level,
//                       network file), decision thresholds, and the POD
//                       subset of RuntimeOptions (archive format v2, so
//                       every field is CRC-guarded on the way back in)
//   <dir>/member<m>.net each member's network via nn::Network::save —
//                       architecture + truncated weights, exactly the
//                       floats the parent's copy serves with
//
// Reconstruction is deterministic: load + re-truncate at the recorded
// bits is idempotent on already-truncated weights, so a restarted worker
// produces verdicts bit-identical to the incarnation that was SIGKILLed —
// the property the post-recovery campaign gate asserts. Each member's
// archive_source points at its spec file, so the worker's weight scrubber
// can heal in-memory corruption from the spec exactly as the thread
// backend heals from the zoo cache.
//
// Deliberately not serialized: the replacement factory (a closure; process
// workers serve with replacement disabled) and RADE staging (profile state
// lives with the parent; staged serving stays a thread-backend feature).
#pragma once

#include <string>

#include "polygraph/system.h"
#include "runtime/serving_runtime.h"

namespace pgmr::proc {

/// Everything load_system_spec reconstructs for the worker.
struct WorkerSystem {
  polygraph::PolygraphSystem system;
  runtime::RuntimeOptions options;
};

/// Serializes `system` + the POD subset of `options` under `dir`
/// (created if missing). Throws std::runtime_error on I/O failure.
void write_system_spec(const std::string& dir,
                       polygraph::PolygraphSystem& system,
                       const runtime::RuntimeOptions& options);

/// Rebuilds the system and options from a spec directory. Throws
/// std::runtime_error on a missing/corrupt spec (CRC mismatches included).
WorkerSystem load_system_spec(const std::string& dir);

}  // namespace pgmr::proc
