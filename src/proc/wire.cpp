#include "proc/wire.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "tensor/crc32.h"

namespace pgmr::proc {

namespace {

void put_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

/// Reads exactly `n` bytes; false on orderly EOF before the first byte
/// when `eof_ok`, WireError on mid-read EOF or descriptor error.
bool read_exact(int fd, void* buf, std::size_t n, bool eof_ok) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw WireError("wire: truncated frame (peer closed mid-frame)");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("wire: read failed: ") +
                      std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

// ---- payload writer/reader ----------------------------------------------

void PayloadWriter::u32(std::uint32_t v) { put_le32(bytes_, v); }

void PayloadWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void PayloadWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u32(bits);
}

void PayloadWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void PayloadWriter::tensor(const Tensor& t) {
  const Shape& shape = t.shape();
  u8(static_cast<std::uint8_t>(shape.rank()));
  for (std::size_t i = 0; i < shape.rank(); ++i) i64(shape[i]);
  const auto n = static_cast<std::size_t>(t.numel());
  const std::size_t off = bytes_.size();
  bytes_.resize(off + n * sizeof(float));
  std::memcpy(bytes_.data() + off, t.data(), n * sizeof(float));
}

void PayloadReader::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n) {
    throw WireError("wire: payload exhausted mid-field");
  }
}

std::uint8_t PayloadReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint32_t PayloadReader::u32() {
  need(4);
  const std::uint32_t v = get_le32(bytes_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | hi << 32;
}

float PayloadReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string PayloadReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return s;
}

Tensor PayloadReader::tensor() {
  const std::uint8_t rank = u8();
  if (rank > Shape::kMaxRank) throw WireError("wire: tensor rank too large");
  std::int64_t dims[Shape::kMaxRank] = {};
  std::int64_t numel = 1;
  for (std::uint8_t i = 0; i < rank; ++i) {
    dims[i] = i64();
    if (dims[i] <= 0 || numel > static_cast<std::int64_t>(kMaxFrameBytes) ||
        dims[i] > static_cast<std::int64_t>(kMaxFrameBytes)) {
      throw WireError("wire: tensor dimension out of range");
    }
    numel *= dims[i];
  }
  const auto n = static_cast<std::size_t>(numel);
  if (n * sizeof(float) > kMaxFrameBytes) {
    throw WireError("wire: tensor payload too large");
  }
  need(n * sizeof(float));
  Shape shape;
  switch (rank) {  // Shape only builds from initializer lists
    case 0: break;
    case 1: shape = Shape{dims[0]}; break;
    case 2: shape = Shape{dims[0], dims[1]}; break;
    case 3: shape = Shape{dims[0], dims[1], dims[2]}; break;
    case 4: shape = Shape{dims[0], dims[1], dims[2], dims[3]}; break;
    case 5: shape = Shape{dims[0], dims[1], dims[2], dims[3], dims[4]}; break;
    default:
      shape = Shape{dims[0], dims[1], dims[2], dims[3], dims[4], dims[5]};
      break;
  }
  std::vector<float> data(n);
  std::memcpy(data.data(), bytes_.data() + pos_, n * sizeof(float));
  pos_ += n * sizeof(float);
  return Tensor(shape, std::move(data));
}

// ---- message codecs ------------------------------------------------------

std::vector<std::uint8_t> encode_hello(const HelloMsg& m) {
  PayloadWriter w;
  w.u8(static_cast<std::uint8_t>(FrameType::hello));
  w.u64(m.pid);
  w.u32(m.members);
  return w.take();
}

HelloMsg decode_hello(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(FrameType::hello)) {
    throw WireError("wire: not a hello frame");
  }
  HelloMsg m;
  m.pid = r.u64();
  m.members = r.u32();
  return m;
}

std::vector<std::uint8_t> encode_submit(const SubmitMsg& m) {
  PayloadWriter w;
  w.u8(static_cast<std::uint8_t>(FrameType::submit));
  w.u64(m.id);
  w.i64(m.deadline_us);
  w.tensor(m.image);
  return w.take();
}

SubmitMsg decode_submit(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(FrameType::submit)) {
    throw WireError("wire: not a submit frame");
  }
  SubmitMsg m;
  m.id = r.u64();
  m.deadline_us = r.i64();
  m.image = r.tensor();
  return m;
}

std::vector<std::uint8_t> encode_verdict(const VerdictMsg& m) {
  PayloadWriter w;
  w.u8(static_cast<std::uint8_t>(FrameType::verdict));
  w.u64(m.id);
  w.u8(static_cast<std::uint8_t>(m.status));
  if (m.status == VerdictStatus::ok) {
    w.i64(m.verdict.label);
    w.u8(m.verdict.reliable ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(m.verdict.votes));
    w.u32(static_cast<std::uint32_t>(m.verdict.activated));
    w.u8(m.verdict.degraded ? 1 : 0);
  } else {
    w.str(m.error);
  }
  return w.take();
}

VerdictMsg decode_verdict(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(FrameType::verdict)) {
    throw WireError("wire: not a verdict frame");
  }
  VerdictMsg m;
  m.id = r.u64();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(VerdictStatus::error)) {
    throw WireError("wire: unknown verdict status");
  }
  m.status = static_cast<VerdictStatus>(status);
  if (m.status == VerdictStatus::ok) {
    m.verdict.label = r.i64();
    m.verdict.reliable = r.u8() != 0;
    m.verdict.votes = static_cast<int>(r.u32());
    m.verdict.activated = static_cast<int>(r.u32());
    m.verdict.degraded = r.u8() != 0;
  } else {
    m.error = r.str();
  }
  return m;
}

std::vector<std::uint8_t> encode_stats(const runtime::MetricsSnapshot& s) {
  PayloadWriter w;
  w.u8(static_cast<std::uint8_t>(FrameType::stats));
  w.u64(s.requests_submitted);
  w.u64(s.requests_completed);
  w.u64(s.requests_rejected);
  w.u64(s.requests_shed);
  w.u64(s.batches);
  w.u64(s.batch_size_sum);
  w.u64(s.max_batch_size);
  w.u64(s.reliable);
  w.u64(s.unreliable);
  w.u64(s.degraded_verdicts);
  w.u64(s.scrub_cycles);
  w.u64(s.replacements_started);
  w.u64(s.replacements_completed);
  w.u64(s.replacements_failed);
  w.u64(s.quorum_size);
  const auto vec = [&w](const std::vector<std::uint64_t>& v) {
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (std::uint64_t x : v) w.u64(x);
  };
  vec(s.member_activations);
  vec(s.member_faults);
  vec(s.quarantine_events);
  vec(s.crc_mismatches);
  vec(s.weight_reloads);
  for (std::uint64_t b : s.latency_buckets) w.u64(b);
  for (std::uint64_t b : s.scrub_hold_buckets) w.u64(b);
  return w.take();
}

runtime::MetricsSnapshot decode_stats(
    const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(FrameType::stats)) {
    throw WireError("wire: not a stats frame");
  }
  runtime::MetricsSnapshot s;
  s.requests_submitted = r.u64();
  s.requests_completed = r.u64();
  s.requests_rejected = r.u64();
  s.requests_shed = r.u64();
  s.batches = r.u64();
  s.batch_size_sum = r.u64();
  s.max_batch_size = r.u64();
  s.reliable = r.u64();
  s.unreliable = r.u64();
  s.degraded_verdicts = r.u64();
  s.scrub_cycles = r.u64();
  s.replacements_started = r.u64();
  s.replacements_completed = r.u64();
  s.replacements_failed = r.u64();
  s.quorum_size = r.u64();
  const auto vec = [&r](std::vector<std::uint64_t>& v) {
    const std::uint32_t n = r.u32();
    if (n > 4096) throw WireError("wire: stats vector too large");
    v.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) v[i] = r.u64();
  };
  vec(s.member_activations);
  vec(s.member_faults);
  vec(s.quarantine_events);
  vec(s.crc_mismatches);
  vec(s.weight_reloads);
  for (std::uint64_t& b : s.latency_buckets) b = r.u64();
  for (std::uint64_t& b : s.scrub_hold_buckets) b = r.u64();
  return s;
}

std::vector<std::uint8_t> encode_control(FrameType type) {
  PayloadWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  return w.take();
}

FrameType frame_type(const std::vector<std::uint8_t>& payload) {
  if (payload.empty()) throw WireError("wire: empty payload");
  const std::uint8_t t = payload[0];
  if (t < static_cast<std::uint8_t>(FrameType::hello) ||
      t > static_cast<std::uint8_t>(FrameType::bye)) {
    throw WireError("wire: unknown frame type " + std::to_string(t));
  }
  return static_cast<FrameType>(t);
}

// ---- frame I/O -----------------------------------------------------------

void write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw WireError("wire: refusing to send oversized frame");
  }
  std::vector<std::uint8_t> buf;
  buf.reserve(12 + payload.size());
  put_le32(buf, kFrameMagic);
  put_le32(buf, static_cast<std::uint32_t>(payload.size()));
  put_le32(buf, crc32(payload.data(), payload.size()));
  buf.insert(buf.end(), payload.begin(), payload.end());
  std::size_t sent = 0;
  while (sent < buf.size()) {
    // MSG_NOSIGNAL: a peer that died mid-conversation must surface as
    // EPIPE (-> WireError -> restart), never as a SIGPIPE that kills the
    // whole fleet parent. All frame transport runs over socketpairs.
    const ssize_t r = ::send(fd, buf.data() + sent, buf.size() - sent,
                             MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("wire: write failed: ") +
                      std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
}

ReadStatus read_frame(int fd, std::vector<std::uint8_t>& payload,
                      std::chrono::milliseconds timeout) {
  if (timeout.count() >= 0) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    int r;
    do {
      r = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    } while (r < 0 && errno == EINTR);
    if (r < 0) {
      throw WireError(std::string("wire: poll failed: ") +
                      std::strerror(errno));
    }
    if (r == 0) return ReadStatus::timeout;
    // POLLHUP with pending data still reads; pure HUP hits EOF below.
  }
  std::uint8_t header[12];
  if (!read_exact(fd, header, sizeof header, /*eof_ok=*/true)) {
    return ReadStatus::eof;
  }
  if (get_le32(header) != kFrameMagic) {
    throw WireError("wire: bad frame magic");
  }
  const std::uint32_t length = get_le32(header + 4);
  const std::uint32_t want_crc = get_le32(header + 8);
  if (length > kMaxFrameBytes) {
    throw WireError("wire: frame length " + std::to_string(length) +
                    " exceeds cap");
  }
  payload.resize(length);
  if (length > 0) {
    read_exact(fd, payload.data(), length, /*eof_ok=*/false);
  }
  if (crc32(payload.data(), payload.size()) != want_crc) {
    throw WireError("wire: frame CRC mismatch");
  }
  return ReadStatus::ok;
}

}  // namespace pgmr::proc
