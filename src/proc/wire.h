// Wire protocol between a ShardSupervisor and its pgmr-shard-worker child.
//
// Framing: every message travels as one frame over a SOCK_STREAM Unix
// socketpair —
//
//   u32 magic "PGMW" | u32 payload length | u32 CRC-32(payload) | payload
//
// all little-endian. The CRC is the same IEEE polynomial the archive
// format uses (tensor/crc32.h); a frame whose magic, length (> kMaxFrame)
// or CRC disagrees raises WireError on the reader without consuming more
// of the stream — the connection is considered poisoned and the peer
// fail-stops it (the supervisor restarts the worker, the worker exits).
// Nothing in the protocol can crash either side on malformed input: every
// payload decoder is bounds-checked and throws WireError instead of
// reading out of range.
//
// Payloads: the first byte is the FrameType, the rest is type-specific.
//
//   hello     worker -> sup   pid + ensemble member count; "serving now"
//   submit    sup -> worker   request id, deadline budget, [1,C,H,W] image
//   verdict   worker -> sup   request id + Verdict, or an error class
//   stats     worker -> sup   cumulative runtime::MetricsSnapshot; sent
//                             after every verdict and at drain, so the
//                             supervisor's view survives a SIGKILL with at
//                             most one request of drift
//   ping/pong either          heartbeat probe and its echo
//   shutdown  sup -> worker   drain accepted requests, reply, then exit
//   bye       worker -> sup   drain complete, about to _exit(0)
//
// Deadlines cross the process boundary as *remaining microseconds* (the
// two sides do not share a steady_clock epoch); the worker re-anchors the
// budget against its own clock on receipt.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "polygraph/system.h"
#include "runtime/metrics.h"
#include "tensor/tensor.h"

namespace pgmr::proc {

/// Any framing/codec violation: truncated stream, bad magic, oversized
/// length, CRC mismatch, or a payload shorter than its decoder expects.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kFrameMagic = 0x57'4D'47'50;  // "PGMW"
/// Upper bound on one payload — far above any image frame, far below
/// anything that could be a corrupt length field asking to allocate GBs.
inline constexpr std::uint32_t kMaxFrameBytes = 64u * 1024u * 1024u;

enum class FrameType : std::uint8_t {
  hello = 1,
  submit = 2,
  verdict = 3,
  stats = 4,
  ping = 5,
  pong = 6,
  shutdown = 7,
  bye = 8,
};

/// Bounds-checked little-endian payload builder.
class PayloadWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void str(const std::string& s);
  void tensor(const Tensor& t);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked payload parser; every read throws WireError once the
/// payload is exhausted, so corrupt frames fail loudly, never UB.
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  std::string str();
  Tensor tensor();

  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void need(std::size_t n) const;
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

// ---- message codecs ------------------------------------------------------

struct HelloMsg {
  std::uint64_t pid = 0;
  std::uint32_t members = 0;
};

struct SubmitMsg {
  std::uint64_t id = 0;
  /// Remaining deadline budget in microseconds; negative = no deadline.
  std::int64_t deadline_us = -1;
  Tensor image;
};

/// How a request ended on the worker side.
enum class VerdictStatus : std::uint8_t {
  ok = 0,
  deadline = 1,  ///< shed by the worker's batcher (DeadlineExceeded)
  stopped = 2,   ///< worker was draining / runtime refused the request
  error = 3,     ///< inference raised; message carries what()
};

struct VerdictMsg {
  std::uint64_t id = 0;
  VerdictStatus status = VerdictStatus::ok;
  polygraph::Verdict verdict;  ///< meaningful for status == ok
  std::string error;           ///< meaningful for status != ok
};

std::vector<std::uint8_t> encode_hello(const HelloMsg& m);
HelloMsg decode_hello(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_submit(const SubmitMsg& m);
SubmitMsg decode_submit(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_verdict(const VerdictMsg& m);
VerdictMsg decode_verdict(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_stats(const runtime::MetricsSnapshot& s);
runtime::MetricsSnapshot decode_stats(
    const std::vector<std::uint8_t>& payload);

/// ping/pong/shutdown/bye carry no body beyond the type byte.
std::vector<std::uint8_t> encode_control(FrameType type);

/// FrameType of an already-decoded payload (its first byte). Throws
/// WireError on an empty payload or an unknown type value.
FrameType frame_type(const std::vector<std::uint8_t>& payload);

// ---- frame I/O -----------------------------------------------------------

enum class ReadStatus {
  ok,       ///< one whole frame decoded into `payload`
  timeout,  ///< nothing arrived within the poll window
  eof,      ///< orderly EOF at a frame boundary (peer closed)
};

/// Writes one frame (header + payload) to `fd`, retrying short writes.
/// Throws WireError when the descriptor fails (EPIPE after the peer died).
void write_frame(int fd, const std::vector<std::uint8_t>& payload);

/// Reads one frame. Waits up to `timeout` for the *first* byte (timeout
/// => ReadStatus::timeout, nothing consumed); once a header begins, reads
/// the full frame, throwing WireError on mid-frame EOF, bad magic,
/// oversized length or CRC mismatch. `timeout` < 0 blocks indefinitely.
ReadStatus read_frame(int fd, std::vector<std::uint8_t>& payload,
                      std::chrono::milliseconds timeout);

}  // namespace pgmr::proc
