#include "proc/supervisor.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "proc/wire.h"
#include "runtime/serving_runtime.h"

namespace pgmr::proc {

namespace {

/// The child's end of the socketpair always lands on fd 3 — the first
/// descriptor after stdio, stable regardless of what the parent had open.
constexpr int kWorkerFd = 3;

std::string resolve_worker_path(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const char* env = std::getenv("PGMR_SHARD_WORKER");
      env != nullptr && *env != '\0') {
    return env;
  }
  // Last resort: next to the current executable (the usual build layout),
  // falling back to PATH lookup semantics via the bare name.
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    auto candidate = self.parent_path() / "pgmr-shard-worker";
    if (std::filesystem::exists(candidate, ec)) return candidate.string();
  }
  return "pgmr-shard-worker";
}

}  // namespace

std::chrono::milliseconds restart_backoff(std::chrono::milliseconds initial,
                                          std::chrono::milliseconds cap,
                                          int consecutive_failures) {
  auto backoff = initial;
  for (int i = 0; i < consecutive_failures && backoff < cap; ++i) {
    backoff *= 2;
  }
  return std::min(backoff, cap);
}

ShardSupervisor::ShardSupervisor(std::string spec_dir,
                                 fleet::ProcessOptions options,
                                 std::string label)
    : spec_dir_(std::move(spec_dir)),
      opts_(std::move(options)),
      label_(std::move(label)) {
  monitor_ = std::jthread([this](std::stop_token st) { monitor_loop(st); });
  // Block until the first worker says hello (it loads and deserializes the
  // whole ensemble first) or the spawn path gives up. A shard that cannot
  // start is *unavailable*, not a constructor failure — the router's
  // breaker owns the consequence.
  std::unique_lock lock(pending_mutex_);
  pending_cv_.wait_for(lock, opts_.startup_timeout, [this] {
    return connected_.load() || failed_.load() || stopping_.load();
  });
}

ShardSupervisor::~ShardSupervisor() { shutdown(); }

bool ShardSupervisor::available() const {
  return connected_.load() && !stopping_.load() && !failed_.load();
}

std::size_t ShardSupervisor::inflight_cap() const {
  return opts_.max_inflight > 0 ? opts_.max_inflight : 256;
}

bool ShardSupervisor::send_payload(const std::vector<std::uint8_t>& payload) {
  std::lock_guard guard(write_mutex_);
  if (fd_ < 0) return false;
  try {
    write_frame(fd_, payload);
    return true;
  } catch (const WireError&) {
    // The monitor notices the dead socket on its side; callers just see a
    // refused hand-off.
    return false;
  }
}

std::optional<std::future<polygraph::Verdict>> ShardSupervisor::try_submit(
    Tensor image,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  if (!available()) return std::nullopt;

  SubmitMsg msg;
  msg.image = std::move(image);
  if (deadline) {
    const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
        *deadline - std::chrono::steady_clock::now());
    // A deadline already in the past still crosses the wire (as zero) so
    // the worker sheds it through the normal DeadlineExceeded path.
    msg.deadline_us = std::max<std::int64_t>(remaining.count(), 0);
  }

  std::future<polygraph::Verdict> future;
  {
    std::lock_guard guard(pending_mutex_);
    if (pending_.size() >= inflight_cap()) return std::nullopt;
    msg.id = next_id_++;
    Pending entry;
    future = entry.promise.get_future();
    pending_.emplace(msg.id, std::move(entry));
  }
  if (!send_payload(encode_submit(msg))) {
    std::lock_guard guard(pending_mutex_);
    pending_.erase(msg.id);  // may already be failed+erased by the monitor
    return std::nullopt;
  }
  return future;
}

std::future<polygraph::Verdict> ShardSupervisor::submit(
    Tensor image,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  for (;;) {
    if (!available()) {
      throw fleet::ShardUnavailable("shard " + label_ + " unavailable");
    }
    if (auto future = try_submit(image, deadline)) return std::move(*future);
    if (!available()) continue;  // refusal was death, not backpressure
    std::unique_lock lock(pending_mutex_);
    pending_cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
      return pending_.size() < inflight_cap() || !available();
    });
  }
}

std::uint64_t ShardSupervisor::in_flight() const {
  std::lock_guard guard(pending_mutex_);
  return pending_.size();
}

runtime::MetricsSnapshot ShardSupervisor::metrics_snapshot() const {
  std::lock_guard guard(stats_mutex_);
  std::vector<runtime::MetricsSnapshot> parts;
  if (have_base_) parts.push_back(base_);
  if (have_latest_) parts.push_back(latest_);
  if (parts.empty()) return {};
  if (parts.size() == 1) return parts.front();
  return runtime::merge_snapshots(parts);
}

void ShardSupervisor::kill_worker() {
  const auto pid = static_cast<pid_t>(pid_.load());
  if (pid > 0) ::kill(pid, SIGKILL);
}

void ShardSupervisor::shutdown() {
  std::lock_guard guard(shutdown_mutex_);  // serializes the join
  if (!stopping_.exchange(true)) {
    // Ask the worker to drain; the monitor keeps pumping verdicts until
    // the worker's bye/EOF, then exits without restarting.
    if (connected_.load()) send_payload(encode_control(FrameType::shutdown));
    pending_cv_.notify_all();
  }
  if (monitor_.joinable()) monitor_.join();
  fail_pending("shard " + label_ + " shut down");
}

// ---- monitor side --------------------------------------------------------

void ShardSupervisor::monitor_loop(std::stop_token st) {
  int consecutive_failures = 0;
  bool first = true;
  while (!st.stop_requested() && !stopping_.load()) {
    if (!first) restarts_.fetch_add(1);
    first = false;

    const auto born = std::chrono::steady_clock::now();
    bool served = false;
    if (spawn()) {
      served = true;
      serve(st);
    }
    const bool graceful = stopping_.load() && saw_bye_;
    on_worker_dead(graceful);
    if (stopping_.load() || st.stop_requested()) break;

    // Restart accounting: deaths (spawn failures included) inside the
    // sliding window; blowing the cap gives the shard up for good.
    const auto now = std::chrono::steady_clock::now();
    death_times_.push_back(now);
    const auto cutoff = now - opts_.restart_window;
    std::erase_if(death_times_,
                  [cutoff](const auto& t) { return t < cutoff; });
    if (static_cast<int>(death_times_.size()) > opts_.max_restarts) {
      failed_.store(true);
      pending_cv_.notify_all();
      break;
    }

    if (served && now - born >= opts_.healthy_uptime) {
      consecutive_failures = 0;  // it ran fine for a while; fresh schedule
    }
    const auto backoff = restart_backoff(
        opts_.backoff_initial, opts_.backoff_max, consecutive_failures);
    ++consecutive_failures;

    const auto wake = std::chrono::steady_clock::now() + backoff;
    while (std::chrono::steady_clock::now() < wake &&
           !st.stop_requested() && !stopping_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  pending_cv_.notify_all();
}

bool ShardSupervisor::spawn() {
  saw_bye_ = false;
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;

  // Everything the child needs, materialized before fork: no allocation
  // between fork and exec.
  const std::string worker = resolve_worker_path(opts_.worker_path);
  const std::string fd_arg = std::to_string(kWorkerFd);
  char* const argv[] = {const_cast<char*>(worker.c_str()),
                        const_cast<char*>("--fd"),
                        const_cast<char*>(fd_arg.c_str()),
                        const_cast<char*>("--spec"),
                        const_cast<char*>(spec_dir_.c_str()),
                        nullptr};

  const pid_t child = ::fork();
  if (child < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (child == 0) {
    // Child. async-signal-safe calls only until exec. Close the parent's
    // end *before* the dup2: socketpair may well have handed out fd 3
    // itself (it takes the lowest free descriptors), and closing it after
    // would destroy the freshly installed worker end.
    ::close(fds[0]);
    if (fds[1] != kWorkerFd) {
      ::dup2(fds[1], kWorkerFd);
      ::close(fds[1]);
    }
#ifdef __linux__
    // The kernel reaps us if the parent dies first — a crashed fleet
    // process can never leak worker processes.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1) ::_exit(125);  // parent already gone
#endif
    ::execv(worker.c_str(), argv);
    ::_exit(127);
  }

  // Parent.
  ::close(fds[1]);
  {
    std::lock_guard guard(write_mutex_);
    fd_ = fds[0];
  }
  pid_.store(static_cast<std::uint64_t>(child));

  // Wait for hello: the worker deserializes the full ensemble before it
  // says anything, so give it the startup budget.
  const auto give_up = std::chrono::steady_clock::now() + opts_.startup_timeout;
  std::vector<std::uint8_t> payload;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        give_up - std::chrono::steady_clock::now());
    if (left.count() <= 0 || stopping_.load()) return false;
    try {
      const ReadStatus status = read_frame(
          fd_, payload, std::min(left, std::chrono::milliseconds(100)));
      if (status == ReadStatus::eof) return false;  // exec failed / crashed
      if (status == ReadStatus::timeout) continue;
      if (frame_type(payload) != FrameType::hello) continue;
      const HelloMsg hello = decode_hello(payload);
      members_.store(hello.members);
    } catch (const WireError&) {
      return false;
    }
    connected_.store(true);
    pending_cv_.notify_all();
    return true;
  }
}

void ShardSupervisor::serve(std::stop_token st) {
  auto last_frame = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> payload;
  while (!st.stop_requested()) {
    try {
      const ReadStatus status =
          read_frame(fd_, payload, opts_.heartbeat_interval);
      if (status == ReadStatus::eof) return;  // death or graceful exit
      if (status == ReadStatus::timeout) {
        const auto now = std::chrono::steady_clock::now();
        if (now - last_frame >= opts_.heartbeat_timeout) {
          kill_worker();  // alive but mute: hung. Same as dead.
          return;
        }
        send_payload(encode_control(FrameType::ping));
        continue;
      }
      last_frame = std::chrono::steady_clock::now();
      handle_frame(payload);
    } catch (const WireError&) {
      // Truncated / corrupt frame or undecodable payload: the stream is
      // poisoned. Fail-stop the worker; restart recovers a clean one.
      kill_worker();
      return;
    }
    if (saw_bye_) return;
  }
}

void ShardSupervisor::handle_frame(const std::vector<std::uint8_t>& payload) {
  switch (frame_type(payload)) {
    case FrameType::verdict: {
      const VerdictMsg msg = decode_verdict(payload);
      std::promise<polygraph::Verdict> promise;
      {
        std::lock_guard guard(pending_mutex_);
        auto it = pending_.find(msg.id);
        if (it == pending_.end()) return;  // failed earlier (restart race)
        promise = std::move(it->second.promise);
        pending_.erase(it);
      }
      pending_cv_.notify_all();
      switch (msg.status) {
        case VerdictStatus::ok:
          promise.set_value(msg.verdict);
          break;
        case VerdictStatus::deadline:
          promise.set_exception(
              std::make_exception_ptr(runtime::DeadlineExceeded()));
          break;
        case VerdictStatus::stopped:
          promise.set_exception(std::make_exception_ptr(
              fleet::ShardUnavailable("shard " + label_ + ": " + msg.error)));
          break;
        case VerdictStatus::error:
          promise.set_exception(std::make_exception_ptr(
              std::runtime_error("shard " + label_ + ": " + msg.error)));
          break;
      }
      break;
    }
    case FrameType::stats: {
      runtime::MetricsSnapshot s = decode_stats(payload);
      std::lock_guard guard(stats_mutex_);
      latest_ = std::move(s);
      have_latest_ = true;
      break;
    }
    case FrameType::pong:
      break;  // heartbeat satisfied by arrival itself
    case FrameType::ping:
      send_payload(encode_control(FrameType::pong));
      break;
    case FrameType::bye:
      saw_bye_ = true;
      break;
    case FrameType::hello:
    case FrameType::submit:
    case FrameType::shutdown:
      break;  // nonsensical from a worker; ignore rather than escalate
  }
}

void ShardSupervisor::on_worker_dead(bool graceful) {
  connected_.store(false);
  {
    std::lock_guard guard(write_mutex_);
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  reap_child(graceful ? opts_.drain_timeout : std::chrono::milliseconds(500));
  fail_pending("shard " + label_ + " worker died");

  // Fold the dead incarnation into the cumulative base. Its quorum gauge
  // is zeroed — a dead worker serves with no members — so the merged view
  // never double-counts live quorum across incarnations.
  std::lock_guard guard(stats_mutex_);
  if (have_latest_) {
    latest_.quorum_size = 0;
    if (have_base_) {
      base_ = runtime::merge_snapshots({base_, latest_});
      // merge sums the gauges, which is what we want here: base_ keeps 0.
    } else {
      base_ = latest_;
      have_base_ = true;
    }
    have_latest_ = false;
  }
}

void ShardSupervisor::reap_child(std::chrono::milliseconds patience) {
  const auto pid = static_cast<pid_t>(pid_.load());
  if (pid <= 0) return;
  auto give_up = std::chrono::steady_clock::now() + patience;
  bool sent_term = false;
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid || (r < 0 && errno == ECHILD)) break;  // reaped
    if (std::chrono::steady_clock::now() >= give_up) {
      if (!sent_term) {
        ::kill(pid, SIGTERM);
        sent_term = true;
        give_up += std::chrono::milliseconds(500);  // grace before SIGKILL
      } else {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);  // SIGKILL cannot be ignored: no zombie
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  pid_.store(0);
}

void ShardSupervisor::fail_pending(const std::string& why) {
  std::unordered_map<std::uint64_t, Pending> orphaned;
  {
    std::lock_guard guard(pending_mutex_);
    orphaned.swap(pending_);
  }
  for (auto& [id, entry] : orphaned) {
    entry.promise.set_exception(
        std::make_exception_ptr(fleet::ShardUnavailable(why)));
  }
  if (!orphaned.empty()) pending_cv_.notify_all();
}

}  // namespace pgmr::proc
