#include "proc/spec.h"

#include <filesystem>
#include <stdexcept>
#include <utility>
#include <vector>

#include "prep/preprocessor.h"
#include "tensor/serialize.h"

namespace pgmr::proc {

namespace {

constexpr const char* kSpecFile = "spec.pgmr";

std::string member_net_file(std::size_t m) {
  return "member" + std::to_string(m) + ".net";
}

std::uint32_t protection_code(nn::Protection p) {
  switch (p) {
    case nn::Protection::off: return 0;
    case nn::Protection::final_fc: return 1;
    case nn::Protection::full: return 2;
  }
  return 1;
}

nn::Protection protection_from(std::uint32_t code) {
  switch (code) {
    case 0: return nn::Protection::off;
    case 1: return nn::Protection::final_fc;
    case 2: return nn::Protection::full;
    default:
      throw std::runtime_error("spec: unknown protection code " +
                               std::to_string(code));
  }
}

}  // namespace

void write_system_spec(const std::string& dir,
                       polygraph::PolygraphSystem& system,
                       const runtime::RuntimeOptions& options) {
  std::filesystem::create_directories(dir);
  mr::Ensemble& ensemble = system.ensemble();
  const std::size_t members = ensemble.size();

  BinaryWriter w((std::filesystem::path(dir) / kSpecFile).string());
  w.write_u32(static_cast<std::uint32_t>(members));
  for (std::size_t m = 0; m < members; ++m) {
    mr::Member& member = ensemble.member(m);
    w.write_string(member.prep_name());
    w.write_u32(static_cast<std::uint32_t>(member.bits()));
    w.write_u32(protection_code(member.protection()));
    w.write_string(member_net_file(m));
    member.net().network().save(
        (std::filesystem::path(dir) / member_net_file(m)).string());
  }
  w.write_f32(system.thresholds().conf);
  w.write_i64(system.thresholds().freq);

  // The POD subset of RuntimeOptions the worker honours. The protection
  // plan is carried per member above (the live levels, planner output
  // included), so the uniform `protection` field is not re-serialized.
  w.write_i64(static_cast<std::int64_t>(options.threads));
  w.write_i64(static_cast<std::int64_t>(options.max_batch));
  w.write_i64(options.max_delay.count());
  w.write_i64(static_cast<std::int64_t>(options.queue_capacity));
  w.write_i64(options.quarantine_after);
  w.write_i64(options.quarantine_cooldown.count());
  w.write_i64(options.scrub_interval.count());
  w.write_i64(static_cast<std::int64_t>(options.scrub_max_tensors));
  w.write_i64(static_cast<std::int64_t>(options.scrub_max_chunks));
  w.write_i64(options.scrub_max_hold.count());
  w.write_i64(options.fence_after_quarantines);
  w.close();
}

WorkerSystem load_system_spec(const std::string& dir) {
  BinaryReader r((std::filesystem::path(dir) / kSpecFile).string());
  const std::uint32_t members = r.read_u32();
  if (members == 0 || members > 256) {
    throw std::runtime_error("spec: implausible member count " +
                             std::to_string(members));
  }
  mr::Ensemble ensemble;
  std::vector<nn::Protection> levels;
  levels.reserve(members);
  for (std::uint32_t m = 0; m < members; ++m) {
    const std::string prep_spec = r.read_string();
    const int bits = static_cast<int>(r.read_u32());
    levels.push_back(protection_from(r.read_u32()));
    const std::string net_path =
        (std::filesystem::path(dir) / r.read_string()).string();
    mr::Member member(prep::make_preprocessor(prep_spec),
                      nn::Network::load(net_path), bits);
    member.set_archive_source(net_path);
    ensemble.add(std::move(member));
  }
  const float conf = r.read_f32();
  const int freq = static_cast<int>(r.read_i64());

  runtime::RuntimeOptions options;
  options.threads = static_cast<std::size_t>(r.read_i64());
  options.max_batch = static_cast<std::size_t>(r.read_i64());
  options.max_delay = std::chrono::microseconds(r.read_i64());
  options.queue_capacity = static_cast<std::size_t>(r.read_i64());
  options.quarantine_after = static_cast<int>(r.read_i64());
  options.quarantine_cooldown = std::chrono::milliseconds(r.read_i64());
  options.scrub_interval = std::chrono::milliseconds(r.read_i64());
  options.scrub_max_tensors = static_cast<std::size_t>(r.read_i64());
  options.scrub_max_chunks = static_cast<std::size_t>(r.read_i64());
  options.scrub_max_hold = std::chrono::microseconds(r.read_i64());
  options.fence_after_quarantines = static_cast<int>(r.read_i64());
  options.protection_per_member = std::move(levels);

  WorkerSystem ws{polygraph::PolygraphSystem(std::move(ensemble)), options};
  ws.system.set_thresholds({conf, freq});
  return ws;
}

}  // namespace pgmr::proc
