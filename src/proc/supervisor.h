// ShardSupervisor: the parent-side half of a process-isolated shard.
//
// One supervisor owns one worker process (tools/pgmr-shard-worker) hosting
// a full ServingRuntime, and presents it to the FleetRouter as a plain
// fleet::ShardBackend. Internally it is a small state machine driven by a
// monitor thread:
//
//   spawn ── hello ──> connected ── death ──> reap -> backoff -> spawn
//                          │                              │
//                          │ (storm cap / shutdown)       │ max_restarts
//                          v                              v inside window
//                       drain+exit                      failed (for good)
//
//  * spawn: socketpair(AF_UNIX, SOCK_STREAM) + fork/exec; the child gets
//    its end as fd 3 and PR_SET_PDEATHSIG=SIGKILL so a dying parent can
//    never leak a worker.
//  * serve: the monitor thread multiplexes the socket — verdict frames
//    fulfil pending futures by id, stats frames refresh the metrics view,
//    pong answers the heartbeat. Silence beyond heartbeat_timeout means a
//    hung worker: SIGKILL it and treat it as a death.
//  * death: close the socket, waitpid (no zombies — ever), fail all
//    pending futures with ShardUnavailable, fold the dead incarnation's
//    last stats into the cumulative base, then restart after an
//    exponential backoff. More than max_restarts deaths inside
//    restart_window latches `failed` — the shard stays unavailable, so
//    the router's breaker quarantines it exactly like a chaos-downed
//    thread shard.
//  * shutdown: stop accepting, send `shutdown`, let the worker drain and
//    reply `bye`, then waitpid with a drain budget and SIGTERM/SIGKILL
//    escalation. Idempotent, safe against concurrent submit().
//
// kill_worker() delivers a real SIGKILL — ChaosInjector::kill_shard routes
// here in process mode, so the chaos campaign exercises the genuine
// kernel-mediated failure path instead of a simulated flag.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fleet/backend.h"
#include "runtime/metrics.h"

namespace pgmr::proc {

/// Delay before restart attempt `consecutive_failures` (0-based): initial
/// doubled per failure, capped. Pure — the monitor uses it, tests pin the
/// schedule.
std::chrono::milliseconds restart_backoff(std::chrono::milliseconds initial,
                                          std::chrono::milliseconds cap,
                                          int consecutive_failures);

class ShardSupervisor final : public fleet::ShardBackend {
 public:
  /// Spawns the worker and blocks until its hello (or startup_timeout /
  /// storm-capped spawn failure — the supervisor is then constructed but
  /// permanently unavailable; it does not throw, so a fleet with one bad
  /// shard still comes up and the breaker handles the rest).
  ShardSupervisor(std::string spec_dir, fleet::ProcessOptions options,
                  std::string label);
  ~ShardSupervisor() override;

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  bool available() const override;
  std::optional<std::future<polygraph::Verdict>> try_submit(
      Tensor image,
      std::optional<std::chrono::steady_clock::time_point> deadline) override;
  std::future<polygraph::Verdict> submit(
      Tensor image,
      std::optional<std::chrono::steady_clock::time_point> deadline) override;
  std::uint64_t in_flight() const override;
  runtime::MetricsSnapshot metrics_snapshot() const override;
  std::uint64_t restarts() const override { return restarts_.load(); }
  void shutdown() override;

  /// Real SIGKILL to the current worker incarnation (chaos hook). No-op
  /// while no worker is alive.
  void kill_worker();

  /// Pid of the live worker, 0 when none (tests).
  std::uint64_t worker_pid() const { return pid_.load(); }
  /// True once the restart-storm cap latched the shard as dead for good.
  bool failed() const { return failed_.load(); }

 private:
  struct Pending {
    std::promise<polygraph::Verdict> promise;
  };

  void monitor_loop(std::stop_token st);
  bool spawn();
  void serve(std::stop_token st);
  void handle_frame(const std::vector<std::uint8_t>& payload);
  void on_worker_dead(bool graceful);
  void reap_child(std::chrono::milliseconds patience);
  void fail_pending(const std::string& why);
  bool send_payload(const std::vector<std::uint8_t>& payload);
  std::size_t inflight_cap() const;

  const std::string spec_dir_;
  const fleet::ProcessOptions opts_;
  const std::string label_;

  std::atomic<bool> connected_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> failed_{false};
  std::atomic<std::uint64_t> pid_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint32_t> members_{0};

  int fd_ = -1;  // monitor thread + writers; guarded by write_mutex_ for IO
  std::mutex write_mutex_;
  std::mutex shutdown_mutex_;

  mutable std::mutex pending_mutex_;
  std::condition_variable pending_cv_;  // capacity + startup + drain waits
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_id_ = 1;
  bool saw_bye_ = false;

  // Cumulative metrics: base_ holds the sum of all dead incarnations
  // (quorum gauge zeroed — a dead worker serves with no members), latest_
  // the live worker's last cumulative report.
  mutable std::mutex stats_mutex_;
  runtime::MetricsSnapshot base_;
  runtime::MetricsSnapshot latest_;
  bool have_base_ = false;
  bool have_latest_ = false;

  std::vector<std::chrono::steady_clock::time_point> death_times_;
  std::jthread monitor_;
};

}  // namespace pgmr::proc
