#include "proc/worker.h"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "proc/spec.h"
#include "proc/wire.h"
#include "runtime/serving_runtime.h"

namespace pgmr::proc {

namespace {

/// The socket is shared by the read loop (pongs) and the reply pump
/// (verdict + stats frames); one mutex keeps frames whole.
struct Socket {
  int fd = -1;
  std::mutex mutex;
  /// Once a write fails the supervisor is gone; keep draining futures so
  /// the runtime can shut down cleanly, but stop touching the socket.
  bool dead = false;

  bool send(const std::vector<std::uint8_t>& payload) {
    std::lock_guard guard(mutex);
    if (dead) return false;
    try {
      write_frame(fd, payload);
      return true;
    } catch (const WireError&) {
      dead = true;
      return false;
    }
  }
};

struct Reply {
  std::uint64_t id;
  std::future<polygraph::Verdict> future;
};

VerdictMsg classify(std::uint64_t id, std::future<polygraph::Verdict>& f) {
  VerdictMsg msg;
  msg.id = id;
  try {
    msg.verdict = f.get();
    msg.status = VerdictStatus::ok;
  } catch (const runtime::DeadlineExceeded& e) {
    msg.status = VerdictStatus::deadline;
    msg.error = e.what();
  } catch (const std::exception& e) {
    msg.status = VerdictStatus::error;
    msg.error = e.what();
  } catch (...) {
    msg.status = VerdictStatus::error;
    msg.error = "unknown inference error";
  }
  return msg;
}

}  // namespace

int run_worker(int fd, const std::string& spec_dir) {
  // EPIPE must stay an error code, not a process-killing signal, while
  // the runtime drains after the supervisor dies.
  ::signal(SIGPIPE, SIG_IGN);

  Socket sock;
  sock.fd = fd;
  std::optional<runtime::ServingRuntime> rt;
  std::uint32_t member_count = 0;
  try {
    WorkerSystem ws = load_system_spec(spec_dir);
    member_count = static_cast<std::uint32_t>(ws.system.ensemble().size());
    rt.emplace(std::move(ws.system), ws.options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pgmr-shard-worker: cannot start: %s\n", e.what());
    return 1;
  }

  HelloMsg hello;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  hello.members = member_count;
  if (!sock.send(encode_hello(hello))) return 2;

  // Reply pump: waits each accepted request's future in submit order and
  // ships verdict + cumulative stats. Stats after *every* verdict keep the
  // supervisor's cumulative view within one request of the truth, so a
  // SIGKILL loses almost nothing.
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<Reply> replies;
  bool closed = false;
  std::thread pump([&] {
    for (;;) {
      Reply r;
      {
        std::unique_lock lock(queue_mutex);
        queue_cv.wait(lock, [&] { return !replies.empty() || closed; });
        if (replies.empty()) return;
        r = std::move(replies.front());
        replies.pop_front();
      }
      const VerdictMsg msg = classify(r.id, r.future);
      if (sock.send(encode_verdict(msg))) {
        sock.send(encode_stats(rt->metrics_snapshot()));
      }
    }
  });

  bool graceful = false;
  std::vector<std::uint8_t> payload;
  for (bool serving = true; serving;) {
    try {
      const ReadStatus status =
          read_frame(fd, payload, std::chrono::milliseconds(500));
      if (status == ReadStatus::timeout) continue;
      if (status == ReadStatus::eof) break;  // orphaned: supervisor gone
      switch (frame_type(payload)) {
        case FrameType::submit: {
          SubmitMsg msg = decode_submit(payload);
          // Deadlines travel as remaining budget; re-anchor on our clock.
          std::optional<std::chrono::steady_clock::time_point> deadline;
          if (msg.deadline_us >= 0) {
            deadline = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(msg.deadline_us);
          }
          try {
            // Blocking submit is safe: the supervisor caps in-flight, and
            // while we block here batches complete, so verdict frames keep
            // the heartbeat alive.
            Reply r{msg.id, rt->submit(std::move(msg.image), deadline)};
            std::lock_guard lock(queue_mutex);
            replies.push_back(std::move(r));
            queue_cv.notify_one();
          } catch (const std::exception& e) {
            VerdictMsg refused;
            refused.id = msg.id;
            refused.status = VerdictStatus::stopped;
            refused.error = e.what();
            sock.send(encode_verdict(refused));
          }
          break;
        }
        case FrameType::ping:
          sock.send(encode_control(FrameType::pong));
          break;
        case FrameType::shutdown:
          graceful = true;
          serving = false;
          break;
        default:
          break;  // pong/hello/...: nothing for a worker to do
      }
    } catch (const WireError&) {
      break;  // poisoned stream: fail-stop, supervisor restarts us
    }
  }

  // Drain: the runtime answers everything it accepted, the pump ships the
  // answers (when the socket still works), then we say goodbye.
  rt->shutdown();
  {
    std::lock_guard lock(queue_mutex);
    closed = true;
    queue_cv.notify_all();
  }
  pump.join();
  if (graceful) {
    sock.send(encode_stats(rt->metrics_snapshot()));
    sock.send(encode_control(FrameType::bye));
    return 0;
  }
  return 2;
}

}  // namespace pgmr::proc
