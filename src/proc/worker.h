// The shard worker's event loop — the child-process half of a
// process-isolated shard. tools/pgmr-shard-worker is a thin main() around
// run_worker(); the loop lives in the library so tests can drive it
// in-process over a socketpair without fork/exec.
#pragma once

#include <string>

namespace pgmr::proc {

/// Serves one shard over `fd` (a SOCK_STREAM socketpair end):
/// loads the spec directory, builds a ServingRuntime, says hello, then
/// pumps submit frames into the runtime and verdict+stats frames back out
/// until a shutdown frame (graceful drain -> bye -> 0) or EOF/poisoned
/// stream (orphaned: drain and exit nonzero). Returns the process exit
/// code; never throws.
int run_worker(int fd, const std::string& spec_dir);

}  // namespace pgmr::proc
