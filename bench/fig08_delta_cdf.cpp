// Figure 8: comparing candidate preprocessors by confidence-delta CDFs on
// ConvNet — AdHist vs Scale 80 %.
//
// delta = candidate member's top-1 confidence - baseline's top-1 confidence,
// split by whether the baseline was right. A good diversity source has more
// probability mass at negative delta on the *wrong* set (it hesitates where
// the baseline confidently errs) and less on the *correct* set.
#include "bench_util.h"
#include "polygraph/builder.h"

namespace {

void print_cdf(const char* title, const std::vector<float>& a_deltas,
               const std::vector<float>& b_deltas, const char* a_name,
               const char* b_name) {
  std::printf("\n%s\n%10s", title, "delta<=");
  const float grid[] = {-0.5F, -0.3F, -0.2F, -0.1F, -0.05F, 0.0F,
                        0.05F, 0.1F,  0.2F,  0.3F,  0.5F};
  for (float g : grid) std::printf("%7.2f", static_cast<double>(g));
  std::printf("\n");
  auto row = [&](const char* name, const std::vector<float>& deltas) {
    std::printf("%-10s", name);
    for (float g : grid) {
      std::int64_t below = 0;
      for (float d : deltas) {
        if (d <= g) ++below;
      }
      std::printf("%6.1f%%", deltas.empty()
                                  ? 0.0
                                  : 100.0 * static_cast<double>(below) /
                                        static_cast<double>(deltas.size()));
    }
    std::printf("\n");
  };
  row(a_name, a_deltas);
  row(b_name, b_deltas);
}

}  // namespace

int main() {
  using namespace pgmr;
  bench::use_repo_cache();

  const zoo::Benchmark& bm = zoo::find_benchmark("convnet");
  const auto profiles = polygraph::rank_preprocessors(
      bm, {"AdHist", "Scale(0.80)"});
  const polygraph::DeltaProfile& first = profiles[0];
  const polygraph::DeltaProfile& second = profiles[1];

  bench::rule("Figure 8: AdHist vs Scale(0.80) confidence-delta CDFs (ConvNet)");
  const polygraph::DeltaProfile& adhist =
      first.candidate == "AdHist" ? first : second;
  const polygraph::DeltaProfile& scale =
      first.candidate == "AdHist" ? second : first;

  print_cdf("(a) inputs the baseline mispredicts — more mass at negative "
            "delta is better",
            adhist.wrong_deltas, scale.wrong_deltas, "AdHist", "Scale80");
  print_cdf("(b) inputs the baseline gets right — less mass at negative "
            "delta is better",
            adhist.correct_deltas, scale.correct_deltas, "AdHist", "Scale80");

  std::printf("\nranking scores (P(delta<0|wrong) - P(delta<0|correct)):\n");
  std::printf("  AdHist      %.3f\n  Scale(0.80) %.3f\n", adhist.score(),
              scale.score());
  std::printf("(paper: AdHist dominates Scale 80%% on both sets and is the "
              "better diversity source)\n");
  return 0;
}
