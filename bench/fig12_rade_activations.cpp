// Figure 12: distribution of the number of networks RADE activates per
// test input, for the 4_PGMR system of every benchmark.
//
// Paper claims to reproduce: most inputs settle with two networks, and
// higher-accuracy baselines need extra activations less often.
#include "bench_util.h"
#include "mr/rade.h"
#include "mr/pareto.h"

int main() {
  using namespace pgmr;
  bench::use_repo_cache();

  const std::vector<std::pair<std::string, std::vector<std::string>>> configs = {
      {"lenet5", {"ORG", "ConNorm", "FlipX", "Gamma(2.00)"}},
      {"convnet", {"ORG", "AdHist", "FlipX", "FlipY"}},
      {"resnet20", {"ORG", "FlipX", "FlipY", "Gamma(1.50)"}},
      {"densenet40", {"ORG", "ImAdj", "Gamma(1.50)", "Gamma(2.00)"}},
      {"alexnet", {"ORG", "FlipX", "FlipY", "Gamma(2.00)"}},
      {"resnet34", {"ORG", "FlipX", "FlipY", "Gamma(2.00)"}},
  };

  bench::rule("Figure 12: networks activated by RADE over the test set");
  std::printf("%-12s %9s %9s %9s %9s %8s\n", "benchmark", "1 net", "2 nets",
              "3 nets", "4 nets", "mean");

  for (const auto& [id, members] : configs) {
    const zoo::Benchmark& bm = zoo::find_benchmark(id);
    const data::DatasetSplits splits = zoo::benchmark_splits(bm);
    mr::Ensemble e = zoo::make_ensemble(bm, members);

    // Thresholds from the usual validation profiling at the TP floor,
    // restricted to Thr_Freq >= 2 (staged activation needs real agreement;
    // the paper's Fig 12 starts at two networks).
    const mr::MemberVotes val_votes = e.member_votes(splits.val.images);
    nn::Network base = zoo::trained_network(bm, "ORG");
    const double floor = zoo::accuracy(base, splits.val);
    auto points = mr::sweep_thresholds(val_votes, splits.val.labels,
                                       mr::default_conf_grid());
    std::erase_if(points, [](const mr::SweepPoint& p) {
      return p.thresholds.freq < 2;
    });
    const auto chosen =
        mr::select_by_tp_floor(mr::pareto_frontier(points), floor);
    const auto priority = mr::contribution_priority(val_votes, splits.val.labels);

    const mr::MemberVotes test_votes = e.member_votes(splits.test.images);
    const mr::StagedOutcome staged = mr::evaluate_staged(
        test_votes, splits.test.labels, priority, chosen->thresholds);

    std::printf("%-12s", id.c_str());
    const double total = static_cast<double>(splits.test.size());
    for (std::int64_t n : staged.activation_histogram) {
      std::printf("%8.1f%%", 100.0 * static_cast<double>(n) / total);
    }
    std::printf("%8.2f\n", staged.mean_activated());
  }
  std::printf("\n(paper: the majority of inputs need only two networks; "
              "benchmarks with higher\n baseline accuracy activate extra "
              "networks less often)\n");
  return 0;
}
