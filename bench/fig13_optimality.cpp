// Figure 13: system-configuration optimality on ConvNet — Pareto frontiers
// of the baseline (+Thr_Conf), 6_MR (majority vote + Thr_Conf), 6_MR_DE
// (random-init MR with the full decision engine), 6_PGMR, and 100_MR_DE
// (one hundred random-init copies with the decision engine).
//
// Paper claims to reproduce: decision engine > majority vote (+4.1 % FP
// detection); preprocessing > random-init diversity (+18.5 %); and 6_PGMR
// beats even 100_MR_DE (by ~15.3 %) despite 16x fewer networks.
#include "bench_util.h"
#include "polygraph/builder.h"

namespace {

using namespace pgmr;

double fp_at_full_tp(const std::vector<mr::SweepPoint>& frontier,
                     double tp_floor) {
  const auto chosen = mr::select_by_tp_floor(frontier, tp_floor);
  return chosen ? chosen->fp_rate : 1.0;
}

}  // namespace

int main() {
  bench::use_repo_cache();

  const zoo::Benchmark& bm = zoo::find_benchmark("convnet");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);

  // Test-set votes for 100 random-init ConvNets (reused for 6_MR/6_MR_DE).
  std::printf("computing votes of 100 random-init ConvNets on test split...\n");
  mr::MemberVotes variants;
  for (int v = 0; v < 100; ++v) {
    variants.push_back(bench::member_votes_on(bm, "ORG", splits.test, v));
  }
  const mr::MemberVotes six(variants.begin(), variants.begin() + 6);

  // 6_PGMR: greedy-selected preprocessors on the validation split, then
  // test votes for the selected members.
  const polygraph::GreedyResult greedy =
      polygraph::greedy_build(bm, zoo::candidate_pool(bm), 6);
  mr::MemberVotes pgmr;
  for (const std::string& spec : greedy.selected) {
    pgmr.push_back(bench::member_votes_on(bm, spec, splits.test));
  }

  const std::vector<std::int64_t>& labels = splits.test.labels;
  const double base_tp = [&] {
    std::int64_t correct = 0;
    for (std::size_t n = 0; n < labels.size(); ++n) {
      if (variants[0][n].label == labels[n]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(labels.size());
  }();
  const double base_fp = 1.0 - base_tp;

  // Baseline frontier: confidence threshold on the single network.
  std::vector<mr::SweepPoint> base_points;
  for (float conf : mr::default_conf_grid()) {
    mr::Outcome o;
    o.total = static_cast<std::int64_t>(labels.size());
    for (std::size_t n = 0; n < labels.size(); ++n) {
      if (variants[0][n].confidence < conf) {
        ++o.unreliable;
      } else if (variants[0][n].label == labels[n]) {
        ++o.tp;
      } else {
        ++o.fp;
      }
    }
    base_points.push_back({{conf, 1}, o.tp_rate(), o.fp_rate()});
  }

  // 6_MR: majority vote with a swept confidence threshold only.
  std::vector<mr::SweepPoint> mr6_points;
  for (float conf : mr::default_conf_grid()) {
    const mr::Outcome o =
        mr::evaluate(six, labels, {conf, mr::majority_threshold(6)});
    mr6_points.push_back({{conf, 4}, o.tp_rate(), o.fp_rate()});
  }

  const auto grid = mr::default_conf_grid();
  const auto frontier_base = mr::pareto_frontier(base_points);
  const auto frontier_mr6 = mr::pareto_frontier(mr6_points);
  const auto frontier_mr6_de =
      mr::pareto_frontier(mr::sweep_thresholds(six, labels, grid));
  const auto frontier_pgmr =
      mr::pareto_frontier(mr::sweep_thresholds(pgmr, labels, grid));
  const auto frontier_mr100_de =
      mr::pareto_frontier(mr::sweep_thresholds(variants, labels, grid));

  bench::rule("Figure 13: normalized FP at 100% normalized TP (ConvNet)");
  struct Row {
    const char* name;
    const std::vector<mr::SweepPoint>* frontier;
  };
  const Row rows[] = {{"ORG + Thr_Conf", &frontier_base},
                      {"6_MR (majority+conf)", &frontier_mr6},
                      {"6_MR_DE", &frontier_mr6_de},
                      {"100_MR_DE", &frontier_mr100_de},
                      {"6_PGMR", &frontier_pgmr}};
  for (const Row& row : rows) {
    const double fp = fp_at_full_tp(*row.frontier, base_tp);
    std::printf("%-22s normalized FP %6.1f%%  (detects %5.1f%% of baseline FPs)\n",
                row.name, 100.0 * fp / base_fp,
                100.0 * (1.0 - fp / base_fp));
  }

  std::printf("\n6_PGMR members:");
  for (const std::string& s : greedy.selected) std::printf(" %s", s.c_str());
  std::printf("\n\nfrontier samples (normalized TP%%, normalized FP%%):\n");
  for (const Row& row : rows) {
    std::printf("%-22s", row.name);
    int printed = 0;
    for (const auto& p : *row.frontier) {
      if (printed++ % std::max<std::size_t>(1, row.frontier->size() / 8) == 0) {
        std::printf(" (%.0f, %.1f)", 100.0 * p.tp_rate / base_tp,
                    100.0 * p.fp_rate / base_fp);
      }
    }
    std::printf("\n");
  }
  std::printf("\n(paper: decision engine adds 4.1%% FP detection over "
              "majority vote; preprocessing adds\n another 18.5%%; 6_PGMR "
              "beats 100_MR_DE by 15.3%% despite 16x fewer networks)\n");
  return 0;
}
