// Ablation: decision-policy families on the same 4-member ConvNet system.
//
//   majority vote        — Thr_Freq = n/2+1, no confidence gate
//   frequency engine     — PolygraphMR's swept (Thr_Conf, Thr_Freq)
//   soft voting          — deep-ensembles probability averaging + threshold
//
// All are profiled on validation at the baseline-accuracy TP floor and
// scored on the test split, so this isolates DESIGN.md ablation #1 (the
// decision engine) and relates PGMR to the ensembles family in Section V.
#include "bench_util.h"
#include "mr/soft_vote.h"
#include "polygraph/builder.h"

namespace {

using namespace pgmr;

std::vector<Tensor> member_probs_on(const zoo::Benchmark& bm,
                                    const std::vector<std::string>& specs,
                                    const data::Dataset& ds) {
  std::vector<Tensor> probs;
  for (const std::string& spec : specs) {
    nn::Network net = zoo::trained_network(bm, spec);
    data::Dataset transformed = ds;
    transformed.images =
        prep::make_preprocessor(spec)->apply(transformed.images);
    probs.push_back(zoo::probabilities_on(net, transformed));
  }
  return probs;
}

}  // namespace

int main() {
  bench::use_repo_cache();

  const zoo::Benchmark& bm = zoo::find_benchmark("convnet");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  const std::vector<std::string> members = {"ORG", "AdHist", "FlipX", "FlipY"};

  const auto val_probs = member_probs_on(bm, members, splits.val);
  const auto test_probs = member_probs_on(bm, members, splits.test);
  const mr::MemberVotes val_votes = mr::votes_from_members(val_probs);
  const mr::MemberVotes test_votes = mr::votes_from_members(test_probs);

  // Baseline.
  const mr::Outcome base =
      mr::evaluate_single(test_probs[0], splits.test.labels, 0.0F);
  std::int64_t val_correct = 0;
  for (std::size_t n = 0; n < splits.val.labels.size(); ++n) {
    if (val_votes[0][n].label == splits.val.labels[n]) ++val_correct;
  }
  const double tp_floor = static_cast<double>(val_correct) /
                          static_cast<double>(splits.val.labels.size());

  bench::rule("Ablation: decision policies on a 4-member ConvNet system");
  std::printf("baseline: TP %.2f%%, FP %.2f%%\n\n", 100.0 * base.tp_rate(),
              100.0 * base.fp_rate());
  std::printf("%-22s %10s %10s %14s\n", "policy", "test TP", "test FP",
              "FP detected");

  auto report = [&](const char* name, const mr::Outcome& o) {
    std::printf("%-22s %9.2f%% %9.2f%% %13.1f%%\n", name,
                100.0 * o.tp_rate(), 100.0 * o.fp_rate(),
                100.0 * (1.0 - o.fp_rate() / base.fp_rate()));
  };

  // Majority vote (no profiling knobs).
  report("majority vote",
         mr::evaluate(test_votes, splits.test.labels,
                      {0.0F, mr::majority_threshold(4)}));

  // Frequency engine, profiled at the TP floor.
  {
    const auto chosen = mr::select_by_tp_floor(
        mr::pareto_frontier(mr::sweep_thresholds(
            val_votes, splits.val.labels, mr::default_conf_grid())),
        tp_floor);
    report("frequency engine",
           mr::evaluate(test_votes, splits.test.labels, chosen->thresholds));
  }

  // Soft voting, profiled at the TP floor over the same grid.
  {
    const auto chosen = mr::select_by_tp_floor(
        mr::pareto_frontier(mr::sweep_soft(val_probs, splits.val.labels,
                                           mr::default_conf_grid())),
        tp_floor);
    report("soft voting",
           mr::evaluate_soft(test_probs, splits.test.labels,
                             chosen->thresholds.conf));
  }

  std::printf("\n(the frequency engine's second knob (Thr_Freq) lets it trade "
              "agreement for\n confidence; majority voting has no TP/FP knob "
              "at all)\n");
  return 0;
}
