// SDC coverage campaign: how much of the silent-data-corruption space does
// the full protection stack (per-layer ABFT + CRC weight scrubbing + MR
// voting) actually cover?
//
// Single weight-bit flips are injected into ONE member of the 4-member
// ConvNet system, swept across IEEE-754 bit classes and across parameter
// tensors (layers). Every trial is classified, in order:
//   detected-by-ABFT  — the checksummed forward flags the faulty member
//                       inline (the runtime drops its vote immediately);
//   masked            — no inline detection, but the member's predictions
//                       are unchanged (the flip is numerically invisible);
//   masked-by-MR      — the member's predictions changed but the plurality
//                       verdict did not (redundancy absorbed the fault);
//   SDC               — the verdict changed with no inline detection.
// Orthogonally, detected-by-scrub counts the trials the parameter-CRC
// sweep would catch between batches — for stored-weight faults this is the
// backstop that bounds how long even an SDC can persist.
//
// A multi-fault section repeats the sweep with K simultaneous distinct
// flips per trial (sample_sites dedupes sites), modelling burst upsets.
//
// Flags: --trials N (per bit class, default 40), --probe N (samples,
// default 200), --layer-trials N (exponent flips per tensor, default 3),
// --faults K (simultaneous flips in the multi-fault section, default 3),
// --benchmark ID (convnet default; resnet20 runs the same campaign on the
// deeper residual stack), --protection off|fc|full (level under test,
// default full — one run per level yields the coverage-vs-cost table in
// EXPERIMENTS.md). CI runs the small smoke configurations.
//
// Exit status: under --protection full the campaign *requires* zero
// exponent-flip SDCs (every flip detected inline or masked) — a nonzero
// count fails the run, which is the CI gate for the BN-folded ABFT path.
#include <cstring>

#include "bench_util.h"
#include "fault/injector.h"
#include "mr/decision.h"
#include "perf/cost_model.h"

namespace {

using namespace pgmr;

std::vector<std::int64_t> argmax_rows(const Tensor& probs) {
  const std::int64_t n = probs.shape()[0];
  std::vector<std::int64_t> pred(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    pred[static_cast<std::size_t>(i)] = probs.argmax_row(i);
  }
  return pred;
}

std::vector<std::int64_t> system_predictions(const mr::MemberVotes& votes,
                                             std::int64_t n) {
  std::vector<std::int64_t> pred(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    pred[static_cast<std::size_t>(i)] =
        mr::decide(mr::sample_votes(votes, i), {0.0F, 1}).label;
  }
  return pred;
}

struct ClassTally {
  int trials = 0;
  int detected_abft = 0;
  int detected_scrub = 0;  ///< CRC sweep catches it (counted for all trials)
  int masked = 0;
  int masked_mr = 0;
  int sdc = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::use_repo_cache();

  int trials_per_class = 40;
  std::int64_t probe_n = 200;
  int layer_trials = 3;
  int multi_faults = 3;
  std::string benchmark = "convnet";
  nn::Protection protection = nn::Protection::full;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--trials") == 0) {
      trials_per_class = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--probe") == 0) {
      probe_n = std::atoll(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--layer-trials") == 0) {
      layer_trials = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      multi_faults = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--benchmark") == 0) {
      benchmark = argv[i + 1];
    } else if (std::strcmp(argv[i], "--protection") == 0) {
      const std::string arg = argv[i + 1];
      if (arg == "off") {
        protection = nn::Protection::off;
      } else if (arg == "fc" || arg == "final_fc") {
        protection = nn::Protection::final_fc;
      } else if (arg == "full") {
        protection = nn::Protection::full;
      } else {
        std::fprintf(stderr,
                     "sdc_coverage: --protection must be off|fc|full\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "sdc_coverage: unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const zoo::Benchmark& bm = zoo::find_benchmark(benchmark);
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  const data::Dataset probe = splits.test.slice(0, probe_n);
  const std::vector<std::string> specs = {"ORG", "AdHist", "FlipX", "FlipY"};

  mr::Ensemble ensemble = zoo::make_ensemble(bm, specs);
  for (std::size_t m = 0; m < ensemble.size(); ++m) {
    ensemble.member(m).set_protection(protection);
  }
  mr::Member& target = ensemble.member(0);

  // Golden state: every member's clean votes and the clean system verdicts.
  mr::MemberVotes clean_votes;
  for (std::size_t m = 0; m < ensemble.size(); ++m) {
    clean_votes.push_back(mr::votes_from_probabilities(
        ensemble.member(m).probabilities(probe.images)));
  }
  const std::vector<std::int64_t> clean_member_pred =
      argmax_rows(target.probabilities(probe.images));
  const std::vector<std::int64_t> clean_system_pred =
      system_predictions(clean_votes, probe_n);

  bench::rule("SDC coverage: single weight-bit flips in one member");
  std::printf("benchmark=%s, protection=%s, %d trials/class, %lld probe "
              "samples\n\n",
              bm.id.c_str(), nn::to_string(protection), trials_per_class,
              static_cast<long long>(probe_n));

  struct BitClass {
    const char* name;
    int lo, hi;
  };
  const BitClass classes[] = {{"mantissa low (0-11)", 0, 11},
                              {"mantissa high (12-22)", 12, 22},
                              {"exponent (23-30)", 23, 30},
                              {"sign (31)", 31, 31}};

  Rng rng(1234);
  std::printf("%-22s %7s %6s %7s %7s %7s %6s\n", "bit class", "trials",
              "abft", "scrub", "masked", "mr", "sdc");
  ClassTally exponent_tally;
  for (const BitClass& c : classes) {
    ClassTally tally;
    for (int t = 0; t < trials_per_class; ++t) {
      fault::FaultSite site =
          fault::sample_sites(target.net().mutable_network(), 1, rng, 31)[0];
      site.bit = c.lo + static_cast<int>(rng.randint(0, c.hi - c.lo));
      const float original =
          fault::inject(target.net().mutable_network(), site);

      ++tally.trials;
      // The CRC sweep is exact: any stored-weight flip that survives until
      // the next scrub cycle is caught there.
      if (!target.params_intact()) ++tally.detected_scrub;

      mr::MemberOutcome outcome = target.try_probabilities(probe.images);
      if (outcome.fault == mr::MemberFault::checksum ||
          outcome.fault == mr::MemberFault::non_finite) {
        ++tally.detected_abft;
      } else {
        const std::vector<std::int64_t> pred =
            argmax_rows(outcome.probabilities);
        if (pred == clean_member_pred) {
          ++tally.masked;
        } else {
          mr::MemberVotes votes = clean_votes;
          votes[0] = mr::votes_from_probabilities(outcome.probabilities);
          if (system_predictions(votes, probe_n) == clean_system_pred) {
            ++tally.masked_mr;
          } else {
            ++tally.sdc;
          }
        }
      }
      fault::restore(target.net().mutable_network(), site, original);
    }
    std::printf("%-22s %7d %5.0f%% %6.0f%% %6.0f%% %6.0f%% %5.0f%%\n",
                c.name, tally.trials,
                100.0 * tally.detected_abft / tally.trials,
                100.0 * tally.detected_scrub / tally.trials,
                100.0 * tally.masked / tally.trials,
                100.0 * tally.masked_mr / tally.trials,
                100.0 * tally.sdc / tally.trials);
    if (c.lo == 23) exponent_tally = tally;
  }
  const double exp_covered =
      100.0 *
      (exponent_tally.detected_abft + exponent_tally.masked +
       exponent_tally.masked_mr) /
      exponent_tally.trials;
  std::printf("\nhigh-exponent flips detected-or-masked inline: %.1f%% "
              "(target >= 90%%);\nCRC scrub additionally catches %.0f%% of "
              "all stored-weight flips between batches\n",
              exp_covered,
              100.0 * exponent_tally.detected_scrub / exponent_tally.trials);

  // One row of the coverage-vs-cost table: inline exponent coverage at
  // this level against its modelled latency surcharge over protection off
  // (the abft_macs pricing the protection planner optimizes with).
  {
    const perf::CostModel model;
    const Shape in{1, bm.input.channels, bm.input.size, bm.input.size};
    const nn::CostStats stats = target.net().network().cost(in);
    const perf::InferenceCost off_cost =
        model.network_cost(stats, target.bits(), nn::Protection::off);
    const perf::InferenceCost cost =
        model.network_cost(stats, target.bits(), protection);
    // Compute overhead is the raw abft_macs surcharge; the roofline latency
    // only moves once the member is compute-bound, so report both (plus
    // energy, which always pays for the extra MACs).
    const double macs = static_cast<double>(stats.macs);
    const double abft_macs = protection == nn::Protection::full
                                 ? static_cast<double>(stats.abft_macs)
                                 : 0.0;
    std::printf("coverage-vs-cost: protection=%s exponent_inline=%.1f%% "
                "model_compute_overhead=+%.2f%% model_latency_overhead=+%.2f%% "
                "model_energy_overhead=+%.2f%%\n",
                nn::to_string(protection), exp_covered,
                100.0 * abft_macs / macs,
                100.0 * (cost.latency_s - off_cost.latency_s) /
                    off_cost.latency_s,
                100.0 * (cost.energy_j - off_cost.energy_j) /
                    off_cost.energy_j);
  }

  // CI gate: full protection must leave ZERO exponent-flip SDCs — every
  // flip is either detected inline (ABFT/guards) or masked. The BN-folded
  // checksums exist precisely so conv->BN stacks meet this with the
  // default tolerance.
  if (protection == nn::Protection::full && exponent_tally.sdc > 0) {
    std::printf("FAIL: %d exponent-flip SDC(s) under protection=full\n",
                exponent_tally.sdc);
    return 1;
  }

  // Multi-fault batches: K simultaneous distinct flips per trial (burst
  // upsets — e.g. one event corrupting a cache line). sample_sites
  // guarantees the K sites are distinct, so the trial really carries K
  // faults and restore can undo them independently.
  if (multi_faults > 1) {
    char title[96];
    std::snprintf(title, sizeof(title),
                  "multi-fault batches: %d simultaneous flips per trial",
                  multi_faults);
    bench::rule(title);
    ClassTally tally;
    for (int t = 0; t < trials_per_class; ++t) {
      const std::vector<fault::FaultSite> sites = fault::sample_sites(
          target.net().mutable_network(), multi_faults, rng, 31);
      std::vector<float> originals;
      originals.reserve(sites.size());
      for (const fault::FaultSite& site : sites) {
        originals.push_back(
            fault::inject(target.net().mutable_network(), site));
      }

      ++tally.trials;
      if (!target.params_intact()) ++tally.detected_scrub;
      mr::MemberOutcome outcome = target.try_probabilities(probe.images);
      if (outcome.fault == mr::MemberFault::checksum ||
          outcome.fault == mr::MemberFault::non_finite) {
        ++tally.detected_abft;
      } else {
        const std::vector<std::int64_t> pred =
            argmax_rows(outcome.probabilities);
        if (pred == clean_member_pred) {
          ++tally.masked;
        } else {
          mr::MemberVotes votes = clean_votes;
          votes[0] = mr::votes_from_probabilities(outcome.probabilities);
          if (system_predictions(votes, probe_n) == clean_system_pred) {
            ++tally.masked_mr;
          } else {
            ++tally.sdc;
          }
        }
      }
      for (std::size_t s = sites.size(); s > 0; --s) {
        fault::restore(target.net().mutable_network(), sites[s - 1],
                       originals[s - 1]);
      }
    }
    std::printf("%-22s %7d %5.0f%% %6.0f%% %6.0f%% %6.0f%% %5.0f%%\n",
                "all bits, K faults", tally.trials,
                100.0 * tally.detected_abft / tally.trials,
                100.0 * tally.detected_scrub / tally.trials,
                100.0 * tally.masked / tally.trials,
                100.0 * tally.masked_mr / tally.trials,
                100.0 * tally.sdc / tally.trials);
    if (tally.detected_scrub != tally.trials) {
      std::printf("WARNING: CRC scrub missed a multi-fault trial "
                  "(%d/%d)\n", tally.detected_scrub, tally.trials);
      return 1;
    }
    std::printf("CRC scrub caught %d/%d multi-fault trials (exact: any "
                "stored-weight change flips the CRC)\n",
                tally.detected_scrub, tally.trials);
  }

  // Layer sweep: exponent flips aimed at each parameter tensor in turn —
  // shows full-network ABFT covering conv layers the final-FC checksum
  // never saw.
  bench::rule("ABFT detection by parameter tensor (exponent flips)");
  const std::size_t param_count =
      target.net().mutable_network().params().size();
  std::printf("%-8s %10s %14s\n", "tensor", "elements", "abft detected");
  for (std::size_t p = 0; p < param_count; ++p) {
    const std::int64_t numel =
        target.net().mutable_network().params()[p]->numel();
    int detected = 0;
    for (int t = 0; t < layer_trials; ++t) {
      fault::FaultSite site;
      site.param_index = p;
      site.element = rng.randint(0, numel - 1);
      site.bit = 23 + static_cast<int>(rng.randint(0, 7));
      const float original =
          fault::inject(target.net().mutable_network(), site);
      mr::MemberOutcome outcome = target.try_probabilities(probe.images);
      if (outcome.fault == mr::MemberFault::checksum ||
          outcome.fault == mr::MemberFault::non_finite) {
        ++detected;
      }
      fault::restore(target.net().mutable_network(), site, original);
    }
    std::printf("%-8zu %10lld %8d/%d\n", p, static_cast<long long>(numel),
                detected, layer_trials);
  }
  return 0;
}
