// Extension: MC-dropout uncertainty (Gal & Ghahramani) vs PolygraphMR on
// the AlexNet tier — the paper's Section V positions dropout sampling as a
// high-overhead alternative; this bench puts both on the same TP-floor
// footing and also compares modeled cost.
//
// MC-dropout gate: mean softmax over K stochastic passes, threshold the
// top-1 mean probability (profiled on validation). Cost: K forward passes
// of one network vs PGMR's 4 members.
#include "bench_util.h"
#include "calib/mc_dropout.h"
#include "mr/pareto.h"
#include "perf/cost_model.h"

int main() {
  using namespace pgmr;
  bench::use_repo_cache();

  constexpr int kPasses = 8;
  const zoo::Benchmark& bm = zoo::find_benchmark("alexnet");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  const std::vector<std::string> members = {"ORG", "FlipX", "FlipY",
                                            "Gamma(2.00)"};

  nn::Network net = zoo::trained_network(bm, "ORG");
  const double tp_floor = zoo::accuracy(net, splits.val);
  const double base_fp = 1.0 - zoo::accuracy(net, splits.test);

  // --- MC-dropout gate, profiled on validation. ---
  const Tensor val_mc =
      calib::mc_dropout_probabilities(net, splits.val.images, kPasses);
  const auto mc_frontier = mr::pareto_frontier(
      mr::sweep_single(val_mc, splits.val.labels, mr::default_conf_grid()));
  const auto mc_point = mr::select_by_tp_floor(mc_frontier, tp_floor);
  const Tensor test_mc =
      calib::mc_dropout_probabilities(net, splits.test.images, kPasses);
  const mr::Outcome mc_outcome = mr::evaluate_single(
      test_mc, splits.test.labels, mc_point->thresholds.conf);

  // --- PGMR 4-member system, same profiling. ---
  mr::MemberVotes val_votes, test_votes;
  for (const std::string& spec : members) {
    val_votes.push_back(bench::member_votes_on(bm, spec, splits.val));
    test_votes.push_back(bench::member_votes_on(bm, spec, splits.test));
  }
  const auto pg_point = mr::select_by_tp_floor(
      mr::pareto_frontier(mr::sweep_thresholds(val_votes, splits.val.labels,
                                               mr::default_conf_grid())),
      tp_floor);
  const mr::Outcome pg_outcome =
      mr::evaluate(test_votes, splits.test.labels, pg_point->thresholds);

  // --- plain max-softmax gate for reference. ---
  const Tensor val_probs = zoo::probabilities_on(net, splits.val);
  const auto sm_point = mr::select_by_tp_floor(
      mr::pareto_frontier(mr::sweep_single(val_probs, splits.val.labels,
                                           mr::default_conf_grid())),
      tp_floor);
  const mr::Outcome sm_outcome =
      mr::evaluate_single(zoo::probabilities_on(net, splits.test),
                          splits.test.labels, sm_point->thresholds.conf);

  const perf::CostModel model;
  const Shape input{1, bm.input.channels, bm.input.size, bm.input.size};
  const double unit = model.network_cost(net.cost(input), 32).energy_j;

  bench::rule("Extension: MC-dropout vs PolygraphMR (AlexNet tier)");
  std::printf("%-24s %10s %10s %13s %12s\n", "method", "test TP", "test FP",
              "FP detected", "energy cost");
  auto row = [&](const char* name, const mr::Outcome& o, double cost) {
    std::printf("%-24s %9.2f%% %9.2f%% %12.1f%% %11.1fx\n", name,
                100.0 * o.tp_rate(), 100.0 * o.fp_rate(),
                100.0 * (1.0 - o.fp_rate() / base_fp), cost);
  };
  row("max-softmax gate", sm_outcome, 1.0);
  row("MC-dropout (8 passes)", mc_outcome, static_cast<double>(kPasses));
  row("4_PGMR", pg_outcome, 4.0);
  std::printf("\n(paper's Section V critique: dropout sampling needs many "
              "stochastic passes of the\n full network; PGMR reaches similar "
              "or better FP detection at lower multiplicity,\n and RAMR+RADE "
              "shrink its 4x further — see fig10)\n");
  return 0;
}
