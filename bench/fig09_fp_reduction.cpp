// Figure 9 + Table III: normalized FP rate of 4_MR / 4_PGMR / 6_MR /
// 6_PGMR on every benchmark, all at 100 % normalized TP, plus the
// preprocessor configurations the greedy builder selects.
//
// Paper claims to reproduce: 4_PGMR detects ~40.8 % of baseline FPs on
// average (16.6 % more than 4_MR); 6_PGMR detects ~48.2 %; PGMR helps on
// every benchmark regardless of baseline accuracy.
#include <algorithm>
#include <map>

#include "bench_util.h"
#include "polygraph/builder.h"

namespace {

using namespace pgmr;

struct VotesPair {
  std::vector<mr::Vote> val;
  std::vector<mr::Vote> test;
};

// Profiles thresholds on validation votes at the TP floor, then scores the
// same member set on the test votes.
mr::Outcome profile_and_test(const mr::MemberVotes& val_votes,
                             const mr::MemberVotes& test_votes,
                             const std::vector<std::int64_t>& val_labels,
                             const std::vector<std::int64_t>& test_labels,
                             double tp_floor) {
  const auto points =
      mr::sweep_thresholds(val_votes, val_labels, mr::default_conf_grid());
  const auto chosen =
      mr::select_by_tp_floor(mr::pareto_frontier(points), tp_floor);
  return mr::evaluate(test_votes, test_labels, chosen->thresholds);
}

}  // namespace

int main() {
  bench::use_repo_cache();

  bench::rule("Figure 9: normalized FP rate at 100% normalized TP");
  std::printf("%-12s %9s | %8s %8s %8s %8s | %8s %8s %8s %8s\n", "benchmark",
              "base FP", "4_MR", "4_PGMR", "6_MR", "6_PGMR", "nTP 4MR",
              "nTP 4PG", "nTP 6MR", "nTP 6PG");

  std::map<std::string, std::vector<std::string>> table3;
  double sums[4] = {0, 0, 0, 0};
  int count = 0;

  for (const zoo::Benchmark& bm : zoo::all_benchmarks()) {
    const data::DatasetSplits splits = zoo::benchmark_splits(bm);

    // Candidate member votes (preprocessed nets) on both eval splits.
    std::vector<std::string> specs = {"ORG"};
    for (const std::string& spec : zoo::candidate_pool(bm)) {
      specs.push_back(spec);
    }
    std::vector<VotesPair> candidates;
    for (const std::string& spec : specs) {
      candidates.push_back({bench::member_votes_on(bm, spec, splits.val),
                            bench::member_votes_on(bm, spec, splits.test)});
    }
    // Random-init variants for traditional MR (variant 0 is the baseline).
    std::vector<VotesPair> variants;
    for (int v = 0; v < 6; ++v) {
      variants.push_back({bench::member_votes_on(bm, "ORG", splits.val, v),
                          bench::member_votes_on(bm, "ORG", splits.test, v)});
    }

    // Baseline rates.
    auto accuracy_of = [](const std::vector<mr::Vote>& votes,
                          const std::vector<std::int64_t>& labels) {
      std::int64_t correct = 0;
      for (std::size_t n = 0; n < labels.size(); ++n) {
        if (votes[n].label == labels[n]) ++correct;
      }
      return static_cast<double>(correct) / static_cast<double>(labels.size());
    };
    const double base_val_tp = accuracy_of(candidates[0].val, splits.val.labels);
    const double base_test_tp =
        accuracy_of(candidates[0].test, splits.test.labels);
    const double base_test_fp = 1.0 - base_test_tp;

    // Greedy selection on validation votes (shared by 4_ and 6_PGMR).
    std::vector<std::vector<mr::Vote>> cand_val;
    for (const VotesPair& c : candidates) cand_val.push_back(c.val);
    const polygraph::GreedyResult greedy =
        polygraph::greedy_select(specs, cand_val, splits.val.labels, 6);
    table3[bm.id] = std::vector<std::string>(greedy.selected.begin(),
                                             greedy.selected.begin() + 4);

    auto pgmr_outcome = [&](int members) {
      mr::MemberVotes val_votes, test_votes;
      for (int m = 0; m < members; ++m) {
        // Map selected spec back to its candidate index.
        const std::string& spec = greedy.selected[static_cast<std::size_t>(m)];
        const std::size_t idx = static_cast<std::size_t>(
            std::find(specs.begin(), specs.end(), spec) - specs.begin());
        val_votes.push_back(candidates[idx].val);
        test_votes.push_back(candidates[idx].test);
      }
      return profile_and_test(val_votes, test_votes, splits.val.labels,
                              splits.test.labels, base_val_tp);
    };
    auto mr_outcome = [&](int members) {
      mr::MemberVotes val_votes, test_votes;
      for (int m = 0; m < members; ++m) {
        val_votes.push_back(variants[static_cast<std::size_t>(m)].val);
        test_votes.push_back(variants[static_cast<std::size_t>(m)].test);
      }
      return profile_and_test(val_votes, test_votes, splits.val.labels,
                              splits.test.labels, base_val_tp);
    };

    const mr::Outcome outcomes[4] = {mr_outcome(4), pgmr_outcome(4),
                                     mr_outcome(6), pgmr_outcome(6)};
    std::printf("%-12s %8.2f%% |", bm.id.c_str(), 100.0 * base_test_fp);
    for (int i = 0; i < 4; ++i) {
      const double normalized = outcomes[i].fp_rate() / base_test_fp;
      sums[i] += normalized;
      std::printf(" %7.1f%%", 100.0 * normalized);
    }
    std::printf(" |");
    for (const auto& o : outcomes) {
      std::printf(" %7.1f%%", 100.0 * o.tp_rate() / base_test_tp);
    }
    std::printf("\n");
    ++count;
  }

  std::printf("%-12s %9s |", "average", "");
  for (double s : sums) {
    std::printf(" %7.1f%%", 100.0 * s / count);
  }
  std::printf("\n\nFP detection (1 - normalized FP): 4_MR %.1f%%, 4_PGMR "
              "%.1f%%, 6_MR %.1f%%, 6_PGMR %.1f%%\n",
              100.0 * (1.0 - sums[0] / count), 100.0 * (1.0 - sums[1] / count),
              100.0 * (1.0 - sums[2] / count), 100.0 * (1.0 - sums[3] / count));
  std::printf("(paper: 4_PGMR detects 40.8%% of baseline FPs, 16.6%% more "
              "than 4_MR; 6_PGMR 48.2%%)\n");

  bench::rule("Table III: 4_PGMR configurations selected per benchmark");
  for (const auto& [id, selected] : table3) {
    std::printf("%-12s:", id.c_str());
    for (const std::string& spec : selected) std::printf(" %s", spec.c_str());
    std::printf("\n");
  }
  std::printf("(paper: ORG + three preprocessors per benchmark, flips and "
              "gamma most frequent)\n");
  return 0;
}
