// Day-in-production campaign: a seeded traffic trace (diurnal arrivals,
// bursts, drift/OOD/adversarial mix — src/workload) replayed against a
// sharded fleet while a scripted scenario schedule (src/fault/scenario.h)
// injects correlated multi-resolution faults:
//
//   request 10% — correlated member outage: the same member slot throws on
//                 two shards at once (a bad push hitting two hosts);
//   request 25% — activation-in-flight corruption inside one member's
//                 forward pass (invisible to ABFT and the scrubber; only
//                 the MR vote stands between it and the verdict);
//   request 40% — stuck-at burst corruption of adjacent stored weights on
//                 one shard's member (a DRAM row hit; the CRC scrubber
//                 must detect and heal it in the background);
//   request 55% — shard loss (kill_shard), revived at 70%.
//
// Every request is also served by a never-faulted serial reference of the
// same composition, and the run is gated on windowed SLOs (runtime/slo.h):
//
//   availability   no request window below (N-1)/N (the fleet's redundancy
//                  promise during a single-shard outage)
//   FP drift       <= 0.5 pp vs the never-faulted reference run
//   recovery       an impact run (consecutive windows with lost requests)
//                  ends within the window budget
//
// The campaign seed in the header reproduces the identical trace, corpora
// and fault schedule (--smoke 1 is the short deterministic CI slice).
// --record saves the generated trace; --trace replays a recorded one.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fault/chaos.h"
#include "fault/injector.h"
#include "fault/scenario.h"
#include "fleet/router.h"
#include "polygraph/system.h"
#include "runtime/slo.h"
#include "workload/corpora.h"
#include "workload/generator.h"

namespace {

using namespace pgmr;
using std::chrono::milliseconds;

constexpr int kMembers = 4;
const char* const kPreps[kMembers] = {"ORG", "FlipX", "ConNorm",
                                      "Gamma(2.00)"};

/// One ChaosInjector drives member chaos across the whole fleet: the plan
/// for member m of shard s lives at index s * kMembers + m, so a single
/// scenario event can arm the *same* member slot on several shards — a
/// correlated fault, not N independent ones.
std::size_t chaos_index(std::size_t shard, int member) {
  return shard * static_cast<std::size_t>(kMembers) +
         static_cast<std::size_t>(member);
}

fleet::FleetRouter make_fleet(
    const zoo::Benchmark& bm, std::size_t shards,
    const std::shared_ptr<fault::ChaosInjector>& chaos) {
  fleet::FleetOptions opts;
  opts.shards = shards;
  opts.runtime.threads = 1;
  opts.runtime.max_batch = 8;
  opts.runtime.max_delay = std::chrono::microseconds(500);
  opts.runtime.queue_capacity = 64;
  opts.runtime.quarantine_after = 3;
  opts.runtime.quarantine_cooldown = milliseconds(50);
  // The scrubber is the detector on duty for the stuck-at weight burst.
  opts.runtime.scrub_interval = milliseconds(25);
  opts.shard_quarantine_after = 3;
  opts.shard_cooldown = milliseconds(50);
  opts.chaos = chaos;
  // Thread isolation: the campaign reaches into shards to install
  // activation taps and corrupt weights, which needs a shared address
  // space (the process-isolated fleet is exercised by fleet_bench).
  opts.isolation = fleet::Isolation::thread;
  return fleet::FleetRouter(
      [&bm, &chaos](std::size_t shard) {
        mr::Ensemble ensemble;
        for (int m = 0; m < kMembers; ++m) {
          mr::Member member(
              fault::chaos_wrap(prep::make_preprocessor(kPreps[m]), chaos,
                                chaos_index(shard, m)),
              zoo::trained_network(bm, kPreps[m]));
          member.set_archive_source(zoo::archive_path(bm, kPreps[m]));
          ensemble.add(std::move(member));
        }
        polygraph::PolygraphSystem system(std::move(ensemble));
        system.set_thresholds({0.5F, mr::majority_threshold(kMembers)});
        return system;
      },
      opts);
}

void print_event(const fault::ScenarioEvent& e, long long at) {
  std::printf("  @%-6lld %s targets={", at, fault::to_string(e.action));
  for (std::size_t t = 0; t < e.targets.size(); ++t) {
    std::printf("%s%zu", t ? "," : "", e.targets[t]);
  }
  std::printf("}");
  if (e.action == fault::ScenarioAction::arm_member) {
    std::printf(" fault=%s count=%d", fault::to_string(e.fault), e.count);
  } else if (e.action == fault::ScenarioAction::arm_activation) {
    std::printf(" layer=%d elems=%lld value=%g count=%d", e.activation.layer,
                static_cast<long long>(e.activation.elems),
                e.activation.value, e.count);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  pgmr::bench::use_repo_cache();

  bool smoke = false;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = std::atoll(argv[i + 1]);
  }
  std::uint64_t seed = 20260809;
  long long requests = smoke ? 192 : 1536;
  std::size_t shards = smoke ? 3 : 4;
  std::int64_t window = smoke ? 32 : 64;
  std::string record_path, trace_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      requests = std::atoll(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      window = std::atoll(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--record") == 0) {
      record_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      // handled above
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (shards < 2 || requests < 64) {
    std::fprintf(stderr, "need --shards >= 2 and --requests >= 64\n");
    return 2;
  }

  const zoo::Benchmark& bm = zoo::find_benchmark("lenet5");

  // --- Workload: generate (or replay) the day's trace. ------------------
  workload::WorkloadSpec wspec;
  wspec.requests = requests;
  wspec.day_seconds = static_cast<double>(requests);  // 1 rps mean, scaled
  wspec.diurnal_amplitude = 0.6;
  wspec.burst_prob = 0.02;
  wspec.burst_len = 6;
  wspec.drift_frac = 0.10;
  wspec.ood_frac = 0.03;
  wspec.adversarial_frac = 0.02;
  wspec.corpus_size = 128;

  workload::Trace trace;
  if (!trace_path.empty()) {
    trace = workload::load_trace(trace_path);
    seed = trace.seed;  // the campaign seed is the trace's provenance
    requests = static_cast<long long>(trace.events.size());
  } else {
    wspec.seed = seed;
    trace = workload::generate_trace(wspec);
  }
  if (!record_path.empty()) workload::save_trace(trace, record_path);

  // Everything below derives from this one seed (satellite: any failed run
  // is bit-reproducible from this line).
  pgmr::bench::rule("day-in-production campaign");
  std::printf("campaign seed: %llu  (reproduce: day_in_production --seed "
              "%llu --requests %lld --shards %zu --window %lld%s)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed), requests, shards,
              static_cast<long long>(window), smoke ? " --smoke 1" : "");
  const workload::TraceSummary tsum = workload::summarize(trace);
  std::printf("trace: %s\n", workload::to_string(tsum).c_str());

  // --- Corpora + never-faulted reference. -------------------------------
  nn::Network victim = zoo::trained_network(bm, "ORG");
  const workload::Corpora corpora =
      workload::build_corpora(bm, wspec.corpus_size, seed, victim);
  polygraph::PolygraphSystem reference(
      zoo::make_ensemble(bm, {kPreps[0], kPreps[1], kPreps[2], kPreps[3]}));
  reference.set_thresholds({0.5F, mr::majority_threshold(kMembers)});

  // --- Fleet under chaos. -----------------------------------------------
  auto chaos = std::make_shared<fault::ChaosInjector>(
      shards * static_cast<std::size_t>(kMembers));
  fleet::FleetRouter fleet = make_fleet(bm, shards, chaos);
  for (std::size_t s = 0; s < shards; ++s) {
    for (int m = 0; m < kMembers; ++m) {
      fault::tap_activations(
          fleet.shard(s).system().ensemble().member(static_cast<std::size_t>(m)).net(),
          chaos, chaos_index(s, m));
    }
  }

  // --- Scripted fault scenario, keyed to the request clock. -------------
  const std::size_t victim_shard = shards - 1;
  const long long member_at = requests / 10;
  const long long activation_at = requests / 4;
  const long long weights_at = (requests * 2) / 5;
  const long long kill_at = (requests * 11) / 20;
  const long long revive_at = (requests * 7) / 10;

  std::vector<fault::ScenarioEvent> events;
  {
    fault::ScenarioEvent e;  // correlated member outage across two shards
    e.at_request = member_at;
    e.action = fault::ScenarioAction::arm_member;
    e.targets = {chaos_index(0, 1), chaos_index(1, 1)};
    e.fault = fault::ChaosFault::member_exception;
    e.count = 24;
    events.push_back(e);
  }
  {
    fault::ScenarioEvent e;  // in-flight activation corruption, shard 0
    e.at_request = activation_at;
    e.action = fault::ScenarioAction::arm_activation;
    e.targets = {chaos_index(0, 2)};
    e.count = 16;
    e.activation.layer = -1;
    e.activation.offset = 0;
    e.activation.elems = 128;
    e.activation.value = 1.0e20F;
    events.push_back(e);
  }
  {
    fault::ScenarioEvent e;  // shard loss ...
    e.at_request = kill_at;
    e.action = fault::ScenarioAction::kill_shard;
    e.targets = {victim_shard};
    events.push_back(e);
  }
  {
    fault::ScenarioEvent e;  // ... and revival
    e.at_request = revive_at;
    e.action = fault::ScenarioAction::revive_shard;
    e.targets = {victim_shard};
    events.push_back(e);
  }
  fault::ScenarioSchedule schedule(std::move(events));

  // --- Closed-loop replay with SLO accounting. --------------------------
  runtime::SloSpec slo;
  slo.window = window;
  slo.availability_floor =
      static_cast<double>(shards - 1) / static_cast<double>(shards);
  slo.fp_drift_pp = 0.5;
  // While the shard is scripted dead, every window it spans is impacted by
  // design (each cooldown expiry spends one probe request on the corpse),
  // so the recovery budget is relative to the outage: the impact run must
  // end within ONE window of the scripted revival — the next half-open
  // probe after revive_at has to restore the shard, or the gate trips.
  const long long outage_windows = (revive_at - kill_at + window - 1) / window;
  slo.recovery_windows = outage_windows + 1;

  runtime::SloTracker tracker(slo.window);
  long long ref_fp = 0, ref_reliable = 0, ref_served = 0;
  long long mismatched = 0;
  bool weights_corrupted = false;

  pgmr::bench::rule("scenario log");
  for (long long i = 0; i < requests; ++i) {
    const std::size_t before = schedule.applied();
    if (schedule.advance(i, *chaos) > 0) {
      for (std::size_t e = before; e < schedule.applied(); ++e) {
        print_event(schedule.events()[e], i);
      }
    }
    if (i == weights_at && !weights_corrupted) {
      // Region-resolution weight fault: a stuck-at burst over adjacent
      // elements of one tensor of shard 1's ORG member, injected under the
      // swap lock so it races nothing. The background scrubber must catch
      // the CRC mismatch and reload the member from its archive.
      runtime::ServingRuntime& rt = fleet.shard(1);
      rt.with_swap_lock([&] {
        quant::QuantizedNetwork& net =
            rt.system().ensemble().member(0).net();
        Rng wrng(seed ^ 0xDA7A0DEADULL);
        const auto bursts = fault::sample_burst_sites(
            net.mutable_network(), 1, 64, wrng, /*max_bit=*/15,
            fault::FaultKind::stuck_at_one);
        for (const fault::FaultSite& site : bursts[0]) {
          fault::inject(net.mutable_network(), site);
        }
      });
      weights_corrupted = true;
      std::printf("  @%-6lld stuck_at_one weight burst: shard 1 member 0, "
                  "64 adjacent elements\n", i);
    }

    const workload::TraceEvent& ev = trace.events[static_cast<std::size_t>(i)];
    const data::Dataset& ds = workload::corpus(corpora, ev.cls);
    const std::int64_t sample = ev.sample % ds.size();
    const Tensor input = ds.sample(sample);
    const bool has_label = ev.cls != workload::InputClass::ood;
    const std::int64_t label = ds.labels[static_cast<std::size_t>(sample)];

    // Never-faulted serial reference on the identical input.
    const polygraph::Verdict want = reference.predict(input);
    ++ref_served;
    if (want.reliable) {
      ++ref_reliable;
      if (has_label && want.label != label) ++ref_fp;
    }

    bool served = false, reliable = false, fp = false;
    try {
      const polygraph::Verdict got = fleet.submit(input, ev.key).get();
      served = true;
      reliable = got.reliable;
      fp = got.reliable && has_label && got.label != label;
      if (got.label != want.label || got.reliable != want.reliable) {
        ++mismatched;
      }
    } catch (const fleet::ShardUnavailable&) {
      // the detection-window cost of the dead shard
    } catch (const std::exception&) {
    }
    tracker.record(served, reliable, fp);

    // Pace only while the victim shard's outage is being detected or
    // probed, so the breaker's cooldown clock can actually advance; the
    // rest of the day replays at full speed.
    if (chaos->shard_down(victim_shard) ||
        fleet.shard_health().state(victim_shard) !=
            runtime::MemberState::healthy) {
      std::this_thread::sleep_for(milliseconds(2));
    }
  }

  // Give the scrubber one more interval to finish healing the weight
  // burst, then freeze the fleet's counters.
  const auto heal_deadline =
      std::chrono::steady_clock::now() + milliseconds(2000);
  auto healed = [&] {
    const fleet::FleetSnapshot snap = fleet.snapshot();
    std::uint64_t reloads = 0;
    for (std::uint64_t r : snap.merged.weight_reloads) reloads += r;
    return reloads;
  };
  while (healed() == 0 && std::chrono::steady_clock::now() < heal_deadline) {
    std::this_thread::sleep_for(milliseconds(20));
  }
  const fleet::FleetSnapshot snap = fleet.snapshot();
  fleet.shutdown();

  // --- Report + gates. --------------------------------------------------
  const double ref_fp_rate =
      ref_served ? static_cast<double>(ref_fp) / static_cast<double>(ref_served)
                 : 0.0;
  const runtime::SloReport report = runtime::evaluate_slo(tracker, ref_fp_rate, slo);

  std::uint64_t member_faults = 0, crc_hits = 0, reloads = 0;
  for (std::uint64_t v : snap.merged.member_faults) member_faults += v;
  for (std::uint64_t v : snap.merged.crc_mismatches) crc_hits += v;
  for (std::uint64_t v : snap.merged.weight_reloads) reloads += v;
  std::uint64_t act_fired = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    for (int m = 0; m < kMembers; ++m) {
      act_fired += chaos->activation_fired(chaos_index(s, m));
    }
  }

  pgmr::bench::rule("fault activity");
  std::printf("member faults (exception/NaN/ABFT): %llu\n",
              static_cast<unsigned long long>(member_faults));
  std::printf("activation corruptions fired:       %llu\n",
              static_cast<unsigned long long>(act_fired));
  std::printf("scrubber CRC detections / heals:    %llu / %llu\n",
              static_cast<unsigned long long>(crc_hits),
              static_cast<unsigned long long>(reloads));
  std::printf("shard refusals (victim %zu):         %llu, restarts %llu, "
              "probes %llu\n",
              victim_shard,
              static_cast<unsigned long long>(
                  chaos->shard_refusals(victim_shard)),
              static_cast<unsigned long long>(
                  snap.shard_restarts.empty()
                      ? 0
                      : snap.shard_restarts[victim_shard]),
              static_cast<unsigned long long>(snap.probes));
  std::printf("verdicts differing from reference:  %lld of %lld served\n",
              mismatched, tracker.served());

  pgmr::bench::rule("SLO gates");
  std::printf("  (availability floor %.3f = (N-1)/N; recovery budget %lld = "
              "%lld outage window(s) + 1)\n",
              slo.availability_floor,
              static_cast<long long>(slo.recovery_windows), outage_windows);
  std::printf("%s\n", report.to_string().c_str());

  // The day only counts if the scenario actually drew blood: every fault
  // resolution must have fired and the scrubber must have healed the
  // weight burst.
  const bool exercised =
      member_faults > 0 && act_fired > 0 && crc_hits > 0 && reloads > 0 &&
      chaos->shard_refusals(victim_shard) > 0;
  std::printf("all fault resolutions exercised:    %s\n",
              exercised ? "yes" : "NO");

  const bool ok = report.pass() && exercised;
  std::printf("\nacceptance: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
