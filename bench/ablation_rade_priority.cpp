// Ablation: does RADE's contribution-based priority matter? (DESIGN.md
// ablation #4.) Same 4-member system, same thresholds, three activation
// orders: contribution-sorted (the paper's), reversed, and as-declared.
//
// The verdicts are order-independent in the limit (same vote pool), so the
// interesting column is mean activations — the energy driver.
#include "bench_util.h"
#include "mr/pareto.h"
#include "mr/rade.h"

int main() {
  using namespace pgmr;
  bench::use_repo_cache();

  bench::rule("Ablation: RADE activation order (4_PGMR, all benchmarks)");
  std::printf("%-12s | %12s %12s %12s | %10s\n", "benchmark", "contribution",
              "reversed", "declared", "FP (any)");

  for (const zoo::Benchmark& bm : zoo::all_benchmarks()) {
    const std::vector<std::string> members =
        bm.dataset_id == "smnist"
            ? std::vector<std::string>{"ORG", "ConNorm", "FlipX", "Gamma(2.00)"}
            : std::vector<std::string>{"ORG", "FlipX", "FlipY", "Gamma(2.00)"};
    const data::DatasetSplits splits = zoo::benchmark_splits(bm);

    mr::MemberVotes val_votes, test_votes;
    for (const std::string& spec : members) {
      val_votes.push_back(bench::member_votes_on(bm, spec, splits.val));
      test_votes.push_back(bench::member_votes_on(bm, spec, splits.test));
    }

    std::int64_t val_correct = 0;
    for (std::size_t n = 0; n < splits.val.labels.size(); ++n) {
      if (val_votes[0][n].label == splits.val.labels[n]) ++val_correct;
    }
    const double tp_floor = static_cast<double>(val_correct) /
                            static_cast<double>(splits.val.labels.size());
    const auto chosen = mr::select_by_tp_floor(
        mr::pareto_frontier(mr::sweep_thresholds(
            val_votes, splits.val.labels, mr::default_conf_grid())),
        tp_floor);

    const auto contribution =
        mr::contribution_priority(val_votes, splits.val.labels);
    std::vector<std::size_t> reversed(contribution.rbegin(),
                                      contribution.rend());
    std::vector<std::size_t> declared = {0, 1, 2, 3};

    const auto run = [&](const std::vector<std::size_t>& order) {
      return mr::evaluate_staged(test_votes, splits.test.labels, order,
                                 chosen->thresholds);
    };
    const mr::StagedOutcome a = run(contribution);
    const mr::StagedOutcome b = run(reversed);
    const mr::StagedOutcome c = run(declared);
    std::printf("%-12s | %12.3f %12.3f %12.3f | %9.2f%%\n", bm.id.c_str(),
                a.mean_activated(), b.mean_activated(), c.mean_activated(),
                100.0 * a.outcome.fp_rate());
  }
  std::printf("\n(contribution order should activate the fewest members on "
              "average: leading with\n the most-often-correct members reaches "
              "Thr_Freq agreement soonest)\n");
  return 0;
}
