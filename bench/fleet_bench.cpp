// Fleet serving bench: a pgmr::fleet::FleetRouter over N ServingRuntime
// replicas under the shared closed-loop client harness (bench_util.h).
//
// Default (smoke) mode ramps closed-loop concurrency K = 1..max against a
// single replica to find the per-shard knee K* (the K past which more
// concurrency buys < 10% throughput — with one worker per shard, batching
// efficiency is what the ramp climbs), then drives the N-shard fleet at
// N * K* clients so every shard serves knee-level load. Both serve the
// same request stream, and their verdict tallies must be identical —
// sharding never changes a verdict — with no submission lost.
//
// Campaign mode (--campaign 1) adds the acceptance gates:
//
//   scale     fleet req/s at N*K* >= 0.875 * min(N, hw cores) * single
//             req/s at K* (the hardware-aware form of the N=4 -> >= 3.5x
//             target: a box with fewer cores than shards cannot show the
//             speedup, but must still show the fleet layer costs < 12.5%)
//   FP        fleet verdict tallies == single-replica tallies, exactly
//   outage    a shard killed mid-campaign via fault::ChaosInjector costs
//             only its detection window: availability >= (N-1)/N while it
//             is down, every served verdict bit-identical to a
//             never-faulted single-replica reference
//   recovery  after revive_shard, the half-open probe restores the shard
//             and the fleet serves error-free at full membership again
//
// --isolation process runs every shard as a fork/exec'd pgmr-shard-worker
// process behind a proc::ShardSupervisor. The campaign gates are the
// same, but kill_shard delivers a real SIGKILL to the worker, detection
// rides the broken socket instead of a simulation flag, and recovery
// additionally requires the supervisor to have respawned the worker.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fault/chaos.h"
#include "fleet/router.h"
#include "polygraph/system.h"

namespace {

using namespace pgmr;
using std::chrono::milliseconds;

constexpr int kMembers = 4;
const char* const kPreps[kMembers] = {"ORG", "FlipX", "ConNorm",
                                      "Gamma(2.00)"};

fleet::FleetRouter make_fleet(
    const zoo::Benchmark& bm, std::size_t shards, fleet::Isolation isolation,
    std::shared_ptr<fault::ChaosInjector> chaos = nullptr) {
  fleet::FleetOptions opts;
  opts.shards = shards;
  opts.runtime.threads = 1;  // scale-out at fixed per-replica resources
  opts.runtime.max_batch = 8;
  opts.runtime.max_delay = std::chrono::microseconds(500);
  opts.runtime.queue_capacity = 64;
  opts.shard_quarantine_after = 3;
  opts.shard_cooldown = milliseconds(100);
  opts.chaos = std::move(chaos);
  opts.isolation = isolation;
  if (isolation == fleet::Isolation::process) {
    opts.process.worker_path = PGMR_SHARD_WORKER_BIN;
    // A respawn cadence that gives the campaign a real outage window to
    // measure, without stretching recovery past the probing budget.
    opts.process.backoff_initial = milliseconds(400);
    opts.process.backoff_max = milliseconds(2000);
    opts.process.healthy_uptime = milliseconds(1000);
  }
  return fleet::FleetRouter(
      [&bm](std::size_t) {
        polygraph::PolygraphSystem system(zoo::make_ensemble(
            bm, {kPreps[0], kPreps[1], kPreps[2], kPreps[3]}));
        system.set_thresholds({0.5F, mr::majority_threshold(kMembers)});
        return system;
      },
      opts);
}

void print_step(const bench::ClosedLoopResult& s) {
  std::printf("%-8zu %10.1f %6lld %6lld %6lld %7lld\n", s.clients, s.rps(),
              static_cast<long long>(s.tp), static_cast<long long>(s.fp),
              static_cast<long long>(s.unreliable), s.errors);
}

/// One closed-loop measurement of `fleet` at `clients` concurrency over
/// requests 0..requests-1, keyed by request index.
bench::ClosedLoopResult measure(fleet::FleetRouter& fleet,
                                const data::Dataset& test,
                                std::size_t clients, long long requests) {
  const std::int64_t pool_n = test.size();
  return bench::closed_loop_load(
      clients, requests,
      [&](long long i) {
        return fleet.submit(test.sample(i % pool_n),
                            static_cast<std::uint64_t>(i));
      },
      [&](long long i) {
        return test.labels[static_cast<std::size_t>(i % pool_n)];
      });
}

/// Every measurement replays requests 0..R-1, and verdicts are
/// deterministic under sharding and concurrency, so every step of every
/// configuration must tally identically (and lose nothing).
bool tally_identical(const bench::ClosedLoopResult& s,
                     const bench::ClosedLoopResult& want) {
  return s.errors == 0 && s.tp == want.tp && s.fp == want.fp &&
         s.unreliable == want.unreliable;
}

/// One serving phase of the shard-loss campaign: sequential keyed
/// submissions, every served verdict compared bit-for-bit against the
/// never-faulted single-replica reference.
struct PhaseTally {
  long long submitted = 0;
  long long served = 0;
  long long unavailable = 0;
  long long mismatched = 0;

  double availability() const {
    return submitted ? static_cast<double>(served) /
                           static_cast<double>(submitted)
                     : 0.0;
  }
};

void serve_compare(fleet::FleetRouter& fleet,
                   polygraph::PolygraphSystem& reference,
                   const data::Dataset& test, long long count,
                   long long offset, milliseconds pause, PhaseTally& t) {
  const std::int64_t pool_n = test.size();
  for (long long i = 0; i < count; ++i) {
    const long long key = offset + i;
    const std::int64_t n = key % pool_n;
    ++t.submitted;
    try {
      const polygraph::Verdict got =
          fleet.submit(test.sample(n), static_cast<std::uint64_t>(key)).get();
      ++t.served;
      const polygraph::Verdict want = reference.predict(test.sample(n));
      if (got.label != want.label || got.reliable != want.reliable ||
          got.votes != want.votes || got.activated != want.activated ||
          got.degraded != want.degraded) {
        ++t.mismatched;
      }
    } catch (const fleet::ShardUnavailable&) {
      ++t.unavailable;  // the detection-window cost of the dead shard
    }
    if (pause.count() > 0) std::this_thread::sleep_for(pause);
  }
}

/// Kill a shard mid-campaign, measure the outage, revive it, and require
/// the half-open probe to restore full membership. In process isolation
/// the kill is a real SIGKILL of the worker and recovery additionally
/// requires the supervisor to have respawned it.
bool run_shard_loss_campaign(const zoo::Benchmark& bm,
                             const data::Dataset& test, std::size_t shards,
                             fleet::Isolation isolation) {
  auto chaos = std::make_shared<fault::ChaosInjector>(0);
  fleet::FleetRouter fleet = make_fleet(bm, shards, isolation, chaos);
  polygraph::PolygraphSystem reference(
      zoo::make_ensemble(bm, {kPreps[0], kPreps[1], kPreps[2], kPreps[3]}));
  reference.set_thresholds({0.5F, mr::majority_threshold(kMembers)});

  const std::size_t victim = shards - 1;
  PhaseTally pre, outage, post;

  serve_compare(fleet, reference, test, 64, 0, milliseconds(0), pre);
  const bool pre_ok = pre.unavailable == 0 && pre.mismatched == 0;

  chaos->kill_shard(victim);
  // Long enough for quarantine (3 refusals) plus a few failed half-open
  // probes — the full detection + re-probe cycle while the shard is dead.
  // Detection is checked between chunks, not only at the end: in process
  // mode the supervisor respawns the worker on its own schedule, so by the
  // end of the phase the shard may already be healthy again.
  bool detected = false;
  runtime::MemberState at_detect = runtime::MemberState::healthy;
  for (int chunk = 0; chunk < 10; ++chunk) {
    serve_compare(fleet, reference, test, 16, 64 + 16 * chunk,
                  milliseconds(2), outage);
    const runtime::MemberState state = fleet.shard_health().state(victim);
    if (!detected && state != runtime::MemberState::healthy &&
        chaos->shard_refusals(victim) >= 3) {
      detected = true;
      at_detect = state;
    }
  }
  const double floor =
      static_cast<double>(shards - 1) / static_cast<double>(shards);
  const bool outage_ok = detected && outage.mismatched == 0 &&
                         outage.availability() >= floor;

  chaos->revive_shard(victim);
  // The shard stays quarantined until its cooldown expires; the next
  // submission that elects it is the probe, and with the shard alive again
  // the probe's hand-off succeeds and restores it.
  long long recovered_at = -1;
  PhaseTally probing;
  for (long long i = 0; i < 256 && recovered_at < 0; ++i) {
    serve_compare(fleet, reference, test, 1, 224 + i, milliseconds(2),
                  probing);
    if (fleet.shard_health().state(victim) ==
        runtime::MemberState::healthy) {
      recovered_at = i + 1;
    }
  }
  serve_compare(fleet, reference, test, 64, 512, milliseconds(0), post);
  const fleet::FleetSnapshot snap = fleet.snapshot();
  // In process mode the recovery is only real if the supervisor actually
  // respawned the SIGKILLed worker (a fresh pid rebuilt from the spec).
  const bool respawned = isolation != fleet::Isolation::process ||
                         snap.shard_restarts[victim] >= 1;
  const bool recovery_ok = recovered_at >= 0 && post.unavailable == 0 &&
                           post.mismatched == 0 && respawned &&
                           snap.routed[victim] > 0;

  std::printf("pre-outage:  availability %.3f, %lld/%lld verdicts "
              "bit-identical -> %s\n",
              pre.availability(), pre.served - pre.mismatched, pre.served,
              pre_ok ? "ok" : "VIOLATED");
  std::printf("outage:      availability %.3f (floor %.3f), refusals %llu, "
              "victim %s at detection, %lld/%lld bit-identical -> %s\n",
              outage.availability(), floor,
              static_cast<unsigned long long>(chaos->shard_refusals(victim)),
              runtime::to_string(at_detect),
              outage.served - outage.mismatched, outage.served,
              outage_ok ? "ok" : "VIOLATED");
  std::printf("recovery:    shard %zu healthy after %lld probing requests, "
              "post-outage availability %.3f, %lld/%lld bit-identical -> "
              "%s\n",
              victim, recovered_at, post.availability(),
              post.served - post.mismatched, post.served,
              recovery_ok ? "ok" : "VIOLATED");
  if (isolation == fleet::Isolation::process) {
    std::printf("supervisor:  worker respawns for shard %zu: %llu -> %s\n",
                victim,
                static_cast<unsigned long long>(snap.shard_restarts[victim]),
                respawned ? "ok" : "VIOLATED");
  }
  std::printf("fleet counters: spills %llu probes %llu unavailable %llu\n",
              static_cast<unsigned long long>(snap.spills),
              static_cast<unsigned long long>(snap.probes),
              static_cast<unsigned long long>(snap.unavailable));
  fleet.shutdown();
  return pre_ok && outage_ok && recovery_ok;
}

}  // namespace

int main(int argc, char** argv) {
  pgmr::bench::use_repo_cache();
  std::size_t shards = 4;
  std::size_t max_clients = 8;  // ramp ceiling for the per-shard knee
  long long requests = 640;
  bool campaign = false;
  fleet::Isolation isolation = fleet::Isolation::thread;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--closed-loop") == 0) {
      max_clients = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      requests = std::atoll(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--campaign") == 0) {
      campaign = std::atoll(argv[i + 1]) != 0;
    } else if (std::strcmp(argv[i], "--isolation") == 0) {
      if (std::strcmp(argv[i + 1], "thread") == 0) {
        isolation = fleet::Isolation::thread;
      } else if (std::strcmp(argv[i + 1], "process") == 0) {
        isolation = fleet::Isolation::process;
      } else {
        std::fprintf(stderr, "--isolation must be thread|process\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (shards == 0) shards = 1;
  if (max_clients == 0) max_clients = 8;

  const zoo::Benchmark& bm = zoo::find_benchmark("lenet5");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  const data::Dataset& test = splits.test;
  const std::int64_t pool_n = test.size();
  bool ok = true;

  std::printf("isolation: %s\n", fleet::to_string(isolation));
  pgmr::bench::rule("single replica, closed-loop ramp to the knee");
  std::printf("%-8s %10s %6s %6s %6s %7s\n", "clients", "req/s", "TP", "FP",
              "unrel", "errors");
  fleet::FleetRouter single = make_fleet(bm, 1, isolation);
  const auto single_steps = bench::closed_loop_ramp(
      max_clients, requests,
      [&](long long i) {
        return single.submit(test.sample(i % pool_n),
                             static_cast<std::uint64_t>(i));
      },
      [&](long long i) {
        return test.labels[static_cast<std::size_t>(i % pool_n)];
      });
  for (const bench::ClosedLoopResult& s : single_steps) print_step(s);
  const bench::ClosedLoopResult& knee = bench::ramp_best(single_steps);
  single.shutdown();
  std::printf("per-shard knee: %zu clients @ %.1f req/s\n", knee.clients,
              knee.rps());

  // Drive the fleet at knee * shards so every shard serves knee-level
  // load — the scale-out claim is per-replica, not per-fleet.
  char title[96];
  std::snprintf(title, sizeof(title),
                "%zu-shard fleet @ %zu clients (knee x shards)", shards,
                knee.clients * shards);
  pgmr::bench::rule(title);
  std::printf("%-8s %10s %6s %6s %6s %7s\n", "clients", "req/s", "TP", "FP",
              "unrel", "errors");
  fleet::FleetRouter fleet = make_fleet(bm, shards, isolation);
  const bench::ClosedLoopResult fleet_step =
      measure(fleet, test, knee.clients * shards, requests);
  print_step(fleet_step);
  fleet.shutdown();

  bool identical = tally_identical(fleet_step, knee);
  for (const bench::ClosedLoopResult& s : single_steps) {
    identical = identical && tally_identical(s, knee);
  }
  const double speedup =
      knee.rps() > 0.0 ? fleet_step.rps() / knee.rps() : 0.0;
  std::printf("\nfleet %.1f req/s vs single %.1f req/s at the knee: "
              "speedup %.2fx\n",
              fleet_step.rps(), knee.rps(), speedup);
  std::printf("verdict tallies identical across every step: %s\n",
              identical ? "yes" : "NO");
  ok = ok && identical;

  if (campaign) {
    const double cores =
        static_cast<double>(std::thread::hardware_concurrency());
    const double required =
        0.875 * std::min(static_cast<double>(shards), std::max(1.0, cores));
    const bool scale_ok = speedup >= required;
    std::printf("scale gate: %.2fx >= %.2fx (0.875 * min(%zu shards, %.0f "
                "cores)) -> %s\n",
                speedup, required, shards, std::max(1.0, cores),
                scale_ok ? "ok" : "VIOLATED");
    ok = ok && scale_ok;

    pgmr::bench::rule("shard-loss chaos campaign (kill + revive one shard)");
    ok = run_shard_loss_campaign(bm, test, shards, isolation) && ok;
  }

  std::printf("\nacceptance: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
