// Figure 11: TP/FP Pareto frontiers of precision-reduced AlexNet — the
// standalone network at fp32 and its reduced precision vs the 4_PGMR
// system at fp32 and its (more aggressive) reduced precision.
//
// Paper claims to reproduce: ORG holds accuracy to 17 bits and 4_PGMR to
// 14 bits; the reduced-precision 4_PGMR frontier barely moves and still
// detects ~28 % of FPs at full TP.
#include "bench_util.h"
#include "mr/pareto.h"

namespace {

using namespace pgmr;

void print_frontier(const char* name,
                    const std::vector<mr::SweepPoint>& frontier,
                    double base_tp, double base_fp) {
  std::printf("%s (normalized TP%%, normalized FP%%):\n ", name);
  for (const auto& p : frontier) {
    std::printf(" (%.1f, %.1f)", 100.0 * p.tp_rate / base_tp,
                100.0 * p.fp_rate / base_fp);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::use_repo_cache();

  const zoo::Benchmark& bm = zoo::find_benchmark("alexnet");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  const std::vector<std::string> members = {"ORG", "FlipX", "FlipY",
                                            "Gamma(2.00)"};
  constexpr int kOrgBits = 17;   // paper's no-loss precision for ORG
  constexpr int kPgmrBits = 14;  // paper's no-loss precision for 4_PGMR

  // Baseline rates at full precision.
  nn::Network base_net = zoo::trained_network(bm, "ORG");
  const double base_tp = zoo::accuracy(base_net, splits.test);
  const double base_fp = 1.0 - base_tp;

  bench::rule("Figure 11: Pareto frontiers of precision-reduced AlexNet");

  auto single_frontier = [&](int bits) {
    mr::Ensemble e = zoo::make_ensemble(bm, {"ORG"}, bits);
    const auto probs = e.member_probabilities(splits.test.images);
    return mr::pareto_frontier(
        mr::sweep_single(probs[0], splits.test.labels, mr::default_conf_grid()));
  };
  auto system_frontier = [&](int bits) {
    mr::Ensemble e = zoo::make_ensemble(bm, members, bits);
    const auto votes = e.member_votes(splits.test.images);
    return mr::pareto_frontier(mr::sweep_thresholds(
        votes, splits.test.labels, mr::default_conf_grid()));
  };

  print_frontier("ORG fp32 + Thr_Conf", single_frontier(32), base_tp, base_fp);
  print_frontier("ORG 17-bit + Thr_Conf", single_frontier(kOrgBits), base_tp,
                 base_fp);
  const auto pg32 = system_frontier(32);
  const auto pg14 = system_frontier(kPgmrBits);
  print_frontier("4_PGMR fp32", pg32, base_tp, base_fp);
  print_frontier("4_PGMR 14-bit", pg14, base_tp, base_fp);

  auto fp_at_full_tp = [&](const std::vector<mr::SweepPoint>& frontier) {
    const auto chosen = mr::select_by_tp_floor(frontier, base_tp);
    return chosen ? chosen->fp_rate / base_fp : 1.0;
  };
  std::printf("\nFP detection at 100%% normalized TP: 4_PGMR fp32 %.1f%%, "
              "4_PGMR 14-bit %.1f%%\n",
              100.0 * (1.0 - fp_at_full_tp(pg32)),
              100.0 * (1.0 - fp_at_full_tp(pg14)));
  std::printf("(paper: the 14-bit 4_PGMR frontier is nearly unchanged and "
              "still detects 28.1%% of FPs)\n");
  return 0;
}
