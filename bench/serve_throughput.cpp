// Serving-runtime throughput: requests/sec, batch coalescing and latency of
// a 4-member SMNIST (lenet5) PolygraphMR system under an open-loop load, at
// 1/2/4 worker threads. The verdict tallies must be identical across rows —
// per-member parallelism never changes the decision.
//
// A second section ramps closed-loop concurrency (K clients, one request in
// flight each — bench::closed_loop_ramp, shared with fleet_bench) against a
// single runtime to locate its per-replica knee: the K past which more
// concurrency buys < 10% throughput. fleet_bench stacks N such replicas.
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "bench_util.h"
#include "polygraph/system.h"
#include "runtime/serving_runtime.h"

namespace {

using namespace pgmr;

struct Row {
  std::size_t threads = 0;
  double rps = 0.0;
  double mean_batch = 0.0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::int64_t tp = 0, fp = 0, unreliable = 0;
};

Row run_load(const zoo::Benchmark& bm, const data::Dataset& test,
             std::size_t threads, long long requests) {
  runtime::RuntimeOptions opts;
  opts.threads = threads;
  opts.max_batch = 16;
  opts.max_delay = std::chrono::microseconds(2000);
  opts.queue_capacity = 128;
  polygraph::PolygraphSystem system(zoo::make_ensemble(
      bm, {"ORG", "FlipX", "ConNorm", "Gamma(2.00)"}));
  system.set_thresholds({0.5F, mr::majority_threshold(4)});
  runtime::ServingRuntime rt(std::move(system), opts);

  std::vector<std::future<polygraph::Verdict>> futures;
  futures.reserve(static_cast<std::size_t>(requests));
  const std::int64_t pool_n = test.size();
  const auto t0 = std::chrono::steady_clock::now();
  for (long long r = 0; r < requests; ++r) {
    futures.push_back(rt.submit(test.sample(r % pool_n)));
  }
  Row row;
  for (long long r = 0; r < requests; ++r) {
    const polygraph::Verdict v = futures[static_cast<std::size_t>(r)].get();
    const std::int64_t truth = test.labels[static_cast<std::size_t>(r % pool_n)];
    if (!v.reliable) {
      ++row.unreliable;
    } else if (v.label == truth) {
      ++row.tp;
    } else {
      ++row.fp;
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  rt.shutdown();

  const runtime::MetricsSnapshot snap = rt.metrics_snapshot();
  row.threads = threads;
  row.rps = static_cast<double>(requests) / secs;
  row.mean_batch = snap.mean_batch_size();
  row.p50_us = snap.latency_quantile_us(0.5);
  row.p99_us = snap.latency_quantile_us(0.99);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  pgmr::bench::use_repo_cache();
  const long long requests = argc > 1 ? std::atoll(argv[1]) : 512;
  const zoo::Benchmark& bm = zoo::find_benchmark("lenet5");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);

  pgmr::bench::rule("serving throughput (4-member lenet5/SMNIST)");
  std::printf("%-8s %10s %10s %9s %9s %6s %6s %6s %9s\n", "threads", "req/s",
              "meanbatch", "p50us", "p99us", "TP", "FP", "unrel", "speedup");
  double base_rps = 0.0;
  for (const std::size_t threads : {1U, 2U, 4U}) {
    const Row row = run_load(bm, splits.test, threads, requests);
    if (base_rps == 0.0) base_rps = row.rps;
    std::printf("%-8zu %10.1f %10.2f %9llu %9llu %6lld %6lld %6lld %8.2fx\n",
                row.threads, row.rps, row.mean_batch,
                static_cast<unsigned long long>(row.p50_us),
                static_cast<unsigned long long>(row.p99_us),
                static_cast<long long>(row.tp), static_cast<long long>(row.fp),
                static_cast<long long>(row.unreliable), row.rps / base_rps);
  }

  pgmr::bench::rule("closed-loop concurrency ramp (1 worker, K clients)");
  {
    runtime::RuntimeOptions opts;
    opts.threads = 1;
    opts.max_batch = 16;
    opts.max_delay = std::chrono::microseconds(2000);
    polygraph::PolygraphSystem system(zoo::make_ensemble(
        bm, {"ORG", "FlipX", "ConNorm", "Gamma(2.00)"}));
    system.set_thresholds({0.5F, mr::majority_threshold(4)});
    runtime::ServingRuntime rt(std::move(system), opts);
    const std::int64_t pool_n = splits.test.size();
    const auto steps = pgmr::bench::closed_loop_ramp(
        8, requests,
        [&](long long i) { return rt.submit(splits.test.sample(i % pool_n)); },
        [&](long long i) {
          return splits.test.labels[static_cast<std::size_t>(i % pool_n)];
        });
    std::printf("%-8s %10s %6s %6s %6s %7s\n", "clients", "req/s", "TP", "FP",
                "unrel", "errors");
    for (const pgmr::bench::ClosedLoopResult& s : steps) {
      std::printf("%-8zu %10.1f %6lld %6lld %6lld %7lld\n", s.clients,
                  s.rps(), static_cast<long long>(s.tp),
                  static_cast<long long>(s.fp),
                  static_cast<long long>(s.unreliable), s.errors);
    }
    std::printf("knee: %zu clients @ %.1f req/s\n",
                pgmr::bench::ramp_best(steps).clients,
                pgmr::bench::ramp_best(steps).rps());
    rt.shutdown();
  }
  return 0;
}
