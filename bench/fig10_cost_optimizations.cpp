// Figure 10: energy, latency and FP-rate trajectory of the cost-oriented
// optimizations — 4_PGMR (full precision) -> +RAMR (reduced precision) ->
// +RADE (staged activation) — plus the 2-GPU latency scenario.
//
// Paper claims to reproduce: the ~4x multiplicative overhead of 4_PGMR
// drops below ~2x with RAMR+RADE while the normalized FP rate rises only a
// few percent; on a 2-GPU platform average latency approaches the baseline.
#include "bench_util.h"
#include "mr/rade.h"
#include "polygraph/system.h"

namespace {

using namespace pgmr;

// Table III member configurations (paper's selected 4_PGMR systems).
const std::vector<std::pair<std::string, std::vector<std::string>>> kConfigs = {
    {"lenet5", {"ORG", "ConNorm", "FlipX", "Gamma(2.00)"}},
    {"convnet", {"ORG", "AdHist", "FlipX", "FlipY"}},
    {"resnet20", {"ORG", "FlipX", "FlipY", "Gamma(1.50)"}},
    {"densenet40", {"ORG", "ImAdj", "Gamma(1.50)", "Gamma(2.00)"}},
    {"alexnet", {"ORG", "FlipX", "FlipY", "Gamma(2.00)"}},
    {"resnet34", {"ORG", "FlipX", "FlipY", "Gamma(2.00)"}},
};

double plurality_accuracy(const mr::MemberVotes& votes,
                          const std::vector<std::int64_t>& labels) {
  std::int64_t correct = 0;
  for (std::size_t n = 0; n < labels.size(); ++n) {
    const mr::Decision d =
        mr::decide(mr::sample_votes(votes, static_cast<std::int64_t>(n)),
                   {0.0F, 1});
    if (d.label == labels[n]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace

int main() {
  bench::use_repo_cache();
  const perf::CostModel model;

  bench::rule("Figure 10: energy / latency / FP through RAMR and RADE");
  std::printf("%-12s %5s | %8s %8s %7s | %8s %8s %7s | %8s %8s %7s | %8s\n",
              "benchmark", "bits", "E 4PGMR", "L 4PGMR", "nFP", "E +RAMR",
              "L +RAMR", "nFP", "E +RADE", "L +RADE", "nFP", "L 2GPU");

  double sum_energy[3] = {0, 0, 0};
  double sum_latency[3] = {0, 0, 0};
  double sum_fp[3] = {0, 0, 0};
  double sum_latency_2gpu = 0.0;
  int count = 0;

  for (const auto& [id, members] : kConfigs) {
    const zoo::Benchmark& bm = zoo::find_benchmark(id);
    const data::DatasetSplits splits = zoo::benchmark_splits(bm);
    const Shape input{1, bm.input.channels, bm.input.size, bm.input.size};

    // Baseline cost and rates.
    nn::Network base_net = zoo::trained_network(bm, "ORG");
    const perf::InferenceCost base_cost =
        model.network_cost(base_net.cost(input), 32);
    const double base_val_acc = zoo::accuracy(base_net, splits.val);
    const double base_test_fp = 1.0 - zoo::accuracy(base_net, splits.test);

    auto evaluate_at_bits = [&](int bits) {
      mr::Ensemble e = zoo::make_ensemble(bm, members, bits);
      struct Result {
        mr::MemberVotes val, test;
        std::vector<perf::InferenceCost> costs;
      } r;
      r.val = e.member_votes(splits.val.images);
      r.test = e.member_votes(splits.test.images);
      r.costs = e.member_costs(input, model);
      return r;
    };

    // Stage 1: full-precision 4_PGMR. Profiling is restricted to
    // Thr_Freq >= 2: a 1-vote "agreement" carries no redundancy, and the
    // paper's RADE design activates the top Thr_Freq >= 2 networks first.
    auto full = evaluate_at_bits(32);
    auto profile = [&](const mr::MemberVotes& val_votes) {
      auto points = mr::sweep_thresholds(val_votes, splits.val.labels,
                                         mr::default_conf_grid());
      std::erase_if(points, [](const mr::SweepPoint& p) {
        return p.thresholds.freq < 2;
      });
      return *mr::select_by_tp_floor(mr::pareto_frontier(points),
                                     base_val_acc);
    };
    const mr::SweepPoint full_point = profile(full.val);
    const mr::Outcome full_outcome =
        mr::evaluate(full.test, splits.test.labels, full_point.thresholds);
    const perf::InferenceCost full_cost = model.system_sequential(full.costs);

    // Stage 2: RAMR — lowest precision that preserves both the ensemble's
    // plurality accuracy and its profiled validation FP at the TP floor
    // (the paper reduces precision "with no accuracy loss", which for a
    // reliability system must include the FP metric).
    const double full_acc = plurality_accuracy(full.val, splits.val.labels);
    const double full_val_fp = full_point.fp_rate;
    int bits = 32;
    auto reduced = evaluate_at_bits(32);
    for (int candidate : {20, 17, 16, 15, 14, 13, 12}) {
      auto trial = evaluate_at_bits(candidate);
      if (plurality_accuracy(trial.val, splits.val.labels) <
          full_acc - 0.005) {
        break;
      }
      const mr::SweepPoint trial_point = profile(trial.val);
      if (trial_point.fp_rate > full_val_fp * 1.2 + 0.002) break;
      bits = candidate;
      reduced = std::move(trial);
    }
    const mr::SweepPoint ramr_point = profile(reduced.val);
    const mr::Outcome ramr_outcome =
        mr::evaluate(reduced.test, splits.test.labels, ramr_point.thresholds);
    const perf::InferenceCost ramr_cost =
        model.system_sequential(reduced.costs);

    // Stage 3: RADE — staged activation on the reduced-precision system.
    const auto priority =
        mr::contribution_priority(reduced.val, splits.val.labels);
    const mr::StagedOutcome staged = mr::evaluate_staged(
        reduced.test, splits.test.labels, priority, ramr_point.thresholds);
    std::vector<perf::InferenceCost> priority_costs;
    for (std::size_t m : priority) priority_costs.push_back(reduced.costs[m]);
    const perf::InferenceCost rade_cost =
        model.system_staged(priority_costs, staged.activation_histogram);

    // 2-GPU scenario: staged activation dispatched in batches of two.
    double latency_2gpu = 0.0;
    {
      std::int64_t total_samples = 0;
      for (std::size_t k = 0; k < staged.activation_histogram.size(); ++k) {
        const std::vector<perf::InferenceCost> prefix(
            priority_costs.begin(),
            priority_costs.begin() + static_cast<std::ptrdiff_t>(k + 1));
        latency_2gpu += static_cast<double>(staged.activation_histogram[k]) *
                        model.system_batched(prefix, 2).latency_s;
        total_samples += staged.activation_histogram[k];
      }
      latency_2gpu /= static_cast<double>(total_samples);
    }

    const double fp_norm[3] = {full_outcome.fp_rate() / base_test_fp,
                               ramr_outcome.fp_rate() / base_test_fp,
                               staged.outcome.fp_rate() / base_test_fp};
    const perf::InferenceCost* costs[3] = {&full_cost, &ramr_cost, &rade_cost};

    std::printf("%-12s %5d |", id.c_str(), bits);
    for (int s = 0; s < 3; ++s) {
      const double e = costs[s]->energy_j / base_cost.energy_j;
      const double l = costs[s]->latency_s / base_cost.latency_s;
      sum_energy[s] += e;
      sum_latency[s] += l;
      sum_fp[s] += fp_norm[s];
      std::printf(" %7.2fx %7.2fx %6.1f%% |", e, l, 100.0 * fp_norm[s]);
    }
    sum_latency_2gpu += latency_2gpu / base_cost.latency_s;
    std::printf(" %7.2fx\n", latency_2gpu / base_cost.latency_s);
    ++count;
  }

  std::printf("%-12s %5s |", "average", "");
  for (int s = 0; s < 3; ++s) {
    std::printf(" %7.2fx %7.2fx %6.1f%% |", sum_energy[s] / count,
                sum_latency[s] / count, 100.0 * sum_fp[s] / count);
  }
  std::printf(" %7.2fx\n", sum_latency_2gpu / count);
  std::printf("\n(paper: 4_PGMR starts >4x; RAMR+RADE land at ~1.86x energy "
              "and ~1.86x latency with\n FP detection dropping only ~7%%; "
              "2-GPU staged latency approaches baseline)\n");
  return 0;
}
