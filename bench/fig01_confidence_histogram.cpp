// Figure 1: histogram of wrong answers grouped by prediction confidence
// (low 0-30 %, medium 30-60 %, high 60-90 %, very high 90-100 %),
// normalized by the number of evaluation samples, for every benchmark.
//
// Paper claims to reproduce: (a) ~10 % of all answers are high/very-high
// confidence wrong answers; (b) more accurate CNNs have a *larger share*
// of their errors at high confidence.
#include "bench_util.h"
#include "zoo/zoo.h"

int main() {
  using namespace pgmr;
  bench::use_repo_cache();

  bench::rule("Figure 1: wrong answers by confidence bin (fraction of test set)");
  std::printf("%-12s %-9s %8s %8s %8s %8s %14s\n", "CNN", "Accuracy",
              "low", "medium", "high", "v.high", "hi-conf share");

  for (const zoo::Benchmark& bm : zoo::all_benchmarks()) {
    nn::Network net = zoo::trained_network(bm, "ORG");
    const data::DatasetSplits splits = zoo::benchmark_splits(bm);
    const Tensor probs = zoo::probabilities_on(net, splits.test);

    std::int64_t bins[4] = {0, 0, 0, 0};
    std::int64_t correct = 0;
    const std::int64_t n = splits.test.size();
    for (std::int64_t i = 0; i < n; ++i) {
      if (probs.argmax_row(i) == splits.test.labels[static_cast<std::size_t>(i)]) {
        ++correct;
        continue;
      }
      const float conf = probs.max_row(i);
      const int bin = conf < 0.3F ? 0 : conf < 0.6F ? 1 : conf < 0.9F ? 2 : 3;
      ++bins[bin];
    }
    const double total = static_cast<double>(n);
    const std::int64_t wrong = n - correct;
    const double hi_share =
        wrong ? static_cast<double>(bins[2] + bins[3]) /
                    static_cast<double>(wrong)
              : 0.0;
    std::printf("%-12s %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% %12.1f%%\n",
                bm.id.c_str(), 100.0 * static_cast<double>(correct) / total,
                100.0 * static_cast<double>(bins[0]) / total,
                100.0 * static_cast<double>(bins[1]) / total,
                100.0 * static_cast<double>(bins[2]) / total,
                100.0 * static_cast<double>(bins[3]) / total,
                100.0 * hi_share);
  }
  std::printf("\n(paper: every ImageNet CNN shows ~10%% high/very-high "
              "confidence wrong answers,\n and the high-confidence share of "
              "errors grows with model accuracy)\n");
  return 0;
}
