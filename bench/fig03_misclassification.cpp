// Figure 3: misclassification-characteristics analysis.
//
// The paper manually inspected AlexNet's highest-confidence ImageNet errors
// and found three characteristics: poor image detail (occlusion/blur),
// multiple objects, and class similarity. Our generator exposes those as
// knobs, so the analysis becomes an ablation: evaluate the trained ConvNet
// on probe corpora in which exactly one characteristic is forced on, and
// report the error rate and the *high-confidence* (>= 90 %) error rate.
#include "bench_util.h"
#include "data/synthetic.h"

namespace {

struct Probe {
  const char* name;
  pgmr::data::SyntheticSpec spec;
};

}  // namespace

int main() {
  using namespace pgmr;
  bench::use_repo_cache();

  const zoo::Benchmark& bm = zoo::find_benchmark("convnet");
  nn::Network net = zoo::trained_network(bm, "ORG");

  // A clean control spec: same class structure as scifar, hard inputs off.
  data::SyntheticSpec control = data::scifar_spec(2000, /*seed=*/555);
  control.occlusion_prob = 0.0F;
  control.second_object_prob = 0.0F;
  control.class_similarity = 0.0F;

  std::vector<Probe> probes;
  probes.push_back({"control (all off)", control});

  data::SyntheticSpec occluded = control;
  occluded.occlusion_prob = 1.0F;
  occluded.occlusion_size = 0.4F;
  probes.push_back({"poor detail (occlusion)", occluded});

  data::SyntheticSpec multi = control;
  multi.second_object_prob = 1.0F;
  probes.push_back({"multiple objects", multi});

  data::SyntheticSpec similar = control;
  similar.class_similarity = 1.0F;
  probes.push_back({"class similarity", similar});

  bench::rule("Figure 3: error anatomy by misclassification characteristic");
  std::printf("%-26s %10s %16s %18s\n", "probe corpus", "error", "errors@conf>=90%",
              "share of errors hi-conf");
  for (const Probe& probe : probes) {
    const data::Dataset ds = data::generate_synthetic(probe.spec);
    const Tensor probs = zoo::probabilities_on(net, ds);
    std::int64_t wrong = 0, wrong_hi = 0;
    for (std::int64_t i = 0; i < ds.size(); ++i) {
      if (probs.argmax_row(i) != ds.labels[static_cast<std::size_t>(i)]) {
        ++wrong;
        if (probs.max_row(i) >= 0.9F) ++wrong_hi;
      }
    }
    const double n = static_cast<double>(ds.size());
    std::printf("%-26s %9.2f%% %15.2f%% %17.1f%%\n", probe.name,
                100.0 * static_cast<double>(wrong) / n,
                100.0 * static_cast<double>(wrong_hi) / n,
                wrong ? 100.0 * static_cast<double>(wrong_hi) /
                            static_cast<double>(wrong)
                      : 0.0);
  }
  std::printf("\n(paper: occlusion, multi-object scenes and similar classes "
              "account for the\n highest-confidence AlexNet errors — each probe "
              "must raise error and hi-conf error\n rates above the control)\n");
  return 0;
}
