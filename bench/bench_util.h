// Shared helpers for the figure/table benches.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "mr/evaluate.h"
#include "prep/preprocessor.h"
#include "zoo/zoo.h"

namespace pgmr::bench {

/// Points the zoo at the repository-level cache (prewarmed by
/// tools/prewarm_cache) unless the user already set PGMR_CACHE_DIR.
inline void use_repo_cache() {
#ifdef PGMR_REPO_CACHE_DIR
  ::setenv("PGMR_CACHE_DIR", PGMR_REPO_CACHE_DIR, /*overwrite=*/0);
#endif
}

/// Validation votes of one (benchmark, preprocessor, variant) member on a
/// dataset, computed by preprocessing then running the cached network.
inline std::vector<mr::Vote> member_votes_on(const zoo::Benchmark& bm,
                                             const std::string& spec,
                                             const data::Dataset& ds,
                                             int variant = 0) {
  nn::Network net = zoo::trained_network(bm, spec, variant);
  data::Dataset transformed = ds;
  transformed.images = prep::make_preprocessor(spec)->apply(transformed.images);
  return mr::votes_from_probabilities(zoo::probabilities_on(net, transformed));
}

/// Prints a separator line for readability in the bench transcripts.
inline void rule(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

/// One measured step of a closed-loop load: K clients, each holding exactly
/// one request in flight (submit, wait for the verdict, classify, repeat).
/// Unlike the open-loop flood, throughput here is self-clocked by service
/// latency, so ramping K exposes the concurrency knee of a serving stack.
struct ClosedLoopResult {
  std::size_t clients = 0;
  long long requests = 0;
  long long errors = 0;  ///< submissions or futures that threw
  std::int64_t tp = 0, fp = 0, unreliable = 0;
  double seconds = 0.0;

  double rps() const {
    return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  }
  double fp_rate() const {
    const std::int64_t reliable = tp + fp;
    return reliable ? static_cast<double>(fp) / static_cast<double>(reliable)
                    : 0.0;
  }
};

/// Drives `requests` submissions through `submit` with `clients` closed-loop
/// clients sharing one atomic request counter. `submit(i)` must return the
/// verdict future for global request index i (any Verdict-like with
/// `.label` / `.reliable`); `truth(i)` its ground-truth label. A submission
/// or future that throws counts as an error, not a served request.
template <typename SubmitFn, typename TruthFn>
ClosedLoopResult closed_loop_load(std::size_t clients, long long requests,
                                  SubmitFn&& submit, TruthFn&& truth) {
  ClosedLoopResult res;
  res.clients = clients == 0 ? 1 : clients;
  res.requests = requests;
  std::atomic<long long> next{0};
  std::atomic<long long> errors{0};
  std::atomic<std::int64_t> tp{0};
  std::atomic<std::int64_t> fp{0};
  std::atomic<std::int64_t> unreliable{0};
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> workers;
    workers.reserve(res.clients);
    for (std::size_t c = 0; c < res.clients; ++c) {
      workers.emplace_back([&] {
        for (long long i = next.fetch_add(1); i < requests;
             i = next.fetch_add(1)) {
          try {
            const auto v = submit(i).get();
            if (!v.reliable) {
              unreliable.fetch_add(1, std::memory_order_relaxed);
            } else if (v.label == truth(i)) {
              tp.fetch_add(1, std::memory_order_relaxed);
            } else {
              fp.fetch_add(1, std::memory_order_relaxed);
            }
          } catch (const std::exception&) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }  // joins the clients
  res.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  res.errors = errors.load();
  res.tp = tp.load();
  res.fp = fp.load();
  res.unreliable = unreliable.load();
  return res;
}

/// Concurrency ramp: doubles the client count 1, 2, 4, ... up to
/// `max_clients` (always measuring `max_clients` itself last if the
/// doubling overshoots it), stopping early once a step's marginal
/// throughput gain over the previous one falls below `knee_gain` — the
/// knee. Returns every step measured, in ramp order.
template <typename SubmitFn, typename TruthFn>
std::vector<ClosedLoopResult> closed_loop_ramp(std::size_t max_clients,
                                               long long requests_per_step,
                                               SubmitFn&& submit,
                                               TruthFn&& truth,
                                               double knee_gain = 0.10) {
  std::vector<ClosedLoopResult> steps;
  if (max_clients == 0) max_clients = 1;
  for (std::size_t k = 1; k <= max_clients;
       k = k * 2 > max_clients && k < max_clients ? max_clients : k * 2) {
    steps.push_back(closed_loop_load(k, requests_per_step, submit, truth));
    const std::size_t n = steps.size();
    if (n >= 2 &&
        steps[n - 1].rps() < steps[n - 2].rps() * (1.0 + knee_gain)) {
      break;  // past the knee: concurrency stopped buying throughput
    }
  }
  return steps;
}

/// The best-throughput step of a ramp (the knee or the last step).
inline const ClosedLoopResult& ramp_best(
    const std::vector<ClosedLoopResult>& steps) {
  const ClosedLoopResult* best = &steps.front();
  for (const ClosedLoopResult& s : steps) {
    if (s.rps() > best->rps()) best = &s;
  }
  return *best;
}

}  // namespace pgmr::bench
