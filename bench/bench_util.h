// Shared helpers for the figure/table benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "mr/evaluate.h"
#include "prep/preprocessor.h"
#include "zoo/zoo.h"

namespace pgmr::bench {

/// Points the zoo at the repository-level cache (prewarmed by
/// tools/prewarm_cache) unless the user already set PGMR_CACHE_DIR.
inline void use_repo_cache() {
#ifdef PGMR_REPO_CACHE_DIR
  ::setenv("PGMR_CACHE_DIR", PGMR_REPO_CACHE_DIR, /*overwrite=*/0);
#endif
}

/// Validation votes of one (benchmark, preprocessor, variant) member on a
/// dataset, computed by preprocessing then running the cached network.
inline std::vector<mr::Vote> member_votes_on(const zoo::Benchmark& bm,
                                             const std::string& spec,
                                             const data::Dataset& ds,
                                             int variant = 0) {
  nn::Network net = zoo::trained_network(bm, spec, variant);
  data::Dataset transformed = ds;
  transformed.images = prep::make_preprocessor(spec)->apply(transformed.images);
  return mr::votes_from_probabilities(zoo::probabilities_on(net, transformed));
}

/// Prints a separator line for readability in the bench transcripts.
inline void rule(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

}  // namespace pgmr::bench
