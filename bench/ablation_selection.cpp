// Ablation: greedy member selection vs fixed/naive selections (DESIGN.md
// ablation #3) on the ConvNet benchmark.
//
//   greedy        — Section III-G procedure (what PGMR ships with)
//   first-k       — ORG + the first three pool entries alphabetically
//   flips-only    — ORG + FlipX + FlipY + another flip-like cheap choice
//   random-k      — ORG + three seeded-random pool entries
//
// Every selection is threshold-profiled identically, so the difference is
// purely which members were picked.
#include "bench_util.h"
#include "polygraph/builder.h"

namespace {

using namespace pgmr;

double fp_detected(const zoo::Benchmark& bm,
                   const std::vector<std::string>& members,
                   const data::DatasetSplits& splits, double tp_floor,
                   double base_fp) {
  mr::MemberVotes val_votes, test_votes;
  for (const std::string& spec : members) {
    val_votes.push_back(bench::member_votes_on(bm, spec, splits.val));
    test_votes.push_back(bench::member_votes_on(bm, spec, splits.test));
  }
  const auto chosen = mr::select_by_tp_floor(
      mr::pareto_frontier(mr::sweep_thresholds(val_votes, splits.val.labels,
                                               mr::default_conf_grid())),
      tp_floor);
  const mr::Outcome o =
      mr::evaluate(test_votes, splits.test.labels, chosen->thresholds);
  return 1.0 - o.fp_rate() / base_fp;
}

}  // namespace

int main() {
  bench::use_repo_cache();

  const zoo::Benchmark& bm = zoo::find_benchmark("convnet");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);

  nn::Network base_net = zoo::trained_network(bm, "ORG");
  const double tp_floor = zoo::accuracy(base_net, splits.val);
  const double base_fp = 1.0 - zoo::accuracy(base_net, splits.test);

  const polygraph::GreedyResult greedy =
      polygraph::greedy_build(bm, zoo::candidate_pool(bm), 4);

  bench::rule("Ablation: member selection strategies (4-member ConvNet)");
  std::printf("%-14s %-52s %12s\n", "strategy", "members", "FP detected");

  const std::vector<std::pair<std::string, std::vector<std::string>>> cases = {
      {"greedy", greedy.selected},
      {"first-k", {"ORG", "AdHist", "ConNorm", "FlipX"}},
      {"flips-only", {"ORG", "FlipX", "FlipY", "Scale(0.80)"}},
      {"random-k", {"ORG", "Hist", "Gamma(2.00)", "ImAdj"}},
  };
  for (const auto& [name, members] : cases) {
    std::string desc;
    for (const std::string& m : members) desc += m + " ";
    std::printf("%-14s %-52s %11.1f%%\n", name.c_str(), desc.c_str(),
                100.0 * fp_detected(bm, members, splits, tp_floor, base_fp));
  }
  std::printf("\n(greedy should match or beat every fixed selection — it "
              "optimizes exactly the\n reported metric on validation)\n");
  return 0;
}
