// Microbenchmarks (google-benchmark) for the hot kernels: GEMM, im2col,
// convolution forward, preprocessors, and float truncation. Not a paper
// figure — used to track the substrate's performance.
#include <benchmark/benchmark.h>

#include "nn/conv2d.h"
#include "nn/gemm.h"
#include "nn/im2col.h"
#include "prep/preprocessor.h"
#include "quant/precision.h"
#include "tensor/random.h"

namespace {

using namespace pgmr;

void BM_GemmAccumulate(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = rng.uniform(-1.0F, 1.0F);
  for (auto& v : b) v = rng.uniform(-1.0F, 1.0F);
  for (auto _ : state) {
    nn::gemm_accumulate(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmAccumulate)->Arg(32)->Arg(64)->Arg(128);

void BM_Im2Col(benchmark::State& state) {
  nn::ConvGeometry geo{3, 24, 24, 3, 1, 1};
  Rng rng(2);
  std::vector<float> img(static_cast<std::size_t>(3 * 24 * 24));
  for (auto& v : img) v = rng.uniform(0.0F, 1.0F);
  std::vector<float> col(
      static_cast<std::size_t>(geo.patch_size() * geo.out_h() * geo.out_w()));
  for (auto _ : state) {
    nn::im2col(img.data(), geo, col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2D conv(3, 16, 3, 1, 1);
  conv.init(rng);
  Tensor x(Shape{8, 3, 24, 24});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0F, 1.0F);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          conv.cost(x.shape()).macs);
}
BENCHMARK(BM_ConvForward);

void BM_Preprocessor(benchmark::State& state, const char* spec) {
  const auto prep = prep::make_preprocessor(spec);
  Rng rng(4);
  Tensor batch(Shape{16, 3, 24, 24});
  for (std::int64_t i = 0; i < batch.numel(); ++i) {
    batch[i] = rng.uniform(0.0F, 1.0F);
  }
  for (auto _ : state) {
    Tensor out = prep->apply(batch);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK_CAPTURE(BM_Preprocessor, flipx, "FlipX");
BENCHMARK_CAPTURE(BM_Preprocessor, gamma, "Gamma(2.00)");
BENCHMARK_CAPTURE(BM_Preprocessor, adhist, "AdHist");
BENCHMARK_CAPTURE(BM_Preprocessor, connorm, "ConNorm");
BENCHMARK_CAPTURE(BM_Preprocessor, scale, "Scale(0.80)");

void BM_Truncate(benchmark::State& state) {
  Rng rng(5);
  Tensor t(Shape{1 << 16});
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-2.0F, 2.0F);
  for (auto _ : state) {
    Tensor copy = t;
    quant::truncate_tensor(copy, 14);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * t.numel());
}
BENCHMARK(BM_Truncate);

}  // namespace

BENCHMARK_MAIN();
