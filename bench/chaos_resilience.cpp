// Chaos-resilience campaign: a live 4-member lenet5/SMNIST ServingRuntime
// under injected member faults (crash, NaN softmax, latency spike, stored-
// weight bit flip). For every fault class the campaign reports
//
//   availability          served / submitted (must stay 1.0 for 1-of-4)
//   batches->quarantine   batches until the circuit breaker fences the
//                         faulty member (must be <= quarantine_after)
//   FP drift              reliable-verdict false-positive rate vs the
//                         fault-free baseline, in percentage points
//   recovery              requests until full quorum returns after the
//                         fault is cleared (half-open probe succeeds)
//
// A final kill-and-recover scenario exercises the self-healing pool end to
// end: member 0's weights are corrupted beyond healing (bogus archive), the
// scrubber fences it, the MemberReplacer hot-swaps a fresh zoo variant in,
// and post-recovery verdicts must be bit-identical to a never-faulted
// system of the recovered composition (zero SDC, 0pp FP drift).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <optional>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fault/chaos.h"
#include "fault/injector.h"
#include "polygraph/system.h"
#include "runtime/serving_runtime.h"

namespace {

using namespace pgmr;
using std::chrono::milliseconds;

constexpr int kMembers = 4;
constexpr int kQuarantineAfter = 3;
constexpr milliseconds kCooldown{50};
const char* const kPreps[kMembers] = {"ORG", "FlipX", "ConNorm",
                                      "Gamma(2.00)"};

/// A fault class exercised by one campaign phase.
struct FaultCase {
  const char* name;
  fault::ChaosFault chaos = fault::ChaosFault::none;
  bool flip_weight = false;  ///< high-exponent bit flip in the final FC
};

struct PhaseResult {
  long long submitted = 0;
  long long served = 0;    ///< futures that produced a verdict
  long long reliable = 0;
  long long fp = 0;
  long long degraded = 0;
  long long batches_to_quarantine = -1;  ///< -1 = breaker never tripped
  long long recovery_requests = -1;      ///< -1 = no recovery phase/failure

  double availability() const {
    return submitted ? static_cast<double>(served) /
                           static_cast<double>(submitted)
                     : 0.0;
  }
  double fp_rate() const {
    return reliable ? static_cast<double>(fp) / static_cast<double>(reliable)
                    : 0.0;
  }
};

runtime::ServingRuntime make_runtime(
    const zoo::Benchmark& bm,
    const std::shared_ptr<fault::ChaosInjector>& chaos) {
  mr::Ensemble ensemble;
  for (int m = 0; m < kMembers; ++m) {
    ensemble.add(mr::Member(
        fault::chaos_wrap(prep::make_preprocessor(kPreps[m]), chaos,
                          static_cast<std::size_t>(m)),
        zoo::trained_network(bm, kPreps[m])));
  }
  polygraph::PolygraphSystem system(std::move(ensemble));
  system.set_thresholds({0.5F, mr::majority_threshold(kMembers)});

  runtime::RuntimeOptions opts;
  opts.threads = 2;
  opts.max_batch = 8;
  opts.max_delay = std::chrono::microseconds(500);
  opts.quarantine_after = kQuarantineAfter;
  opts.quarantine_cooldown = kCooldown;
  return runtime::ServingRuntime(std::move(system), opts);
}

/// Serves `count` requests (one per batch) and folds them into `r`.
void serve_sequential(runtime::ServingRuntime& rt, const data::Dataset& test,
                      long long count, long long offset, PhaseResult& r) {
  const std::int64_t pool_n = test.size();
  for (long long i = 0; i < count; ++i) {
    const std::int64_t n = (offset + i) % pool_n;
    ++r.submitted;
    try {
      const polygraph::Verdict v = rt.submit(test.sample(n)).get();
      ++r.served;
      if (v.degraded) ++r.degraded;
      if (v.reliable) {
        ++r.reliable;
        if (v.label != test.labels[static_cast<std::size_t>(n)]) ++r.fp;
      }
    } catch (const std::exception&) {
      // lost request: counts against availability
    }
  }
}

PhaseResult run_phase(const zoo::Benchmark& bm, const data::Dataset& test,
                      const FaultCase& fc, long long requests) {
  auto chaos = std::make_shared<fault::ChaosInjector>(kMembers);
  runtime::ServingRuntime rt = make_runtime(bm, chaos);
  PhaseResult r;

  // The final Dense layer's bias is the last parameter tensor; bit 30 is
  // the exponent MSB, so the flip is a catastrophic silent corruption the
  // ABFT column-sum check must catch. (The bias, unlike a weight element,
  // contributes to every sample — a weight column can be silenced by a
  // ReLU-sparse input feature, making the fault fire only intermittently.)
  const fault::FaultSite flip_site{
      rt.system().ensemble().member(0).net().mutable_network().params().size() -
          1,
      0, 30};
  if (fc.chaos != fault::ChaosFault::none) {
    chaos->arm(0, fc.chaos, /*count=*/-1, milliseconds(2));
  }
  if (fc.flip_weight) {
    fault::inject(rt.system().ensemble().member(0).net().mutable_network(),
                  flip_site);
  }
  const bool faulted = fc.chaos != fault::ChaosFault::none || fc.flip_weight;

  // Phase A: one request per batch until the breaker trips (or the cap).
  for (long long b = 0; b < requests; ++b) {
    serve_sequential(rt, test, 1, b, r);
    if (rt.health().state(0) == runtime::MemberState::quarantined) {
      r.batches_to_quarantine = b + 1;
      break;
    }
  }

  // Phase B: open-loop load on whatever quorum is left.
  std::vector<std::future<polygraph::Verdict>> futures;
  const std::int64_t pool_n = test.size();
  for (long long i = 0; i < requests; ++i) {
    futures.push_back(rt.submit(test.sample(i % pool_n)));
    ++r.submitted;
  }
  for (long long i = 0; i < requests; ++i) {
    try {
      const polygraph::Verdict v = futures[static_cast<std::size_t>(i)].get();
      ++r.served;
      if (v.degraded) ++r.degraded;
      if (v.reliable) {
        ++r.reliable;
        if (v.label != test.labels[static_cast<std::size_t>(i % pool_n)]) {
          ++r.fp;
        }
      }
    } catch (const std::exception&) {
    }
  }

  // Phase C: clear the fault and measure recovery (half-open probe).
  if (faulted && r.batches_to_quarantine >= 0) {
    chaos->disarm(0);
    if (fc.flip_weight) {
      fault::inject(rt.system().ensemble().member(0).net().mutable_network(),
                    flip_site);  // XOR involution restores the weight
    }
    std::this_thread::sleep_for(kCooldown + milliseconds(10));
    for (long long i = 0; i < 16; ++i) {
      ++r.submitted;
      const polygraph::Verdict v = rt.submit(test.sample(i % pool_n)).get();
      ++r.served;
      if (!v.degraded) {
        r.recovery_requests = i + 1;
        break;
      }
    }
  }
  rt.shutdown();
  return r;
}

/// Outcome of the kill-and-recover scenario.
struct RecoveryResult {
  long long submitted = 0;
  long long served = 0;
  long long batches_to_recover = -1;  ///< -1 = quorum never returned to full
  long long compared = 0;             ///< post-recovery verdicts checked
  long long mismatches = 0;           ///< vs the never-faulted reference
  std::string replacement_prep;       ///< prep of the hot-swapped member
  runtime::MetricsSnapshot metrics;

  double availability() const {
    return submitted ? static_cast<double>(served) /
                           static_cast<double>(submitted)
                     : 0.0;
  }
};

/// Kills member 0 beyond healing and measures the full fence -> retrain ->
/// hot-swap -> probe loop under live traffic.
RecoveryResult run_recovery(const zoo::Benchmark& bm,
                            const data::Dataset& test) {
  const mr::Thresholds thresholds{0.5F, mr::majority_threshold(kMembers)};
  polygraph::PolygraphSystem system(
      zoo::make_ensemble(bm, {kPreps[0], kPreps[1], kPreps[2], kPreps[3]}));
  system.set_thresholds(thresholds);

  runtime::RuntimeOptions opts;
  opts.threads = 2;
  opts.max_batch = 8;
  opts.max_delay = std::chrono::microseconds(500);
  opts.quarantine_after = kQuarantineAfter;
  opts.quarantine_cooldown = kCooldown;
  opts.scrub_interval = milliseconds(5);
  opts.replacement.enabled = true;
  opts.replacement.poll = milliseconds(5);
  opts.replacement.factory = [&bm](std::size_t member, int attempt,
                                   std::stop_token cancel)
      -> std::optional<mr::Member> {
    const std::vector<std::string> in_use(kPreps, kPreps + kMembers);
    const zoo::ReplacementSpec spec =
        zoo::choose_replacement(bm, in_use, in_use[member], attempt);
    return zoo::make_replacement_member(bm, spec, 32, cancel);
  };
  runtime::ServingRuntime rt(std::move(system), opts);

  // Kill: corrupt the final FC bias (exponent MSB) and point the archive
  // somewhere unrecoverable, so the scrubber's heal must fail and fence.
  rt.with_swap_lock([&rt] {
    mr::Member& victim = rt.system().ensemble().member(0);
    victim.set_archive_source("/nonexistent/killed.net");
    fault::inject(victim.net().mutable_network(),
                  {victim.net().mutable_network().params().size() - 1, 0, 30});
  });

  // Serve one-request batches while the background loop fences and
  // replaces; recovery is complete once a swap landed and nothing is
  // fenced any more. The window is wall-clock, not a batch count: on a
  // cold cache the factory trains the replacement from scratch, and the
  // ensemble must keep serving (degraded) the whole time.
  RecoveryResult res;
  const std::int64_t pool_n = test.size();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(10);
  for (long long b = 0; std::chrono::steady_clock::now() < deadline; ++b) {
    ++res.submitted;
    try {
      rt.submit(test.sample(b % pool_n)).get();
      ++res.served;
    } catch (const std::exception&) {
    }
    if (rt.metrics().snapshot().replacements_completed >= 1 &&
        rt.health().fenced_count() == 0) {
      res.batches_to_recover = b + 1;
      break;
    }
  }
  res.replacement_prep = rt.system().ensemble().member(0).prep_name();

  if (res.batches_to_recover >= 0) {
    // The recovered composition, built fresh and never faulted: the live
    // runtime's verdicts must now be bit-identical to it.
    polygraph::PolygraphSystem reference(zoo::make_ensemble(
        bm, {res.replacement_prep, kPreps[1], kPreps[2], kPreps[3]}));
    reference.set_thresholds(thresholds);
    for (long long i = 0; i < 32; ++i) {
      const std::int64_t n = i % pool_n;
      ++res.submitted;
      const polygraph::Verdict live = rt.submit(test.sample(n)).get();
      ++res.served;
      const polygraph::Verdict want = reference.predict(test.sample(n));
      ++res.compared;
      if (live.label != want.label || live.reliable != want.reliable ||
          live.votes != want.votes || live.degraded) {
        ++res.mismatches;
      }
    }
  }
  res.metrics = rt.metrics_snapshot();
  rt.shutdown();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  pgmr::bench::use_repo_cache();
  const long long requests = argc > 1 ? std::atoll(argv[1]) : 64;
  const zoo::Benchmark& bm = zoo::find_benchmark("lenet5");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);

  const FaultCase cases[] = {
      {"baseline", fault::ChaosFault::none, false},
      {"member_exception", fault::ChaosFault::member_exception, false},
      {"nan_output", fault::ChaosFault::nan_output, false},
      {"latency_spike", fault::ChaosFault::latency_spike, false},
      {"weight_bit_flip", fault::ChaosFault::none, true},
  };

  pgmr::bench::rule("chaos resilience (4-member lenet5/SMNIST, 1 faulted)");
  std::printf("%-18s %6s %8s %8s %8s %8s %10s %9s\n", "fault", "avail",
              "degr%", "FP%", "drift", "quarant", "recovery", "verdict");
  double baseline_fp = 0.0;
  bool all_ok = true;
  for (const FaultCase& fc : cases) {
    const PhaseResult r = run_phase(bm, splits.test, fc, requests);
    if (fc.chaos == fault::ChaosFault::none && !fc.flip_weight) {
      baseline_fp = r.fp_rate();
    }
    const double drift_pp = (r.fp_rate() - baseline_fp) * 100.0;
    const bool is_fault = fc.chaos != fault::ChaosFault::none || fc.flip_weight;
    // Latency spikes are slow, not wrong: the breaker must NOT trip.
    const bool expect_quarantine =
        is_fault && fc.chaos != fault::ChaosFault::latency_spike;
    const bool ok =
        r.availability() >= 1.0 &&
        (!expect_quarantine || (r.batches_to_quarantine >= 0 &&
                                r.batches_to_quarantine <= kQuarantineAfter &&
                                r.recovery_requests >= 0)) &&
        (expect_quarantine || r.batches_to_quarantine < 0) &&
        drift_pp <= 1.0;
    all_ok = all_ok && ok;
    std::printf("%-18s %6.3f %8.1f %8.2f %+7.2fpp %8lld %10lld %9s\n", fc.name,
                r.availability(),
                100.0 * static_cast<double>(r.degraded) /
                    static_cast<double>(r.submitted),
                100.0 * r.fp_rate(), drift_pp,
                static_cast<long long>(r.batches_to_quarantine),
                static_cast<long long>(r.recovery_requests),
                ok ? "ok" : "VIOLATED");
  }
  pgmr::bench::rule("kill-and-recover (scrub fences member 0, hot-swap heals)");
  const RecoveryResult rec = run_recovery(bm, splits.test);
  const bool rec_ok = rec.availability() >= 1.0 &&
                      rec.batches_to_recover >= 0 && rec.compared > 0 &&
                      rec.mismatches == 0;
  all_ok = all_ok && rec_ok;
  std::printf("quorum restored in %lld batches (10 min window); slot 0 now %s\n",
              rec.batches_to_recover, rec.replacement_prep.c_str());
  std::printf("replacements: started %llu  completed %llu  failed %llu; "
              "quorum gauge %llu/%d\n",
              static_cast<unsigned long long>(
                  rec.metrics.replacements_started),
              static_cast<unsigned long long>(
                  rec.metrics.replacements_completed),
              static_cast<unsigned long long>(rec.metrics.replacements_failed),
              static_cast<unsigned long long>(rec.metrics.quorum_size),
              kMembers);
  std::printf("availability %.3f; post-recovery verdicts vs never-faulted "
              "reference: %lld compared, %lld mismatched -> %s\n",
              rec.availability(), rec.compared, rec.mismatches,
              rec_ok ? "ok" : "VIOLATED");

  std::printf("\nacceptance: every request served, quarantine <= %d batches, "
              "FP drift <= 1pp, recovery bit-identical -> %s\n",
              kQuarantineAfter, all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
