// Figure 6: prediction accuracy vs unified numeric precision, standalone
// AlexNet vs a 4-network PolygraphMR system (RAMR motivation).
//
// Paper claims to reproduce: both degrade gracefully, but the ensemble
// tolerates 2-4 fewer bits before losing the baseline accuracy level
// (paper: ORG holds to 17 bits, 4_PGMR to 14 bits).
#include "bench_util.h"
#include "mr/ensemble.h"

namespace {

// Plurality-vote accuracy of the ensemble's decision-engine label.
double system_accuracy(pgmr::mr::Ensemble& ensemble,
                       const pgmr::data::Dataset& ds) {
  const pgmr::mr::MemberVotes votes = ensemble.member_votes(ds.images);
  std::int64_t correct = 0;
  for (std::size_t n = 0; n < ds.labels.size(); ++n) {
    const pgmr::mr::Decision d =
        pgmr::mr::decide(pgmr::mr::sample_votes(votes, static_cast<std::int64_t>(n)),
                         {0.0F, 1});
    if (d.label == ds.labels[n]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.labels.size());
}

}  // namespace

int main() {
  using namespace pgmr;
  bench::use_repo_cache();

  const zoo::Benchmark& bm = zoo::find_benchmark("alexnet");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  const std::vector<std::string> members = {"ORG", "FlipX", "FlipY",
                                            "Gamma(2.00)"};

  bench::rule("Figure 6: accuracy vs precision (AlexNet tier)");
  std::printf("%6s %14s %14s\n", "bits", "ORG accuracy", "4_PGMR accuracy");

  double base_org = 0.0, base_pgmr = 0.0;
  int org_floor = 32, pgmr_floor = 32;
  for (int bits : {32, 24, 20, 18, 17, 16, 15, 14, 13, 12, 11, 10}) {
    mr::Ensemble single = zoo::make_ensemble(bm, {"ORG"}, bits);
    const double org_acc = system_accuracy(single, splits.test);
    mr::Ensemble system = zoo::make_ensemble(bm, members, bits);
    const double pgmr_acc = system_accuracy(system, splits.test);
    if (bits == 32) {
      base_org = org_acc;
      base_pgmr = pgmr_acc;
    }
    // Track the lowest precision that keeps accuracy within 0.5 % of full.
    if (org_acc >= base_org - 0.005) org_floor = bits;
    if (pgmr_acc >= base_pgmr - 0.005) pgmr_floor = bits;
    std::printf("%6d %13.2f%% %13.2f%%\n", bits, 100.0 * org_acc,
                100.0 * pgmr_acc);
  }
  std::printf("\nlowest precision holding full accuracy (-0.5%% slack): "
              "ORG %d bits, 4_PGMR %d bits\n", org_floor, pgmr_floor);
  std::printf("(paper: ORG holds to 17 bits, 4_PGMR to 14 bits — the ensemble "
              "absorbs individual\n members' quantization error)\n");
  return 0;
}
