// Discussion (Section IV-C): reliability-per-cost of "buy a bigger
// network" vs "wrap the small network in PolygraphMR".
//
// Paper: DenseNet40 cuts ResNet20's FP by 18 % at >6x the MACs, while
// 4_PGMR on ResNet20 cuts FP by 49 % at 4x (1.6x after optimizations) —
// the MR route is the better reliability-per-FLOP trade.
#include "bench_util.h"
#include "mr/pareto.h"
#include "mr/rade.h"
#include "perf/cost_model.h"

int main() {
  using namespace pgmr;
  bench::use_repo_cache();

  const zoo::Benchmark& r20 = zoo::find_benchmark("resnet20");
  const zoo::Benchmark& d40 = zoo::find_benchmark("densenet40");
  const data::DatasetSplits splits = zoo::benchmark_splits(r20);
  const Shape input{1, 3, 16, 16};
  const perf::CostModel model;

  nn::Network resnet = zoo::trained_network(r20, "ORG");
  nn::Network densenet = zoo::trained_network(d40, "ORG");
  const double r20_fp = 1.0 - zoo::accuracy(resnet, splits.test);
  const double d40_fp = 1.0 - zoo::accuracy(densenet, splits.test);
  const double r20_macs = static_cast<double>(resnet.cost(input).macs);
  const double d40_macs = static_cast<double>(densenet.cost(input).macs);

  // 4_PGMR on ResNet20, profiled at the TP floor; cost at full precision
  // and with RAMR(16b)+RADE.
  const std::vector<std::string> members = {"ORG", "FlipX", "FlipY",
                                            "Gamma(1.50)"};
  mr::MemberVotes val_votes, test_votes;
  for (const std::string& spec : members) {
    val_votes.push_back(bench::member_votes_on(r20, spec, splits.val));
    test_votes.push_back(bench::member_votes_on(r20, spec, splits.test));
  }
  const double tp_floor = zoo::accuracy(resnet, splits.val);
  const auto chosen = mr::select_by_tp_floor(
      mr::pareto_frontier(mr::sweep_thresholds(val_votes, splits.val.labels,
                                               mr::default_conf_grid())),
      tp_floor);
  const mr::Outcome pgmr =
      mr::evaluate(test_votes, splits.test.labels, chosen->thresholds);

  // Staged cost with 16-bit members.
  const auto priority = mr::contribution_priority(val_votes, splits.val.labels);
  const mr::StagedOutcome staged = mr::evaluate_staged(
      test_votes, splits.test.labels, priority, chosen->thresholds);
  const perf::InferenceCost base_cost = model.network_cost(resnet.cost(input), 32);
  std::vector<perf::InferenceCost> member_costs(
      4, model.network_cost(resnet.cost(input), 16));
  const perf::InferenceCost staged_cost =
      model.system_staged(member_costs, staged.activation_histogram);

  bench::rule("Discussion: reliability per unit of compute (ResNet20 tier)");
  std::printf("%-28s %12s %14s\n", "design", "FP reduced", "relative cost");
  std::printf("%-28s %11.1f%% %13.1fx   (MACs)\n", "upgrade to DenseNet40",
              100.0 * (1.0 - d40_fp / r20_fp), d40_macs / r20_macs);
  std::printf("%-28s %11.1f%% %13.1fx   (energy, full precision)\n",
              "4_PGMR on ResNet20",
              100.0 * (1.0 - pgmr.fp_rate() / r20_fp), 4.0);
  std::printf("%-28s %11.1f%% %13.2fx   (energy, RAMR 16b + RADE)\n",
              "4_PGMR + RAMR + RADE",
              100.0 * (1.0 - staged.outcome.fp_rate() / r20_fp),
              staged_cost.energy_j / base_cost.energy_j);
  std::printf("\n(paper: DenseNet40 buys an 18%% FP cut for >6x compute; "
              "4_PGMR buys 46-49%% for\n 1.6-4x — wrapping beats upgrading, "
              "and the two compose)\n");
  return 0;
}
