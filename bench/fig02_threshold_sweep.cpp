// Figure 2: true-positive and false-positive rates of single networks as a
// function of the confidence threshold.
//
// Paper claims to reproduce: (a) TP curves fall roughly in parallel across
// CNNs; (b) FP curves of *more accurate* CNNs start lower but decay slower,
// crossing the less-accurate CNNs' curves at high thresholds (more accurate
// models are harder to de-risk by thresholding).
#include "bench_util.h"
#include "mr/pareto.h"

int main() {
  using namespace pgmr;
  bench::use_repo_cache();

  const std::vector<float> grid = {0.0F,  0.1F, 0.2F, 0.3F, 0.4F, 0.5F,
                                   0.6F,  0.7F, 0.8F, 0.9F, 0.95F, 0.99F};

  bench::rule("Figure 2a: TP rate vs confidence threshold");
  std::printf("%-12s", "threshold");
  for (float t : grid) std::printf("%7.2f", static_cast<double>(t));
  std::printf("\n");

  std::vector<std::vector<double>> fp_curves;
  std::vector<std::string> names;
  for (const zoo::Benchmark& bm : zoo::all_benchmarks()) {
    nn::Network net = zoo::trained_network(bm, "ORG");
    const data::DatasetSplits splits = zoo::benchmark_splits(bm);
    const Tensor probs = zoo::probabilities_on(net, splits.test);
    const auto points = mr::sweep_single(probs, splits.test.labels, grid);

    std::printf("%-12s", bm.id.c_str());
    std::vector<double> fps;
    for (const auto& p : points) {
      std::printf("%6.1f%%", 100.0 * p.tp_rate);
      fps.push_back(p.fp_rate);
    }
    std::printf("\n");
    fp_curves.push_back(std::move(fps));
    names.push_back(bm.id);
  }

  bench::rule("Figure 2b: FP rate vs confidence threshold");
  std::printf("%-12s", "threshold");
  for (float t : grid) std::printf("%7.2f", static_cast<double>(t));
  std::printf("\n");
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("%-12s", names[i].c_str());
    for (double fp : fp_curves[i]) std::printf("%6.2f%%", 100.0 * fp);
    std::printf("\n");
  }
  std::printf("\n(paper: higher-accuracy CNNs start with lower FP but decay "
              "slower; curves cross\n at high thresholds — thresholding cannot "
              "purge the overconfident errors)\n");
  return 0;
}
