// Figure 7: histogram of prediction agreements in a 4-CNN system on
// LeNet-5, ConvNet and AlexNet (no thresholds — raw top-1 votes).
//
// Paper claim to reproduce: in well over half of the inputs all four
// networks already agree, which motivates staged activation (RADE).
#include "bench_util.h"
#include "mr/decision.h"

int main() {
  using namespace pgmr;
  bench::use_repo_cache();

  const std::vector<std::pair<std::string, std::vector<std::string>>> systems = {
      {"lenet5", {"ORG", "ConNorm", "FlipX", "Gamma(2.00)"}},
      {"convnet", {"ORG", "AdHist", "FlipX", "FlipY"}},
      {"alexnet", {"ORG", "FlipX", "FlipY", "Gamma(2.00)"}},
  };

  bench::rule("Figure 7: agreement histogram in a 4-CNN system");
  std::printf("%-12s %12s %12s %12s %12s\n", "benchmark", "agree=1",
              "agree=2", "agree=3", "agree=4");

  for (const auto& [id, members] : systems) {
    const zoo::Benchmark& bm = zoo::find_benchmark(id);
    const data::DatasetSplits splits = zoo::benchmark_splits(bm);
    mr::MemberVotes votes;
    for (const std::string& spec : members) {
      votes.push_back(bench::member_votes_on(bm, spec, splits.test));
    }

    std::int64_t histogram[4] = {0, 0, 0, 0};
    const std::int64_t n = splits.test.size();
    for (std::int64_t i = 0; i < n; ++i) {
      const int agree = mr::max_agreement(mr::sample_votes(votes, i));
      ++histogram[agree - 1];
    }
    std::printf("%-12s", id.c_str());
    for (int a = 0; a < 4; ++a) {
      std::printf("%11.1f%%", 100.0 * static_cast<double>(histogram[a]) /
                                  static_cast<double>(n));
    }
    std::printf("\n");
  }
  std::printf("\n(paper: >50%% of inputs have all four networks in agreement "
              "— activating every\n member on every input is wasted work)\n");
  return 0;
}
