// Extension: out-of-distribution flagging (the related-work family the
// paper cites: Hendrycks & Gimpel '16, ODIN '17). PolygraphMR's
// "unreliable" verdict doubles as an OOD detector: members trained on the
// in-distribution corpus disagree on alien inputs.
//
// Probes: (a) a shifted-generator corpus (same classes, different render
// seed statistics — near-OOD), (b) pure noise (far-OOD), (c) a different
// tier's images resized — all scored by how often the system flags them,
// compared against the single-network max-softmax baseline at the same
// in-distribution acceptance rate.
#include "bench_util.h"
#include "mr/pareto.h"

namespace {

using namespace pgmr;

double flagged_fraction(const mr::MemberVotes& votes, const mr::Thresholds& t) {
  std::int64_t flagged = 0;
  const std::int64_t n = static_cast<std::int64_t>(votes.front().size());
  for (std::int64_t i = 0; i < n; ++i) {
    if (!mr::decide(mr::sample_votes(votes, i), t).reliable) ++flagged;
  }
  return static_cast<double>(flagged) / static_cast<double>(n);
}

double flagged_single(const std::vector<mr::Vote>& votes, float conf) {
  std::int64_t flagged = 0;
  for (const mr::Vote& v : votes) {
    if (v.confidence < conf) ++flagged;
  }
  return static_cast<double>(flagged) / static_cast<double>(votes.size());
}

}  // namespace

int main() {
  bench::use_repo_cache();

  const zoo::Benchmark& bm = zoo::find_benchmark("convnet");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  const std::vector<std::string> members = {"ORG", "AdHist", "FlipX", "FlipY"};

  // Build probes.
  data::SyntheticSpec shifted = data::scifar_spec(1000, /*seed=*/9999);
  shifted.jitter *= 1.8F;
  shifted.brightness_jitter = 0.45F;
  const data::Dataset near_ood = data::generate_synthetic(shifted);

  data::Dataset noise;
  {
    Rng rng(77);
    noise.name = "noise";
    noise.num_classes = 10;
    noise.images = Tensor(Shape{1000, 3, 16, 16});
    for (std::int64_t i = 0; i < noise.images.numel(); ++i) {
      noise.images[i] = rng.uniform(0.0F, 1.0F);
    }
    noise.labels.assign(1000, 0);
  }

  data::SyntheticSpec alien_spec = data::smnist_spec(1000, /*seed=*/4242);
  alien_spec.channels = 3;  // render the MNIST-tier glyphs in color at 16px
  const data::Dataset alien = data::generate_synthetic(alien_spec);

  // Member votes on each corpus.
  auto votes_on = [&](const data::Dataset& ds) {
    mr::MemberVotes votes;
    for (const std::string& spec : members) {
      votes.push_back(bench::member_votes_on(bm, spec, ds));
    }
    return votes;
  };
  const mr::MemberVotes in_dist = votes_on(splits.test);
  const mr::MemberVotes probes[] = {votes_on(near_ood), votes_on(noise),
                                    votes_on(alien)};
  // The third probe shares the renderer family with the training tier at
  // easier settings — a negative control that should NOT be flagged.
  const char* probe_names[] = {"near-OOD (shifted generator)",
                               "far-OOD (uniform noise)",
                               "negative control (easy glyphs)"};

  // Operating point: flag at most ~10 % of in-distribution inputs.
  constexpr double kBudget = 0.10;
  mr::Thresholds best{0.0F, 1};
  double best_flagged = 0.0;
  for (float conf : mr::default_conf_grid()) {
    for (int freq = 1; freq <= 4; ++freq) {
      const double f = flagged_fraction(in_dist, {conf, freq});
      if (f <= kBudget && f >= best_flagged) {
        best_flagged = f;
        best = {conf, freq};
      }
    }
  }
  // Matched single-network baseline: pick the max-softmax threshold with
  // the same in-distribution flag budget.
  float single_conf = 0.0F;
  for (float conf : mr::default_conf_grid()) {
    if (flagged_single(in_dist[0], conf) <= kBudget) single_conf = conf;
  }

  bench::rule("Extension: OOD flagging at a 10% in-distribution budget");
  std::printf("system operating point: Thr_Conf=%.2f Thr_Freq=%d "
              "(flags %.1f%% in-dist)\n",
              static_cast<double>(best.conf), best.freq, 100.0 * best_flagged);
  std::printf("baseline max-softmax threshold: %.2f (flags %.1f%% in-dist)\n\n",
              static_cast<double>(single_conf),
              100.0 * flagged_single(in_dist[0], single_conf));
  std::printf("%-30s %14s %18s\n", "probe corpus", "PGMR flags",
              "max-softmax flags");
  for (int p = 0; p < 3; ++p) {
    std::printf("%-30s %13.1f%% %17.1f%%\n", probe_names[p],
                100.0 * flagged_fraction(probes[p], best),
                100.0 * flagged_single(probes[p][0], single_conf));
  }
  std::printf("\n(a higher flag rate on OOD probes at the same in-dist budget "
              "means better OOD\n separation; PGMR's disagreement signal adds "
              "to pure confidence)\n");
  return 0;
}
