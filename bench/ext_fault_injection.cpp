// Extension: transient-fault campaigns (the classic DSN failure mode the
// paper contrasts with in Section V) — does PolygraphMR's redundancy also
// mask hardware bit flips?
//
// Campaign: random weight-bit flips in ONE member of the 4-member ConvNet
// system vs the same flips in the standalone network. Reported per bit
// class: masked / degraded / corrupted rates for the standalone network,
// and the system-level misprediction change for PGMR.
#include "bench_util.h"
#include "fault/injector.h"
#include "mr/decision.h"

namespace {

using namespace pgmr;

double system_error_rate(std::vector<nn::Network>& nets,
                         const std::vector<std::unique_ptr<prep::Preprocessor>>& preps,
                         const data::Dataset& ds) {
  mr::MemberVotes votes;
  for (std::size_t m = 0; m < nets.size(); ++m) {
    data::Dataset transformed = ds;
    transformed.images = preps[m]->apply(transformed.images);
    votes.push_back(mr::votes_from_probabilities(
        zoo::probabilities_on(nets[m], transformed)));
  }
  std::int64_t wrong = 0;
  for (std::size_t n = 0; n < ds.labels.size(); ++n) {
    const mr::Decision d = mr::decide(
        mr::sample_votes(votes, static_cast<std::int64_t>(n)), {0.0F, 1});
    if (d.label != ds.labels[n]) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(ds.labels.size());
}

}  // namespace

int main() {
  bench::use_repo_cache();

  const zoo::Benchmark& bm = zoo::find_benchmark("convnet");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  const data::Dataset probe = splits.test.slice(0, 300);
  const std::vector<std::string> specs = {"ORG", "AdHist", "FlipX", "FlipY"};

  // Standalone campaigns per bit class.
  bench::rule("Extension: transient weight-fault campaigns (ConvNet)");
  nn::Network solo = zoo::trained_network(bm, "ORG");
  struct BitClass {
    const char* name;
    int lo, hi;
  };
  const BitClass classes[] = {{"mantissa low (0-11)", 0, 11},
                              {"mantissa high (12-22)", 12, 22},
                              {"exponent (23-30)", 23, 30},
                              {"sign (31)", 31, 31}};
  std::printf("standalone network, 120 single-bit flips per class:\n");
  std::printf("%-24s %9s %10s %11s\n", "bit class", "masked", "degraded",
              "corrupted");
  Rng rng(404);
  for (const BitClass& c : classes) {
    std::vector<fault::FaultSite> sites;
    while (sites.size() < 120) {
      auto s = fault::sample_sites(solo, 1, rng, 31);
      if (s[0].bit >= c.lo && s[0].bit <= c.hi) sites.push_back(s[0]);
    }
    const fault::CampaignResult r =
        fault::run_campaign(solo, probe.images, probe.labels, sites);
    std::printf("%-24s %8.1f%% %9.1f%% %10.1f%%\n", c.name,
                100.0 * r.masked_rate(),
                100.0 * static_cast<double>(r.degraded) /
                    static_cast<double>(r.trials),
                100.0 * r.corrupted_rate());
  }

  // System-level: flip exponent bits in one member; measure the plurality
  // system's error-rate movement vs the standalone network's.
  std::vector<nn::Network> nets;
  std::vector<std::unique_ptr<prep::Preprocessor>> preps;
  for (const std::string& spec : specs) {
    nets.push_back(zoo::trained_network(bm, spec));
    preps.push_back(prep::make_preprocessor(spec));
  }
  const double clean_system = system_error_rate(nets, preps, probe);
  const Tensor solo_probs = zoo::probabilities_on(nets[0], probe);
  std::int64_t solo_wrong = 0;
  for (std::size_t n = 0; n < probe.labels.size(); ++n) {
    if (solo_probs.argmax_row(static_cast<std::int64_t>(n)) !=
        probe.labels[n]) {
      ++solo_wrong;
    }
  }
  const double clean_solo = static_cast<double>(solo_wrong) /
                            static_cast<double>(probe.labels.size());

  std::printf("\nexponent-bit flips injected into ONE member (20 trials):\n");
  std::printf("%-28s %12s %12s\n", "", "solo error", "system error");
  std::printf("%-28s %11.2f%% %11.2f%%\n", "clean", 100.0 * clean_solo,
              100.0 * clean_system);
  double worst_solo = clean_solo, worst_system = clean_system;
  Rng rng2(505);
  for (int trial = 0; trial < 20; ++trial) {
    auto sites = fault::sample_sites(nets[0], 1, rng2, 31);
    sites[0].bit = 23 + static_cast<int>(rng2.randint(0, 7));
    const float original = fault::inject(nets[0], sites[0]);

    const Tensor faulty_probs = zoo::probabilities_on(nets[0], probe);
    std::int64_t wrong = 0;
    for (std::size_t n = 0; n < probe.labels.size(); ++n) {
      if (faulty_probs.argmax_row(static_cast<std::int64_t>(n)) !=
          probe.labels[n]) {
        ++wrong;
      }
    }
    worst_solo = std::max(worst_solo,
                          static_cast<double>(wrong) /
                              static_cast<double>(probe.labels.size()));
    worst_system =
        std::max(worst_system, system_error_rate(nets, preps, probe));
    fault::restore(nets[0], sites[0], original);
  }
  std::printf("%-28s %11.2f%% %11.2f%%\n", "worst case under fault",
              100.0 * worst_solo, 100.0 * worst_system);
  std::printf("\n(redundancy bounds the system-level damage of a fault in "
              "one member: the other\n three members outvote it)\n");
  return 0;
}
