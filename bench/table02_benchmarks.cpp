// Table II: the benchmark set — datasets, CNNs and baseline accuracies.
//
// Trains (or loads from cache) the baseline network of every benchmark and
// prints the paper's Table II columns with our measured stand-in numbers.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "zoo/zoo.h"

namespace {

std::int64_t count_layers(const pgmr::nn::Network& net) {
  // Parameterized layers only, approximating the paper's layer counts.
  std::int64_t count = 0;
  for (const auto& layer : net.layers()) {
    if (layer->kind() == "conv2d" || layer->kind() == "dense") ++count;
    if (layer->kind() == "residual") count += 2;   // two convs per basic block
    if (layer->kind() == "denseblock") count += 3; // one conv per unit
  }
  return count;
}

}  // namespace

int main() {
  using pgmr::zoo::Benchmark;
  pgmr::bench::use_repo_cache();

  std::printf("Table II: benchmark set used to evaluate PolygraphMR\n");
  std::printf("(synthetic-data reproduction; see DESIGN.md for tier mapping)\n\n");
  std::printf("%-12s %-12s %-10s %-10s %-9s %-8s\n", "Dataset", "CNN",
              "Accuracy", "Val-Acc", "#Layers", "#Classes");

  for (const Benchmark& bm : pgmr::zoo::all_benchmarks()) {
    const auto t0 = std::chrono::steady_clock::now();
    pgmr::nn::Network net = pgmr::zoo::trained_network(bm, "ORG");
    const auto t1 = std::chrono::steady_clock::now();
    const pgmr::data::DatasetSplits splits = pgmr::zoo::benchmark_splits(bm);
    const double test_acc = pgmr::zoo::accuracy(net, splits.test);
    const double val_acc = pgmr::zoo::accuracy(net, splits.val);
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    std::printf("%-12s %-12s %-9.2f%% %-9.2f%% %-9lld %-8lld  (train/load %.1fs)\n",
                bm.dataset_id.c_str(), bm.id.c_str(), 100.0 * test_acc,
                100.0 * val_acc,
                static_cast<long long>(count_layers(net)),
                static_cast<long long>(bm.input.classes), secs);
  }
  std::printf("\nPaper reference accuracies: LeNet-5 99.01%%, ConvNet 74.70%%, "
              "ResNet20 91.50%%,\nDenseNet40 93.07%%, AlexNet 57.40%%, "
              "ResNet34 71.46%%\n");
  return 0;
}
