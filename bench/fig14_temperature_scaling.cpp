// Figure 14: temperature-scaling calibration on the ImageNet-tier
// benchmarks — FP and TP rates vs confidence threshold before and after
// scaling, plus the (unchanged) TP/FP Pareto frontier.
//
// Paper claims to reproduce: scaling lowers both curves (confidences
// shrink) but the Pareto frontier of TP vs FP is identical — a single
// temperature cannot separate correct from wrong answers, so the
// reliability problem remains.
#include "bench_util.h"
#include "calib/temperature.h"
#include "mr/pareto.h"
#include "nn/softmax.h"

int main() {
  using namespace pgmr;
  bench::use_repo_cache();

  const std::vector<float> grid = {0.0F, 0.2F, 0.4F, 0.6F, 0.8F, 0.9F, 0.99F};

  for (const char* id : {"alexnet", "resnet34", "resnet20", "densenet40"}) {
    const zoo::Benchmark& bm = zoo::find_benchmark(id);
    const data::DatasetSplits splits = zoo::benchmark_splits(bm);
    nn::Network net = zoo::trained_network(bm, "ORG");

    // Fit T on validation logits, evaluate on test logits.
    const Tensor val_logits = zoo::logits_on(net, splits.val);
    const float temperature =
        calib::fit_temperature(val_logits, splits.val.labels);
    const Tensor test_logits = zoo::logits_on(net, splits.test);
    const Tensor raw = nn::softmax(test_logits);
    const Tensor scaled =
        nn::softmax_with_temperature(test_logits, temperature);

    char title[128];
    std::snprintf(title, sizeof(title),
                  "Figure 14 (%s): temperature T = %.2f", id,
                  static_cast<double>(temperature));
    bench::rule(title);

    std::printf("ECE before %.4f, after %.4f\n",
                calib::expected_calibration_error(raw, splits.test.labels),
                calib::expected_calibration_error(scaled, splits.test.labels));

    std::printf("%10s | %9s %9s | %9s %9s\n", "threshold", "TP orig",
                "FP orig", "TP scaled", "FP scaled");
    for (float t : grid) {
      const mr::Outcome o = mr::evaluate_single(raw, splits.test.labels, t);
      const mr::Outcome s = mr::evaluate_single(scaled, splits.test.labels, t);
      std::printf("%10.2f | %8.2f%% %8.2f%% | %8.2f%% %8.2f%%\n",
                  static_cast<double>(t), 100.0 * o.tp_rate(),
                  100.0 * o.fp_rate(), 100.0 * s.tp_rate(),
                  100.0 * s.fp_rate());
    }

    // Pareto frontiers before/after must coincide (scaling is monotone in
    // the top-1 confidence, so the achievable (TP, FP) set is unchanged).
    const auto dense_grid = mr::default_conf_grid();
    auto frontier = [&](const Tensor& probs) {
      return mr::pareto_frontier(
          mr::sweep_single(probs, splits.test.labels, dense_grid));
    };
    const auto before = frontier(raw);
    // Sweep the scaled probabilities over a grid transformed to hit the
    // same operating points.
    std::vector<float> scaled_grid;
    for (std::int64_t n = 0; n < scaled.shape()[0]; ++n) {
      scaled_grid.push_back(scaled.max_row(n) - 1e-6F);
    }
    const auto after = mr::pareto_frontier(
        mr::sweep_single(scaled, splits.test.labels, scaled_grid));

    // The achievable (TP, FP) set is essentially unchanged: for every
    // original frontier point, the scaled frontier offers (at least) the
    // same TP at (nearly) the same FP. Report the worst FP deviation.
    double worst_gap = 0.0;
    for (const auto& p : before) {
      double best_fp = 1.0;
      for (const auto& q : after) {
        if (q.tp_rate >= p.tp_rate - 1e-9) best_fp = std::min(best_fp, q.fp_rate);
      }
      worst_gap = std::max(worst_gap, std::abs(best_fp - p.fp_rate));
    }
    std::printf("max FP deviation between pre/post-scaling frontiers: "
                "%.2f points\n", 100.0 * worst_gap);
  }
  std::printf("\n(paper: both TP and FP drop at a fixed threshold — but the "
              "Pareto frontier is\n untouched, so calibration does not solve "
              "the reliability problem)\n");
  return 0;
}
