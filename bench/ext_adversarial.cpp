// Extension: adversarial inputs vs PolygraphMR (paper Section V's
// adversarial-robustness related work).
//
// FGSM examples are crafted against the *baseline* member (white-box for
// ORG, black-box for the preprocessed members). Each preprocessed member
// sees a transformed version of the perturbation, which is exactly the
// transferability barrier the Section V defenses aim for — so the
// interesting question is how many adversarial wrong answers the decision
// engine flags as unreliable, compared to a max-softmax gate at the same
// clean operating point.
#include "adv/fgsm.h"
#include "bench_util.h"
#include "mr/pareto.h"

namespace {

using namespace pgmr;

struct GateScore {
  double accepted_wrong;  // undetected mispredictions (FP) on the corpus
  double accuracy;        // raw top-1 accuracy of the final label
};

GateScore score_system(const mr::MemberVotes& votes,
                       const std::vector<std::int64_t>& labels,
                       const mr::Thresholds& t) {
  const mr::Outcome o = mr::evaluate(votes, labels, t);
  GateScore s;
  s.accepted_wrong = o.fp_rate();
  std::int64_t correct = 0;
  for (std::size_t n = 0; n < labels.size(); ++n) {
    const mr::Decision d = mr::decide(
        mr::sample_votes(votes, static_cast<std::int64_t>(n)), {0.0F, 1});
    if (d.label == labels[n]) ++correct;
  }
  s.accuracy = static_cast<double>(correct) / static_cast<double>(labels.size());
  return s;
}

}  // namespace

int main() {
  bench::use_repo_cache();

  const zoo::Benchmark& bm = zoo::find_benchmark("convnet");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  const data::Dataset clean = splits.test.slice(0, 500);
  const std::vector<std::string> members = {"ORG", "AdHist", "FlipX", "FlipY"};

  nn::Network victim = zoo::trained_network(bm, "ORG");

  // Clean operating point for the system (profile on validation).
  mr::MemberVotes val_votes;
  for (const std::string& spec : members) {
    val_votes.push_back(bench::member_votes_on(bm, spec, splits.val));
  }
  const double tp_floor = zoo::accuracy(victim, splits.val);
  const auto chosen = mr::select_by_tp_floor(
      mr::pareto_frontier(mr::sweep_thresholds(val_votes, splits.val.labels,
                                               mr::default_conf_grid())),
      tp_floor);

  bench::rule("Extension: FGSM attacks on the baseline member (ConvNet)");
  std::printf("system thresholds: Thr_Conf=%.2f Thr_Freq=%d\n\n",
              static_cast<double>(chosen->thresholds.conf),
              chosen->thresholds.freq);
  std::printf("%6s | %10s | %21s | %21s\n", "", "victim", "PGMR system",
              "max-softmax @0.9 gate");
  std::printf("%6s | %10s | %10s %10s | %10s %10s\n", "eps", "accuracy",
              "accuracy", "FP", "accuracy", "FP");

  for (float eps : {0.0F, 0.02F, 0.05F, 0.10F, 0.15F}) {
    data::Dataset attacked = clean;
    if (eps > 0.0F) {
      attacked.images =
          adv::fgsm_attack(victim, clean.images, clean.labels, eps);
    }
    // Victim-only accuracy.
    const Tensor victim_probs = zoo::probabilities_on(victim, attacked);
    std::int64_t correct = 0, accepted_wrong = 0;
    for (std::size_t n = 0; n < attacked.labels.size(); ++n) {
      const auto i = static_cast<std::int64_t>(n);
      const bool right = victim_probs.argmax_row(i) == attacked.labels[n];
      correct += right ? 1 : 0;
      if (!right && victim_probs.max_row(i) >= 0.9F) ++accepted_wrong;
    }
    const double victim_acc = static_cast<double>(correct) /
                              static_cast<double>(attacked.labels.size());
    const double softmax_fp = static_cast<double>(accepted_wrong) /
                              static_cast<double>(attacked.labels.size());

    // System votes on the attacked corpus.
    mr::MemberVotes votes;
    for (const std::string& spec : members) {
      votes.push_back(bench::member_votes_on(bm, spec, attacked));
    }
    const GateScore sys =
        score_system(votes, attacked.labels, chosen->thresholds);

    std::printf("%6.2f | %9.1f%% | %9.1f%% %9.1f%% | %9.1f%% %9.1f%%\n",
                static_cast<double>(eps), 100.0 * victim_acc,
                100.0 * sys.accuracy, 100.0 * sys.accepted_wrong,
                100.0 * victim_acc, 100.0 * softmax_fp);
  }
  std::printf("\n(the attack transfers only partially through the "
              "preprocessors, so the system both\n keeps higher accuracy and "
              "flags most of the induced errors as unreliable)\n");
  return 0;
}
