// Figure 5: traditional modular redundancy on ConvNet/CIFAR-tier, degree 2
// to 30, under three decision policies:
//   Majority Vote            — Thr_Freq = n/2 + 1, no confidence gate
//   All Identical            — Thr_Freq = n
//   All Identical + Thr_Conf — Thr_Freq = n, Thr_Conf = 75 %
//
// Paper claims to reproduce: majority voting's FP rate flattens around a
// modest reduction regardless of degree; all-identical slashes FP by orders
// of magnitude but destroys TP.
#include "bench_util.h"
#include "mr/decision.h"

int main() {
  using namespace pgmr;
  bench::use_repo_cache();

  const zoo::Benchmark& bm = zoo::find_benchmark("convnet");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);

  constexpr int kMaxDegree = 30;
  std::printf("precomputing votes of %d random-init ConvNets on the test set...\n",
              kMaxDegree);
  mr::MemberVotes votes;
  for (int v = 0; v < kMaxDegree; ++v) {
    votes.push_back(bench::member_votes_on(bm, "ORG", splits.test, v));
  }

  bench::rule("Figure 5: FP/TP rate vs redundancy degree (ConvNet)");
  std::printf("%7s | %21s | %21s | %21s\n", "", "Majority Vote",
              "All identical", "All ident.+Conf 75%");
  std::printf("%7s | %10s %10s | %10s %10s | %10s %10s\n", "degree", "FP", "TP",
              "FP", "TP", "FP", "TP");

  for (int degree = 1; degree <= kMaxDegree;
       degree += (degree < 10 ? 1 : 2)) {
    const mr::MemberVotes prefix(votes.begin(), votes.begin() + degree);
    const mr::Outcome majority =
        evaluate(prefix, splits.test.labels,
                 {0.0F, mr::majority_threshold(degree)});
    const mr::Outcome identical =
        evaluate(prefix, splits.test.labels, {0.0F, degree});
    const mr::Outcome identical_conf =
        evaluate(prefix, splits.test.labels, {0.75F, degree});
    std::printf("%7d | %9.2f%% %9.2f%% | %9.2f%% %9.2f%% | %9.2f%% %9.2f%%\n",
                degree, 100.0 * majority.fp_rate(), 100.0 * majority.tp_rate(),
                100.0 * identical.fp_rate(), 100.0 * identical.tp_rate(),
                100.0 * identical_conf.fp_rate(),
                100.0 * identical_conf.tp_rate());
  }
  std::printf("\n(paper: majority-vote FP flattens ~20%% from a 25.2%% "
              "baseline; all-identical reaches\n ~1%% FP but TP collapses from "
              "74.7%% to ~40%%; adding Thr_Conf 75%% reaches 0.18%% FP)\n");
  return 0;
}
