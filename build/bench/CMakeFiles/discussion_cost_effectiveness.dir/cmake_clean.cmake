file(REMOVE_RECURSE
  "CMakeFiles/discussion_cost_effectiveness.dir/discussion_cost_effectiveness.cpp.o"
  "CMakeFiles/discussion_cost_effectiveness.dir/discussion_cost_effectiveness.cpp.o.d"
  "discussion_cost_effectiveness"
  "discussion_cost_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discussion_cost_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
