# Empty compiler generated dependencies file for discussion_cost_effectiveness.
# This may be replaced when dependencies are built.
