# Empty dependencies file for fig14_temperature_scaling.
# This may be replaced when dependencies are built.
