# Empty compiler generated dependencies file for fig02_threshold_sweep.
# This may be replaced when dependencies are built.
