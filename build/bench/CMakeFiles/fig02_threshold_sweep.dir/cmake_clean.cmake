file(REMOVE_RECURSE
  "CMakeFiles/fig02_threshold_sweep.dir/fig02_threshold_sweep.cpp.o"
  "CMakeFiles/fig02_threshold_sweep.dir/fig02_threshold_sweep.cpp.o.d"
  "fig02_threshold_sweep"
  "fig02_threshold_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
