file(REMOVE_RECURSE
  "CMakeFiles/fig11_pareto_precision.dir/fig11_pareto_precision.cpp.o"
  "CMakeFiles/fig11_pareto_precision.dir/fig11_pareto_precision.cpp.o.d"
  "fig11_pareto_precision"
  "fig11_pareto_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pareto_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
