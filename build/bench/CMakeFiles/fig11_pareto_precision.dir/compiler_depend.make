# Empty compiler generated dependencies file for fig11_pareto_precision.
# This may be replaced when dependencies are built.
