file(REMOVE_RECURSE
  "CMakeFiles/ext_ood_detection.dir/ext_ood_detection.cpp.o"
  "CMakeFiles/ext_ood_detection.dir/ext_ood_detection.cpp.o.d"
  "ext_ood_detection"
  "ext_ood_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ood_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
