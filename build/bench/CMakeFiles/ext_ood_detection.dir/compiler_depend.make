# Empty compiler generated dependencies file for ext_ood_detection.
# This may be replaced when dependencies are built.
