# Empty dependencies file for fig01_confidence_histogram.
# This may be replaced when dependencies are built.
