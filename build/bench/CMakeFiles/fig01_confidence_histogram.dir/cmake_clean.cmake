file(REMOVE_RECURSE
  "CMakeFiles/fig01_confidence_histogram.dir/fig01_confidence_histogram.cpp.o"
  "CMakeFiles/fig01_confidence_histogram.dir/fig01_confidence_histogram.cpp.o.d"
  "fig01_confidence_histogram"
  "fig01_confidence_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_confidence_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
