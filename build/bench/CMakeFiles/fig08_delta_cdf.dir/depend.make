# Empty dependencies file for fig08_delta_cdf.
# This may be replaced when dependencies are built.
