file(REMOVE_RECURSE
  "CMakeFiles/fig08_delta_cdf.dir/fig08_delta_cdf.cpp.o"
  "CMakeFiles/fig08_delta_cdf.dir/fig08_delta_cdf.cpp.o.d"
  "fig08_delta_cdf"
  "fig08_delta_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_delta_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
