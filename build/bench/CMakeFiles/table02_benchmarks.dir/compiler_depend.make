# Empty compiler generated dependencies file for table02_benchmarks.
# This may be replaced when dependencies are built.
