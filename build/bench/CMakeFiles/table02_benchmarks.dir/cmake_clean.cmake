file(REMOVE_RECURSE
  "CMakeFiles/table02_benchmarks.dir/table02_benchmarks.cpp.o"
  "CMakeFiles/table02_benchmarks.dir/table02_benchmarks.cpp.o.d"
  "table02_benchmarks"
  "table02_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
