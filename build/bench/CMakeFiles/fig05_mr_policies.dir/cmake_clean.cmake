file(REMOVE_RECURSE
  "CMakeFiles/fig05_mr_policies.dir/fig05_mr_policies.cpp.o"
  "CMakeFiles/fig05_mr_policies.dir/fig05_mr_policies.cpp.o.d"
  "fig05_mr_policies"
  "fig05_mr_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_mr_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
