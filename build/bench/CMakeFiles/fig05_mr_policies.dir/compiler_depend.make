# Empty compiler generated dependencies file for fig05_mr_policies.
# This may be replaced when dependencies are built.
