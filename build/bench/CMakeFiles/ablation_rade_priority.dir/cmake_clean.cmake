file(REMOVE_RECURSE
  "CMakeFiles/ablation_rade_priority.dir/ablation_rade_priority.cpp.o"
  "CMakeFiles/ablation_rade_priority.dir/ablation_rade_priority.cpp.o.d"
  "ablation_rade_priority"
  "ablation_rade_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rade_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
