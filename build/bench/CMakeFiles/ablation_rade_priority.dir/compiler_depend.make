# Empty compiler generated dependencies file for ablation_rade_priority.
# This may be replaced when dependencies are built.
