# Empty dependencies file for fig07_agreement_histogram.
# This may be replaced when dependencies are built.
