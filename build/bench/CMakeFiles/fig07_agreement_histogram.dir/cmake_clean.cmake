file(REMOVE_RECURSE
  "CMakeFiles/fig07_agreement_histogram.dir/fig07_agreement_histogram.cpp.o"
  "CMakeFiles/fig07_agreement_histogram.dir/fig07_agreement_histogram.cpp.o.d"
  "fig07_agreement_histogram"
  "fig07_agreement_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_agreement_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
