file(REMOVE_RECURSE
  "CMakeFiles/fig09_fp_reduction.dir/fig09_fp_reduction.cpp.o"
  "CMakeFiles/fig09_fp_reduction.dir/fig09_fp_reduction.cpp.o.d"
  "fig09_fp_reduction"
  "fig09_fp_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_fp_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
