# Empty compiler generated dependencies file for fig12_rade_activations.
# This may be replaced when dependencies are built.
