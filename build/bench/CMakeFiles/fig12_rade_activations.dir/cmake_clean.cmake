file(REMOVE_RECURSE
  "CMakeFiles/fig12_rade_activations.dir/fig12_rade_activations.cpp.o"
  "CMakeFiles/fig12_rade_activations.dir/fig12_rade_activations.cpp.o.d"
  "fig12_rade_activations"
  "fig12_rade_activations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_rade_activations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
