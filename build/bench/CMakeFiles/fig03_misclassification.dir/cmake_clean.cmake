file(REMOVE_RECURSE
  "CMakeFiles/fig03_misclassification.dir/fig03_misclassification.cpp.o"
  "CMakeFiles/fig03_misclassification.dir/fig03_misclassification.cpp.o.d"
  "fig03_misclassification"
  "fig03_misclassification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_misclassification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
