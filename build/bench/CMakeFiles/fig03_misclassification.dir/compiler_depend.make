# Empty compiler generated dependencies file for fig03_misclassification.
# This may be replaced when dependencies are built.
