file(REMOVE_RECURSE
  "CMakeFiles/ext_mc_dropout.dir/ext_mc_dropout.cpp.o"
  "CMakeFiles/ext_mc_dropout.dir/ext_mc_dropout.cpp.o.d"
  "ext_mc_dropout"
  "ext_mc_dropout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mc_dropout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
