# Empty dependencies file for ext_mc_dropout.
# This may be replaced when dependencies are built.
