file(REMOVE_RECURSE
  "CMakeFiles/ext_fault_injection.dir/ext_fault_injection.cpp.o"
  "CMakeFiles/ext_fault_injection.dir/ext_fault_injection.cpp.o.d"
  "ext_fault_injection"
  "ext_fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
