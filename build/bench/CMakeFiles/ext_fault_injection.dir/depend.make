# Empty dependencies file for ext_fault_injection.
# This may be replaced when dependencies are built.
