# Empty dependencies file for fig10_cost_optimizations.
# This may be replaced when dependencies are built.
