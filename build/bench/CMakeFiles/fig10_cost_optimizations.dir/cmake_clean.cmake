file(REMOVE_RECURSE
  "CMakeFiles/fig10_cost_optimizations.dir/fig10_cost_optimizations.cpp.o"
  "CMakeFiles/fig10_cost_optimizations.dir/fig10_cost_optimizations.cpp.o.d"
  "fig10_cost_optimizations"
  "fig10_cost_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cost_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
