# Empty dependencies file for ext_adversarial.
# This may be replaced when dependencies are built.
