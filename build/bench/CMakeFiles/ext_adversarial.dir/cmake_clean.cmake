file(REMOVE_RECURSE
  "CMakeFiles/ext_adversarial.dir/ext_adversarial.cpp.o"
  "CMakeFiles/ext_adversarial.dir/ext_adversarial.cpp.o.d"
  "ext_adversarial"
  "ext_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
