# Empty dependencies file for pgmr_zoo.
# This may be replaced when dependencies are built.
