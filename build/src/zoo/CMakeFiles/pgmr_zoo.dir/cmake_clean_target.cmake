file(REMOVE_RECURSE
  "libpgmr_zoo.a"
)
