file(REMOVE_RECURSE
  "CMakeFiles/pgmr_zoo.dir/models.cpp.o"
  "CMakeFiles/pgmr_zoo.dir/models.cpp.o.d"
  "CMakeFiles/pgmr_zoo.dir/trainer.cpp.o"
  "CMakeFiles/pgmr_zoo.dir/trainer.cpp.o.d"
  "CMakeFiles/pgmr_zoo.dir/zoo.cpp.o"
  "CMakeFiles/pgmr_zoo.dir/zoo.cpp.o.d"
  "libpgmr_zoo.a"
  "libpgmr_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmr_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
