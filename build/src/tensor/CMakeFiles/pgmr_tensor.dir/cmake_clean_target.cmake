file(REMOVE_RECURSE
  "libpgmr_tensor.a"
)
