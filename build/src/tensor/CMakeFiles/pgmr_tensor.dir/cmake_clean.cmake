file(REMOVE_RECURSE
  "CMakeFiles/pgmr_tensor.dir/serialize.cpp.o"
  "CMakeFiles/pgmr_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/pgmr_tensor.dir/tensor.cpp.o"
  "CMakeFiles/pgmr_tensor.dir/tensor.cpp.o.d"
  "libpgmr_tensor.a"
  "libpgmr_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmr_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
