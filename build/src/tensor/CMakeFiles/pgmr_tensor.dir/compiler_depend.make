# Empty compiler generated dependencies file for pgmr_tensor.
# This may be replaced when dependencies are built.
