file(REMOVE_RECURSE
  "libpgmr_nn.a"
)
