# Empty compiler generated dependencies file for pgmr_nn.
# This may be replaced when dependencies are built.
