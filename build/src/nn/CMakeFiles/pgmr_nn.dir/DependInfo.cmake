
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/adam.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/adam.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/adam.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/blocks.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/blocks.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/blocks.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/extra_layers.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/extra_layers.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/extra_layers.cpp.o.d"
  "/root/repo/src/nn/gemm.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/gemm.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/gemm.cpp.o.d"
  "/root/repo/src/nn/im2col.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/im2col.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/im2col.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/pooling.cpp.o.d"
  "/root/repo/src/nn/softmax.cpp" "src/nn/CMakeFiles/pgmr_nn.dir/softmax.cpp.o" "gcc" "src/nn/CMakeFiles/pgmr_nn.dir/softmax.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/pgmr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
