file(REMOVE_RECURSE
  "CMakeFiles/pgmr_nn.dir/activations.cpp.o"
  "CMakeFiles/pgmr_nn.dir/activations.cpp.o.d"
  "CMakeFiles/pgmr_nn.dir/adam.cpp.o"
  "CMakeFiles/pgmr_nn.dir/adam.cpp.o.d"
  "CMakeFiles/pgmr_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/pgmr_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/pgmr_nn.dir/blocks.cpp.o"
  "CMakeFiles/pgmr_nn.dir/blocks.cpp.o.d"
  "CMakeFiles/pgmr_nn.dir/conv2d.cpp.o"
  "CMakeFiles/pgmr_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/pgmr_nn.dir/dense.cpp.o"
  "CMakeFiles/pgmr_nn.dir/dense.cpp.o.d"
  "CMakeFiles/pgmr_nn.dir/extra_layers.cpp.o"
  "CMakeFiles/pgmr_nn.dir/extra_layers.cpp.o.d"
  "CMakeFiles/pgmr_nn.dir/gemm.cpp.o"
  "CMakeFiles/pgmr_nn.dir/gemm.cpp.o.d"
  "CMakeFiles/pgmr_nn.dir/im2col.cpp.o"
  "CMakeFiles/pgmr_nn.dir/im2col.cpp.o.d"
  "CMakeFiles/pgmr_nn.dir/layer.cpp.o"
  "CMakeFiles/pgmr_nn.dir/layer.cpp.o.d"
  "CMakeFiles/pgmr_nn.dir/loss.cpp.o"
  "CMakeFiles/pgmr_nn.dir/loss.cpp.o.d"
  "CMakeFiles/pgmr_nn.dir/network.cpp.o"
  "CMakeFiles/pgmr_nn.dir/network.cpp.o.d"
  "CMakeFiles/pgmr_nn.dir/optimizer.cpp.o"
  "CMakeFiles/pgmr_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/pgmr_nn.dir/pooling.cpp.o"
  "CMakeFiles/pgmr_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/pgmr_nn.dir/softmax.cpp.o"
  "CMakeFiles/pgmr_nn.dir/softmax.cpp.o.d"
  "libpgmr_nn.a"
  "libpgmr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
