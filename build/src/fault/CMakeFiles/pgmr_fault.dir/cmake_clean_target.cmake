file(REMOVE_RECURSE
  "libpgmr_fault.a"
)
