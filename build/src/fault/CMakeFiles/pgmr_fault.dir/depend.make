# Empty dependencies file for pgmr_fault.
# This may be replaced when dependencies are built.
