file(REMOVE_RECURSE
  "CMakeFiles/pgmr_fault.dir/injector.cpp.o"
  "CMakeFiles/pgmr_fault.dir/injector.cpp.o.d"
  "libpgmr_fault.a"
  "libpgmr_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmr_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
