# Empty dependencies file for pgmr_adv.
# This may be replaced when dependencies are built.
