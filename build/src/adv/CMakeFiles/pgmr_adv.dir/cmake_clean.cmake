file(REMOVE_RECURSE
  "CMakeFiles/pgmr_adv.dir/fgsm.cpp.o"
  "CMakeFiles/pgmr_adv.dir/fgsm.cpp.o.d"
  "libpgmr_adv.a"
  "libpgmr_adv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmr_adv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
