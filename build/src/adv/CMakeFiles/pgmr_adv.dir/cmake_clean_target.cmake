file(REMOVE_RECURSE
  "libpgmr_adv.a"
)
