file(REMOVE_RECURSE
  "libpgmr_prep.a"
)
