# Empty dependencies file for pgmr_prep.
# This may be replaced when dependencies are built.
