file(REMOVE_RECURSE
  "CMakeFiles/pgmr_prep.dir/preprocessor.cpp.o"
  "CMakeFiles/pgmr_prep.dir/preprocessor.cpp.o.d"
  "libpgmr_prep.a"
  "libpgmr_prep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmr_prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
