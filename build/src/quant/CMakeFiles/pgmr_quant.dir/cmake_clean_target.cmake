file(REMOVE_RECURSE
  "libpgmr_quant.a"
)
