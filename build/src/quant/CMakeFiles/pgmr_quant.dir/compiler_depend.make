# Empty compiler generated dependencies file for pgmr_quant.
# This may be replaced when dependencies are built.
