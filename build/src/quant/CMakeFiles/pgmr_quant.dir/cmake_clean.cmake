file(REMOVE_RECURSE
  "CMakeFiles/pgmr_quant.dir/precision.cpp.o"
  "CMakeFiles/pgmr_quant.dir/precision.cpp.o.d"
  "CMakeFiles/pgmr_quant.dir/quantized_network.cpp.o"
  "CMakeFiles/pgmr_quant.dir/quantized_network.cpp.o.d"
  "libpgmr_quant.a"
  "libpgmr_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmr_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
