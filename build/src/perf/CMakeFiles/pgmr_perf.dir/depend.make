# Empty dependencies file for pgmr_perf.
# This may be replaced when dependencies are built.
