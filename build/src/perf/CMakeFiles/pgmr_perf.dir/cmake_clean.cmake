file(REMOVE_RECURSE
  "CMakeFiles/pgmr_perf.dir/cost_model.cpp.o"
  "CMakeFiles/pgmr_perf.dir/cost_model.cpp.o.d"
  "libpgmr_perf.a"
  "libpgmr_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmr_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
