file(REMOVE_RECURSE
  "libpgmr_perf.a"
)
