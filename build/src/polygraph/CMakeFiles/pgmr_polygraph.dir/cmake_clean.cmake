file(REMOVE_RECURSE
  "CMakeFiles/pgmr_polygraph.dir/builder.cpp.o"
  "CMakeFiles/pgmr_polygraph.dir/builder.cpp.o.d"
  "CMakeFiles/pgmr_polygraph.dir/config.cpp.o"
  "CMakeFiles/pgmr_polygraph.dir/config.cpp.o.d"
  "CMakeFiles/pgmr_polygraph.dir/system.cpp.o"
  "CMakeFiles/pgmr_polygraph.dir/system.cpp.o.d"
  "libpgmr_polygraph.a"
  "libpgmr_polygraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmr_polygraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
