file(REMOVE_RECURSE
  "libpgmr_polygraph.a"
)
