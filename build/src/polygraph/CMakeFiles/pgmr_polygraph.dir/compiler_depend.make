# Empty compiler generated dependencies file for pgmr_polygraph.
# This may be replaced when dependencies are built.
