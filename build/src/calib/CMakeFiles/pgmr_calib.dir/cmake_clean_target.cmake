file(REMOVE_RECURSE
  "libpgmr_calib.a"
)
