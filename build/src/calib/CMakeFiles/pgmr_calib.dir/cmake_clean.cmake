file(REMOVE_RECURSE
  "CMakeFiles/pgmr_calib.dir/mc_dropout.cpp.o"
  "CMakeFiles/pgmr_calib.dir/mc_dropout.cpp.o.d"
  "CMakeFiles/pgmr_calib.dir/temperature.cpp.o"
  "CMakeFiles/pgmr_calib.dir/temperature.cpp.o.d"
  "libpgmr_calib.a"
  "libpgmr_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmr_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
