# Empty dependencies file for pgmr_calib.
# This may be replaced when dependencies are built.
