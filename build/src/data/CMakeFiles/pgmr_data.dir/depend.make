# Empty dependencies file for pgmr_data.
# This may be replaced when dependencies are built.
