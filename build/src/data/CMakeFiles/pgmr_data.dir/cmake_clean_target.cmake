file(REMOVE_RECURSE
  "libpgmr_data.a"
)
