file(REMOVE_RECURSE
  "CMakeFiles/pgmr_data.dir/dataset.cpp.o"
  "CMakeFiles/pgmr_data.dir/dataset.cpp.o.d"
  "CMakeFiles/pgmr_data.dir/ppm.cpp.o"
  "CMakeFiles/pgmr_data.dir/ppm.cpp.o.d"
  "CMakeFiles/pgmr_data.dir/synthetic.cpp.o"
  "CMakeFiles/pgmr_data.dir/synthetic.cpp.o.d"
  "libpgmr_data.a"
  "libpgmr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
