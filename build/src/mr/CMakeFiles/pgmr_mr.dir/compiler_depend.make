# Empty compiler generated dependencies file for pgmr_mr.
# This may be replaced when dependencies are built.
