
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mr/decision.cpp" "src/mr/CMakeFiles/pgmr_mr.dir/decision.cpp.o" "gcc" "src/mr/CMakeFiles/pgmr_mr.dir/decision.cpp.o.d"
  "/root/repo/src/mr/ensemble.cpp" "src/mr/CMakeFiles/pgmr_mr.dir/ensemble.cpp.o" "gcc" "src/mr/CMakeFiles/pgmr_mr.dir/ensemble.cpp.o.d"
  "/root/repo/src/mr/evaluate.cpp" "src/mr/CMakeFiles/pgmr_mr.dir/evaluate.cpp.o" "gcc" "src/mr/CMakeFiles/pgmr_mr.dir/evaluate.cpp.o.d"
  "/root/repo/src/mr/pareto.cpp" "src/mr/CMakeFiles/pgmr_mr.dir/pareto.cpp.o" "gcc" "src/mr/CMakeFiles/pgmr_mr.dir/pareto.cpp.o.d"
  "/root/repo/src/mr/rade.cpp" "src/mr/CMakeFiles/pgmr_mr.dir/rade.cpp.o" "gcc" "src/mr/CMakeFiles/pgmr_mr.dir/rade.cpp.o.d"
  "/root/repo/src/mr/soft_vote.cpp" "src/mr/CMakeFiles/pgmr_mr.dir/soft_vote.cpp.o" "gcc" "src/mr/CMakeFiles/pgmr_mr.dir/soft_vote.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/pgmr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/prep/CMakeFiles/pgmr_prep.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/pgmr_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/pgmr_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pgmr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
