file(REMOVE_RECURSE
  "CMakeFiles/pgmr_mr.dir/decision.cpp.o"
  "CMakeFiles/pgmr_mr.dir/decision.cpp.o.d"
  "CMakeFiles/pgmr_mr.dir/ensemble.cpp.o"
  "CMakeFiles/pgmr_mr.dir/ensemble.cpp.o.d"
  "CMakeFiles/pgmr_mr.dir/evaluate.cpp.o"
  "CMakeFiles/pgmr_mr.dir/evaluate.cpp.o.d"
  "CMakeFiles/pgmr_mr.dir/pareto.cpp.o"
  "CMakeFiles/pgmr_mr.dir/pareto.cpp.o.d"
  "CMakeFiles/pgmr_mr.dir/rade.cpp.o"
  "CMakeFiles/pgmr_mr.dir/rade.cpp.o.d"
  "CMakeFiles/pgmr_mr.dir/soft_vote.cpp.o"
  "CMakeFiles/pgmr_mr.dir/soft_vote.cpp.o.d"
  "libpgmr_mr.a"
  "libpgmr_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmr_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
