file(REMOVE_RECURSE
  "libpgmr_mr.a"
)
