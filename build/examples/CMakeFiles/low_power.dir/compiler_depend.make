# Empty compiler generated dependencies file for low_power.
# This may be replaced when dependencies are built.
