file(REMOVE_RECURSE
  "CMakeFiles/low_power.dir/low_power.cpp.o"
  "CMakeFiles/low_power.dir/low_power.cpp.o.d"
  "low_power"
  "low_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
