file(REMOVE_RECURSE
  "CMakeFiles/build_system.dir/build_system.cpp.o"
  "CMakeFiles/build_system.dir/build_system.cpp.o.d"
  "build_system"
  "build_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
