# Empty compiler generated dependencies file for build_system.
# This may be replaced when dependencies are built.
