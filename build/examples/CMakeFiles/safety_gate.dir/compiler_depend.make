# Empty compiler generated dependencies file for safety_gate.
# This may be replaced when dependencies are built.
