file(REMOVE_RECURSE
  "CMakeFiles/safety_gate.dir/safety_gate.cpp.o"
  "CMakeFiles/safety_gate.dir/safety_gate.cpp.o.d"
  "safety_gate"
  "safety_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
