file(REMOVE_RECURSE
  "CMakeFiles/precision_test.dir/quant/precision_test.cpp.o"
  "CMakeFiles/precision_test.dir/quant/precision_test.cpp.o.d"
  "precision_test"
  "precision_test.pdb"
  "precision_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
