file(REMOVE_RECURSE
  "CMakeFiles/extra_layers_test.dir/nn/extra_layers_test.cpp.o"
  "CMakeFiles/extra_layers_test.dir/nn/extra_layers_test.cpp.o.d"
  "extra_layers_test"
  "extra_layers_test.pdb"
  "extra_layers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
