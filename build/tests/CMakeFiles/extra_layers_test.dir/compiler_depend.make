# Empty compiler generated dependencies file for extra_layers_test.
# This may be replaced when dependencies are built.
