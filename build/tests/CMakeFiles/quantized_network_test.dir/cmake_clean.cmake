file(REMOVE_RECURSE
  "CMakeFiles/quantized_network_test.dir/quant/quantized_network_test.cpp.o"
  "CMakeFiles/quantized_network_test.dir/quant/quantized_network_test.cpp.o.d"
  "quantized_network_test"
  "quantized_network_test.pdb"
  "quantized_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantized_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
