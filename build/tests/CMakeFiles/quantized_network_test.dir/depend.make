# Empty dependencies file for quantized_network_test.
# This may be replaced when dependencies are built.
