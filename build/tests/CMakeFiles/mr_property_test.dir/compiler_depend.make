# Empty compiler generated dependencies file for mr_property_test.
# This may be replaced when dependencies are built.
