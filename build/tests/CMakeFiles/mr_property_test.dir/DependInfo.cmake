
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mr/property_test.cpp" "tests/CMakeFiles/mr_property_test.dir/mr/property_test.cpp.o" "gcc" "tests/CMakeFiles/mr_property_test.dir/mr/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mr/CMakeFiles/pgmr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/prep/CMakeFiles/pgmr_prep.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/pgmr_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/pgmr_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pgmr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pgmr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
