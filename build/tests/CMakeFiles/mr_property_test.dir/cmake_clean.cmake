file(REMOVE_RECURSE
  "CMakeFiles/mr_property_test.dir/mr/property_test.cpp.o"
  "CMakeFiles/mr_property_test.dir/mr/property_test.cpp.o.d"
  "mr_property_test"
  "mr_property_test.pdb"
  "mr_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
