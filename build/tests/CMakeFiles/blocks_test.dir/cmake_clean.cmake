file(REMOVE_RECURSE
  "CMakeFiles/blocks_test.dir/nn/blocks_test.cpp.o"
  "CMakeFiles/blocks_test.dir/nn/blocks_test.cpp.o.d"
  "blocks_test"
  "blocks_test.pdb"
  "blocks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
