# Empty compiler generated dependencies file for fgsm_test.
# This may be replaced when dependencies are built.
