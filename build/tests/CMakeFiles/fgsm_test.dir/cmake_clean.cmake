file(REMOVE_RECURSE
  "CMakeFiles/fgsm_test.dir/adv/fgsm_test.cpp.o"
  "CMakeFiles/fgsm_test.dir/adv/fgsm_test.cpp.o.d"
  "fgsm_test"
  "fgsm_test.pdb"
  "fgsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
