file(REMOVE_RECURSE
  "CMakeFiles/softmax_loss_test.dir/nn/softmax_loss_test.cpp.o"
  "CMakeFiles/softmax_loss_test.dir/nn/softmax_loss_test.cpp.o.d"
  "softmax_loss_test"
  "softmax_loss_test.pdb"
  "softmax_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softmax_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
