file(REMOVE_RECURSE
  "CMakeFiles/rade_test.dir/mr/rade_test.cpp.o"
  "CMakeFiles/rade_test.dir/mr/rade_test.cpp.o.d"
  "rade_test"
  "rade_test.pdb"
  "rade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
