# Empty dependencies file for rade_test.
# This may be replaced when dependencies are built.
