file(REMOVE_RECURSE
  "CMakeFiles/decision_test.dir/mr/decision_test.cpp.o"
  "CMakeFiles/decision_test.dir/mr/decision_test.cpp.o.d"
  "decision_test"
  "decision_test.pdb"
  "decision_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
