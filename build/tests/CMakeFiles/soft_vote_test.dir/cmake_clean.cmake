file(REMOVE_RECURSE
  "CMakeFiles/soft_vote_test.dir/mr/soft_vote_test.cpp.o"
  "CMakeFiles/soft_vote_test.dir/mr/soft_vote_test.cpp.o.d"
  "soft_vote_test"
  "soft_vote_test.pdb"
  "soft_vote_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_vote_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
