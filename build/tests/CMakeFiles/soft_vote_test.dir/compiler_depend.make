# Empty compiler generated dependencies file for soft_vote_test.
# This may be replaced when dependencies are built.
