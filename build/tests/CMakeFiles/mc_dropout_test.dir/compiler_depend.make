# Empty compiler generated dependencies file for mc_dropout_test.
# This may be replaced when dependencies are built.
