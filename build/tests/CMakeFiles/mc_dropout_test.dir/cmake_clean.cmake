file(REMOVE_RECURSE
  "CMakeFiles/mc_dropout_test.dir/calib/mc_dropout_test.cpp.o"
  "CMakeFiles/mc_dropout_test.dir/calib/mc_dropout_test.cpp.o.d"
  "mc_dropout_test"
  "mc_dropout_test.pdb"
  "mc_dropout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_dropout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
