
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/calib/mc_dropout_test.cpp" "tests/CMakeFiles/mc_dropout_test.dir/calib/mc_dropout_test.cpp.o" "gcc" "tests/CMakeFiles/mc_dropout_test.dir/calib/mc_dropout_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/calib/CMakeFiles/pgmr_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pgmr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pgmr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
