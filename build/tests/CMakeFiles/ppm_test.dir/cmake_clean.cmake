file(REMOVE_RECURSE
  "CMakeFiles/ppm_test.dir/data/ppm_test.cpp.o"
  "CMakeFiles/ppm_test.dir/data/ppm_test.cpp.o.d"
  "ppm_test"
  "ppm_test.pdb"
  "ppm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
