# Empty compiler generated dependencies file for temperature_test.
# This may be replaced when dependencies are built.
