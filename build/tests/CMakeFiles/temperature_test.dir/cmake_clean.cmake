file(REMOVE_RECURSE
  "CMakeFiles/temperature_test.dir/calib/temperature_test.cpp.o"
  "CMakeFiles/temperature_test.dir/calib/temperature_test.cpp.o.d"
  "temperature_test"
  "temperature_test.pdb"
  "temperature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temperature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
