file(REMOVE_RECURSE
  "CMakeFiles/dump_samples.dir/dump_samples.cpp.o"
  "CMakeFiles/dump_samples.dir/dump_samples.cpp.o.d"
  "dump_samples"
  "dump_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
