# Empty dependencies file for dump_samples.
# This may be replaced when dependencies are built.
