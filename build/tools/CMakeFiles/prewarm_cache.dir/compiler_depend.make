# Empty compiler generated dependencies file for prewarm_cache.
# This may be replaced when dependencies are built.
