file(REMOVE_RECURSE
  "CMakeFiles/prewarm_cache.dir/prewarm_cache.cpp.o"
  "CMakeFiles/prewarm_cache.dir/prewarm_cache.cpp.o.d"
  "prewarm_cache"
  "prewarm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prewarm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
