# Empty dependencies file for pgmr.
# This may be replaced when dependencies are built.
