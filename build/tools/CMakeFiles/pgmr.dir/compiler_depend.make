# Empty compiler generated dependencies file for pgmr.
# This may be replaced when dependencies are built.
