file(REMOVE_RECURSE
  "CMakeFiles/pgmr.dir/pgmr.cpp.o"
  "CMakeFiles/pgmr.dir/pgmr.cpp.o.d"
  "pgmr"
  "pgmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
