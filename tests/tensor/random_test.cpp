// Unit tests for the deterministic Rng.
#include "tensor/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace pgmr {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0.0F, 1.0F), b.uniform(0.0F, 1.0F));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0F, 1.0F) == b.uniform(0.0F, 1.0F)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0F, 3.0F);
    EXPECT_GE(v, -2.0F);
    EXPECT_LT(v, 3.0F);
  }
}

TEST(RngTest, RandintInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.randint(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0F, 2.0F);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  const std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to match
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(5);
  Rng fork_a = a.fork();
  Rng b(5);
  Rng fork_b = b.fork();
  // Forks of identically-seeded parents agree with each other...
  EXPECT_EQ(fork_a.uniform(0.0F, 1.0F), fork_b.uniform(0.0F, 1.0F));
  // ...and advance the parent identically.
  EXPECT_EQ(a.uniform(0.0F, 1.0F), b.uniform(0.0F, 1.0F));
}

}  // namespace
}  // namespace pgmr
