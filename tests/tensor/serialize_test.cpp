// Unit tests for the binary archive format.
#include "tensor/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace pgmr {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("pgmr_serialize_test_" +
              std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
              ".bin"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SerializeTest, RoundTripScalars) {
  {
    BinaryWriter w(path_);
    w.write_u32(42);
    w.write_i64(-7);
    w.write_f32(1.5F);
    w.write_f64(2.25);
    w.close();
  }
  BinaryReader r(path_);
  EXPECT_EQ(r.read_u32(), 42U);
  EXPECT_EQ(r.read_i64(), -7);
  EXPECT_EQ(r.read_f32(), 1.5F);
  EXPECT_EQ(r.read_f64(), 2.25);
}

TEST_F(SerializeTest, RoundTripString) {
  {
    BinaryWriter w(path_);
    w.write_string("Gamma(2.00)");
    w.write_string("");
    w.close();
  }
  BinaryReader r(path_);
  EXPECT_EQ(r.read_string(), "Gamma(2.00)");
  EXPECT_EQ(r.read_string(), "");
}

TEST_F(SerializeTest, RoundTripTensor) {
  Tensor t(Shape{2, 3, 4, 5});
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(i) * 0.5F;
  }
  {
    BinaryWriter w(path_);
    w.write_tensor(t);
    w.close();
  }
  BinaryReader r(path_);
  const Tensor back = r.read_tensor();
  EXPECT_TRUE(allclose(t, back, 0.0F));
}

TEST_F(SerializeTest, RoundTripEmptyFloatVector) {
  {
    BinaryWriter w(path_);
    w.write_floats({});
    w.close();
  }
  BinaryReader r(path_);
  EXPECT_TRUE(r.read_floats().empty());
}

TEST_F(SerializeTest, TruncatedArchiveThrows) {
  {
    BinaryWriter w(path_);
    w.write_u32(1);
    w.close();
  }
  BinaryReader r(path_);
  EXPECT_EQ(r.read_u32(), 1U);
  EXPECT_THROW(r.read_i64(), std::runtime_error);
}

TEST_F(SerializeTest, BadMagicRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    const std::uint32_t garbage[2] = {0xDEADBEEF, 1};
    out.write(reinterpret_cast<const char*>(garbage), sizeof(garbage));
  }
  EXPECT_THROW(BinaryReader r(path_), std::runtime_error);
  EXPECT_FALSE(archive_exists(path_));
}

TEST_F(SerializeTest, ArchiveExists) {
  EXPECT_FALSE(archive_exists(path_ + ".missing"));
  {
    BinaryWriter w(path_);
    w.close();
  }
  EXPECT_TRUE(archive_exists(path_));
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(BinaryReader r(path_ + ".missing"), std::runtime_error);
}

TEST_F(SerializeTest, CorruptedTensorByteFailsCrc) {
  Tensor t(Shape{4, 5});
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(i) - 7.5F;
  }
  {
    BinaryWriter w(path_);
    w.write_tensor(t);
    w.close();
  }
  {
    // Flip one bit inside the float payload: header (8) + rank (4) +
    // dims (2*8) + float count (8) puts the payload at offset 36.
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(36 + 5);
    char b = 0;
    f.get(b);
    f.seekp(36 + 5);
    f.put(static_cast<char>(b ^ 0x10));
  }
  BinaryReader r(path_);
  try {
    r.read_tensor();
    FAIL() << "corrupted tensor payload must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << "error should name the CRC check: " << e.what();
  }
}

TEST_F(SerializeTest, TruncatedTensorPayloadThrows) {
  Tensor t(Shape{8, 8});
  {
    BinaryWriter w(path_);
    w.write_tensor(t);
    w.close();
  }
  // Cut the archive mid-payload (well before the trailing CRC).
  std::filesystem::resize_file(path_, 36 + 40);
  BinaryReader r(path_);
  EXPECT_THROW(r.read_tensor(), std::runtime_error);
}

TEST_F(SerializeTest, LegacyV1RejectedUnlessOptedIn) {
  {
    // Hand-write a v1 archive: same framing, no trailing tensor CRC.
    std::ofstream out(path_, std::ios::binary);
    const std::uint32_t magic = 0x50474D52, version = 1, rank = 1;
    const std::int64_t dim = 3, count = 3;
    const float values[3] = {1.0F, 2.0F, 3.0F};
    out.write(reinterpret_cast<const char*>(&magic), 4);
    out.write(reinterpret_cast<const char*>(&version), 4);
    out.write(reinterpret_cast<const char*>(&rank), 4);
    out.write(reinterpret_cast<const char*>(&dim), 8);
    out.write(reinterpret_cast<const char*>(&count), 8);
    out.write(reinterpret_cast<const char*>(values), sizeof(values));
  }
  // Strict consumers (the zoo) must reject it so self-heal retrains...
  EXPECT_THROW(BinaryReader strict(path_), std::runtime_error);
  EXPECT_FALSE(archive_exists(path_));
  // ...while the migration tool reads it losslessly.
  BinaryReader legacy(path_, BinaryReader::Compat::allow_legacy);
  EXPECT_EQ(legacy.version(), 1U);
  const Tensor back = legacy.read_tensor();
  ASSERT_EQ(back.numel(), 3);
  EXPECT_EQ(back[0], 1.0F);
  EXPECT_EQ(back[2], 3.0F);
}

TEST_F(SerializeTest, FutureVersionRejectedEvenWithCompat) {
  {
    std::ofstream out(path_, std::ios::binary);
    const std::uint32_t magic = 0x50474D52, version = 99;
    out.write(reinterpret_cast<const char*>(&magic), 4);
    out.write(reinterpret_cast<const char*>(&version), 4);
  }
  EXPECT_THROW(BinaryReader strict(path_), std::runtime_error);
  EXPECT_THROW(
      BinaryReader legacy(path_, BinaryReader::Compat::allow_legacy),
      std::runtime_error);
}

}  // namespace
}  // namespace pgmr
