// Unit tests for the binary archive format.
#include "tensor/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace pgmr {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("pgmr_serialize_test_" +
              std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
              ".bin"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SerializeTest, RoundTripScalars) {
  {
    BinaryWriter w(path_);
    w.write_u32(42);
    w.write_i64(-7);
    w.write_f32(1.5F);
    w.write_f64(2.25);
    w.close();
  }
  BinaryReader r(path_);
  EXPECT_EQ(r.read_u32(), 42U);
  EXPECT_EQ(r.read_i64(), -7);
  EXPECT_EQ(r.read_f32(), 1.5F);
  EXPECT_EQ(r.read_f64(), 2.25);
}

TEST_F(SerializeTest, RoundTripString) {
  {
    BinaryWriter w(path_);
    w.write_string("Gamma(2.00)");
    w.write_string("");
    w.close();
  }
  BinaryReader r(path_);
  EXPECT_EQ(r.read_string(), "Gamma(2.00)");
  EXPECT_EQ(r.read_string(), "");
}

TEST_F(SerializeTest, RoundTripTensor) {
  Tensor t(Shape{2, 3, 4, 5});
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(i) * 0.5F;
  }
  {
    BinaryWriter w(path_);
    w.write_tensor(t);
    w.close();
  }
  BinaryReader r(path_);
  const Tensor back = r.read_tensor();
  EXPECT_TRUE(allclose(t, back, 0.0F));
}

TEST_F(SerializeTest, RoundTripEmptyFloatVector) {
  {
    BinaryWriter w(path_);
    w.write_floats({});
    w.close();
  }
  BinaryReader r(path_);
  EXPECT_TRUE(r.read_floats().empty());
}

TEST_F(SerializeTest, TruncatedArchiveThrows) {
  {
    BinaryWriter w(path_);
    w.write_u32(1);
    w.close();
  }
  BinaryReader r(path_);
  EXPECT_EQ(r.read_u32(), 1U);
  EXPECT_THROW(r.read_i64(), std::runtime_error);
}

TEST_F(SerializeTest, BadMagicRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    const std::uint32_t garbage[2] = {0xDEADBEEF, 1};
    out.write(reinterpret_cast<const char*>(garbage), sizeof(garbage));
  }
  EXPECT_THROW(BinaryReader r(path_), std::runtime_error);
  EXPECT_FALSE(archive_exists(path_));
}

TEST_F(SerializeTest, ArchiveExists) {
  EXPECT_FALSE(archive_exists(path_ + ".missing"));
  {
    BinaryWriter w(path_);
    w.close();
  }
  EXPECT_TRUE(archive_exists(path_));
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(BinaryReader r(path_ + ".missing"), std::runtime_error);
}

}  // namespace
}  // namespace pgmr
