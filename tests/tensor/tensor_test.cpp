// Unit tests for Shape and Tensor.
#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pgmr {
namespace {

TEST(ShapeTest, RankAndNumel) {
  const Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.rank(), 4U);
  EXPECT_EQ(s.numel(), 120);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[3], 5);
}

TEST(ShapeTest, DefaultIsRankZero) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0U);
  EXPECT_EQ(s.numel(), 1);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, RejectsNonPositiveDimension) {
  EXPECT_THROW(Shape({2, 0}), std::invalid_argument);
  EXPECT_THROW(Shape({-1}), std::invalid_argument);
}

TEST(ShapeTest, RejectsExcessRank) {
  EXPECT_THROW(Shape({1, 1, 1, 1, 1, 1, 1}), std::invalid_argument);
}

TEST(ShapeTest, DimOutOfRangeThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s.dim(2), std::out_of_range);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]");
  EXPECT_EQ(Shape{}.to_string(), "[]");
}

TEST(TensorTest, ZeroInitialized) {
  const Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(TensorTest, ConstructFromValues) {
  const Tensor t(Shape{2, 2}, {1.0F, 2.0F, 3.0F, 4.0F});
  EXPECT_EQ(t.at(0, 1), 2.0F);
  EXPECT_EQ(t.at(1, 0), 3.0F);
}

TEST(TensorTest, ValueCountMismatchThrows) {
  EXPECT_THROW(Tensor(Shape{2, 2}, {1.0F}), std::invalid_argument);
}

TEST(TensorTest, Rank4Indexing) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0F;
  // Flat NCHW index: ((1*3+2)*4+3)*5+4 = 119.
  EXPECT_EQ(t[119], 7.0F);
}

TEST(TensorTest, WrongRankAccessThrows) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.at(0, 0, 0, 0), std::invalid_argument);
}

TEST(TensorTest, Reshape) {
  const Tensor t(Shape{2, 6}, std::vector<float>(12, 1.0F));
  const Tensor r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.shape(), Shape({3, 4}));
  EXPECT_THROW(t.reshaped(Shape{5, 5}), std::invalid_argument);
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a(Shape{3}, {1.0F, 2.0F, 3.0F});
  const Tensor b(Shape{3}, {1.0F, 1.0F, 1.0F});
  a += b;
  EXPECT_EQ(a[2], 4.0F);
  a -= b;
  EXPECT_EQ(a[2], 3.0F);
  a *= 2.0F;
  EXPECT_EQ(a[0], 2.0F);
}

TEST(TensorTest, ElementwiseShapeMismatchThrows) {
  Tensor a(Shape{3});
  const Tensor b(Shape{4});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(TensorTest, SumAndArgmax) {
  const Tensor t(Shape{2, 2}, {0.1F, 0.9F, 0.5F, 0.2F});
  EXPECT_NEAR(t.sum(), 1.7F, 1e-6F);
  EXPECT_EQ(t.argmax(), 1);
  EXPECT_EQ(t.argmax_row(0), 1);
  EXPECT_EQ(t.argmax_row(1), 0);
  EXPECT_EQ(t.max_row(1), 0.5F);
}

TEST(TensorTest, SliceSampleRank4) {
  Tensor t(Shape{2, 1, 2, 2});
  for (std::int64_t i = 0; i < 8; ++i) t[i] = static_cast<float>(i);
  const Tensor s = t.slice_sample(1);
  EXPECT_EQ(s.shape(), Shape({1, 1, 2, 2}));
  EXPECT_EQ(s[0], 4.0F);
}

TEST(TensorTest, SliceSampleOutOfRangeThrows) {
  Tensor t(Shape{2, 1, 2, 2});
  EXPECT_THROW(t.slice_sample(2), std::out_of_range);
  EXPECT_THROW(t.slice_sample(-1), std::out_of_range);
}

TEST(TensorTest, Allclose) {
  const Tensor a(Shape{2}, {1.0F, 2.0F});
  Tensor b = a;
  EXPECT_TRUE(allclose(a, b));
  b[1] += 1e-3F;
  EXPECT_FALSE(allclose(a, b, 1e-5F));
  EXPECT_TRUE(allclose(a, b, 1e-2F));
}

TEST(TensorTest, FillSetsEveryElement) {
  Tensor t(Shape{2, 3});
  t.fill(4.5F);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 4.5F);
}

}  // namespace
}  // namespace pgmr
