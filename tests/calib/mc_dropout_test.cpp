// MC-dropout uncertainty tests.
#include "calib/mc_dropout.h"

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/dense.h"
#include "tensor/random.h"

namespace pgmr::calib {
namespace {

nn::Network make_dropout_net(std::uint64_t seed, float p) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  auto fc1 = std::make_unique<nn::Dense>(8, 16);
  fc1->init(rng);
  layers.push_back(std::move(fc1));
  layers.push_back(std::make_unique<nn::ReLU>());
  layers.push_back(std::make_unique<nn::Dropout>(p, rng.engine()()));
  auto fc2 = std::make_unique<nn::Dense>(16, 3);
  fc2->init(rng);
  layers.push_back(std::move(fc2));
  return nn::Network("mc", std::move(layers));
}

Tensor random_input(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(Shape{n, 8});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  return x;
}

TEST(McDropoutTest, MeanIsNormalizedDistribution) {
  nn::Network net = make_dropout_net(1, 0.3F);
  const Tensor probs = mc_dropout_probabilities(net, random_input(5, 2), 10);
  EXPECT_EQ(probs.shape(), Shape({5, 3}));
  for (std::int64_t i = 0; i < 5; ++i) {
    float row = 0.0F;
    for (std::int64_t c = 0; c < 3; ++c) row += probs.at(i, c);
    EXPECT_NEAR(row, 1.0F, 1e-5F);
  }
}

TEST(McDropoutTest, DropoutFreeNetworkMatchesDeterministicInference) {
  nn::Network net = make_dropout_net(3, 0.0F);  // p=0 disables the mask
  const Tensor x = random_input(4, 4);
  const Tensor mc = mc_dropout_probabilities(net, x, 6);
  const Tensor det = net.probabilities(x);
  EXPECT_TRUE(allclose(mc, det, 1e-5F));
}

TEST(McDropoutTest, StochasticPassesProduceNonzeroVariance) {
  nn::Network net = make_dropout_net(5, 0.5F);
  const Tensor var = mc_dropout_variance(net, random_input(20, 6), 16);
  EXPECT_EQ(var.shape(), Shape({20}));
  float total = 0.0F;
  for (std::int64_t i = 0; i < 20; ++i) {
    EXPECT_GE(var[i], 0.0F);
    total += var[i];
  }
  EXPECT_GT(total, 0.0F);
}

TEST(McDropoutTest, HigherDropoutRateRaisesVariance) {
  const Tensor x = random_input(40, 7);
  nn::Network low = make_dropout_net(8, 0.1F);
  nn::Network high = make_dropout_net(8, 0.6F);
  const Tensor v_low = mc_dropout_variance(low, x, 20);
  const Tensor v_high = mc_dropout_variance(high, x, 20);
  EXPECT_GT(v_high.sum(), v_low.sum());
}

TEST(McDropoutTest, RejectsNonPositivePasses) {
  nn::Network net = make_dropout_net(9, 0.2F);
  const Tensor x = random_input(2, 10);
  EXPECT_THROW(mc_dropout_probabilities(net, x, 0), std::invalid_argument);
  EXPECT_THROW(mc_dropout_variance(net, x, -1), std::invalid_argument);
}

}  // namespace
}  // namespace pgmr::calib
