// Temperature scaling and ECE tests (paper Section IV-E machinery).
#include "calib/temperature.h"

#include <gtest/gtest.h>

#include "nn/softmax.h"
#include "tensor/random.h"

namespace pgmr::calib {
namespace {

// Builds overconfident logits: the "predicted" class gets a large logit but
// the prediction is wrong a quarter of the time.
void make_overconfident(Tensor& logits, std::vector<std::int64_t>& labels,
                        std::int64_t n, std::int64_t classes, float scale,
                        Rng& rng) {
  logits = Tensor(Shape{n, classes});
  labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t predicted = rng.randint(0, classes - 1);
    const bool correct = rng.bernoulli(0.75);
    std::int64_t truth = predicted;
    if (!correct) {
      truth = rng.randint(0, classes - 2);
      if (truth >= predicted) ++truth;
    }
    labels[static_cast<std::size_t>(i)] = truth;
    for (std::int64_t c = 0; c < classes; ++c) {
      logits.at(i, c) = rng.normal(0.0F, 0.3F);
    }
    logits.at(i, predicted) += scale;
  }
}

TEST(TemperatureTest, NllIsLowerAtFittedTemperature) {
  Rng rng(1);
  Tensor logits;
  std::vector<std::int64_t> labels;
  make_overconfident(logits, labels, 500, 5, 8.0F, rng);
  const float t = fit_temperature(logits, labels);
  // Overconfident logits need T > 1 to calibrate.
  EXPECT_GT(t, 1.5F);
  EXPECT_LT(negative_log_likelihood(logits, labels, t),
            negative_log_likelihood(logits, labels, 1.0F));
}

TEST(TemperatureTest, CalibratedLogitsFitNearOne) {
  // Logits whose softmax already equals the true conditional distribution
  // should fit a temperature close to 1: generate labels *from* softmax.
  Rng rng(2);
  Tensor logits(Shape{2000, 3});
  std::vector<std::int64_t> labels(2000);
  for (std::int64_t i = 0; i < 2000; ++i) {
    for (std::int64_t c = 0; c < 3; ++c) {
      logits.at(i, c) = rng.normal(0.0F, 1.0F);
    }
  }
  const Tensor probs = nn::softmax(logits);
  for (std::int64_t i = 0; i < 2000; ++i) {
    const double u = rng.uniform(0.0F, 1.0F);
    double acc = 0.0;
    std::int64_t chosen = 2;
    for (std::int64_t c = 0; c < 3; ++c) {
      acc += probs.at(i, c);
      if (u <= acc) {
        chosen = c;
        break;
      }
    }
    labels[static_cast<std::size_t>(i)] = chosen;
  }
  const float t = fit_temperature(logits, labels);
  EXPECT_NEAR(t, 1.0F, 0.25F);
}

TEST(TemperatureTest, ScalingReducesEceOfOverconfidentModel) {
  Rng rng(3);
  Tensor logits;
  std::vector<std::int64_t> labels;
  make_overconfident(logits, labels, 1000, 5, 8.0F, rng);
  const float t = fit_temperature(logits, labels);
  const double ece_before =
      expected_calibration_error(nn::softmax(logits), labels);
  const double ece_after = expected_calibration_error(
      nn::softmax_with_temperature(logits, t), labels);
  EXPECT_LT(ece_after, ece_before);
  EXPECT_GT(ece_before, 0.15);  // ~75 % accuracy at ~100 % confidence
}

TEST(TemperatureTest, ScalingPreservesPredictionsAndAccuracy) {
  // The paper's core observation: scaling cannot change argmax, so the
  // TP/FP Pareto frontier is untouched.
  Rng rng(4);
  Tensor logits;
  std::vector<std::int64_t> labels;
  make_overconfident(logits, labels, 300, 4, 5.0F, rng);
  const float t = fit_temperature(logits, labels);
  const Tensor before = nn::softmax(logits);
  const Tensor after = nn::softmax_with_temperature(logits, t);
  for (std::int64_t i = 0; i < 300; ++i) {
    EXPECT_EQ(before.argmax_row(i), after.argmax_row(i));
    EXPECT_LE(after.max_row(i), before.max_row(i) + 1e-6F);  // T > 1 flattens
  }
}

TEST(EceTest, PerfectlyCalibratedBinaryIsZeroIsh) {
  // Confidence 0.75 and accuracy 0.75 in one bin -> ECE ~ 0.
  const std::int64_t n = 400;
  Tensor probs(Shape{n, 2});
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    probs.at(i, 0) = 0.75F;
    probs.at(i, 1) = 0.25F;
    labels[static_cast<std::size_t>(i)] = (i % 4 == 0) ? 1 : 0;  // 75 % class 0
  }
  EXPECT_NEAR(expected_calibration_error(probs, labels), 0.0, 1e-6);
}

TEST(EceTest, MaximallyMiscalibratedIsLarge) {
  const std::int64_t n = 100;
  Tensor probs(Shape{n, 2});
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n), 1);
  for (std::int64_t i = 0; i < n; ++i) {
    probs.at(i, 0) = 0.99F;  // always confidently wrong
    probs.at(i, 1) = 0.01F;
  }
  EXPECT_NEAR(expected_calibration_error(probs, labels), 0.99, 1e-6);
}

TEST(EceTest, RejectsBadArguments) {
  const Tensor probs(Shape{2, 2});
  EXPECT_THROW(expected_calibration_error(probs, {0}, 10),
               std::invalid_argument);
  EXPECT_THROW(expected_calibration_error(probs, {0, 1}, 0),
               std::invalid_argument);
}

TEST(NllTest, MatchesHandComputedValue) {
  const Tensor logits(Shape{1, 2}, {0.0F, 0.0F});
  EXPECT_NEAR(negative_log_likelihood(logits, {0}, 1.0F), std::log(2.0),
              1e-6);
}

}  // namespace
}  // namespace pgmr::calib
