// BN-folded ABFT: a conv -> batchnorm pair carries one folded checksum
// (the BN's effective affine folded into the conv's golden column sums),
// so the Huang-Abraham identity survives the normalization without any
// tolerance widening. Covers bit-identity at zero faults, detection of
// exponent flips in gamma/beta and in the conv weights behind the fold,
// and an end-to-end resnet20 pass at protection=full with the default
// tolerance.
#include <bit>

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "quant/quantized_network.h"
#include "tensor/random.h"
#include "zoo/models.h"

namespace pgmr::quant {
namespace {

// conv(0) -> batchnorm(1) -> relu(2) -> flatten(3) -> dense(4)
// Params: conv W(0), conv b(1), gamma(2), beta(3), dense W(4), dense b(5).
nn::Network make_conv_bn_net(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  auto conv = std::make_unique<nn::Conv2D>(1, 4, 3, 1, 1);
  conv->init(rng);
  layers.push_back(std::move(conv));
  auto bn = std::make_unique<nn::BatchNorm>(4);
  // Non-default affine so the fold has real gamma/beta to carry.
  Tensor* gamma = bn->params()[0];
  Tensor* beta = bn->params()[1];
  for (std::int64_t c = 0; c < 4; ++c) {
    (*gamma)[c] = 0.5F + 0.25F * static_cast<float>(c);
    // Nonzero in every channel: an exponent flip on a 0.0 beta would only
    // produce a denormal-scale change no checksum could (or should) see.
    (*beta)[c] = 0.35F * static_cast<float>(c) - 0.45F;
  }
  layers.push_back(std::move(bn));
  layers.push_back(std::make_unique<nn::ReLU>());
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(4 * 6 * 6, 4);
  fc->init(rng);
  layers.push_back(std::move(fc));
  nn::Network net("convbn", std::move(layers));

  // One training forward moves the running mean/var off their init, so
  // folding must use the true effective affine, not the identity.
  Rng warm_rng(seed + 1);
  Tensor warm(Shape{4, 1, 6, 6});
  for (std::int64_t i = 0; i < warm.numel(); ++i) {
    warm[i] = warm_rng.uniform(-1.0F, 1.0F);
  }
  net.forward(warm, true);
  return net;
}

Tensor random_input(std::uint64_t seed, Shape shape = Shape{3, 1, 6, 6}) {
  Rng rng(seed);
  Tensor x(shape);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0F, 1.0F);
  return x;
}

void flip_bit(QuantizedNetwork& q, std::size_t param, std::int64_t element,
              int bit) {
  float& slot = (*q.mutable_network().params()[param])[element];
  slot = std::bit_cast<float>(std::bit_cast<std::uint32_t>(slot) ^
                              (1U << bit));
}

TEST(BnFoldAbftTest, FoldedForwardIsBitIdenticalAtZeroFaults) {
  QuantizedNetwork off(make_conv_bn_net(1), kFullBits, nn::Protection::off);
  QuantizedNetwork full(make_conv_bn_net(1), kFullBits, nn::Protection::full);
  const Tensor x = random_input(2);

  AbftCheck off_check, full_check;
  const Tensor y_off = off.forward(x, &off_check);
  const Tensor y_full = full.forward(x, &full_check);
  EXPECT_TRUE(allclose(y_off, y_full, 0.0F));

  EXPECT_FALSE(off_check.checked);
  EXPECT_TRUE(full_check.checked);
  EXPECT_TRUE(full_check.ok) << "fold must pass with the default tolerance";
  // conv+BN fold as one checked unit, plus the ReLU guard and the Dense.
  EXPECT_EQ(full_check.layers_checked, 3);
}

TEST(BnFoldAbftTest, ReducedPrecisionSkipsFoldButStaysBitIdentical) {
  // Below kFullBits the top-level fold is disabled (activations truncate
  // between conv and BN), falling back to separate conv + affine checks —
  // still bit-identical to the unprotected forward.
  QuantizedNetwork off(make_conv_bn_net(3), 20, nn::Protection::off);
  QuantizedNetwork full(make_conv_bn_net(3), 20, nn::Protection::full);
  const Tensor x = random_input(4);

  AbftCheck check;
  const Tensor y_off = off.forward(x, nullptr);
  const Tensor y_full = full.forward(x, &check);
  EXPECT_TRUE(allclose(y_off, y_full, 0.0F));
  EXPECT_TRUE(check.checked);
  EXPECT_TRUE(check.ok);
  // conv, BN affine, ReLU guard, Dense each checked separately.
  EXPECT_EQ(check.layers_checked, 4);
}

TEST(BnFoldAbftTest, GammaExponentFlipIsDetected) {
  QuantizedNetwork q(make_conv_bn_net(5), kFullBits, nn::Protection::full);
  const Tensor x = random_input(6);

  flip_bit(q, 2, 1, 26);  // gamma[1], high exponent
  AbftCheck check;
  q.forward(x, &check);
  EXPECT_TRUE(check.checked);
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.failed_layer, 0);
  EXPECT_EQ(check.failed_kind, "conv2d+batchnorm");
}

TEST(BnFoldAbftTest, BetaExponentFlipIsDetected) {
  QuantizedNetwork q(make_conv_bn_net(7), kFullBits, nn::Protection::full);
  const Tensor x = random_input(8);

  flip_bit(q, 3, 2, 26);  // beta[2], high exponent
  AbftCheck check;
  q.forward(x, &check);
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.failed_kind, "conv2d+batchnorm");
}

TEST(BnFoldAbftTest, ConvWeightFlipIsDetectedThroughTheFold) {
  QuantizedNetwork q(make_conv_bn_net(9), kFullBits, nn::Protection::full);
  const Tensor x = random_input(10);

  flip_bit(q, 0, 7, 26);  // conv weight behind the folded checksum
  AbftCheck check;
  q.forward(x, &check);
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.failed_layer, 0);
  EXPECT_EQ(check.failed_kind, "conv2d+batchnorm");
}

TEST(BnFoldAbftTest, RefreshedChecksumRefoldsAfterBnEdit) {
  QuantizedNetwork q(make_conv_bn_net(11), kFullBits, nn::Protection::full);
  const Tensor x = random_input(12);

  // A legitimate gamma edit followed by refresh_checksum must re-fold; the
  // forward then passes again with the default tolerance.
  (*q.mutable_network().params()[2])[0] = 2.0F;
  q.refresh_checksum();
  AbftCheck check;
  q.forward(x, &check);
  EXPECT_TRUE(check.checked);
  EXPECT_TRUE(check.ok);
}

TEST(BnFoldAbftTest, Resnet20FullProtectionNeedsNoToleranceWidening) {
  Rng rng(13);
  nn::Network net = zoo::make_resnet20(zoo::InputSpec{}, rng);
  // Train-mode forward gives every BN nontrivial running statistics.
  net.forward(random_input(14, Shape{2, 3, 16, 16}), true);
  QuantizedNetwork q(std::move(net), kFullBits, nn::Protection::full);

  AbftCheck check;
  q.forward(random_input(15, Shape{2, 3, 16, 16}), &check);
  EXPECT_TRUE(check.checked);
  EXPECT_TRUE(check.ok) << "clean resnet20 forward must pass at the default "
                           "tolerance (max_rel_error="
                        << check.max_rel_error;
  EXPECT_LE(check.max_rel_error, kAbftTolerance);
}

TEST(BnFoldAbftTest, Resnet20ConvExponentFlipIsDetected) {
  Rng rng(16);
  nn::Network net = zoo::make_resnet20(zoo::InputSpec{}, rng);
  net.forward(random_input(17, Shape{2, 3, 16, 16}), true);
  QuantizedNetwork q(std::move(net), kFullBits, nn::Protection::full);

  flip_bit(q, 0, 5, 26);  // stem conv weight
  AbftCheck check;
  q.forward(random_input(18, Shape{2, 3, 16, 16}), &check);
  EXPECT_TRUE(check.checked);
  EXPECT_FALSE(check.ok);
}

}  // namespace
}  // namespace pgmr::quant
