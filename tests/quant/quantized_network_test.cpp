// QuantizedNetwork behaviour: agreement at full precision, graceful
// degradation at reduced precision.
#include "quant/quantized_network.h"

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "tensor/random.h"

namespace pgmr::quant {
namespace {

nn::Network make_net(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  auto conv = std::make_unique<nn::Conv2D>(1, 4, 3, 1, 1);
  conv->init(rng);
  layers.push_back(std::move(conv));
  layers.push_back(std::make_unique<nn::ReLU>());
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(4 * 6 * 6, 4);
  fc->init(rng);
  layers.push_back(std::move(fc));
  return nn::Network("qnet", std::move(layers));
}

Tensor random_input(std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(Shape{5, 1, 6, 6});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0F, 1.0F);
  return x;
}

TEST(QuantizedNetworkTest, FullPrecisionMatchesOriginal) {
  nn::Network reference = make_net(1);
  QuantizedNetwork q(make_net(1), 32);
  const Tensor x = random_input(2);
  EXPECT_TRUE(allclose(reference.forward(x), q.forward(x), 0.0F));
}

TEST(QuantizedNetworkTest, ModeratePrecisionStaysClose) {
  nn::Network reference = make_net(3);
  QuantizedNetwork q(make_net(3), 20);
  const Tensor x = random_input(4);
  const Tensor full = reference.forward(x);
  const Tensor reduced = q.forward(x);
  for (std::int64_t i = 0; i < full.numel(); ++i) {
    EXPECT_NEAR(full[i], reduced[i], 0.05F) << "logit " << i;
  }
}

TEST(QuantizedNetworkTest, ErrorGrowsMonotonicallyAsBitsDrop) {
  nn::Network reference = make_net(5);
  const Tensor x = random_input(6);
  const Tensor full = reference.forward(x);

  double prev_err = 0.0;
  for (int bits : {24, 18, 14, 11}) {
    QuantizedNetwork q(make_net(5), bits);
    const Tensor out = q.forward(x);
    double err = 0.0;
    for (std::int64_t i = 0; i < full.numel(); ++i) {
      err += std::abs(full[i] - out[i]);
    }
    EXPECT_GE(err, prev_err * 0.5) << bits;  // roughly monotone
    prev_err = err;
  }
  EXPECT_GT(prev_err, 0.0);
}

TEST(QuantizedNetworkTest, ProbabilitiesRemainNormalized) {
  QuantizedNetwork q(make_net(7), 12);
  const Tensor probs = q.probabilities(random_input(8));
  for (std::int64_t n = 0; n < probs.shape()[0]; ++n) {
    float row = 0.0F;
    for (std::int64_t c = 0; c < probs.shape()[1]; ++c) {
      row += probs.at(n, c);
    }
    EXPECT_NEAR(row, 1.0F, 1e-4F);
  }
}

TEST(QuantizedNetworkTest, WeightsTruncatedAtConstruction) {
  QuantizedNetwork q(make_net(9), 14);
  for (const auto& layer : q.network().layers()) {
    for (Tensor* p : const_cast<nn::Layer&>(*layer).params()) {
      for (std::int64_t i = 0; i < p->numel(); ++i) {
        EXPECT_EQ((*p)[i], truncate_value((*p)[i], 14));
      }
    }
  }
}

TEST(QuantizedNetworkTest, ExposesNameAndBits) {
  QuantizedNetwork q(make_net(10), 17);
  EXPECT_EQ(q.name(), "qnet");
  EXPECT_EQ(q.bits(), 17);
}

}  // namespace
}  // namespace pgmr::quant
