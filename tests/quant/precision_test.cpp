// Float truncation (RAMR) property tests.
#include "quant/precision.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/random.h"

namespace pgmr::quant {
namespace {

TEST(PrecisionTest, FullWidthIsIdentity) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const float v = rng.uniform(-100.0F, 100.0F);
    EXPECT_EQ(truncate_value(v, 32), v);
    EXPECT_EQ(truncate_value(v, 40), v);
  }
}

TEST(PrecisionTest, TruncationIsIdempotent) {
  Rng rng(2);
  for (int bits : {10, 14, 17, 20, 25}) {
    for (int i = 0; i < 50; ++i) {
      const float v = rng.uniform(-10.0F, 10.0F);
      const float once = truncate_value(v, bits);
      EXPECT_EQ(truncate_value(once, bits), once) << "bits=" << bits;
    }
  }
}

TEST(PrecisionTest, ErrorShrinksWithMoreBits) {
  Rng rng(3);
  double err_low = 0.0, err_high = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(0.5F, 2.0F);
    err_low += std::fabs(v - truncate_value(v, 12));
    err_high += std::fabs(v - truncate_value(v, 20));
  }
  EXPECT_GT(err_low, 10.0 * err_high);
}

TEST(PrecisionTest, RelativeErrorBoundedByMantissa) {
  // Keeping m mantissa bits bounds relative error by 2^-m.
  Rng rng(4);
  for (int bits : {13, 17, 21}) {
    const int mantissa = bits - 9;
    const double bound = std::ldexp(1.0, -mantissa);
    for (int i = 0; i < 200; ++i) {
      const float v = rng.uniform(-50.0F, 50.0F);
      const float t = truncate_value(v, bits);
      EXPECT_LE(std::fabs(v - t), bound * std::fabs(v) + 1e-30)
          << "bits=" << bits << " v=" << v;
    }
  }
}

TEST(PrecisionTest, SignAndZeroPreserved) {
  EXPECT_EQ(truncate_value(0.0F, 10), 0.0F);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const float v = rng.uniform(-10.0F, 10.0F);
    const float t = truncate_value(v, 10);
    EXPECT_EQ(std::signbit(t), std::signbit(v));
  }
}

TEST(PrecisionTest, TruncationRoundsTowardZeroInMagnitude) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const float v = rng.uniform(-10.0F, 10.0F);
    const float t = truncate_value(v, 14);
    EXPECT_LE(std::fabs(t), std::fabs(v));
  }
}

TEST(PrecisionTest, MinimumWidthClampsBelow) {
  // bits below kMinBits behave like kMinBits (zero mantissa kept): the
  // result is always a power of two (or zero) with the original sign.
  const float t = truncate_value(3.7F, 5);
  EXPECT_EQ(t, 2.0F);  // 3.7 -> exponent-only representation
  EXPECT_EQ(truncate_value(3.7F, kMinBits), 2.0F);
}

TEST(PrecisionTest, PowersOfTwoAreExactAtAnyWidth) {
  for (int bits = kMinBits; bits <= 32; ++bits) {
    EXPECT_EQ(truncate_value(0.25F, bits), 0.25F);
    EXPECT_EQ(truncate_value(-8.0F, bits), -8.0F);
  }
}

TEST(PrecisionTest, TensorTruncationAppliesElementwise) {
  Tensor t(Shape{4}, {1.1F, -2.3F, 0.0F, 8.0F});
  Tensor expected = t;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    expected[i] = truncate_value(expected[i], 14);
  }
  truncate_tensor(t, 14);
  EXPECT_TRUE(allclose(t, expected, 0.0F));
}

TEST(PrecisionTest, TensorFullWidthIsNoOp) {
  Tensor t(Shape{3}, {1.234567F, -9.87654F, 3.14159F});
  const Tensor before = t;
  truncate_tensor(t, 32);
  EXPECT_TRUE(allclose(t, before, 0.0F));
}

}  // namespace
}  // namespace pgmr::quant
