// Chunked parameter-CRC properties: a tensor is blessed as independent
// CRC32s over kCrcChunkElems-float windows, so corruption is localized to
// the chunk that holds it, out-of-range and size-drifted reads fail closed
// (a drift is a corruption signal, never a pass), and re-blessing rebuilds
// the chunk snapshot — the contract the runtime's resumable scrubber
// (scrub_max_chunks) is built on.
#include "quant/quantized_network.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/dense.h"
#include "nn/pooling.h"
#include "tensor/random.h"

namespace pgmr::quant {
namespace {

constexpr std::int64_t kChunk = QuantizedNetwork::kCrcChunkElems;

/// Flatten + Dense(2, 20000) + Dense(20000, 2): parameter tensors of
/// 40000 / 20000 / 40000 / 2 floats — three of them span multiple CRC
/// chunks (3, 2, 3 and 1 respectively).
nn::Network multi_chunk_net() {
  Rng rng(7);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  auto up = std::make_unique<nn::Dense>(2, 20000);
  up->init(rng);
  layers.push_back(std::move(up));
  auto down = std::make_unique<nn::Dense>(20000, 2);
  down->init(rng);
  layers.push_back(std::move(down));
  return nn::Network("multichunk", std::move(layers));
}

QuantizedNetwork blessed() {
  return QuantizedNetwork(multi_chunk_net(), 32, nn::Protection::off);
}

TEST(ParamChunkTest, ChunkCountIsCeilOfNumelOverChunkElems) {
  QuantizedNetwork qn = blessed();
  const std::vector<Tensor*> params = qn.mutable_network().params();
  ASSERT_EQ(qn.param_count(), params.size());
  bool saw_multi_chunk = false;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const std::int64_t n = params[i]->numel();
    const auto expected = static_cast<std::size_t>((n + kChunk - 1) / kChunk);
    EXPECT_EQ(qn.param_chunk_count(i), expected) << "param " << i;
    EXPECT_GE(qn.param_chunk_count(i), 1U);
    saw_multi_chunk = saw_multi_chunk || expected > 1;
  }
  EXPECT_TRUE(saw_multi_chunk) << "fixture must exercise multi-chunk tensors";
  EXPECT_EQ(qn.param_chunk_count(qn.param_count()), 0U);  // out of range
}

TEST(ParamChunkTest, BlessingLeavesEveryChunkIntact) {
  QuantizedNetwork qn = blessed();
  for (std::size_t i = 0; i < qn.param_count(); ++i) {
    for (std::size_t c = 0; c < qn.param_chunk_count(i); ++c) {
      EXPECT_TRUE(qn.param_chunk_intact(i, c)) << "param " << i << " chunk "
                                               << c;
    }
  }
  EXPECT_TRUE(qn.params_intact());
}

TEST(ParamChunkTest, CorruptionIsLocalizedToItsChunk) {
  QuantizedNetwork qn = blessed();
  // Find a tensor with >= 3 chunks and flip one element inside chunk 1.
  std::size_t target = qn.param_count();
  for (std::size_t i = 0; i < qn.param_count(); ++i) {
    if (qn.param_chunk_count(i) >= 3) {
      target = i;
      break;
    }
  }
  ASSERT_LT(target, qn.param_count());
  Tensor* p = qn.mutable_network().params()[target];
  const std::int64_t victim = kChunk + 11;
  (*p)[victim] = (*p)[victim] == 0.0F ? 1.0F : -(*p)[victim];

  EXPECT_TRUE(qn.param_chunk_intact(target, 0));
  EXPECT_FALSE(qn.param_chunk_intact(target, 1));
  EXPECT_TRUE(qn.param_chunk_intact(target, 2));
  // The whole-tensor view agrees with the chunked one.
  EXPECT_FALSE(qn.param_intact(target));
  EXPECT_EQ(qn.first_corrupt_param(), static_cast<int>(target));
  // Other tensors are untouched.
  for (std::size_t i = 0; i < qn.param_count(); ++i) {
    if (i != target) EXPECT_TRUE(qn.param_intact(i)) << "param " << i;
  }
}

TEST(ParamChunkTest, RefreshChecksumReblessesTheChunkSnapshot) {
  QuantizedNetwork qn = blessed();
  Tensor* p = qn.mutable_network().params()[0];
  (*p)[kChunk + 3] += 1.0F;
  ASSERT_FALSE(qn.param_chunk_intact(0, 1));

  qn.refresh_checksum();  // the edit becomes the new golden state
  for (std::size_t i = 0; i < qn.param_count(); ++i) {
    for (std::size_t c = 0; c < qn.param_chunk_count(i); ++c) {
      EXPECT_TRUE(qn.param_chunk_intact(i, c)) << "param " << i << " chunk "
                                               << c;
    }
  }
  EXPECT_TRUE(qn.params_intact());
}

TEST(ParamChunkTest, OutOfRangeReadsFailClosed) {
  QuantizedNetwork qn = blessed();
  EXPECT_FALSE(qn.param_chunk_intact(qn.param_count(), 0));
  EXPECT_FALSE(qn.param_chunk_intact(0, qn.param_chunk_count(0)));
}

TEST(ParamChunkTest, LiveSizeDriftReadsAsCorruption) {
  QuantizedNetwork qn = blessed();
  std::size_t target = 0;
  for (std::size_t i = 0; i < qn.param_count(); ++i) {
    if (qn.param_chunk_count(i) >= 3) target = i;
  }
  const std::size_t chunks = qn.param_chunk_count(target);
  ASSERT_GE(chunks, 3U);
  // Shrink the live tensor under the golden snapshot: chunks past the new
  // end fail because they no longer exist, and the first chunk fails
  // because its window changed — a drift never passes.
  *qn.mutable_network().params()[target] = Tensor(Shape{4});
  for (std::size_t c = 0; c < chunks; ++c) {
    EXPECT_FALSE(qn.param_chunk_intact(target, c)) << "chunk " << c;
  }
  EXPECT_FALSE(qn.param_intact(target));
}

}  // namespace
}  // namespace pgmr::quant
