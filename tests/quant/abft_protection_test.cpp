// Full-network ABFT protection levels and the parameter-CRC snapshot:
// bit-identity at zero faults, per-layer detection (including layers
// nested in composites), and CRC coverage of flips ABFT's tolerance hides.
#include <bit>

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/blocks.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "quant/quantized_network.h"
#include "tensor/random.h"

namespace pgmr::quant {
namespace {

// conv(0) -> relu(1) -> flatten(2) -> dense(3)
nn::Network make_net(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  auto conv = std::make_unique<nn::Conv2D>(1, 4, 3, 1, 1);
  conv->init(rng);
  layers.push_back(std::move(conv));
  layers.push_back(std::make_unique<nn::ReLU>());
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(4 * 6 * 6, 4);
  fc->init(rng);
  layers.push_back(std::move(fc));
  return nn::Network("abftnet", std::move(layers));
}

// residual(0: conv nested in the body Sequential) -> flatten(1) -> dense(2)
nn::Network make_residual_net(std::uint64_t seed) {
  Rng rng(seed);
  auto body = std::make_unique<nn::Sequential>();
  auto conv = std::make_unique<nn::Conv2D>(1, 4, 3, 1, 1);
  conv->init(rng);
  body->add(std::move(conv));
  auto projection = std::make_unique<nn::Conv2D>(1, 4, 1, 1, 0);
  projection->init(rng);

  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::ResidualBlock>(std::move(body),
                                                       std::move(projection)));
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(4 * 6 * 6, 4);
  fc->init(rng);
  layers.push_back(std::move(fc));
  return nn::Network("resnet-abft", std::move(layers));
}

Tensor random_input(std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(Shape{3, 1, 6, 6});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0F, 1.0F);
  return x;
}

void flip_bit(QuantizedNetwork& q, std::size_t param, std::int64_t element,
              int bit) {
  float& slot = (*q.mutable_network().params()[param])[element];
  slot = std::bit_cast<float>(std::bit_cast<std::uint32_t>(slot) ^
                              (1U << bit));
}

TEST(AbftProtectionTest, ProtectionLevelsAreBitIdenticalAtZeroFaults) {
  QuantizedNetwork off(make_net(1), 20, nn::Protection::off);
  QuantizedNetwork fc(make_net(1), 20, nn::Protection::final_fc);
  QuantizedNetwork full(make_net(1), 20, nn::Protection::full);
  const Tensor x = random_input(2);

  AbftCheck off_check, fc_check, full_check;
  const Tensor y_off = off.forward(x, &off_check);
  const Tensor y_fc = fc.forward(x, &fc_check);
  const Tensor y_full = full.forward(x, &full_check);
  EXPECT_TRUE(allclose(y_off, y_fc, 0.0F));
  EXPECT_TRUE(allclose(y_off, y_full, 0.0F));

  EXPECT_FALSE(off_check.checked);
  EXPECT_TRUE(fc_check.checked);
  EXPECT_TRUE(fc_check.ok);
  EXPECT_EQ(fc_check.layers_checked, 1);  // the final Dense only
  EXPECT_TRUE(full_check.checked);
  EXPECT_TRUE(full_check.ok);
  EXPECT_EQ(full_check.layers_checked, 3);  // Conv2D + ReLU guard + Dense
}

TEST(AbftProtectionTest, FullProtectionCatchesConvFlipFinalFcMisses) {
  QuantizedNetwork fc(make_net(3), 32, nn::Protection::final_fc);
  QuantizedNetwork full(make_net(3), 32, nn::Protection::full);
  const Tensor x = random_input(4);

  // High-exponent flip in the conv weight tensor (param 0).
  flip_bit(fc, 0, 7, 26);
  flip_bit(full, 0, 7, 26);

  AbftCheck fc_check;
  fc.forward(x, &fc_check);
  EXPECT_TRUE(fc_check.ok) << "final-FC checksum cannot see a conv fault";

  AbftCheck full_check;
  full.forward(x, &full_check);
  EXPECT_TRUE(full_check.checked);
  EXPECT_FALSE(full_check.ok);
  EXPECT_EQ(full_check.failed_layer, 0);
  EXPECT_EQ(full_check.failed_kind, "conv2d");
  EXPECT_GT(full_check.max_rel_error, kAbftTolerance);
}

TEST(AbftProtectionTest, DenseFlipDetectedAtBothLevels) {
  QuantizedNetwork fc(make_net(5), 32, nn::Protection::final_fc);
  QuantizedNetwork full(make_net(5), 32, nn::Protection::full);
  const Tensor x = random_input(6);

  // Param 2 is the Dense weight matrix.
  flip_bit(fc, 2, 11, 27);
  flip_bit(full, 2, 11, 27);

  AbftCheck fc_check;
  fc.forward(x, &fc_check);
  EXPECT_FALSE(fc_check.ok);
  EXPECT_EQ(fc_check.failed_kind, "dense");

  AbftCheck full_check;
  full.forward(x, &full_check);
  EXPECT_FALSE(full_check.ok);
  EXPECT_EQ(full_check.failed_layer, 3);
  EXPECT_EQ(full_check.failed_kind, "dense");
}

TEST(AbftProtectionTest, ConvNestedInResidualBlockIsProtected) {
  QuantizedNetwork q(make_residual_net(7), 32, nn::Protection::full);
  const Tensor x = random_input(8);

  AbftCheck clean;
  q.forward(x, &clean);
  EXPECT_TRUE(clean.ok);
  EXPECT_GE(clean.layers_checked, 2);  // residual (nested convs) + dense

  // Param 0 is the body conv weight, nested two levels deep
  // (ResidualBlock -> Sequential -> Conv2D).
  flip_bit(q, 0, 3, 26);
  AbftCheck faulty;
  q.forward(x, &faulty);
  EXPECT_FALSE(faulty.ok);
  EXPECT_EQ(faulty.failed_layer, 0);
  EXPECT_EQ(faulty.failed_kind, "residual");
}

TEST(AbftProtectionTest, CrcSnapshotCatchesFlipAbftTolerates) {
  QuantizedNetwork q(make_net(9), 32, nn::Protection::full);
  const Tensor x = random_input(10);
  EXPECT_TRUE(q.params_intact());
  EXPECT_EQ(q.first_corrupt_param(), -1);

  // A mantissa-LSB flip perturbs by ~2^-23 relative: far inside the ABFT
  // tolerance, so the inline check stays green...
  flip_bit(q, 0, 0, 0);
  AbftCheck check;
  q.forward(x, &check);
  EXPECT_TRUE(check.ok);
  // ...but the CRC snapshot is exact.
  EXPECT_FALSE(q.params_intact());
  EXPECT_EQ(q.first_corrupt_param(), 0);

  // Undo the flip (XOR involution): the snapshot matches again.
  flip_bit(q, 0, 0, 0);
  EXPECT_TRUE(q.params_intact());
}

TEST(AbftProtectionTest, RefreshChecksumBlessesLegitimateEdits) {
  QuantizedNetwork q(make_net(11), 32, nn::Protection::full);
  (*q.mutable_network().params()[0])[1] = 0.125F;
  EXPECT_FALSE(q.params_intact());

  q.refresh_checksum();
  EXPECT_TRUE(q.params_intact());
  AbftCheck check;
  q.forward(random_input(12), &check);
  EXPECT_TRUE(check.ok);
}

TEST(AbftProtectionTest, SetProtectionRetrofitsChecksums) {
  QuantizedNetwork q(make_net(13), 32, nn::Protection::off);
  AbftCheck before;
  q.forward(random_input(14), &before);
  EXPECT_FALSE(before.checked);

  q.set_protection(nn::Protection::full);
  EXPECT_EQ(q.protection(), nn::Protection::full);
  AbftCheck after;
  q.forward(random_input(14), &after);
  EXPECT_TRUE(after.checked);
  EXPECT_EQ(after.layers_checked, 3);  // Conv2D + ReLU guard + Dense
}

}  // namespace
}  // namespace pgmr::quant
