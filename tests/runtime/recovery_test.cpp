// End-to-end fault recovery: a member corrupted beyond healing is fenced,
// a replacement (with a DIFFERENT network) is built in the background and
// hot-swapped in, and from then on every verdict is bit-identical to a
// never-faulted system of the same post-recovery composition. A second
// test drives batcher + scrubber + replacer + injected corruption
// concurrently, the TSan target for the whole recovery path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <optional>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "nn/dense.h"
#include "nn/pooling.h"
#include "runtime/serving_runtime.h"
#include "tensor/random.h"

namespace pgmr::runtime {
namespace {

using std::chrono::milliseconds;

/// Flatten + Dense(2,2) with W = scale * I: logits == scale * input, so
/// differently-scaled nets give different confidences (distinguishable
/// members) while agreeing on the argmax.
nn::Network scaled_net(float scale) {
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(2, 2);
  Tensor* w = fc->params()[0];
  (*w)[0] = scale;
  (*w)[3] = scale;
  layers.push_back(std::move(fc));
  return nn::Network("identity", std::move(layers));
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string stem =
        (std::filesystem::temp_directory_path() /
         ("pgmr_recovery_test_" +
          std::to_string(
              ::testing::UnitTest::GetInstance()->random_seed()) +
          "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name()))
            .string();
    base_archive_ = stem + "_base.net";
    replacement_archive_ = stem + "_replacement.net";
    scaled_net(1.0F).save(base_archive_);
    scaled_net(2.0F).save(replacement_archive_);
  }
  void TearDown() override {
    std::remove(base_archive_.c_str());
    std::remove(replacement_archive_.c_str());
  }

  /// {slot0_archive, base, base} system — the recovery scenario swaps
  /// slot 0 from base to replacement.
  polygraph::PolygraphSystem system_with_slot0(const std::string& slot0) {
    mr::Ensemble e;
    const std::string archives[] = {slot0, base_archive_, base_archive_};
    for (const std::string& a : archives) {
      mr::Member member(std::make_unique<prep::Identity>(),
                        nn::Network::load(a));
      member.set_archive_source(a);
      e.add(std::move(member));
    }
    polygraph::PolygraphSystem sys(std::move(e));
    sys.set_thresholds({0.5F, 3});
    return sys;
  }

  ReplacementFactory replacement_factory() {
    return [this](std::size_t, int, std::stop_token)
               -> std::optional<mr::Member> {
      mr::Member fresh(std::make_unique<prep::Identity>(),
                       nn::Network::load(replacement_archive_));
      fresh.set_archive_source(replacement_archive_);
      return fresh;
    };
  }

  static RuntimeOptions base_options() {
    RuntimeOptions o;
    o.threads = 2;
    o.max_batch = 4;
    o.max_delay = std::chrono::microseconds(200);
    o.protection = nn::Protection::full;
    return o;
  }

  /// Deterministic probe set: seeded random [1,1,1,2] images.
  static std::vector<Tensor> probe_inputs(int count) {
    Rng rng(20260806);
    std::vector<Tensor> inputs;
    inputs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      Tensor x(Shape{1, 1, 1, 2});
      x[0] = static_cast<float>(rng.uniform(-4.0, 4.0));
      x[1] = static_cast<float>(rng.uniform(-4.0, 4.0));
      inputs.push_back(std::move(x));
    }
    return inputs;
  }

  static void expect_identical(const polygraph::Verdict& got,
                               const polygraph::Verdict& want, int i) {
    EXPECT_EQ(got.label, want.label) << "probe " << i;
    EXPECT_EQ(got.reliable, want.reliable) << "probe " << i;
    EXPECT_EQ(got.votes, want.votes) << "probe " << i;
    EXPECT_EQ(got.degraded, want.degraded) << "probe " << i;
  }

  std::string base_archive_;
  std::string replacement_archive_;
};

TEST_F(RecoveryTest, PostSwapVerdictsMatchNeverFaultedSystem) {
  RuntimeOptions opts = base_options();
  opts.replacement.factory = replacement_factory();
  ServingRuntime rt(system_with_slot0(base_archive_), opts);

  // Kill slot 0: corrupt weights, point the archive into the void.
  rt.with_swap_lock([&rt] {
    mr::Member& victim = rt.system().ensemble().member(0);
    Tensor* w = victim.net().mutable_network().params()[0];
    (*w)[0] = -(*w)[0];
    victim.set_archive_source("/nonexistent/recovery.net");
  });
  ASSERT_EQ(rt.scrub_now().fenced, 1U);
  ASSERT_EQ(rt.replace_now().replaced, 1U);

  // The never-faulted twin of the post-recovery composition, served
  // through its own runtime with identical options (same batching, same
  // protection): verdicts must agree bit for bit on every probe.
  ServingRuntime reference(system_with_slot0(replacement_archive_),
                           base_options());
  const std::vector<Tensor> probes = probe_inputs(24);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const polygraph::Verdict got = rt.submit(probes[i]).get();
    const polygraph::Verdict want =
        reference.submit(probes[i]).get();
    expect_identical(got, want, static_cast<int>(i));
    EXPECT_FALSE(got.degraded);
  }

  const MetricsSnapshot snap = rt.metrics_snapshot();
  EXPECT_EQ(snap.replacements_completed, 1U);
  EXPECT_EQ(snap.quorum_size, 3U);
}

TEST_F(RecoveryTest, ConcurrentScrubReplaceAndServeStaysCoherent) {
  RuntimeOptions opts = base_options();
  opts.scrub_interval = milliseconds(2);
  opts.quarantine_after = 2;
  opts.quarantine_cooldown = milliseconds(5);
  opts.replacement.enabled = true;
  opts.replacement.poll = milliseconds(2);
  opts.replacement.factory = replacement_factory();
  ServingRuntime rt(system_with_slot0(base_archive_), opts);

  // Two client threads hammer the runtime while the main thread injects
  // the fatal corruption mid-stream; scrubber and replacer run throughout.
  std::atomic<long long> served{0};
  std::atomic<bool> stop{false};
  const std::vector<Tensor> probes = probe_inputs(8);
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&rt, &served, &stop, &probes, c] {
      std::size_t i = static_cast<std::size_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        rt.submit(probes[i % probes.size()]).get();
        served.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }

  while (served.load(std::memory_order_relaxed) < 20) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  rt.with_swap_lock([&rt] {
    mr::Member& victim = rt.system().ensemble().member(0);
    Tensor* w = victim.net().mutable_network().params()[0];
    (*w)[0] = -(*w)[0];
    victim.set_archive_source("/nonexistent/recovery.net");
  });

  // Under live load: scrub fences slot 0, the replacer swaps the fresh
  // member in, the probe batch re-admits it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (rt.metrics_snapshot().replacements_completed == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "recovery never completed under concurrent load";
    std::this_thread::sleep_for(milliseconds(2));
  }
  const long long served_at_recovery = served.load();
  while (served.load(std::memory_order_relaxed) < served_at_recovery + 20) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();

  // The healed runtime itself is bit-identical to the never-faulted twin
  // of its post-recovery composition.
  ServingRuntime reference(system_with_slot0(replacement_archive_),
                           base_options());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    expect_identical(rt.submit(probes[i]).get(),
                     reference.submit(probes[i]).get(),
                     static_cast<int>(i));
  }
  rt.shutdown();

  // Every submitted request was served; the pool healed itself.
  const MetricsSnapshot snap = rt.metrics_snapshot();
  EXPECT_EQ(snap.requests_completed, snap.requests_submitted);
  EXPECT_GE(snap.replacements_completed, 1U);
  EXPECT_EQ(snap.quorum_size, 3U);
  EXPECT_EQ(rt.health().fenced_count(), 0U);
}

}  // namespace
}  // namespace pgmr::runtime
