// Windowed SLO tracker / evaluator tests.
#include "runtime/slo.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace pgmr::runtime {
namespace {

// Records `n` requests: `lost` of them unserved, `fps` of the served ones
// reliable-but-wrong, the rest reliable-and-right.
void feed(SloTracker& t, int n, int lost = 0, int fps = 0) {
  for (int i = 0; i < n; ++i) {
    const bool served = i >= lost;
    const bool fp = served && (i - lost) < fps;
    t.record(served, served, fp);
  }
}

TEST(SloTrackerTest, RejectsNonPositiveWindow) {
  EXPECT_THROW(SloTracker(0), std::invalid_argument);
  EXPECT_THROW(SloTracker(-4), std::invalid_argument);
}

TEST(SloTrackerTest, BucketsIntoWindowsIncludingPartialTail) {
  SloTracker t(4);
  feed(t, 10);
  const auto windows = t.windows();
  ASSERT_EQ(windows.size(), 3U);
  EXPECT_EQ(windows[0].submitted, 4);
  EXPECT_EQ(windows[1].submitted, 4);
  EXPECT_EQ(windows[2].submitted, 2);  // trailing partial window
  EXPECT_EQ(t.submitted(), 10);
  EXPECT_EQ(t.served(), 10);
}

TEST(SloTrackerTest, EmptyWindowCountsAsFullyAvailable) {
  SloTracker t(8);
  EXPECT_TRUE(t.windows().empty());
  const SloReport report = evaluate_slo(t, 0.0, SloSpec{});
  EXPECT_EQ(report.windows, 0);
  EXPECT_EQ(report.availability, 1.0);
  EXPECT_TRUE(report.pass());
}

TEST(SloEvaluatorTest, WorstWindowGatesAvailabilityNotTheRunMean) {
  // 3 windows of 4; one loses half its traffic. The run mean (10/12) sits
  // above a 0.75 floor, but the worst window (0.5) is what must gate —
  // that is the whole point of windowed accounting.
  SloTracker t(4);
  feed(t, 4);
  feed(t, 4, /*lost=*/2);
  feed(t, 4);
  SloSpec spec;
  spec.window = 4;
  spec.availability_floor = 0.75;
  const SloReport report = evaluate_slo(t, 0.0, spec);
  EXPECT_NEAR(report.availability, 10.0 / 12.0, 1e-12);
  EXPECT_NEAR(report.worst_window_availability, 0.5, 1e-12);
  EXPECT_FALSE(report.availability_ok);
  EXPECT_EQ(report.impacted_windows, 1);
  EXPECT_FALSE(report.pass());

  spec.availability_floor = 0.5;
  EXPECT_TRUE(evaluate_slo(t, 0.0, spec).availability_ok);
}

TEST(SloEvaluatorTest, FpDriftIsMeasuredAgainstTheReference) {
  SloTracker t(100);
  feed(t, 200, /*lost=*/0, /*fps=*/4);  // run FP rate 2%
  SloSpec spec;
  spec.window = 100;
  spec.fp_drift_pp = 0.5;
  // Reference 1.8% -> drift 0.2pp: within budget.
  SloReport report = evaluate_slo(t, 0.018, spec);
  EXPECT_NEAR(report.fp_rate, 0.02, 1e-12);
  EXPECT_NEAR(report.fp_drift_pp, 0.2, 1e-9);
  EXPECT_TRUE(report.fp_drift_ok);
  // Reference 1.0% -> drift 1.0pp: violation.
  report = evaluate_slo(t, 0.010, spec);
  EXPECT_NEAR(report.fp_drift_pp, 1.0, 1e-9);
  EXPECT_FALSE(report.fp_drift_ok);
  // Drift is a *ceiling*: a run cleaner than its reference never fails.
  report = evaluate_slo(t, 0.05, spec);
  EXPECT_LT(report.fp_drift_pp, 0.0);
  EXPECT_TRUE(report.fp_drift_ok);
}

TEST(SloEvaluatorTest, RecoveryGateBoundsTheLongestImpactRun) {
  // Impact pattern per window of 2: ok, ok, LOST, LOST, LOST, ok, LOST.
  SloTracker t(2);
  feed(t, 4);
  feed(t, 2, 1);
  feed(t, 2, 1);
  feed(t, 2, 1);
  feed(t, 2);
  feed(t, 2, 1);
  SloSpec spec;
  spec.window = 2;
  spec.availability_floor = 0.25;
  spec.recovery_windows = 3;
  SloReport report = evaluate_slo(t, 0.0, spec);
  EXPECT_EQ(report.windows, 7);
  EXPECT_EQ(report.impacted_windows, 4);
  // The isolated later impact does not extend the run: consecutive only.
  EXPECT_EQ(report.longest_impact_run, 3);
  EXPECT_TRUE(report.recovery_ok);

  spec.recovery_windows = 2;
  report = evaluate_slo(t, 0.0, spec);
  EXPECT_FALSE(report.recovery_ok);
  EXPECT_FALSE(report.pass());
}

TEST(SloEvaluatorTest, GateTableRendersEveryVerdict) {
  SloTracker t(2);
  feed(t, 4, /*lost=*/3);
  SloSpec spec;
  spec.window = 2;
  const std::string table = evaluate_slo(t, 0.0, spec).to_string();
  EXPECT_NE(table.find("availability"), std::string::npos);
  EXPECT_NE(table.find("fp drift"), std::string::npos);
  EXPECT_NE(table.find("recovery"), std::string::npos);
  EXPECT_NE(table.find("VIOLATION"), std::string::npos);
}

}  // namespace
}  // namespace pgmr::runtime
