// ThreadPool: submit/parallel_for semantics, error propagation, and the
// mr::Executor seam the ensemble uses.
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pgmr::runtime {
namespace {

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1U);
}

TEST(ThreadPoolTest, SubmitRunsTaskAndSignalsFuture) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto f = pool.submit([&] { ran.store(7); });
  f.get();
  EXPECT_EQ(ran.load(), 7);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForRethrowsAfterAllIterationsFinish) {
  ThreadPool pool(3);
  std::atomic<int> finished{0};
  EXPECT_THROW(pool.parallel_for(16,
                                 [&](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                   finished.fetch_add(1);
                                 }),
               std::runtime_error);
  // No iteration is abandoned mid-flight: all the non-throwing ones ran.
  EXPECT_EQ(finished.load(), 15);
}

TEST(ThreadPoolTest, ParallelForZeroAndOneAreInline) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.parallel_for(1, [&](std::size_t i) { count += static_cast<int>(i) + 1; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ExecutorSeamMatchesSerialSemantics) {
  ThreadPool pool(4);
  const mr::Executor exec = pool.executor();
  std::vector<int> out(32, 0);
  exec(out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i) * 2; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 2);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.submit([&] { ran.fetch_add(1); }));
    }
  }  // destructor joins; queued tasks must not be dropped
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 20);
}

}  // namespace
}  // namespace pgmr::runtime
