// End-to-end resilience: chaos faults injected into live ServingRuntime
// members must never lose a request — verdicts degrade, the circuit
// breaker quarantines and recovers, expired requests are shed.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fault/chaos.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "runtime/serving_runtime.h"

namespace pgmr::runtime {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Flatten + Dense(2,2) identity net: logits == input.
nn::Network identity_net() {
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(2, 2);
  Tensor* w = fc->params()[0];
  (*w)[0] = 1.0F;
  (*w)[3] = 1.0F;
  layers.push_back(std::move(fc));
  return nn::Network("identity", std::move(layers));
}

/// `members` identical identity members, each wired to `chaos`.
polygraph::PolygraphSystem chaos_system(
    int members, const std::shared_ptr<fault::ChaosInjector>& chaos) {
  mr::Ensemble e;
  for (int m = 0; m < members; ++m) {
    e.add(mr::Member(
        fault::chaos_wrap(std::make_unique<prep::Identity>(), chaos,
                          static_cast<std::size_t>(m)),
        identity_net()));
  }
  polygraph::PolygraphSystem sys(std::move(e));
  sys.set_thresholds({0.5F, members});  // strict: full agreement required
  return sys;
}

Tensor confident_input() {
  Tensor x(Shape{1, 1, 1, 2});
  x[0] = 5.0F;  // logits (5, 0): every healthy member votes class 0
  return x;
}

RuntimeOptions fast_options(int quarantine_after,
                            milliseconds cooldown = milliseconds(10000)) {
  RuntimeOptions o;
  o.threads = 2;
  o.max_batch = 4;
  o.max_delay = std::chrono::microseconds(200);
  o.quarantine_after = quarantine_after;
  o.quarantine_cooldown = cooldown;
  return o;
}

/// Submits one request and waits for it: exactly one batch per call.
polygraph::Verdict serve_one(ServingRuntime& rt) {
  return rt.submit(confident_input()).get();
}

TEST(ResilienceTest, MemberExceptionDegradesThenQuarantines) {
  auto chaos = std::make_shared<fault::ChaosInjector>(3);
  chaos->arm(0, fault::ChaosFault::member_exception);  // until disarm
  ServingRuntime rt(chaos_system(3, chaos), fast_options(2));

  // Every request is served despite the crashing member; Thr_Freq 3-of-3
  // renormalizes to 2-of-2, so the verdicts stay reliable but degraded.
  for (int i = 0; i < 5; ++i) {
    const polygraph::Verdict v = serve_one(rt);
    EXPECT_EQ(v.label, 0);
    EXPECT_TRUE(v.reliable);
    EXPECT_TRUE(v.degraded);
    EXPECT_EQ(v.activated, 2);
  }

  // After quarantine_after = 2 consecutive faults the breaker tripped, so
  // the chaos hook fired exactly twice — later batches skip the member.
  EXPECT_EQ(rt.health().state(0), MemberState::quarantined);
  EXPECT_EQ(chaos->fired(0), 2U);

  const MetricsSnapshot snap = rt.metrics_snapshot();
  EXPECT_EQ(snap.requests_completed, 5U);
  EXPECT_EQ(snap.degraded_verdicts, 5U);
  EXPECT_EQ(snap.member_faults[0], 2U);
  EXPECT_EQ(snap.quarantine_events[0], 1U);
  EXPECT_EQ(snap.member_faults[1], 0U);
  // Degraded verdicts charge only the surviving members.
  EXPECT_EQ(snap.member_activations[0], 0U);
  EXPECT_EQ(snap.member_activations[1], 5U);
}

TEST(ResilienceTest, NanOutputsAreFencedByFiniteCheck) {
  auto chaos = std::make_shared<fault::ChaosInjector>(3);
  chaos->arm(1, fault::ChaosFault::nan_output);
  ServingRuntime rt(chaos_system(3, chaos), fast_options(2));

  for (int i = 0; i < 4; ++i) {
    const polygraph::Verdict v = serve_one(rt);
    EXPECT_EQ(v.label, 0);
    EXPECT_TRUE(v.degraded);
  }
  EXPECT_EQ(rt.health().state(1), MemberState::quarantined);
  EXPECT_GE(rt.metrics_snapshot().member_faults[1], 2U);
}

TEST(ResilienceTest, LatencySpikeIsNotAFault) {
  auto chaos = std::make_shared<fault::ChaosInjector>(2);
  chaos->arm(0, fault::ChaosFault::latency_spike, /*count=*/1,
             milliseconds(5));
  ServingRuntime rt(chaos_system(2, chaos), fast_options(1));
  const polygraph::Verdict v = serve_one(rt);
  EXPECT_TRUE(v.reliable);
  EXPECT_FALSE(v.degraded);
  EXPECT_EQ(rt.health().state(0), MemberState::healthy);
  EXPECT_EQ(rt.metrics_snapshot().member_faults[0], 0U);
}

TEST(ResilienceTest, QuarantinedMemberRecoversViaHalfOpenProbe) {
  auto chaos = std::make_shared<fault::ChaosInjector>(3);
  chaos->arm(0, fault::ChaosFault::member_exception, /*count=*/1);
  ServingRuntime rt(chaos_system(3, chaos), fast_options(1, milliseconds(50)));

  // One fault trips the breaker (quarantine_after = 1).
  EXPECT_TRUE(serve_one(rt).degraded);
  EXPECT_EQ(rt.health().state(0), MemberState::quarantined);

  // Before the cooldown the member stays fenced off.
  EXPECT_TRUE(serve_one(rt).degraded);

  // After the cooldown the next batch runs it half-open; the fault plan is
  // exhausted, so the probe succeeds and full quorum returns.
  std::this_thread::sleep_for(milliseconds(80));
  const polygraph::Verdict recovered = serve_one(rt);
  EXPECT_FALSE(recovered.degraded);
  EXPECT_EQ(recovered.activated, 3);
  EXPECT_EQ(rt.health().state(0), MemberState::healthy);
}

TEST(ResilienceTest, ExpiredDeadlineIsShedWithDistinctError) {
  auto chaos = std::make_shared<fault::ChaosInjector>(2);
  ServingRuntime rt(chaos_system(2, chaos), fast_options(3));

  auto doomed =
      rt.submit(confident_input(), steady_clock::now() - milliseconds(1));
  EXPECT_THROW(doomed.get(), DeadlineExceeded);

  // A generous deadline is honoured normally.
  auto fine =
      rt.submit(confident_input(), steady_clock::now() + milliseconds(5000));
  EXPECT_TRUE(fine.get().reliable);

  const MetricsSnapshot snap = rt.metrics_snapshot();
  EXPECT_EQ(snap.requests_shed, 1U);
  EXPECT_EQ(snap.requests_completed, 1U);
}

TEST(ResilienceTest, WholeEnsembleFailurePropagatesWithoutQuarantine) {
  // Every member throwing on the same batch is indistinguishable from a
  // poison input: the request fails, nobody's health is charged.
  auto chaos = std::make_shared<fault::ChaosInjector>(2);
  chaos->arm(0, fault::ChaosFault::member_exception, /*count=*/1);
  chaos->arm(1, fault::ChaosFault::member_exception, /*count=*/1);
  ServingRuntime rt(chaos_system(2, chaos), fast_options(1));

  auto poisoned = rt.submit(confident_input());
  EXPECT_THROW(poisoned.get(), std::runtime_error);
  EXPECT_EQ(rt.health().state(0), MemberState::healthy);
  EXPECT_EQ(rt.health().state(1), MemberState::healthy);
  EXPECT_EQ(rt.metrics_snapshot().quarantine_events[0], 0U);

  // The runtime itself survives: the next request is served at full quorum.
  const polygraph::Verdict v = serve_one(rt);
  EXPECT_TRUE(v.reliable);
  EXPECT_FALSE(v.degraded);
}

}  // namespace
}  // namespace pgmr::runtime
