// Weight scrubber end-to-end: a corrupted member's CRCs are caught off the
// hot path, the member is reloaded from its zoo archive without a runtime
// restart, and a member with no trustworthy archive left is fenced out of
// the quorum permanently.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "nn/dense.h"
#include "nn/pooling.h"
#include "runtime/serving_runtime.h"

namespace pgmr::runtime {
namespace {

using std::chrono::milliseconds;

/// Flatten + Dense(2,2) identity net: logits == input.
nn::Network identity_net() {
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(2, 2);
  Tensor* w = fc->params()[0];
  (*w)[0] = 1.0F;
  (*w)[3] = 1.0F;
  layers.push_back(std::move(fc));
  return nn::Network("identity", std::move(layers));
}

class ScrubberTest : public ::testing::Test {
 protected:
  void SetUp() override {
    archive_ = (std::filesystem::temp_directory_path() /
                ("pgmr_scrubber_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name() +
                 ".net"))
                   .string();
    identity_net().save(archive_);
  }
  void TearDown() override { std::remove(archive_.c_str()); }

  /// `members` identity members, each loaded from (and wired to reload
  /// from) the shared archive.
  polygraph::PolygraphSystem archive_system(int members) {
    mr::Ensemble e;
    for (int m = 0; m < members; ++m) {
      mr::Member member(std::make_unique<prep::Identity>(),
                        nn::Network::load(archive_));
      member.set_archive_source(archive_);
      e.add(std::move(member));
    }
    polygraph::PolygraphSystem sys(std::move(e));
    sys.set_thresholds({0.5F, members});
    return sys;
  }

  static RuntimeOptions scrub_options(milliseconds interval = milliseconds(0)) {
    RuntimeOptions o;
    o.threads = 2;
    o.max_batch = 4;
    o.max_delay = std::chrono::microseconds(200);
    o.protection = nn::Protection::full;
    o.scrub_interval = interval;
    return o;
  }

  static Tensor confident_input() {
    Tensor x(Shape{1, 1, 1, 2});
    x[0] = 5.0F;  // logits (5, 0): every healthy member votes class 0
    return x;
  }

  static polygraph::Verdict serve_one(ServingRuntime& rt) {
    return rt.submit(confident_input()).get();
  }

  /// Sign-flips member m's W[0][0] (1.0 -> -1.0): breaks both its ABFT
  /// column sum and its parameter CRC. Holds the swap mutex so the
  /// mutation never races the batcher or a background sweep.
  static void corrupt_member(ServingRuntime& rt, std::size_t m) {
    rt.with_swap_lock([&rt, m] {
      Tensor* w = rt.system().ensemble().member(m).net().mutable_network()
                      .params()[0];
      (*w)[0] = -(*w)[0];
    });
  }

  std::string archive_;
};

TEST_F(ScrubberTest, CleanSweepFindsNothing) {
  ServingRuntime rt(archive_system(3), scrub_options());
  const ScrubReport report = rt.scrub_now();
  EXPECT_EQ(report.members_checked, 3U);
  EXPECT_EQ(report.mismatches, 0U);
  EXPECT_EQ(report.reloads, 0U);
  EXPECT_EQ(report.fenced, 0U);
  EXPECT_EQ(rt.metrics_snapshot().scrub_cycles, 1U);
  EXPECT_FALSE(rt.scrubber().running());  // interval 0: on-demand only
}

TEST_F(ScrubberTest, CorruptedMemberIsHealedWithoutRestart) {
  ServingRuntime rt(archive_system(3), scrub_options());

  // Golden behaviour at full quorum.
  const polygraph::Verdict golden = serve_one(rt);
  EXPECT_EQ(golden.label, 0);
  EXPECT_TRUE(golden.reliable);
  EXPECT_FALSE(golden.degraded);

  // Corrupt member 1's weights in place. The very next batch survives it:
  // full-network ABFT drops the member's vote, quorum degrades to 2-of-2.
  corrupt_member(rt, 1);
  const polygraph::Verdict under_fault = serve_one(rt);
  EXPECT_EQ(under_fault.label, 0);
  EXPECT_TRUE(under_fault.degraded);

  // One scrub sweep spots the CRC mismatch and reloads from the archive.
  const ScrubReport report = rt.scrub_now();
  EXPECT_EQ(report.mismatches, 1U);
  EXPECT_EQ(report.reloads, 1U);
  EXPECT_EQ(report.fenced, 0U);

  const MetricsSnapshot snap = rt.metrics_snapshot();
  EXPECT_EQ(snap.crc_mismatches[1], 1U);
  EXPECT_EQ(snap.weight_reloads[1], 1U);
  EXPECT_EQ(snap.crc_mismatches[0], 0U);

  // The healed member votes again: back to the golden verdict, no restart.
  const polygraph::Verdict healed = serve_one(rt);
  EXPECT_EQ(healed.label, 0);
  EXPECT_TRUE(healed.reliable);
  EXPECT_FALSE(healed.degraded);
  EXPECT_EQ(healed.activated, 3);
}

TEST_F(ScrubberTest, MemberWithoutTrustworthyArchiveIsFenced) {
  ServingRuntime rt(archive_system(3), scrub_options());
  EXPECT_FALSE(serve_one(rt).degraded);

  // Corrupt the member AND take away its reload source.
  corrupt_member(rt, 0);
  rt.with_swap_lock([&rt, this] {
    rt.system().ensemble().member(0).set_archive_source(archive_ + ".gone");
  });
  const ScrubReport report = rt.scrub_now();
  EXPECT_EQ(report.mismatches, 1U);
  EXPECT_EQ(report.reloads, 0U);
  EXPECT_EQ(report.fenced, 1U);
  EXPECT_EQ(rt.health().state(0), MemberState::fenced);

  // Fenced is terminal: the member never runs again, verdicts stay
  // degraded on the surviving quorum, and later sweeps skip it.
  for (int i = 0; i < 3; ++i) {
    const polygraph::Verdict v = serve_one(rt);
    EXPECT_EQ(v.label, 0);
    EXPECT_TRUE(v.degraded);
    EXPECT_EQ(v.activated, 2);
  }
  EXPECT_EQ(rt.health().state(0), MemberState::fenced);
  EXPECT_EQ(rt.scrub_now().members_checked, 2U);
  EXPECT_EQ(rt.metrics_snapshot().member_faults[0], 0U);
}

TEST_F(ScrubberTest, BackgroundScrubberHealsWithoutManualSweep) {
  ServingRuntime rt(archive_system(3), scrub_options(milliseconds(5)));
  EXPECT_TRUE(rt.scrubber().running());
  EXPECT_FALSE(serve_one(rt).degraded);

  corrupt_member(rt, 2);
  // No scrub_now(): the background thread must spot and heal the member.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rt.metrics_snapshot().weight_reloads[2] == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "background scrubber never healed the member";
    std::this_thread::sleep_for(milliseconds(2));
  }
  EXPECT_GE(rt.metrics_snapshot().crc_mismatches[2], 1U);
  const polygraph::Verdict healed = serve_one(rt);
  EXPECT_EQ(healed.label, 0);
  EXPECT_FALSE(healed.degraded);

  rt.shutdown();
  EXPECT_FALSE(rt.scrubber().running());
}

}  // namespace
}  // namespace pgmr::runtime
