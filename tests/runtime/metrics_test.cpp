// MetricsRegistry / MetricsSnapshot: counters, batch stats, histogram
// quantiles and the text dump.
#include "runtime/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pgmr::runtime {
namespace {

TEST(MetricsTest, FreshSnapshotIsAllZero) {
  MetricsRegistry reg(3);
  const MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(s.requests_submitted, 0U);
  EXPECT_EQ(s.requests_completed, 0U);
  EXPECT_EQ(s.requests_rejected, 0U);
  EXPECT_EQ(s.batches, 0U);
  EXPECT_EQ(s.reliable, 0U);
  EXPECT_EQ(s.unreliable, 0U);
  ASSERT_EQ(s.member_activations.size(), 3U);
  for (const auto a : s.member_activations) EXPECT_EQ(a, 0U);
  EXPECT_DOUBLE_EQ(s.mean_batch_size(), 0.0);
}

TEST(MetricsTest, CountersAccumulate) {
  MetricsRegistry reg(2);
  reg.on_submitted();
  reg.on_submitted();
  reg.on_rejected();
  reg.on_verdict(true);
  reg.on_verdict(false);
  reg.on_member_activated(0);
  reg.on_member_activated(0);
  reg.on_member_activated(1);

  const MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(s.requests_submitted, 2U);
  EXPECT_EQ(s.requests_rejected, 1U);
  EXPECT_EQ(s.requests_completed, 2U);  // one per verdict
  EXPECT_EQ(s.reliable, 1U);
  EXPECT_EQ(s.unreliable, 1U);
  EXPECT_EQ(s.member_activations[0], 2U);
  EXPECT_EQ(s.member_activations[1], 1U);
}

TEST(MetricsTest, BatchStatsTrackMeanAndMax) {
  MetricsRegistry reg(1);
  reg.on_batch(2);
  reg.on_batch(6);
  reg.on_batch(4);
  const MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(s.batches, 3U);
  EXPECT_EQ(s.batch_size_sum, 12U);
  EXPECT_EQ(s.max_batch_size, 6U);
  EXPECT_DOUBLE_EQ(s.mean_batch_size(), 4.0);
}

TEST(MetricsTest, LatencyQuantilesUseBucketUpperBounds) {
  MetricsRegistry reg(1);
  // 9 samples at <=50us, 1 sample in the (800, 1600] bucket.
  for (int i = 0; i < 9; ++i) reg.on_latency_us(10);
  reg.on_latency_us(1000);
  const MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(s.latency_quantile_us(0.5), 50U);
  EXPECT_EQ(s.latency_quantile_us(0.9), 50U);
  EXPECT_EQ(s.latency_quantile_us(0.99), 1600U);
}

TEST(MetricsTest, LatencyBucketBoundsAreStrictlyIncreasing) {
  for (std::size_t b = 1; b < kLatencyBucketBounds.size(); ++b) {
    EXPECT_LT(kLatencyBucketBounds[b - 1], kLatencyBucketBounds[b]);
  }
}

TEST(MetricsTest, ToStringListsEveryCounter) {
  MetricsRegistry reg(2);
  reg.on_submitted();
  reg.on_batch(1);
  const std::string text = reg.snapshot().to_string();
  EXPECT_NE(text.find("requests_submitted"), std::string::npos);
  EXPECT_NE(text.find("requests_completed"), std::string::npos);
  EXPECT_NE(text.find("batches"), std::string::npos);
  EXPECT_NE(text.find("member_activations"), std::string::npos);
  EXPECT_NE(text.find("latency"), std::string::npos);
}

TEST(MetricsTest, ConcurrentWritersLoseNoIncrements) {
  MetricsRegistry reg(1);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.on_submitted();
        reg.on_latency_us(100);
      }
    });
  }
  for (auto& t : writers) t.join();
  const MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(s.requests_submitted,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t hist_total = 0;
  for (const auto b : s.latency_buckets) hist_total += b;
  EXPECT_EQ(hist_total, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace pgmr::runtime
