// Resumable intra-tensor scrubbing: with a per-sweep chunk budget
// (scrub_max_chunks) the cursor walks a fixed number of 64 KiB CRC windows
// per member per sweep, pausing and resuming *inside* a tensor, so the
// swap-mutex hold per acquisition is bounded by the chunk budget even when
// a single tensor outweighs it. A full logical pass completes every
// ceil(total_chunks / budget) sweeps, corruption hiding in a late chunk is
// still caught the sweep its window comes up, and the soft hold ceiling
// now yields mid-tensor instead of being forced to finish the tensor.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "nn/dense.h"
#include "nn/pooling.h"
#include "quant/quantized_network.h"
#include "runtime/serving_runtime.h"
#include "tensor/random.h"

namespace pgmr::runtime {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr std::int64_t kChunk = quant::QuantizedNetwork::kCrcChunkElems;

/// Flatten + Dense(2, 20000) + Dense(20000, 2): four parameter tensors of
/// 40000 / 20000 / 40000 / 2 floats = 3 + 2 + 3 + 1 = 9 CRC chunks.
constexpr std::size_t kParams = 4;
constexpr std::size_t kTotalChunks = 9;

nn::Network multi_chunk_net() {
  Rng rng(21);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  auto up = std::make_unique<nn::Dense>(2, 20000);
  up->init(rng);
  layers.push_back(std::move(up));
  auto down = std::make_unique<nn::Dense>(20000, 2);
  down->init(rng);
  layers.push_back(std::move(down));
  return nn::Network("multichunk", std::move(layers));
}

class ScrubChunkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    archive_ = (std::filesystem::temp_directory_path() /
                ("pgmr_scrub_chunk_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name() +
                 ".net"))
                   .string();
    multi_chunk_net().save(archive_);
  }
  void TearDown() override { std::remove(archive_.c_str()); }

  polygraph::PolygraphSystem archive_system(int members) {
    mr::Ensemble e;
    for (int m = 0; m < members; ++m) {
      mr::Member member(std::make_unique<prep::Identity>(),
                        nn::Network::load(archive_));
      member.set_archive_source(archive_);
      e.add(std::move(member));
    }
    polygraph::PolygraphSystem sys(std::move(e));
    sys.set_thresholds({0.5F, members});
    return sys;
  }

  static RuntimeOptions chunk_options(std::size_t max_chunks,
                                      microseconds max_hold = microseconds(0)) {
    RuntimeOptions o;
    o.threads = 1;
    o.scrub_interval = milliseconds(0);  // sweeps driven by scrub_now()
    o.scrub_max_chunks = max_chunks;
    o.scrub_max_hold = max_hold;
    return o;
  }

  /// Sign-flips element `idx` of member m's parameter tensor `param`,
  /// breaking exactly the CRC chunk that holds it. Swap-locked so it never
  /// races a sweep.
  static void corrupt_param(ServingRuntime& rt, std::size_t m,
                            std::size_t param, std::int64_t idx) {
    rt.with_swap_lock([&rt, m, param, idx] {
      Tensor* p = rt.system().ensemble().member(m).net().mutable_network()
                      .params()[param];
      (*p)[idx] = (*p)[idx] == 0.0F ? 1.0F : -(*p)[idx];
    });
  }

  std::string archive_;
};

TEST_F(ScrubChunkTest, UnitChunkBudgetWalksEveryChunkInTotalChunksSweeps) {
  ServingRuntime rt(archive_system(1), chunk_options(1));
  // Budget 1: one 64 KiB window per sweep, pausing inside the 3-chunk
  // tensors; the pass boundary lands exactly every kTotalChunks sweeps.
  std::size_t tensors_completed = 0;
  for (std::size_t sweep = 1; sweep <= 2 * kTotalChunks; ++sweep) {
    const ScrubReport report = rt.scrub_now();
    EXPECT_EQ(report.members_checked, 1U);
    EXPECT_EQ(report.chunks_checked, 1U) << "sweep " << sweep;
    tensors_completed += report.tensors_checked;
    EXPECT_EQ(rt.scrubber().full_passes(0), sweep / kTotalChunks)
        << "sweep " << sweep;
  }
  EXPECT_EQ(tensors_completed, 2 * kParams);
}

TEST_F(ScrubChunkTest, ChunkBudgetSpansTensorBoundaries) {
  ServingRuntime rt(archive_system(1), chunk_options(4));
  // Budget 4 over chunk layout {3,2,3,1}: sweeps stop mid-tensor and the
  // cursor resumes there, so 9 chunks complete a pass in 3 sweeps.
  for (std::size_t sweep = 1; sweep <= 3; ++sweep) {
    const ScrubReport report = rt.scrub_now();
    EXPECT_EQ(report.chunks_checked, 4U) << "sweep " << sweep;
  }
  EXPECT_EQ(rt.scrubber().full_passes(0), 1U);
}

TEST_F(ScrubChunkTest, LateChunkCorruptionIsCaughtWhenItsWindowComesUp) {
  ServingRuntime rt(archive_system(1), chunk_options(1));
  // Corrupt chunk 2 of tensor 0 (element past two full windows): sweeps 1
  // and 2 verify the clean windows before it, sweep 3 hits the corruption
  // and heals from the archive.
  corrupt_param(rt, 0, 0, 2 * kChunk + 7);

  EXPECT_EQ(rt.scrub_now().mismatches, 0U);
  EXPECT_EQ(rt.scrub_now().mismatches, 0U);
  const ScrubReport third = rt.scrub_now();
  EXPECT_EQ(third.mismatches, 1U);
  EXPECT_EQ(third.reloads, 1U);
  EXPECT_EQ(third.fenced, 0U);
  EXPECT_EQ(rt.metrics_snapshot().crc_mismatches[0], 1U);
  EXPECT_EQ(rt.metrics_snapshot().weight_reloads[0], 1U);

  // Healing restarted the member's cycle: the next full logical pass over
  // all nine windows is clean.
  for (std::size_t sweep = 0; sweep < kTotalChunks; ++sweep) {
    EXPECT_EQ(rt.scrub_now().mismatches, 0U) << "post-heal sweep " << sweep;
  }
  EXPECT_GE(rt.scrubber().full_passes(0), 1U);
}

TEST_F(ScrubChunkTest, ChunkBudgetStillFencesWithoutArchive) {
  ServingRuntime rt(archive_system(1), chunk_options(2));
  corrupt_param(rt, 0, 2, 2 * kChunk + 1);  // last chunk of tensor 2
  rt.with_swap_lock([&rt, this] {
    rt.system().ensemble().member(0).set_archive_source(archive_ + ".gone");
  });

  // The cursor reaches the corrupt window within one logical pass.
  std::size_t fenced = 0;
  for (std::size_t sweep = 0; sweep < kTotalChunks && fenced == 0; ++sweep) {
    fenced = rt.scrub_now().fenced;
  }
  EXPECT_EQ(fenced, 1U);
  EXPECT_EQ(rt.health().state(0), MemberState::fenced);
  EXPECT_EQ(rt.scrub_now().members_checked, 0U);
}

TEST_F(ScrubChunkTest, HoldCeilingYieldsMidTensorWithoutStarving) {
  // A 1us ceiling is far below the cost of CRC-ing a 40000-float tensor,
  // so acquisitions must be allowed to stop between chunks; progress is
  // still guaranteed (>= 1 chunk per member per sweep), so a full pass
  // lands within kTotalChunks sweeps.
  ServingRuntime rt(archive_system(1), chunk_options(0, microseconds(1)));
  for (std::size_t sweep = 1; sweep <= kTotalChunks; ++sweep) {
    const ScrubReport report = rt.scrub_now();
    EXPECT_GE(report.chunks_checked, 1U) << "sweep " << sweep;
    EXPECT_LE(report.chunks_checked, kTotalChunks) << "sweep " << sweep;
  }
  EXPECT_GE(rt.scrubber().full_passes(0), 1U)
      << "hold ceiling must not starve the chunk cursor";
  // One hold sample per member per sweep, ceiling or not.
  std::uint64_t samples = 0;
  for (std::uint64_t b : rt.metrics_snapshot().scrub_hold_buckets) {
    samples += b;
  }
  EXPECT_EQ(samples, kTotalChunks);
}

TEST_F(ScrubChunkTest, ChunkBudgetComposesWithTensorBudget) {
  // scrub_max_tensors=1 + scrub_max_chunks=8: the tensor budget stops the
  // sweep at each tensor boundary even when chunks remain, so the layout
  // {3,2,3,1} takes exactly kParams sweeps per pass.
  RuntimeOptions o = chunk_options(8);
  o.scrub_max_tensors = 1;
  ServingRuntime rt(archive_system(1), o);
  const std::size_t expected_chunks[] = {3, 2, 3, 1};
  for (std::size_t sweep = 0; sweep < kParams; ++sweep) {
    const ScrubReport report = rt.scrub_now();
    EXPECT_EQ(report.tensors_checked, 1U) << "sweep " << sweep;
    EXPECT_EQ(report.chunks_checked, expected_chunks[sweep])
        << "sweep " << sweep;
  }
  EXPECT_EQ(rt.scrubber().full_passes(0), 1U);
}

}  // namespace
}  // namespace pgmr::runtime
