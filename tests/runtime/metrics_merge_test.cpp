// merge_snapshots properties: counters sum, per-member vectors pad to the
// widest ensemble and sum slot-wise, histograms merge bucket-wise (so a
// merged quantile equals the quantile of the pooled samples — the property
// that lets fleet-wide latency reports read like single-replica ones),
// max_batch_size takes the max, the quorum gauge sums, and merging races
// cleanly against live writers (the fleet router snapshots shards that are
// still serving).
#include "runtime/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace pgmr::runtime {
namespace {

TEST(MetricsMergeTest, EmptyMergeIsTheZeroSnapshot) {
  const MetricsSnapshot merged = merge_snapshots({});
  EXPECT_EQ(merged.requests_submitted, 0U);
  EXPECT_EQ(merged.requests_completed, 0U);
  EXPECT_TRUE(merged.member_activations.empty());
  std::uint64_t samples = 0;
  for (std::uint64_t b : merged.latency_buckets) samples += b;
  EXPECT_EQ(samples, 0U);
}

TEST(MetricsMergeTest, SingletonMergeIsTheIdentity) {
  MetricsRegistry reg(2);
  reg.on_submitted();
  reg.on_batch(3);
  reg.on_verdict(true);
  reg.on_member_activated(1);
  reg.on_latency_us(120);
  reg.on_scrub_hold_us(40);
  reg.set_quorum_size(2);
  const MetricsSnapshot one = reg.snapshot();
  // to_string covers every exported field, so text equality is a full
  // structural identity check.
  EXPECT_EQ(merge_snapshots({one}).to_string(), one.to_string());
}

TEST(MetricsMergeTest, CountersSumAcrossParts) {
  MetricsRegistry a(1);
  MetricsRegistry b(1);
  for (int i = 0; i < 3; ++i) a.on_submitted();
  for (int i = 0; i < 5; ++i) b.on_submitted();
  a.on_rejected();
  b.on_shed();
  a.on_batch(2);   // batches=1 size_sum=2 max=2
  b.on_batch(7);   // batches=1 size_sum=7 max=7
  a.on_verdict(true);
  a.on_verdict(false);
  b.on_verdict(true);
  b.on_degraded_verdict();
  a.on_scrub_cycle();
  b.on_scrub_cycle();
  b.on_scrub_cycle();
  a.on_replacement_started();
  a.on_replacement_completed();
  b.on_replacement_failed();
  a.set_quorum_size(4);
  b.set_quorum_size(3);

  const MetricsSnapshot m = merge_snapshots({a.snapshot(), b.snapshot()});
  EXPECT_EQ(m.requests_submitted, 8U);
  EXPECT_EQ(m.requests_rejected, 1U);
  EXPECT_EQ(m.requests_shed, 1U);
  EXPECT_EQ(m.batches, 2U);
  EXPECT_EQ(m.batch_size_sum, 9U);
  EXPECT_EQ(m.max_batch_size, 7U);  // max, not sum
  EXPECT_EQ(m.reliable, 2U);
  EXPECT_EQ(m.unreliable, 1U);
  EXPECT_EQ(m.requests_completed, 3U);
  EXPECT_EQ(m.degraded_verdicts, 1U);
  EXPECT_EQ(m.scrub_cycles, 3U);
  EXPECT_EQ(m.replacements_started, 1U);
  EXPECT_EQ(m.replacements_completed, 1U);
  EXPECT_EQ(m.replacements_failed, 1U);
  // The gauge sums: total members in service across the fleet.
  EXPECT_EQ(m.quorum_size, 7U);
  EXPECT_DOUBLE_EQ(m.mean_batch_size(), 4.5);
}

TEST(MetricsMergeTest, MemberVectorsPadToTheWidestEnsemble) {
  MetricsRegistry narrow(1);
  MetricsRegistry wide(3);
  narrow.on_member_activated(0);
  narrow.on_member_fault(0);
  wide.on_member_activated(0);
  wide.on_member_activated(2);
  wide.on_quarantine(1);
  wide.on_crc_mismatch(2);
  wide.on_weight_reload(2);

  const MetricsSnapshot m =
      merge_snapshots({narrow.snapshot(), wide.snapshot()});
  ASSERT_EQ(m.member_activations.size(), 3U);
  EXPECT_EQ(m.member_activations[0], 2U);  // 1 + 1
  EXPECT_EQ(m.member_activations[1], 0U);
  EXPECT_EQ(m.member_activations[2], 1U);  // wide only
  EXPECT_EQ(m.member_faults[0], 1U);
  EXPECT_EQ(m.quarantine_events[1], 1U);
  EXPECT_EQ(m.crc_mismatches[2], 1U);
  EXPECT_EQ(m.weight_reloads[2], 1U);
}

TEST(MetricsMergeTest, MergedQuantilesEqualPooledSampleQuantiles) {
  // Two disjoint sample streams recorded into separate registries, plus a
  // third registry fed the pooled stream. Because every registry shares
  // kLatencyBucketBounds, the bucket-wise merge must reproduce the pooled
  // histogram exactly — and with it every quantile.
  const std::vector<std::uint64_t> first = {5, 70, 70, 500, 3000, 100000};
  const std::vector<std::uint64_t> second = {60, 900, 900, 20000, 999999};
  MetricsRegistry a(1);
  MetricsRegistry b(1);
  MetricsRegistry pooled(1);
  for (std::uint64_t us : first) {
    a.on_latency_us(us);
    a.on_scrub_hold_us(us);
    pooled.on_latency_us(us);
    pooled.on_scrub_hold_us(us);
  }
  for (std::uint64_t us : second) {
    b.on_latency_us(us);
    b.on_scrub_hold_us(us);
    pooled.on_latency_us(us);
    pooled.on_scrub_hold_us(us);
  }

  const MetricsSnapshot merged = merge_snapshots({a.snapshot(), b.snapshot()});
  const MetricsSnapshot expect = pooled.snapshot();
  EXPECT_EQ(merged.latency_buckets, expect.latency_buckets);
  EXPECT_EQ(merged.scrub_hold_buckets, expect.scrub_hold_buckets);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(merged.latency_quantile_us(q), expect.latency_quantile_us(q))
        << "q=" << q;
    EXPECT_EQ(merged.scrub_hold_quantile_us(q),
              expect.scrub_hold_quantile_us(q))
        << "q=" << q;
  }
}

TEST(MetricsMergeTest, MergeOrderDoesNotMatter) {
  MetricsRegistry a(2);
  MetricsRegistry b(1);
  a.on_submitted();
  a.on_batch(4);
  a.on_member_fault(1);
  a.on_latency_us(90);
  b.on_submitted();
  b.on_batch(2);
  b.on_latency_us(4000);
  const MetricsSnapshot ab = merge_snapshots({a.snapshot(), b.snapshot()});
  const MetricsSnapshot ba = merge_snapshots({b.snapshot(), a.snapshot()});
  EXPECT_EQ(ab.to_string(), ba.to_string());
}

TEST(MetricsMergeTest, MergingRacesCleanlyWithLiveWriters) {
  // The fleet router merges per-shard snapshots while those shards keep
  // serving. Writers hammer two registries from four threads while a
  // merger thread repeatedly snapshots + merges; under TSan this documents
  // that snapshot/merge never race the relaxed writers, and the final
  // merge must account for every recorded event.
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  MetricsRegistry regs[2] = {MetricsRegistry(2), MetricsRegistry(2)};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&regs, w] {
      MetricsRegistry& reg = regs[w % 2];
      for (int i = 0; i < kPerWriter; ++i) {
        reg.on_submitted();
        reg.on_verdict(i % 3 != 0);
        reg.on_latency_us(static_cast<std::uint64_t>(50 + (i % 7) * 700));
        reg.on_member_activated(static_cast<std::size_t>(i % 2));
        if (i % 16 == 0) reg.on_batch(static_cast<std::uint64_t>(1 + i % 8));
      }
    });
  }
  std::uint64_t observed = 0;
  std::thread merger([&regs, &observed] {
    for (int i = 0; i < 200; ++i) {
      const MetricsSnapshot m =
          merge_snapshots({regs[0].snapshot(), regs[1].snapshot()});
      EXPECT_LE(observed, m.requests_submitted);  // monotone under merge
      observed = m.requests_submitted;
    }
  });
  for (std::thread& t : writers) t.join();
  merger.join();

  const MetricsSnapshot final_merge =
      merge_snapshots({regs[0].snapshot(), regs[1].snapshot()});
  const auto total = static_cast<std::uint64_t>(kWriters) * kPerWriter;
  EXPECT_EQ(final_merge.requests_submitted, total);
  EXPECT_EQ(final_merge.requests_completed, total);
  EXPECT_EQ(final_merge.member_activations[0] + final_merge.member_activations[1],
            total);
  std::uint64_t samples = 0;
  for (std::uint64_t b : final_merge.latency_buckets) samples += b;
  EXPECT_EQ(samples, total);
}

}  // namespace
}  // namespace pgmr::runtime
