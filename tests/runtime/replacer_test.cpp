// MemberReplacer unit coverage: fenced slots are rebuilt through the
// factory and hot-swapped back into service, factory failures burn
// bounded attempts, breaker escalation (fence_after_quarantines) feeds
// the same recovery path, and the quorum gauge tracks it all.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "nn/dense.h"
#include "nn/pooling.h"
#include "runtime/serving_runtime.h"

namespace pgmr::runtime {
namespace {

using std::chrono::milliseconds;

/// Flatten + Dense(2,2) identity net: logits == input.
nn::Network identity_net() {
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(2, 2);
  Tensor* w = fc->params()[0];
  (*w)[0] = 1.0F;
  (*w)[3] = 1.0F;
  layers.push_back(std::move(fc));
  return nn::Network("identity", std::move(layers));
}

class ReplacerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    archive_ = (std::filesystem::temp_directory_path() /
                ("pgmr_replacer_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name() +
                 ".net"))
                   .string();
    identity_net().save(archive_);
  }
  void TearDown() override { std::remove(archive_.c_str()); }

  polygraph::PolygraphSystem archive_system(int members) {
    mr::Ensemble e;
    for (int m = 0; m < members; ++m) {
      mr::Member member(std::make_unique<prep::Identity>(),
                        nn::Network::load(archive_));
      member.set_archive_source(archive_);
      e.add(std::move(member));
    }
    polygraph::PolygraphSystem sys(std::move(e));
    sys.set_thresholds({0.5F, members});
    return sys;
  }

  /// Rebuilds a slot from the shared archive; counts invocations.
  ReplacementFactory archive_factory() {
    return [this](std::size_t, int, std::stop_token)
               -> std::optional<mr::Member> {
      ++factory_calls_;
      mr::Member fresh(std::make_unique<prep::Identity>(),
                       nn::Network::load(archive_));
      fresh.set_archive_source(archive_);
      return fresh;
    };
  }

  static RuntimeOptions base_options() {
    RuntimeOptions o;
    o.threads = 2;
    o.max_batch = 4;
    o.max_delay = std::chrono::microseconds(200);
    o.protection = nn::Protection::full;
    return o;
  }

  static Tensor confident_input() {
    Tensor x(Shape{1, 1, 1, 2});
    x[0] = 5.0F;  // logits (5, 0): every healthy member votes class 0
    return x;
  }

  static polygraph::Verdict serve_one(ServingRuntime& rt) {
    return rt.submit(confident_input()).get();
  }

  /// Corrupts member m beyond healing: CRC broken + unreadable archive,
  /// so the next scrub must fence it.
  void kill_member(ServingRuntime& rt, std::size_t m) {
    rt.with_swap_lock([&rt, m, this] {
      mr::Member& victim = rt.system().ensemble().member(m);
      Tensor* w = victim.net().mutable_network().params()[0];
      (*w)[0] = -(*w)[0];
      victim.set_archive_source(archive_ + ".gone");
    });
  }

  std::string archive_;
  std::atomic<int> factory_calls_{0};
};

TEST_F(ReplacerTest, ReplaceNowRestoresAFencedSlot) {
  RuntimeOptions opts = base_options();
  opts.replacement.factory = archive_factory();  // enabled stays false
  ServingRuntime rt(archive_system(3), opts);
  EXPECT_FALSE(rt.replacer().running());  // disabled: no background thread
  EXPECT_EQ(rt.metrics_snapshot().quorum_size, 3U);

  kill_member(rt, 1);
  EXPECT_EQ(rt.scrub_now().fenced, 1U);
  EXPECT_EQ(rt.health().state(1), MemberState::fenced);
  EXPECT_EQ(rt.metrics_snapshot().quorum_size, 2U);
  EXPECT_TRUE(serve_one(rt).degraded);

  const ReplaceReport report = rt.replace_now();
  EXPECT_EQ(report.attempted, 1U);
  EXPECT_EQ(report.replaced, 1U);
  EXPECT_EQ(report.failed, 0U);
  EXPECT_EQ(factory_calls_.load(), 1);

  // The slot probes half-open and the very next verdict is full-quorum.
  EXPECT_EQ(rt.health().state(1), MemberState::half_open);
  const polygraph::Verdict v = serve_one(rt);
  EXPECT_EQ(v.label, 0);
  EXPECT_FALSE(v.degraded);
  EXPECT_EQ(rt.health().state(1), MemberState::healthy);

  const MetricsSnapshot snap = rt.metrics_snapshot();
  EXPECT_EQ(snap.replacements_started, 1U);
  EXPECT_EQ(snap.replacements_completed, 1U);
  EXPECT_EQ(snap.replacements_failed, 0U);
  EXPECT_EQ(snap.quorum_size, 3U);

  // The replacement is a first-class member: the scrubber checks it again.
  EXPECT_EQ(rt.scrub_now().members_checked, 3U);
}

TEST_F(ReplacerTest, WithoutAFactoryReplaceNowIsInert) {
  ServingRuntime rt(archive_system(2), base_options());
  kill_member(rt, 0);
  rt.scrub_now();
  const ReplaceReport report = rt.replace_now();
  EXPECT_EQ(report.attempted, 0U);
  EXPECT_EQ(report.replaced, 0U);
  EXPECT_EQ(rt.health().state(0), MemberState::fenced);
}

TEST_F(ReplacerTest, FactoryFailuresBurnBoundedAttempts) {
  RuntimeOptions opts = base_options();
  opts.replacement.max_attempts = 2;
  opts.replacement.factory = [this](std::size_t, int attempt,
                                    std::stop_token)
      -> std::optional<mr::Member> {
    ++factory_calls_;
    EXPECT_EQ(attempt, factory_calls_.load() - 1);  // 0 then 1
    if (factory_calls_.load() == 1) return std::nullopt;  // "no variant"
    throw std::runtime_error("training exploded");        // also a failure
  };
  ServingRuntime rt(archive_system(3), opts);

  kill_member(rt, 2);
  rt.scrub_now();
  ReplaceReport report = rt.replace_now();
  EXPECT_EQ(report.attempted, 1U);
  EXPECT_EQ(report.failed, 1U);
  report = rt.replace_now();
  EXPECT_EQ(report.attempted, 1U);
  EXPECT_EQ(report.failed, 1U);

  // Attempts exhausted: the slot is given up on, the factory rests.
  report = rt.replace_now();
  EXPECT_EQ(report.attempted, 0U);
  EXPECT_EQ(factory_calls_.load(), 2);
  EXPECT_EQ(rt.health().state(2), MemberState::fenced);
  EXPECT_EQ(rt.metrics_snapshot().replacements_failed, 2U);
  EXPECT_EQ(rt.metrics_snapshot().quorum_size, 2U);
}

TEST_F(ReplacerTest, BreakerEscalationFencesAndReplacerRecovers) {
  RuntimeOptions opts = base_options();
  opts.quarantine_after = 1;
  opts.quarantine_cooldown = milliseconds(0);
  opts.fence_after_quarantines = 2;
  opts.replacement.factory = archive_factory();
  ServingRuntime rt(archive_system(3), opts);

  // Corrupt weights but KEEP the archive unreadable-free: the breaker, not
  // the scrubber, must do the fencing here (no scrub sweeps run at all).
  rt.with_swap_lock([&rt] {
    Tensor* w = rt.system().ensemble().member(0).net().mutable_network()
                    .params()[0];
    (*w)[0] = -(*w)[0];
  });

  // Each batch: ABFT drops the vote, on_result records the fault. Trip 1
  // quarantines; with zero cooldown the next batch probes and trip 2 hits
  // fence_after_quarantines — the breaker escalates to fenced.
  serve_one(rt);
  EXPECT_EQ(rt.health().state(0), MemberState::quarantined);
  serve_one(rt);
  EXPECT_EQ(rt.health().state(0), MemberState::fenced);
  EXPECT_EQ(rt.metrics_snapshot().quorum_size, 2U);

  const ReplaceReport report = rt.replace_now();
  EXPECT_EQ(report.replaced, 1U);
  EXPECT_FALSE(serve_one(rt).degraded);
  EXPECT_EQ(rt.health().state(0), MemberState::healthy);
  EXPECT_EQ(rt.metrics_snapshot().quorum_size, 3U);
}

TEST_F(ReplacerTest, BackgroundLoopRecoversAfterScrubFence) {
  RuntimeOptions opts = base_options();
  opts.scrub_interval = milliseconds(3);
  opts.replacement.enabled = true;
  opts.replacement.poll = milliseconds(3);
  opts.replacement.factory = archive_factory();
  ServingRuntime rt(archive_system(3), opts);
  EXPECT_TRUE(rt.scrubber().running());
  EXPECT_TRUE(rt.replacer().running());

  kill_member(rt, 1);

  // No manual sweeps: scrub fences, fence notifies, replacer swaps.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rt.metrics_snapshot().replacements_completed == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "background replacer never recovered the slot";
    std::this_thread::sleep_for(milliseconds(2));
  }
  const polygraph::Verdict v = serve_one(rt);
  EXPECT_EQ(v.label, 0);
  EXPECT_FALSE(v.degraded);
  EXPECT_EQ(rt.metrics_snapshot().quorum_size, 3U);

  rt.shutdown();
  EXPECT_FALSE(rt.replacer().running());
}

TEST_F(ReplacerTest, ShutdownCancelsInFlightFactory) {
  RuntimeOptions opts = base_options();
  opts.scrub_interval = milliseconds(3);
  opts.replacement.enabled = true;
  opts.replacement.poll = milliseconds(3);
  opts.replacement.factory = [this](std::size_t, int,
                                    std::stop_token cancel)
      -> std::optional<mr::Member> {
    ++factory_calls_;
    // A "training run" that only finishes if nobody cancels it.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!cancel.stop_requested() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    if (cancel.stop_requested()) return std::nullopt;
    mr::Member fresh(std::make_unique<prep::Identity>(),
                     nn::Network::load(archive_));
    return fresh;
  };
  ServingRuntime rt(archive_system(2), opts);

  kill_member(rt, 0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (factory_calls_.load() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(milliseconds(1));
  }
  // Shutdown must come back promptly (stop_token cancels the factory),
  // and a cancelled build never reaches the ensemble.
  const auto t0 = std::chrono::steady_clock::now();
  rt.shutdown();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
  EXPECT_EQ(rt.metrics_snapshot().replacements_completed, 0U);
  EXPECT_EQ(rt.health().state(0), MemberState::fenced);
}

}  // namespace
}  // namespace pgmr::runtime
