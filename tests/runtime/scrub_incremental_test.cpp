// Incremental weight scrubbing properties: with a per-sweep tensor budget
// the round-robin cursor still visits every parameter tensor within
// ceil(P / budget) sweeps (a full logical pass, observable via
// full_passes), mismatches found mid-window heal or fence exactly as the
// full sweep would, and the soft hold ceiling keeps the recorded
// swap-mutex hold histogram bounded while guaranteeing forward progress
// (at least one tensor per member per acquisition).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "nn/dense.h"
#include "nn/pooling.h"
#include "runtime/serving_runtime.h"
#include "tensor/random.h"

namespace pgmr::runtime {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

/// Six parameter tensors: Flatten + Dense(2,4) + Dense(4,4) + Dense(4,2).
constexpr std::size_t kParams = 6;

nn::Network multi_param_net() {
  Rng rng(42);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  for (auto [in, out] : {std::pair<std::int64_t, std::int64_t>{2, 4},
                         {4, 4},
                         {4, 2}}) {
    auto fc = std::make_unique<nn::Dense>(in, out);
    fc->init(rng);
    layers.push_back(std::move(fc));
  }
  return nn::Network("multiparam", std::move(layers));
}

class ScrubIncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    archive_ = (std::filesystem::temp_directory_path() /
                ("pgmr_scrub_incr_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name() +
                 ".net"))
                   .string();
    multi_param_net().save(archive_);
  }
  void TearDown() override { std::remove(archive_.c_str()); }

  polygraph::PolygraphSystem archive_system(int members) {
    mr::Ensemble e;
    for (int m = 0; m < members; ++m) {
      mr::Member member(std::make_unique<prep::Identity>(),
                        nn::Network::load(archive_));
      member.set_archive_source(archive_);
      e.add(std::move(member));
    }
    polygraph::PolygraphSystem sys(std::move(e));
    sys.set_thresholds({0.5F, members});
    return sys;
  }

  static RuntimeOptions incremental_options(std::size_t max_tensors,
                                            microseconds max_hold =
                                                microseconds(0)) {
    RuntimeOptions o;
    o.threads = 1;
    o.protection = nn::Protection::full;
    o.scrub_interval = milliseconds(0);  // sweeps driven by scrub_now()
    o.scrub_max_tensors = max_tensors;
    o.scrub_max_hold = max_hold;
    return o;
  }

  /// Sign-flips one element of member m's parameter tensor `param`,
  /// breaking its CRC. Swap-locked so it never races a sweep.
  static void corrupt_param(ServingRuntime& rt, std::size_t m,
                            std::size_t param) {
    rt.with_swap_lock([&rt, m, param] {
      Tensor* p = rt.system().ensemble().member(m).net().mutable_network()
                      .params()[param];
      (*p)[0] = (*p)[0] == 0.0F ? 1.0F : -(*p)[0];
    });
  }

  std::string archive_;
};

TEST_F(ScrubIncrementalTest, EveryTensorIsVisitedWithinPSweeps) {
  ServingRuntime rt(archive_system(2), incremental_options(1));
  // Budget 1: each sweep CRCs exactly one tensor per member, and a full
  // logical pass over all kParams tensors completes every kParams sweeps.
  for (std::size_t sweep = 1; sweep <= 2 * kParams; ++sweep) {
    const ScrubReport report = rt.scrub_now();
    EXPECT_EQ(report.members_checked, 2U);
    EXPECT_EQ(report.tensors_checked, 2U);  // one per member
    for (std::size_t m = 0; m < 2; ++m) {
      EXPECT_EQ(rt.scrubber().full_passes(m), sweep / kParams)
          << "sweep " << sweep << " member " << m;
    }
  }
}

TEST_F(ScrubIncrementalTest, FullPassCadenceMatchesCeilOfParamsOverBudget) {
  ServingRuntime rt(archive_system(1), incremental_options(2));
  // Budget 2 over 6 tensors: pass boundary at every third sweep.
  for (std::size_t sweep = 1; sweep <= 6; ++sweep) {
    rt.scrub_now();
    EXPECT_EQ(rt.scrubber().full_passes(0), sweep / 3) << "sweep " << sweep;
  }
}

TEST_F(ScrubIncrementalTest, ZeroBudgetChecksEverythingEachSweep) {
  ServingRuntime rt(archive_system(3), incremental_options(0));
  const ScrubReport report = rt.scrub_now();
  EXPECT_EQ(report.tensors_checked, 3 * kParams);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(rt.scrubber().full_passes(m), 1U);
  }
}

TEST_F(ScrubIncrementalTest, MidWindowCorruptionHealsWithinOneLogicalPass) {
  ServingRuntime rt(archive_system(1), incremental_options(2));
  // Corrupt tensor 4: the cursor reaches it on the third sweep (windows
  // {0,1}, {2,3}, {4,...}).
  corrupt_param(rt, 0, 4);

  ScrubReport first = rt.scrub_now();
  ScrubReport second = rt.scrub_now();
  EXPECT_EQ(first.mismatches + second.mismatches, 0U)
      << "cursor windows before the corrupt tensor must stay clean";

  const ScrubReport third = rt.scrub_now();
  EXPECT_EQ(third.mismatches, 1U);
  EXPECT_EQ(third.reloads, 1U);
  EXPECT_EQ(third.fenced, 0U);

  const MetricsSnapshot snap = rt.metrics_snapshot();
  EXPECT_EQ(snap.crc_mismatches[0], 1U);
  EXPECT_EQ(snap.weight_reloads[0], 1U);
  // Healed: the next full pass over every tensor is clean.
  for (int i = 0; i < static_cast<int>(kParams); ++i) {
    EXPECT_EQ(rt.scrub_now().mismatches, 0U);
  }
}

TEST_F(ScrubIncrementalTest, IncrementalSweepStillFencesWithoutArchive) {
  ServingRuntime rt(archive_system(2), incremental_options(1));
  corrupt_param(rt, 1, 3);
  rt.with_swap_lock([&rt, this] {
    rt.system().ensemble().member(1).set_archive_source(archive_ + ".gone");
  });

  // The cursor reaches the corrupt tensor within one logical pass.
  std::size_t fenced = 0;
  for (std::size_t sweep = 0; sweep < kParams && fenced == 0; ++sweep) {
    fenced = rt.scrub_now().fenced;
  }
  EXPECT_EQ(fenced, 1U);
  EXPECT_EQ(rt.health().state(1), MemberState::fenced);
  // Fenced members drop out of later sweeps; the healthy member remains.
  EXPECT_EQ(rt.scrub_now().members_checked, 1U);
}

TEST_F(ScrubIncrementalTest, HoldCeilingKeepsHistogramBoundedWithProgress) {
  // Absurdly small ceiling: each acquisition may stop after a single
  // tensor, but progress is guaranteed (>= 1 tensor per member per sweep),
  // so a full pass still lands within kParams sweeps.
  ServingRuntime rt(archive_system(2),
                    incremental_options(0, microseconds(1)));
  for (std::size_t sweep = 0; sweep < kParams; ++sweep) {
    const ScrubReport report = rt.scrub_now();
    EXPECT_GE(report.tensors_checked, 2U);  // >= one per member
  }
  for (std::size_t m = 0; m < 2; ++m) {
    EXPECT_GE(rt.scrubber().full_passes(m), 1U)
        << "hold ceiling must not starve the cursor";
  }
}

TEST_F(ScrubIncrementalTest, HoldHistogramIsRecordedAndBounded) {
  // A generous 5ms ceiling on a micro net: every per-member acquisition
  // finishes far inside it, so the p99 hold stays within the histogram
  // bucket containing the ceiling (6400us upper bound).
  ServingRuntime rt(archive_system(3),
                    incremental_options(2, microseconds(5000)));
  for (int i = 0; i < 10; ++i) rt.scrub_now();

  const MetricsSnapshot snap = rt.metrics_snapshot();
  std::uint64_t samples = 0;
  for (std::uint64_t b : snap.scrub_hold_buckets) samples += b;
  EXPECT_EQ(samples, 30U);  // one sample per member per sweep
  EXPECT_LE(snap.scrub_hold_quantile_us(0.99), 6400U);
  EXPECT_LE(snap.scrub_hold_quantile_us(0.5),
            snap.scrub_hold_quantile_us(0.99));
}

TEST_F(ScrubIncrementalTest, BackgroundIncrementalScrubberHeals) {
  RuntimeOptions o = incremental_options(1, microseconds(2000));
  o.scrub_interval = milliseconds(2);
  ServingRuntime rt(archive_system(2), o);
  EXPECT_TRUE(rt.scrubber().running());

  corrupt_param(rt, 0, 5);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rt.metrics_snapshot().weight_reloads[0] == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "incremental background scrubber never healed the member";
    std::this_thread::sleep_for(milliseconds(2));
  }
  EXPECT_GE(rt.metrics_snapshot().crc_mismatches[0], 1U);
  rt.shutdown();
  EXPECT_FALSE(rt.scrubber().running());
}

}  // namespace
}  // namespace pgmr::runtime
