// Bounded MPMC queue semantics: ordering, backpressure, close/drain.
#include "runtime/mpmc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace pgmr::runtime {
namespace {

TEST(MpmcQueueTest, FifoOrderSingleThread) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.size(), 3U);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(MpmcQueueTest, ZeroCapacityIsClampedToOne) {
  MpmcQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1U);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_FALSE(q.try_push(8));  // full
  EXPECT_EQ(q.pop().value(), 7);
}

TEST(MpmcQueueTest, TryPushRefusesWhenFullOrClosed) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.close();
  EXPECT_FALSE(q.try_push(4));
}

TEST(MpmcQueueTest, CloseDrainsRemainingItemsThenReturnsNullopt) {
  MpmcQueue<int> q(4);
  q.push(10);
  q.push(20);
  q.close();
  EXPECT_FALSE(q.push(30));  // rejected after close
  EXPECT_EQ(q.pop().value(), 10);
  EXPECT_EQ(q.pop().value(), 20);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);  // stays drained
}

TEST(MpmcQueueTest, PopUntilTimesOutOnEmptyQueue) {
  MpmcQueue<int> q(4);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  EXPECT_EQ(q.pop_until(deadline), std::nullopt);
  EXPECT_FALSE(q.closed());
}

TEST(MpmcQueueTest, CloseWakesBlockedPush) {
  MpmcQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<int> result{-1};
  std::thread pusher([&] { result.store(q.push(2) ? 1 : 0); });
  // The pusher is blocked on a full queue; close() must release it with a
  // failed push rather than deadlock.
  q.close();
  pusher.join();
  EXPECT_EQ(result.load(), 0);
  EXPECT_EQ(q.pop().value(), 1);  // the queued item survives close
}

TEST(MpmcQueueTest, PopUnblocksWhenItemArrives) {
  MpmcQueue<int> q(1);
  std::thread popper([&] { EXPECT_EQ(q.pop().value(), 42); });
  q.push(42);
  popper.join();
}

TEST(MpmcQueueTest, ManyProducersManyConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 200;
  MpmcQueue<int> q(8);  // smaller than the load, so pushes block
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.pop()) {
        sum.fetch_add(*item);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);  // each value seen exactly once
}

}  // namespace
}  // namespace pgmr::runtime
