// ServingRuntime end-to-end: batching, verdict parity with the serial
// path, shutdown semantics, metrics accounting, and RADE activation
// charging — all with small hand-built ensembles (no zoo cache needed).
#include "runtime/serving_runtime.h"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "tensor/random.h"

namespace pgmr::runtime {
namespace {

nn::Network tiny_net(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  auto conv = std::make_unique<nn::Conv2D>(1, 4, 3, 1, 1);
  conv->init(rng);
  layers.push_back(std::move(conv));
  layers.push_back(std::make_unique<nn::ReLU>());
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(4 * 8 * 8, 3);
  fc->init(rng);
  layers.push_back(std::move(fc));
  return nn::Network("tiny", std::move(layers));
}

mr::Ensemble tiny_ensemble(int members) {
  mr::Ensemble e;
  for (int m = 0; m < members; ++m) {
    e.add(mr::Member(std::make_unique<prep::Identity>(),
                     tiny_net(static_cast<std::uint64_t>(m) + 1)));
  }
  return e;
}

polygraph::PolygraphSystem tiny_system(int members) {
  polygraph::PolygraphSystem sys(tiny_ensemble(members));
  sys.set_thresholds({0.4F, 2});
  return sys;
}

Tensor random_images(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(Shape{n, 1, 8, 8});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0F, 1.0F);
  return x;
}

std::vector<std::int64_t> random_labels(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (auto& l : labels) l = rng.randint(0, 2);
  return labels;
}

RuntimeOptions fast_options(std::size_t threads) {
  RuntimeOptions o;
  o.threads = threads;
  o.max_batch = 8;
  o.max_delay = std::chrono::microseconds(500);
  o.queue_capacity = 64;
  return o;
}

TEST(ServingRuntimeTest, ParallelVerdictsMatchSerialPredictExactly) {
  constexpr std::int64_t kN = 40;
  const Tensor images = random_images(kN, 7);

  // Reference: the serial single-sample path on an identical system.
  polygraph::PolygraphSystem reference = tiny_system(3);
  std::vector<polygraph::Verdict> expected;
  for (std::int64_t n = 0; n < kN; ++n) {
    expected.push_back(reference.predict(images.slice_sample(n)));
  }

  ServingRuntime rt(tiny_system(3), fast_options(3));
  std::vector<std::future<polygraph::Verdict>> futures;
  for (std::int64_t n = 0; n < kN; ++n) {
    futures.push_back(rt.submit(images.slice_sample(n)));
  }
  for (std::int64_t n = 0; n < kN; ++n) {
    const polygraph::Verdict v = futures[static_cast<std::size_t>(n)].get();
    EXPECT_EQ(v.label, expected[static_cast<std::size_t>(n)].label) << n;
    EXPECT_EQ(v.reliable, expected[static_cast<std::size_t>(n)].reliable) << n;
    EXPECT_EQ(v.votes, expected[static_cast<std::size_t>(n)].votes) << n;
    EXPECT_EQ(v.activated, 3) << n;
  }
}

TEST(ServingRuntimeTest, ParallelEvaluateMatchesSerialOutcome) {
  // The determinism regression: the same system evaluated serially and
  // through a multi-thread executor must produce identical Outcome counts.
  constexpr std::int64_t kN = 60;
  const Tensor images = random_images(kN, 11);
  const auto labels = random_labels(kN, 12);

  polygraph::PolygraphSystem sys = tiny_system(4);
  const mr::Outcome serial = sys.evaluate(images, labels);

  ThreadPool pool(4);
  const mr::Outcome parallel = sys.evaluate(images, labels, pool.executor());
  EXPECT_EQ(parallel.tp, serial.tp);
  EXPECT_EQ(parallel.fp, serial.fp);
  EXPECT_EQ(parallel.unreliable, serial.unreliable);
  EXPECT_EQ(parallel.total, serial.total);
}

TEST(ServingRuntimeTest, RejectsNonSingleSampleShapes) {
  ServingRuntime rt(tiny_system(2), fast_options(1));
  EXPECT_THROW(rt.submit(random_images(2, 1)), std::invalid_argument);
  EXPECT_THROW(rt.submit(Tensor(Shape{1, 8, 8})), std::invalid_argument);
}

TEST(ServingRuntimeTest, SubmitAfterShutdownThrows) {
  ServingRuntime rt(tiny_system(2), fast_options(1));
  rt.shutdown();
  rt.shutdown();  // idempotent
  EXPECT_THROW(rt.submit(random_images(1, 2)), std::runtime_error);
  EXPECT_FALSE(rt.try_submit(random_images(1, 3)).has_value());
  EXPECT_GE(rt.metrics_snapshot().requests_rejected, 1U);
}

TEST(ServingRuntimeTest, ShutdownServesEveryAcceptedRequest) {
  ServingRuntime rt(tiny_system(2), fast_options(2));
  const Tensor images = random_images(10, 4);
  std::vector<std::future<polygraph::Verdict>> futures;
  for (std::int64_t n = 0; n < 10; ++n) {
    futures.push_back(rt.submit(images.slice_sample(n)));
  }
  rt.shutdown();  // must drain, not drop
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  const MetricsSnapshot s = rt.metrics_snapshot();
  EXPECT_EQ(s.requests_submitted, 10U);
  EXPECT_EQ(s.requests_completed, 10U);
}

TEST(ServingRuntimeTest, MetricsAccountForEveryRequestAndBatchCap) {
  constexpr std::size_t kN = 30;
  ServingRuntime rt(tiny_system(3), fast_options(2));
  const Tensor images = random_images(kN, 5);
  std::vector<std::future<polygraph::Verdict>> futures;
  for (std::int64_t n = 0; n < static_cast<std::int64_t>(kN); ++n) {
    futures.push_back(rt.submit(images.slice_sample(n)));
  }
  for (auto& f : futures) f.get();

  const MetricsSnapshot s = rt.metrics_snapshot();
  EXPECT_EQ(s.requests_submitted, kN);
  EXPECT_EQ(s.requests_completed, kN);
  EXPECT_EQ(s.reliable + s.unreliable, kN);
  EXPECT_EQ(s.batch_size_sum, kN);  // every request in exactly one batch
  EXPECT_GE(s.batches, (kN + 7) / 8);
  EXPECT_LE(s.max_batch_size, 8U);  // max_batch respected
  // Full (non-staged) activation: every member charged for every request.
  for (const auto a : s.member_activations) EXPECT_EQ(a, kN);
  std::uint64_t hist_total = 0;
  for (const auto b : s.latency_buckets) hist_total += b;
  EXPECT_EQ(hist_total, kN);
}

TEST(ServingRuntimeTest, StagedSystemChargesOnlyActivatedMembers) {
  polygraph::PolygraphSystem sys(tiny_ensemble(4));
  const Tensor val = random_images(40, 20);
  sys.enable_staged(val, random_labels(40, 21));
  sys.set_thresholds({0.0F, 2});

  ServingRuntime rt(std::move(sys), fast_options(2));
  const Tensor images = random_images(12, 22);
  std::vector<std::future<polygraph::Verdict>> futures;
  for (std::int64_t n = 0; n < 12; ++n) {
    futures.push_back(rt.submit(images.slice_sample(n)));
  }
  std::uint64_t activated_total = 0;
  for (auto& f : futures) {
    const polygraph::Verdict v = f.get();
    EXPECT_GE(v.activated, 2);
    EXPECT_LE(v.activated, 4);
    activated_total += static_cast<std::uint64_t>(v.activated);
  }
  const MetricsSnapshot s = rt.metrics_snapshot();
  std::uint64_t charged = 0;
  for (const auto a : s.member_activations) charged += a;
  EXPECT_EQ(charged, activated_total);
}

TEST(ServingRuntimeTest, GeometryMismatchFailsOnlyThatRequest) {
  RuntimeOptions opts = fast_options(1);
  opts.max_delay = std::chrono::milliseconds(50);  // encourage coalescing
  ServingRuntime rt(tiny_system(2), opts);
  auto good = rt.submit(random_images(1, 30));
  Rng rng(31);
  Tensor small(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < small.numel(); ++i) {
    small[i] = rng.uniform(0.0F, 1.0F);
  }
  auto bad = rt.submit(std::move(small));
  // Whether the 4x4 request shares a batch with the 8x8 one (head defines
  // the geometry, the mismatch is rejected individually) or lands in its
  // own batch (the net rejects the input), its future throws and the good
  // request is unaffected.
  EXPECT_NO_THROW(good.get());
  EXPECT_THROW(bad.get(), std::exception);
}

TEST(ServingRuntimeTest, OptionsAreClampedToUsableValues) {
  RuntimeOptions opts;
  opts.threads = 0;
  opts.max_batch = 0;
  opts.queue_capacity = 0;
  ServingRuntime rt(tiny_system(2), opts);
  EXPECT_GE(rt.options().threads, 1U);
  EXPECT_GE(rt.options().max_batch, 1U);
  auto f = rt.submit(random_images(1, 40));
  EXPECT_NO_THROW(f.get());
}

}  // namespace
}  // namespace pgmr::runtime
