// MemberHealth circuit-breaker state machine, driven with synthetic time
// points (no sleeping).
#include "runtime/health.h"

#include <gtest/gtest.h>

#include <chrono>

namespace pgmr::runtime {
namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

Clock::time_point t0() { return Clock::time_point{}; }

TEST(MemberHealthTest, StartsHealthyAndRunsEveryone) {
  MemberHealth h(3, {2, milliseconds(100)});
  EXPECT_EQ(h.members(), 3U);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(h.state(m), MemberState::healthy);
    EXPECT_EQ(h.consecutive_faults(m), 0);
  }
  const auto mask = h.run_mask(t0());
  EXPECT_EQ(mask, (std::vector<bool>{true, true, true}));
  EXPECT_EQ(h.quarantined_count(), 0U);
}

TEST(MemberHealthTest, QuarantinesAfterConsecutiveFaults) {
  MemberHealth h(2, {3, milliseconds(100)});
  EXPECT_FALSE(h.on_result(0, false, t0()));
  EXPECT_FALSE(h.on_result(0, false, t0()));
  EXPECT_EQ(h.state(0), MemberState::healthy);
  EXPECT_EQ(h.consecutive_faults(0), 2);
  // The third consecutive fault is the quarantine event.
  EXPECT_TRUE(h.on_result(0, false, t0()));
  EXPECT_EQ(h.state(0), MemberState::quarantined);
  EXPECT_EQ(h.quarantined_count(), 1U);
  // Member 1 is untouched.
  EXPECT_EQ(h.state(1), MemberState::healthy);
  const auto mask = h.run_mask(t0() + milliseconds(1));
  EXPECT_EQ(mask, (std::vector<bool>{false, true}));
}

TEST(MemberHealthTest, SuccessResetsTheFaultStreak) {
  MemberHealth h(1, {2, milliseconds(100)});
  EXPECT_FALSE(h.on_result(0, false, t0()));
  EXPECT_FALSE(h.on_result(0, true, t0()));
  EXPECT_EQ(h.consecutive_faults(0), 0);
  // Non-consecutive faults never trip the breaker.
  EXPECT_FALSE(h.on_result(0, false, t0()));
  EXPECT_EQ(h.state(0), MemberState::healthy);
}

TEST(MemberHealthTest, CooldownExpiryOpensHalfOpenProbe) {
  MemberHealth h(1, {1, milliseconds(100)});
  EXPECT_TRUE(h.on_result(0, false, t0()));
  EXPECT_EQ(h.state(0), MemberState::quarantined);
  // Before the cooldown: still fenced off.
  EXPECT_EQ(h.run_mask(t0() + milliseconds(50)),
            (std::vector<bool>{false}));
  EXPECT_EQ(h.state(0), MemberState::quarantined);
  // After the cooldown: runs once as a probe.
  EXPECT_EQ(h.run_mask(t0() + milliseconds(100)),
            (std::vector<bool>{true}));
  EXPECT_EQ(h.state(0), MemberState::half_open);
}

TEST(MemberHealthTest, SuccessfulProbeRestoresHealthy) {
  MemberHealth h(1, {1, milliseconds(100)});
  h.on_result(0, false, t0());
  h.run_mask(t0() + milliseconds(100));  // -> half_open
  EXPECT_FALSE(h.on_result(0, true, t0() + milliseconds(101)));
  EXPECT_EQ(h.state(0), MemberState::healthy);
  EXPECT_EQ(h.consecutive_faults(0), 0);
}

TEST(MemberHealthTest, FailedProbeRequarantinesImmediately) {
  // In half_open a single fault re-trips the breaker even when the
  // configured streak is longer.
  MemberHealth h(1, {3, milliseconds(100)});
  h.on_result(0, false, t0());
  h.on_result(0, false, t0());
  EXPECT_TRUE(h.on_result(0, false, t0()));
  h.run_mask(t0() + milliseconds(100));  // -> half_open
  EXPECT_TRUE(h.on_result(0, false, t0() + milliseconds(101)));
  EXPECT_EQ(h.state(0), MemberState::quarantined);
  // Fresh cooldown from the failed probe.
  EXPECT_EQ(h.run_mask(t0() + milliseconds(150)),
            (std::vector<bool>{false}));
  EXPECT_EQ(h.run_mask(t0() + milliseconds(201)),
            (std::vector<bool>{true}));
}

TEST(MemberHealthTest, OptionsAreClampedToSaneValues) {
  MemberHealth h(1, {0, milliseconds(-5)});
  EXPECT_EQ(h.options().quarantine_after, 1);
  EXPECT_EQ(h.options().cooldown, milliseconds(0));
  // quarantine_after clamped to 1: the first fault trips.
  EXPECT_TRUE(h.on_result(0, false, t0()));
}

}  // namespace
}  // namespace pgmr::runtime
