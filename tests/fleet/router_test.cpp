// FleetRouter properties, all with tiny hand-built systems (no zoo cache):
//  * shard equivalence — fleet verdicts are bit-identical to the serial
//    single-system reference, for any shard count;
//  * rendezvous consistency — when a shard is quarantined only the keys it
//    owned move (spreading over the survivors), everything else stays put,
//    and they move back once the shard recovers;
//  * failover — a chaos-killed shard is quarantined after
//    shard_quarantine_after refused hand-offs, traffic re-routes, and a
//    successful half-open probe restores it after revival;
//  * overflow spill — a backlogged-but-alive winner sheds sideways to the
//    least-loaded eligible shard instead of failing;
//  * snapshot aggregation — merged counters equal per-shard sums, routing
//    counters account for every accepted hand-off.
#include "fleet/router.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "tensor/random.h"

namespace pgmr::fleet {
namespace {

using std::chrono::milliseconds;
using std::chrono::microseconds;

nn::Network tiny_net(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  auto up = std::make_unique<nn::Dense>(16, 8);
  up->init(rng);
  layers.push_back(std::move(up));
  layers.push_back(std::make_unique<nn::ReLU>());
  auto down = std::make_unique<nn::Dense>(8, 3);
  down->init(rng);
  layers.push_back(std::move(down));
  return nn::Network("tiny", std::move(layers));
}

/// Deterministic member seeds: every call builds an *equivalent* system,
/// which is the factory contract shard verdicts depend on.
polygraph::PolygraphSystem tiny_system() {
  mr::Ensemble e;
  for (std::uint64_t m = 0; m < 2; ++m) {
    e.add(mr::Member(std::make_unique<prep::Identity>(), tiny_net(m + 1)));
  }
  polygraph::PolygraphSystem sys(std::move(e));
  sys.set_thresholds({0.4F, 2});
  return sys;
}

Tensor random_images(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(Shape{n, 1, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0F, 1.0F);
  return x;
}

FleetOptions fleet_options(std::size_t shards,
                           std::shared_ptr<fault::ChaosInjector> chaos = {}) {
  FleetOptions o;
  o.shards = shards;
  o.chaos = std::move(chaos);
  o.runtime.threads = 1;
  o.runtime.max_batch = 4;
  o.runtime.max_delay = microseconds(200);
  o.runtime.queue_capacity = 64;
  return o;
}

/// First key in [0, limit) the router currently routes to `shard`.
std::uint64_t key_owned_by(const FleetRouter& fleet, std::size_t shard,
                           std::uint64_t limit = 4096) {
  for (std::uint64_t k = 0; k < limit; ++k) {
    if (fleet.shard_for(k) == shard) return k;
  }
  ADD_FAILURE() << "no key routed to shard " << shard;
  return 0;
}

TEST(FleetRouterTest, VerdictsMatchTheSerialReferenceOnEveryShardCount) {
  constexpr std::int64_t kN = 24;
  const Tensor images = random_images(kN, 5);
  polygraph::PolygraphSystem reference = tiny_system();

  for (const std::size_t shards : {1U, 3U}) {
    FleetRouter fleet([](std::size_t) { return tiny_system(); },
                      fleet_options(shards));
    std::vector<std::future<polygraph::Verdict>> futures;
    for (std::int64_t n = 0; n < kN; ++n) {
      futures.push_back(fleet.submit(images.slice_sample(n),
                                     static_cast<std::uint64_t>(n)));
    }
    for (std::int64_t n = 0; n < kN; ++n) {
      const polygraph::Verdict got =
          futures[static_cast<std::size_t>(n)].get();
      const polygraph::Verdict want = reference.predict(images.slice_sample(n));
      EXPECT_EQ(got.label, want.label) << shards << " shards, sample " << n;
      EXPECT_EQ(got.reliable, want.reliable) << shards << " shards, " << n;
      EXPECT_EQ(got.votes, want.votes) << shards << " shards, sample " << n;
      EXPECT_EQ(got.activated, want.activated) << shards << " shards, " << n;
      EXPECT_FALSE(got.degraded) << shards << " shards, sample " << n;
    }
    fleet.shutdown();

    const FleetSnapshot snap = fleet.snapshot();
    EXPECT_EQ(snap.merged.requests_completed, static_cast<std::uint64_t>(kN));
    std::uint64_t routed = 0, completed = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      routed += snap.routed[s];
      completed += snap.shards[s].requests_completed;
      EXPECT_EQ(snap.shard_states[s], runtime::MemberState::healthy);
    }
    EXPECT_EQ(routed, static_cast<std::uint64_t>(kN));
    EXPECT_EQ(completed, static_cast<std::uint64_t>(kN));
  }
}

TEST(FleetRouterTest, RoutingIsDeterministicAndCoversEveryShard) {
  FleetRouter fleet([](std::size_t) { return tiny_system(); },
                    fleet_options(4));
  std::set<std::size_t> owners;
  for (std::uint64_t k = 0; k < 256; ++k) {
    const std::size_t s = fleet.shard_for(k);
    ASSERT_LT(s, 4U);
    EXPECT_EQ(fleet.shard_for(k), s) << "routing must be stable, key " << k;
    owners.insert(s);
  }
  EXPECT_EQ(owners.size(), 4U) << "256 keys must touch all 4 shards";
}

TEST(FleetRouterTest, OnlyTheDeadShardsKeysMove) {
  auto chaos = std::make_shared<fault::ChaosInjector>(0);
  FleetOptions o = fleet_options(3, chaos);
  o.shard_quarantine_after = 1;  // one refusal trips the breaker
  o.shard_cooldown = milliseconds(60000);  // no half-open inside the test
  FleetRouter fleet([](std::size_t) { return tiny_system(); }, o);

  constexpr std::uint64_t kKeys = 300;
  std::vector<std::size_t> owner(kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) owner[k] = fleet.shard_for(k);

  const std::size_t victim = owner[0];
  chaos->kill_shard(victim);
  const Tensor image = random_images(1, 9);
  EXPECT_THROW(fleet.submit(image, 0), ShardUnavailable);
  ASSERT_EQ(fleet.shard_health().state(victim),
            runtime::MemberState::quarantined);

  // Consistency: keys the victim did not own are untouched; its own keys
  // redistribute over both survivors.
  std::set<std::size_t> rehomed;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::size_t now = fleet.shard_for(k);
    if (owner[k] != victim) {
      EXPECT_EQ(now, owner[k]) << "key " << k << " moved without cause";
    } else {
      EXPECT_NE(now, victim) << "key " << k;
      rehomed.insert(now);
    }
  }
  EXPECT_EQ(rehomed.size(), 2U) << "orphaned keys must spread over survivors";

  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_EQ(snap.shard_faults[victim], 1U);
  EXPECT_EQ(snap.shard_quarantines[victim], 1U);
  EXPECT_EQ(snap.unavailable, 1U);
}

TEST(FleetRouterTest, FailoverThenHalfOpenProbeRestoresTheShard) {
  auto chaos = std::make_shared<fault::ChaosInjector>(0);
  FleetOptions o = fleet_options(2, chaos);
  o.shard_quarantine_after = 2;
  o.shard_cooldown = milliseconds(50);
  FleetRouter fleet([](std::size_t) { return tiny_system(); }, o);

  const std::size_t victim = fleet.shard_for(7);
  const std::size_t survivor = 1 - victim;
  const std::uint64_t key = 7;
  const Tensor image = random_images(1, 13);

  // Detection window: quarantine_after refused hand-offs, each surfacing
  // as ShardUnavailable — the bounded availability cost of a dead shard.
  chaos->kill_shard(victim);
  EXPECT_THROW(fleet.submit(image, key), ShardUnavailable);
  EXPECT_THROW(fleet.submit(image, key), ShardUnavailable);
  EXPECT_EQ(fleet.shard_health().state(victim),
            runtime::MemberState::quarantined);
  EXPECT_EQ(chaos->shard_refusals(victim), 2U);

  // Quarantined: the victim's keys fail over to the survivor.
  fleet.submit(image, key).get();
  EXPECT_GE(fleet.snapshot().routed[survivor], 1U);

  // Revive and wait out the cooldown: the next submission for a victim key
  // runs as the half-open probe, and its success restores the shard.
  chaos->revive_shard(victim);
  std::this_thread::sleep_for(milliseconds(80));
  fleet.submit(image, key).get();
  EXPECT_EQ(fleet.shard_health().state(victim),
            runtime::MemberState::healthy);

  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_GE(snap.probes, 1U);
  EXPECT_GE(snap.routed[victim], 1U);
  EXPECT_EQ(snap.shard_faults[victim], 2U);
  // Restored: the key routes home again.
  EXPECT_EQ(fleet.shard_for(key), victim);
}

TEST(FleetRouterTest, BackloggedWinnerSpillsToTheLeastLoadedShard) {
  // Member-level chaos (independent of the shard-loss injector): every
  // inference sleeps 10ms, so with single-request batches and a 2-deep
  // queue the winner is deterministically backlogged while the submit loop
  // keeps arriving — the spill path must carry the overflow.
  auto slow = std::make_shared<fault::ChaosInjector>(2);
  slow->arm(0, fault::ChaosFault::latency_spike, -1, milliseconds(10));
  slow->arm(1, fault::ChaosFault::latency_spike, -1, milliseconds(10));
  const auto slow_system = [&slow]() {
    mr::Ensemble e;
    for (std::uint64_t m = 0; m < 2; ++m) {
      e.add(mr::Member(
          fault::chaos_wrap(std::make_unique<prep::Identity>(), slow, m),
          tiny_net(m + 1)));
    }
    polygraph::PolygraphSystem sys(std::move(e));
    sys.set_thresholds({0.4F, 2});
    return sys;
  };

  FleetOptions o = fleet_options(2);
  o.runtime.queue_capacity = 2;
  o.runtime.max_batch = 1;
  o.runtime.max_delay = microseconds(100);
  FleetRouter fleet([&slow_system](std::size_t) { return slow_system(); }, o);

  const std::uint64_t key = key_owned_by(fleet, 0);
  const Tensor images = random_images(16, 17);
  std::vector<std::future<polygraph::Verdict>> futures;
  for (std::int64_t n = 0; n < 16; ++n) {
    futures.push_back(fleet.submit(images.slice_sample(n), key));
  }
  for (auto& f : futures) f.get();  // every spilled request is served
  fleet.shutdown();

  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_GE(snap.spills, 1U) << "a full winner queue must shed sideways";
  EXPECT_GE(snap.routed[1], 1U) << "spills must land on the other shard";
  EXPECT_EQ(snap.routed[0] + snap.routed[1], 16U);
  EXPECT_EQ(snap.merged.requests_completed, 16U);
  EXPECT_EQ(snap.unavailable, 0U);
}

TEST(FleetRouterTest, WholeFleetDownIsShardUnavailable) {
  auto chaos = std::make_shared<fault::ChaosInjector>(0);
  FleetOptions o = fleet_options(2, chaos);
  o.shard_quarantine_after = 1;
  o.shard_cooldown = milliseconds(60000);
  FleetRouter fleet([](std::size_t) { return tiny_system(); }, o);
  chaos->kill_shard(0);
  chaos->kill_shard(1);

  const Tensor image = random_images(1, 23);
  // Two trips (one per shard, whichever order keys elect them), then the
  // fleet has nothing eligible left.
  EXPECT_THROW(fleet.submit(image, 1), ShardUnavailable);
  EXPECT_THROW(fleet.submit(image, 2), ShardUnavailable);
  EXPECT_THROW(fleet.submit(image, 3), ShardUnavailable);
  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_EQ(snap.unavailable, 3U);
  EXPECT_EQ(snap.shard_states[0], runtime::MemberState::quarantined);
  EXPECT_EQ(snap.shard_states[1], runtime::MemberState::quarantined);
  // The advisory view still answers from the full membership.
  EXPECT_LT(fleet.shard_for(42), 2U);
}

TEST(FleetRouterTest, SubmitAfterShutdownThrows) {
  FleetRouter fleet([](std::size_t) { return tiny_system(); },
                    fleet_options(2));
  fleet.shutdown();
  fleet.shutdown();  // idempotent
  EXPECT_THROW(fleet.submit(random_images(1, 3), 0), std::runtime_error);
}

TEST(FleetRouterTest, SnapshotTextCarriesFleetAndShardLines) {
  FleetRouter fleet([](std::size_t) { return tiny_system(); },
                    fleet_options(2));
  fleet.submit(random_images(1, 29), 11).get();
  const std::string text = fleet.snapshot().to_string();
  EXPECT_NE(text.find("fleet_shards 2"), std::string::npos) << text;
  EXPECT_NE(text.find("fleet_spills"), std::string::npos);
  EXPECT_NE(text.find("shard[0] state"), std::string::npos);
  EXPECT_NE(text.find("shard[1] state"), std::string::npos);
}

}  // namespace
}  // namespace pgmr::fleet
