// FleetRouter with process isolation — the same contract as the thread
// backend, now against real fork/exec'd workers:
//  * verdict equivalence — process-mode fleet verdicts are bit-identical
//    to the serial in-process reference;
//  * real-SIGKILL chaos — kill_shard() delivers an actual SIGKILL to the
//    victim's worker; the breaker quarantines it off refused hand-offs,
//    survivors keep serving, the supervisor respawns the worker, and a
//    half-open probe restores the shard with bit-identical verdicts;
//  * shard() access is a logic error (the runtime lives in another
//    address space);
//  * shutdown-vs-submit — concurrent submitters race shutdown() without
//    crashes or torn hand-offs: every submission either completes or
//    fails fast with ShardUnavailable (both backends).
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "fleet/router.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "tensor/random.h"

namespace pgmr::fleet {
namespace {

using std::chrono::milliseconds;
using std::chrono::microseconds;

nn::Network tiny_net(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  auto up = std::make_unique<nn::Dense>(16, 8);
  up->init(rng);
  layers.push_back(std::move(up));
  layers.push_back(std::make_unique<nn::ReLU>());
  auto down = std::make_unique<nn::Dense>(8, 3);
  down->init(rng);
  layers.push_back(std::move(down));
  return nn::Network("tiny", std::move(layers));
}

polygraph::PolygraphSystem tiny_system() {
  mr::Ensemble e;
  for (std::uint64_t m = 0; m < 2; ++m) {
    e.add(mr::Member(std::make_unique<prep::Identity>(), tiny_net(m + 1)));
  }
  polygraph::PolygraphSystem sys(std::move(e));
  sys.set_thresholds({0.4F, 2});
  return sys;
}

Tensor random_images(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(Shape{n, 1, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0F, 1.0F);
  return x;
}

FleetOptions process_options(std::size_t shards,
                             std::shared_ptr<fault::ChaosInjector> chaos = {}) {
  FleetOptions o;
  o.shards = shards;
  o.chaos = std::move(chaos);
  o.isolation = Isolation::process;
  o.process.worker_path = PGMR_SHARD_WORKER_BIN;
  o.process.backoff_initial = milliseconds(50);
  o.process.backoff_max = milliseconds(400);
  o.process.healthy_uptime = milliseconds(200);
  o.runtime.threads = 1;
  o.runtime.max_batch = 4;
  o.runtime.max_delay = microseconds(200);
  o.runtime.queue_capacity = 64;
  return o;
}

bool wait_until(const std::function<bool()>& pred, milliseconds budget) {
  const auto give_up = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < give_up) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(10));
  }
  return pred();
}

TEST(ProcRouterTest, ProcessModeVerdictsMatchTheSerialReference) {
  constexpr std::int64_t kN = 16;
  const Tensor images = random_images(kN, 5);
  polygraph::PolygraphSystem reference = tiny_system();

  FleetRouter fleet([](std::size_t) { return tiny_system(); },
                    process_options(2));
  EXPECT_EQ(fleet.isolation(), Isolation::process);
  EXPECT_THROW(fleet.shard(0), std::logic_error)
      << "process shards live in another address space";

  std::vector<std::future<polygraph::Verdict>> futures;
  for (std::int64_t n = 0; n < kN; ++n) {
    futures.push_back(
        fleet.submit(images.slice_sample(n), static_cast<std::uint64_t>(n)));
  }
  for (std::int64_t n = 0; n < kN; ++n) {
    const polygraph::Verdict got = futures[static_cast<std::size_t>(n)].get();
    const polygraph::Verdict want = reference.predict(images.slice_sample(n));
    EXPECT_EQ(got.label, want.label) << "sample " << n;
    EXPECT_EQ(got.reliable, want.reliable) << "sample " << n;
    EXPECT_EQ(got.votes, want.votes) << "sample " << n;
    EXPECT_EQ(got.activated, want.activated) << "sample " << n;
    EXPECT_FALSE(got.degraded) << "sample " << n;
  }
  fleet.shutdown();

  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_EQ(snap.merged.requests_completed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(snap.routed[0] + snap.routed[1], static_cast<std::uint64_t>(kN));
  EXPECT_EQ(snap.shard_restarts[0] + snap.shard_restarts[1], 0U);
}

TEST(ProcRouterTest, RealSigkillQuarantineRespawnProbeRestore) {
  auto chaos = std::make_shared<fault::ChaosInjector>(0);
  FleetOptions o = process_options(2, chaos);
  o.shard_quarantine_after = 2;
  o.shard_cooldown = milliseconds(100);
  FleetRouter fleet([](std::size_t) { return tiny_system(); }, o);

  const Tensor images = random_images(8, 31);
  const std::uint64_t key = 7;
  const std::size_t victim = fleet.shard_for(key);
  const std::size_t survivor = 1 - victim;
  const polygraph::Verdict before = fleet.submit(images.slice_sample(0), key).get();

  // Real chaos: SIGKILL the victim's worker process. The simulated-down
  // flag must stay false — the death is observed through the socket.
  chaos->kill_shard(victim);
  EXPECT_FALSE(chaos->shard_down(victim))
      << "process isolation must not fall back to simulation";

  // Detection window: refused hand-offs feed the breaker exactly like the
  // thread backend. The kill may need a moment to surface as EOF, so poll.
  ASSERT_TRUE(wait_until(
      [&] {
        try {
          fleet.submit(images.slice_sample(1), key).get();
        } catch (const ShardUnavailable&) {
        } catch (const std::exception&) {
          // in-flight casualty of the kill; also evidence of the outage
        }
        return fleet.shard_health().state(victim) ==
               runtime::MemberState::quarantined;
      },
      milliseconds(10000)))
      << "refused hand-offs must quarantine the killed shard";
  EXPECT_GE(chaos->shard_refusals(victim), 2U)
      << "refusals are counted identically to the thread backend";

  // Survivors keep the fleet serving while the victim is down.
  const polygraph::Verdict failover =
      fleet.submit(images.slice_sample(0), key).get();
  EXPECT_EQ(failover.label, before.label) << "shards must be equivalent";
  EXPECT_GE(fleet.snapshot().routed[survivor], 1U);

  // revive_shard is a harmless no-op in process mode (the supervisor owns
  // recovery); the worker respawns on its own.
  chaos->revive_shard(victim);
  ASSERT_TRUE(wait_until(
      [&] { return fleet.backend(victim).available(); }, milliseconds(15000)))
      << "supervisor did not respawn the killed worker";
  EXPECT_GE(fleet.snapshot().shard_restarts[victim], 1U);

  // After the cooldown the victim's key probes it half-open; success
  // restores the shard, and the respawned worker (rebuilt from the same
  // spec) answers bit-identically to the pre-kill incarnation.
  ASSERT_TRUE(wait_until(
      [&] {
        try {
          const polygraph::Verdict v =
              fleet.submit(images.slice_sample(0), key).get();
          EXPECT_EQ(v.label, before.label);
          EXPECT_EQ(v.reliable, before.reliable);
          EXPECT_EQ(v.votes, before.votes);
        } catch (const ShardUnavailable&) {
          return false;  // re-quarantined probe; keep waiting
        }
        return fleet.shard_health().state(victim) ==
               runtime::MemberState::healthy;
      },
      milliseconds(15000)))
      << "half-open probe did not restore the respawned shard";

  const polygraph::Verdict after = fleet.submit(images.slice_sample(0), key).get();
  EXPECT_EQ(after.label, before.label);
  EXPECT_EQ(after.votes, before.votes);
  fleet.shutdown();
}

/// Satellite: shutdown() must be safe against concurrent submit() — no
/// crash, no hang, no torn hand-off; post-stop submissions fail fast.
template <typename MakeOptions>
void run_shutdown_race(MakeOptions make_options) {
  for (int round = 0; round < 3; ++round) {
    FleetRouter fleet([](std::size_t) { return tiny_system(); },
                      make_options());
    const Tensor images = random_images(4, 41);
    std::atomic<bool> go{false};
    std::atomic<std::uint64_t> served{0}, refused{0};

    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&, t] {
        while (!go.load()) std::this_thread::yield();
        for (std::uint64_t k = 0; k < 32; ++k) {
          try {
            fleet.submit(images.slice_sample(k % 4),
                         k * 4 + static_cast<std::uint64_t>(t));
            served.fetch_add(1);
          } catch (const ShardUnavailable&) {
            refused.fetch_add(1);  // fail-fast after stop: the contract
          }
        }
      });
    }
    go.store(true);
    std::this_thread::sleep_for(milliseconds(5 * round));
    fleet.shutdown();
    for (auto& t : submitters) t.join();

    EXPECT_EQ(served.load() + refused.load(), 128U);
    // Post-stop submissions fail fast with ShardUnavailable, not a generic
    // runtime_error, and never block.
    EXPECT_THROW(fleet.submit(images.slice_sample(0), 0), ShardUnavailable);
  }
}

TEST(ProcRouterTest, ShutdownRacesSubmitSafelyThreadBackend) {
  run_shutdown_race([] {
    FleetOptions o;
    o.shards = 2;
    o.runtime.threads = 1;
    o.runtime.max_batch = 4;
    o.runtime.max_delay = microseconds(200);
    o.runtime.queue_capacity = 64;
    return o;
  });
}

TEST(ProcRouterTest, ShutdownRacesSubmitSafelyProcessBackend) {
  run_shutdown_race([] { return process_options(2); });
}

}  // namespace
}  // namespace pgmr::fleet
