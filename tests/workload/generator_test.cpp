// Workload generator + trace round-trip tests.
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "workload/trace.h"

namespace pgmr::workload {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(GeneratorTest, EqualSpecsProduceBitIdenticalTraces) {
  WorkloadSpec spec;
  spec.seed = 42;
  spec.requests = 500;
  spec.day_seconds = 600.0;
  const Trace a = generate_trace(spec);
  const Trace b = generate_trace(spec);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.seed, 42U);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at_seconds, b.events[i].at_seconds);
    EXPECT_EQ(a.events[i].key, b.events[i].key);
    EXPECT_EQ(a.events[i].sample, b.events[i].sample);
    EXPECT_EQ(a.events[i].cls, b.events[i].cls);
  }
  // A different seed must not replay the same day.
  spec.seed = 43;
  const Trace c = generate_trace(spec);
  ASSERT_EQ(c.events.size(), a.events.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.events.size() && !any_diff; ++i) {
    any_diff = a.events[i].key != c.events[i].key ||
               a.events[i].at_seconds != c.events[i].at_seconds;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, TimestampsAreMonotonicAndSamplesInCorpusRange) {
  WorkloadSpec spec;
  spec.seed = 7;
  spec.requests = 1000;
  spec.day_seconds = 600.0;
  spec.corpus_size = 64;
  const Trace trace = generate_trace(spec);
  ASSERT_EQ(static_cast<std::int64_t>(trace.events.size()), spec.requests);
  double prev = 0.0;
  for (const TraceEvent& ev : trace.events) {
    EXPECT_GE(ev.at_seconds, prev);
    prev = ev.at_seconds;
    EXPECT_GE(ev.sample, 0);
    EXPECT_LT(ev.sample, spec.corpus_size);
  }
}

TEST(GeneratorTest, ClassMixTracksTheConfiguredFractions) {
  WorkloadSpec spec;
  spec.seed = 11;
  spec.requests = 4000;
  spec.day_seconds = 3600.0;
  spec.drift_frac = 0.10;
  spec.ood_frac = 0.05;
  spec.adversarial_frac = 0.04;
  const TraceSummary s = summarize(generate_trace(spec));
  EXPECT_EQ(s.total, 4000);
  EXPECT_EQ(s.in_dist + s.drift + s.ood + s.adversarial, s.total);
  const double n = static_cast<double>(s.total);
  // Day-average shares; drift ramps 0 -> 2x but averages to drift_frac.
  EXPECT_NEAR(static_cast<double>(s.drift) / n, 0.10, 0.03);
  EXPECT_NEAR(static_cast<double>(s.ood) / n, 0.05, 0.02);
  EXPECT_NEAR(static_cast<double>(s.adversarial) / n, 0.04, 0.02);
  EXPECT_GT(s.in_dist, s.total / 2);
}

TEST(GeneratorTest, DriftShareRampsAcrossTheDay) {
  WorkloadSpec spec;
  spec.seed = 13;
  spec.requests = 4000;
  spec.day_seconds = 3600.0;
  spec.drift_frac = 0.15;
  const Trace trace = generate_trace(spec);
  std::int64_t first_half = 0, second_half = 0;
  const std::size_t mid = trace.events.size() / 2;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    if (trace.events[i].cls == InputClass::drift) {
      (i < mid ? first_half : second_half)++;
    }
  }
  // Linear 0 -> 2x ramp: the back half must clearly dominate.
  EXPECT_GT(second_half, first_half + first_half / 2);
}

TEST(GeneratorTest, BurstEventsShareTimestampAndClass) {
  WorkloadSpec spec;
  spec.seed = 17;
  spec.requests = 600;
  spec.day_seconds = 600.0;
  spec.burst_prob = 0.2;
  spec.burst_len = 4;
  const Trace trace = generate_trace(spec);
  const TraceSummary s = summarize(trace);
  EXPECT_GT(s.burst_events, 0);
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    if (trace.events[i].at_seconds == trace.events[i - 1].at_seconds) {
      EXPECT_EQ(trace.events[i].cls, trace.events[i - 1].cls)
          << "burst member " << i << " changed input class";
    }
  }
}

TEST(GeneratorTest, RejectsNonsensicalSpecs) {
  WorkloadSpec bad;
  bad.requests = 0;
  EXPECT_THROW(generate_trace(bad), std::invalid_argument);
  bad = WorkloadSpec{};
  bad.day_seconds = 0.0;
  EXPECT_THROW(generate_trace(bad), std::invalid_argument);
  bad = WorkloadSpec{};
  bad.diurnal_amplitude = 1.0;
  EXPECT_THROW(generate_trace(bad), std::invalid_argument);
  bad = WorkloadSpec{};
  // 2*drift + ood + adversarial > 1: the end-of-day drift share (2x the
  // average) would push the class probabilities past 1.
  bad.drift_frac = 0.45;
  bad.ood_frac = 0.08;
  bad.adversarial_frac = 0.03;
  EXPECT_THROW(generate_trace(bad), std::invalid_argument);
  bad = WorkloadSpec{};
  bad.burst_len = 0;
  EXPECT_THROW(generate_trace(bad), std::invalid_argument);
  bad = WorkloadSpec{};
  bad.corpus_size = 0;
  EXPECT_THROW(generate_trace(bad), std::invalid_argument);
}

TEST(TraceIoTest, SaveLoadRoundTripsBitExactly) {
  WorkloadSpec spec;
  spec.seed = 99;
  spec.requests = 300;
  spec.day_seconds = 300.0;
  spec.burst_prob = 0.1;
  const Trace trace = generate_trace(spec);
  const std::string path = temp_path("roundtrip.trace");
  save_trace(trace, path);
  const Trace loaded = load_trace(path);
  EXPECT_EQ(loaded.seed, trace.seed);
  ASSERT_EQ(loaded.events.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(loaded.events[i].at_seconds, trace.events[i].at_seconds);
    EXPECT_EQ(loaded.events[i].key, trace.events[i].key);
    EXPECT_EQ(loaded.events[i].sample, trace.events[i].sample);
    EXPECT_EQ(loaded.events[i].cls, trace.events[i].cls);
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, LoadFailStopsOnRottedTraces) {
  const std::string path = temp_path("rotted.trace");
  // Missing file.
  std::remove(path.c_str());
  EXPECT_THROW(load_trace(path), std::runtime_error);
  // Wrong header.
  {
    std::ofstream out(path);
    out << "not-a-trace v9 seed=1 events=0\n";
  }
  EXPECT_THROW(load_trace(path), std::runtime_error);
  // Unknown input class.
  {
    std::ofstream out(path);
    out << "pgmr-trace v1 seed=1 events=1\n";
    out << "0.5 12 3 marsian\n";
  }
  EXPECT_THROW(load_trace(path), std::runtime_error);
  // Event-count mismatch (truncated file).
  {
    std::ofstream out(path);
    out << "pgmr-trace v1 seed=1 events=2\n";
    out << "0.5 12 3 in_dist\n";
  }
  EXPECT_THROW(load_trace(path), std::runtime_error);
  // Non-monotonic timestamps — a corrupted splice, not a legal trace.
  {
    std::ofstream out(path);
    out << "pgmr-trace v1 seed=1 events=2\n";
    out << "0.5 12 3 in_dist\n";
    out << "0.25 13 0 ood\n";
  }
  EXPECT_THROW(load_trace(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GeneratorTest, SummaryLineMentionsEveryClass) {
  WorkloadSpec spec;
  spec.seed = 3;
  spec.requests = 200;
  spec.day_seconds = 120.0;
  const std::string line = to_string(summarize(generate_trace(spec)));
  EXPECT_NE(line.find("in-dist"), std::string::npos);
  EXPECT_NE(line.find("drift"), std::string::npos);
  EXPECT_NE(line.find("ood"), std::string::npos);
  EXPECT_NE(line.find("adversarial"), std::string::npos);
}

}  // namespace
}  // namespace pgmr::workload
