// predict_batch_resilient: fault-isolated batch classification with
// degraded-quorum fallback. The zero-fault path must be bit-identical to
// predict_batch; faulted members must be excluded, reported and survivable.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "polygraph/system.h"
#include "tensor/random.h"

namespace pgmr::polygraph {
namespace {

class ThrowingPrep final : public prep::Preprocessor {
 public:
  std::string name() const override { return "ORG"; }
  Tensor apply(const Tensor&) const override {
    throw std::runtime_error("injected member crash");
  }
};

nn::Network tiny_net(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  auto conv = std::make_unique<nn::Conv2D>(1, 4, 3, 1, 1);
  conv->init(rng);
  layers.push_back(std::move(conv));
  layers.push_back(std::make_unique<nn::ReLU>());
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(4 * 8 * 8, 3);
  fc->init(rng);
  layers.push_back(std::move(fc));
  return nn::Network("tiny", std::move(layers));
}

mr::Ensemble tiny_ensemble(int members) {
  mr::Ensemble e;
  for (int m = 0; m < members; ++m) {
    e.add(mr::Member(std::make_unique<prep::Identity>(),
                     tiny_net(static_cast<std::uint64_t>(m) + 1)));
  }
  return e;
}

Tensor random_images(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(Shape{n, 1, 8, 8});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0F, 1.0F);
  return x;
}

/// Flatten + Dense(2,2) identity: logits == input, so every identity
/// member votes argmax(input) with a deterministic confidence.
nn::Network identity_net() {
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(2, 2);
  Tensor* w = fc->params()[0];
  (*w)[0] = 1.0F;
  (*w)[3] = 1.0F;
  layers.push_back(std::move(fc));
  return nn::Network("identity", std::move(layers));
}

/// `members` identical identity members; `throwing` of them crash.
mr::Ensemble identity_ensemble(int members, int throwing = 0) {
  mr::Ensemble e;
  for (int m = 0; m < members; ++m) {
    std::unique_ptr<prep::Preprocessor> prep;
    if (m < throwing) {
      prep = std::make_unique<ThrowingPrep>();
    } else {
      prep = std::make_unique<prep::Identity>();
    }
    e.add(mr::Member(std::move(prep), identity_net()));
  }
  return e;
}

/// One sample whose logits are (5, 0): confident class 0.
Tensor confident_input() {
  Tensor x(Shape{1, 1, 1, 2});
  x[0] = 5.0F;
  return x;
}

void expect_same_verdict(const Verdict& a, const Verdict& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.reliable, b.reliable);
  EXPECT_EQ(a.votes, b.votes);
  EXPECT_EQ(a.activated, b.activated);
}

TEST(ResilientBatchTest, ZeroFaultPathMatchesPredictBatchExactly) {
  PolygraphSystem sys(tiny_ensemble(3));
  sys.set_thresholds({0.4F, 2});
  const Tensor images = random_images(20, 3);

  const std::vector<Verdict> plain = sys.predict_batch(images);
  const BatchReport report = sys.predict_batch_resilient(images);
  EXPECT_EQ(report.active, 3);
  EXPECT_FALSE(report.degraded);
  ASSERT_EQ(report.verdicts.size(), plain.size());
  for (std::size_t n = 0; n < plain.size(); ++n) {
    expect_same_verdict(report.verdicts[n], plain[n]);
    EXPECT_FALSE(report.verdicts[n].degraded);
  }
  for (const mr::MemberFault f : report.member_faults) {
    EXPECT_EQ(f, mr::MemberFault::none);
  }
}

TEST(ResilientBatchTest, ProtectionLevelsPreserveZeroFaultBitIdentity) {
  // At zero faults the resilient path must stay bit-identical to
  // predict_batch at every ABFT protection level, protection off included:
  // the checksummed forward is required to reproduce the plain forward's
  // arithmetic exactly.
  for (const nn::Protection p :
       {nn::Protection::off, nn::Protection::final_fc, nn::Protection::full}) {
    PolygraphSystem sys(tiny_ensemble(3));
    for (std::size_t m = 0; m < 3; ++m) {
      sys.ensemble().member(m).set_protection(p);
    }
    sys.set_thresholds({0.4F, 2});
    const Tensor images = random_images(12, 9);

    const std::vector<Verdict> plain = sys.predict_batch(images);
    const BatchReport report = sys.predict_batch_resilient(images);
    ASSERT_EQ(report.verdicts.size(), plain.size());
    for (std::size_t n = 0; n < plain.size(); ++n) {
      expect_same_verdict(report.verdicts[n], plain[n]);
    }
    for (const mr::MemberFault f : report.member_faults) {
      EXPECT_EQ(f, mr::MemberFault::none);
    }
  }
}

TEST(ResilientBatchTest, ZeroFaultPathMatchesStagedPredictBatch) {
  PolygraphSystem sys(tiny_ensemble(4));
  const Tensor val = random_images(40, 5);
  std::vector<std::int64_t> labels(40);
  Rng rng(6);
  for (auto& l : labels) l = rng.randint(0, 2);
  sys.enable_staged(val, labels);
  sys.set_thresholds({0.0F, 2});

  const Tensor images = random_images(15, 7);
  const std::vector<Verdict> plain = sys.predict_batch(images);
  const BatchReport report = sys.predict_batch_resilient(images);
  ASSERT_EQ(report.verdicts.size(), plain.size());
  for (std::size_t n = 0; n < plain.size(); ++n) {
    expect_same_verdict(report.verdicts[n], plain[n]);
  }
}

TEST(ResilientBatchTest, CrashedMemberYieldsDegradedVerdicts) {
  PolygraphSystem sys(identity_ensemble(3, /*throwing=*/1));
  sys.set_thresholds({0.5F, 2});
  const BatchReport report = sys.predict_batch_resilient(confident_input());
  EXPECT_EQ(report.active, 2);
  EXPECT_TRUE(report.degraded);
  ASSERT_EQ(report.member_faults.size(), 3U);
  EXPECT_EQ(report.member_faults[0], mr::MemberFault::exception);
  EXPECT_EQ(report.member_faults[1], mr::MemberFault::none);
  EXPECT_EQ(report.member_faults[2], mr::MemberFault::none);
  ASSERT_EQ(report.verdicts.size(), 1U);
  const Verdict& v = report.verdicts[0];
  EXPECT_TRUE(v.degraded);
  EXPECT_EQ(v.activated, 2);
  EXPECT_TRUE(v.reliable);
  EXPECT_EQ(v.label, 0);
}

TEST(ResilientBatchTest, DegradedQuorumRenormalizesThrFreq) {
  // Thr_Freq == 3 over 3 members with one down: the raw rule would be
  // unsatisfiable (only 2 survivors), the renormalized one is 2-of-2.
  PolygraphSystem sys(identity_ensemble(3, /*throwing=*/1));
  sys.set_thresholds({0.5F, 3});
  const BatchReport report = sys.predict_batch_resilient(confident_input());
  ASSERT_EQ(report.verdicts.size(), 1U);
  EXPECT_TRUE(report.verdicts[0].reliable);
  EXPECT_EQ(report.verdicts[0].label, 0);
  EXPECT_EQ(report.verdicts[0].votes, 2);
  EXPECT_TRUE(report.verdicts[0].degraded);
}

TEST(ResilientBatchTest, RunMaskSkipsQuarantinedMembers) {
  PolygraphSystem sys(identity_ensemble(3));
  sys.set_thresholds({0.5F, 2});
  const std::vector<bool> mask = {true, false, true};
  const BatchReport report =
      sys.predict_batch_resilient(confident_input(), mask);
  EXPECT_EQ(report.active, 2);
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.member_faults[1], mr::MemberFault::skipped);
  EXPECT_TRUE(report.verdicts[0].reliable);
  EXPECT_EQ(report.verdicts[0].activated, 2);
}

TEST(ResilientBatchTest, ChecksumCorruptedMemberIsExcluded) {
  PolygraphSystem sys(identity_ensemble(3));
  sys.set_thresholds({0.5F, 2});
  // Silent weight corruption in member 0's final FC: finite but wrong.
  Tensor* w = sys.ensemble().member(0).net().mutable_network().params()[0];
  (*w)[0] = 1.0e8F;
  const BatchReport report = sys.predict_batch_resilient(confident_input());
  EXPECT_EQ(report.member_faults[0], mr::MemberFault::checksum);
  EXPECT_EQ(report.active, 2);
  EXPECT_TRUE(report.verdicts[0].reliable);
  EXPECT_EQ(report.verdicts[0].label, 0);
}

TEST(ResilientBatchTest, WholeEnsembleFailureRethrows) {
  // Every member throwing is indistinguishable from a poison input, so the
  // batch must fail loudly instead of fabricating a verdict.
  PolygraphSystem sys(identity_ensemble(2, /*throwing=*/2));
  EXPECT_THROW(sys.predict_batch_resilient(confident_input()),
               std::runtime_error);
}

TEST(ResilientBatchTest, AllMembersMaskedServesUnreliableVerdicts) {
  // Nothing ran and nothing threw (all quarantined): serve honest
  // no-label unreliable verdicts rather than failing the requests.
  PolygraphSystem sys(identity_ensemble(2));
  const std::vector<bool> mask = {false, false};
  const BatchReport report =
      sys.predict_batch_resilient(confident_input(), mask);
  EXPECT_EQ(report.active, 0);
  EXPECT_TRUE(report.degraded);
  ASSERT_EQ(report.verdicts.size(), 1U);
  EXPECT_EQ(report.verdicts[0].label, -1);
  EXPECT_FALSE(report.verdicts[0].reliable);
  EXPECT_TRUE(report.verdicts[0].degraded);
}

TEST(ResilientBatchTest, RejectsWrongSizedMask) {
  PolygraphSystem sys(identity_ensemble(3));
  const std::vector<bool> mask = {true, false};
  EXPECT_THROW(sys.predict_batch_resilient(confident_input(), mask),
               std::invalid_argument);
}

}  // namespace
}  // namespace pgmr::polygraph
