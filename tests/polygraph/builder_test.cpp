// Delta-profile and greedy-builder tests. Uses the shared repo cache so
// trained lenet5 variants are reused across runs (training is deterministic
// either way).
#include "polygraph/builder.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace pgmr::polygraph {
namespace {

class BuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef PGMR_TEST_CACHE_DIR
    ::setenv("PGMR_CACHE_DIR", PGMR_TEST_CACHE_DIR, /*overwrite=*/0);
#endif
  }
};

TEST(DeltaProfileTest, SplitsByBaselineCorrectness) {
  // baseline: right on sample 0 (conf .9), wrong on sample 1 (conf .8).
  const Tensor baseline(Shape{2, 2}, {0.9F, 0.1F, 0.2F, 0.8F});
  const Tensor candidate(Shape{2, 2}, {0.7F, 0.3F, 0.4F, 0.6F});
  const DeltaProfile p =
      confidence_deltas("cand", baseline, candidate, {0, 0});
  ASSERT_EQ(p.correct_deltas.size(), 1U);
  ASSERT_EQ(p.wrong_deltas.size(), 1U);
  EXPECT_NEAR(p.correct_deltas[0], -0.2F, 1e-6F);
  EXPECT_NEAR(p.wrong_deltas[0], -0.2F, 1e-6F);
}

TEST(DeltaProfileTest, ScoreRewardsHesitationOnWrongOnly) {
  DeltaProfile good;
  good.wrong_deltas = {-0.3F, -0.2F};   // hesitates where baseline errs
  good.correct_deltas = {0.1F, 0.0F};   // keeps confidence when right
  DeltaProfile bad;
  bad.wrong_deltas = {0.1F, 0.2F};
  bad.correct_deltas = {-0.3F, -0.2F};  // loses confidence when right
  EXPECT_GT(good.score(), bad.score());
  EXPECT_DOUBLE_EQ(good.score(), 1.0);
  EXPECT_DOUBLE_EQ(bad.score(), -1.0);
}

TEST(DeltaProfileTest, NegativeFractionEdgeCases) {
  EXPECT_DOUBLE_EQ(DeltaProfile::negative_fraction({}), 0.0);
  EXPECT_DOUBLE_EQ(DeltaProfile::negative_fraction({-1.0F, 1.0F}), 0.5);
}

TEST(DeltaProfileTest, RejectsMismatchedInputs) {
  const Tensor a(Shape{2, 2});
  const Tensor b(Shape{3, 2});
  EXPECT_THROW(confidence_deltas("x", a, b, {0, 0}), std::invalid_argument);
  EXPECT_THROW(confidence_deltas("x", a, a, {0}), std::invalid_argument);
}

TEST_F(BuilderTest, RankPreprocessorsCoversPoolAndSorts) {
  const zoo::Benchmark& bm = zoo::find_benchmark("lenet5");
  const std::vector<std::string> pool = {"FlipX", "Gamma(2.00)"};
  const auto profiles = rank_preprocessors(bm, pool);
  ASSERT_EQ(profiles.size(), 2U);
  EXPECT_GE(profiles[0].score(), profiles[1].score());
  for (const auto& p : profiles) {
    EXPECT_FALSE(p.wrong_deltas.empty());
    EXPECT_FALSE(p.correct_deltas.empty());
  }
}

TEST_F(BuilderTest, GreedyBuildSelectsOrgFirstAndImprovesFp) {
  const zoo::Benchmark& bm = zoo::find_benchmark("lenet5");
  const GreedyResult r =
      greedy_build(bm, {"FlipX", "ConNorm", "Gamma(2.00)"}, 3);
  ASSERT_EQ(r.selected.size(), 3U);
  EXPECT_EQ(r.selected[0], "ORG");
  // FP trajectory is monotone non-increasing: greedy only adds a member
  // when it helps (the Pareto-selected FP can only improve or stay).
  for (std::size_t i = 1; i < r.fp_trajectory.size(); ++i) {
    EXPECT_LE(r.fp_trajectory[i], r.fp_trajectory[i - 1] + 1e-9);
  }
  // Validation TP stays at (or above) the baseline accuracy floor.
  EXPECT_GE(r.operating_point.tp_rate, r.baseline_accuracy - 1e-9);
  EXPECT_GT(r.baseline_accuracy, 0.9);  // lenet5 tier
}

TEST_F(BuilderTest, GreedyBuildRejectsDegenerateRequests) {
  const zoo::Benchmark& bm = zoo::find_benchmark("lenet5");
  EXPECT_THROW(greedy_build(bm, {"FlipX"}, 1), std::invalid_argument);
}

TEST_F(BuilderTest, GreedyStopsWhenPoolExhausted) {
  const zoo::Benchmark& bm = zoo::find_benchmark("lenet5");
  const GreedyResult r = greedy_build(bm, {"FlipX"}, 5);
  EXPECT_EQ(r.selected.size(), 2U);  // ORG + the only candidate
}

}  // namespace
}  // namespace pgmr::polygraph
