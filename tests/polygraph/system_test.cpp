// PolygraphSystem tests with small hand-built ensembles.
#include "polygraph/system.h"

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "tensor/random.h"

namespace pgmr::polygraph {
namespace {

nn::Network tiny_net(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  auto conv = std::make_unique<nn::Conv2D>(1, 4, 3, 1, 1);
  conv->init(rng);
  layers.push_back(std::move(conv));
  layers.push_back(std::make_unique<nn::ReLU>());
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(4 * 8 * 8, 3);
  fc->init(rng);
  layers.push_back(std::move(fc));
  return nn::Network("tiny", std::move(layers));
}

mr::Ensemble tiny_ensemble(int members) {
  mr::Ensemble e;
  for (int m = 0; m < members; ++m) {
    e.add(mr::Member(std::make_unique<prep::Identity>(),
                     tiny_net(static_cast<std::uint64_t>(m) + 1)));
  }
  return e;
}

Tensor random_images(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(Shape{n, 1, 8, 8});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0F, 1.0F);
  return x;
}

std::vector<std::int64_t> random_labels(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (auto& l : labels) l = rng.randint(0, 2);
  return labels;
}

TEST(PolygraphSystemTest, RejectsEmptyEnsemble) {
  EXPECT_THROW(PolygraphSystem(mr::Ensemble{}), std::invalid_argument);
}

TEST(PolygraphSystemTest, DefaultThresholdsArePermissive) {
  PolygraphSystem sys(tiny_ensemble(3));
  EXPECT_FLOAT_EQ(sys.thresholds().conf, 0.0F);
  EXPECT_EQ(sys.thresholds().freq, 1);
  EXPECT_FALSE(sys.staged());
}

TEST(PolygraphSystemTest, ProfileInstallsSweptThresholds) {
  PolygraphSystem sys(tiny_ensemble(3));
  const Tensor val = random_images(60, 5);
  const auto labels = random_labels(60, 6);
  const mr::SweepPoint chosen = sys.profile(val, labels, 0.0);
  EXPECT_EQ(sys.thresholds().freq, chosen.thresholds.freq);
  EXPECT_FLOAT_EQ(sys.thresholds().conf, chosen.thresholds.conf);
  // With tp_floor 0 the selector minimizes FP outright.
  EXPECT_LE(chosen.fp_rate, 1.0);
}

TEST(PolygraphSystemTest, PredictAgreesWithEvaluateTaxonomy) {
  PolygraphSystem sys(tiny_ensemble(3));
  sys.set_thresholds({0.4F, 2});
  const Tensor images = random_images(30, 7);
  const auto labels = random_labels(30, 8);

  const mr::Outcome outcome = sys.evaluate(images, labels);
  std::int64_t tp = 0, fp = 0, unreliable = 0;
  for (std::int64_t n = 0; n < 30; ++n) {
    const Verdict v = sys.predict(images.slice_sample(n));
    EXPECT_EQ(v.activated, 3);
    if (!v.reliable) {
      ++unreliable;
    } else if (v.label == labels[static_cast<std::size_t>(n)]) {
      ++tp;
    } else {
      ++fp;
    }
  }
  EXPECT_EQ(tp, outcome.tp);
  EXPECT_EQ(fp, outcome.fp);
  EXPECT_EQ(unreliable, outcome.unreliable);
}

TEST(PolygraphSystemTest, AllMembersBelowThrConfIsUnreliableNoLabel) {
  // Softmax confidences never exceed 1, so Thr_Conf > 1 drops every vote:
  // the verdict must be the no-label unreliable sentinel for every sample.
  PolygraphSystem sys(tiny_ensemble(3));
  sys.set_thresholds({1.5F, 1});
  const Tensor images = random_images(10, 17);
  for (const Verdict& v : sys.predict_batch(images)) {
    EXPECT_EQ(v.label, -1);
    EXPECT_FALSE(v.reliable);
    EXPECT_EQ(v.votes, 0);
  }
}

TEST(PolygraphSystemTest, PredictBatchRejectsEmptyOrWrongRank) {
  PolygraphSystem sys(tiny_ensemble(2));
  EXPECT_THROW(sys.predict_batch(Tensor(Shape{0, 1, 8, 8})),
               std::invalid_argument);
  EXPECT_THROW(sys.predict_batch(Tensor(Shape{8, 8})), std::invalid_argument);
}

TEST(PolygraphSystemTest, PredictRequiresSingleSample) {
  PolygraphSystem sys(tiny_ensemble(2));
  EXPECT_THROW(sys.predict(random_images(2, 9)), std::invalid_argument);
}

TEST(PolygraphSystemTest, StagedModeLifecycle) {
  PolygraphSystem sys(tiny_ensemble(4));
  EXPECT_THROW(sys.priority(), std::logic_error);
  EXPECT_THROW(sys.evaluate_staged(random_images(5, 1), random_labels(5, 2)),
               std::logic_error);

  const Tensor val = random_images(40, 10);
  const auto labels = random_labels(40, 11);
  sys.enable_staged(val, labels);
  EXPECT_TRUE(sys.staged());
  EXPECT_EQ(sys.priority().size(), 4U);

  sys.set_thresholds({0.0F, 2});
  const mr::StagedOutcome so = sys.evaluate_staged(val, labels);
  EXPECT_EQ(so.outcome.total, 40);
  EXPECT_GE(so.mean_activated(), 2.0);
  EXPECT_LE(so.mean_activated(), 4.0);

  sys.disable_staged();
  EXPECT_FALSE(sys.staged());
}

TEST(PolygraphSystemTest, StagedPredictReportsActivationCount) {
  PolygraphSystem sys(tiny_ensemble(4));
  const Tensor val = random_images(40, 12);
  const auto labels = random_labels(40, 13);
  sys.enable_staged(val, labels);
  sys.set_thresholds({0.0F, 2});
  const Verdict v = sys.predict(random_images(1, 14));
  EXPECT_GE(v.activated, 2);
  EXPECT_LE(v.activated, 4);
}

TEST(PolygraphSystemTest, StagedVerdictsMatchFullEngineAtFullActivation) {
  // With Thr_Freq == ensemble size, staged activation always runs every
  // member, so staged and full evaluation must agree exactly.
  PolygraphSystem sys(tiny_ensemble(3));
  const Tensor val = random_images(50, 15);
  const auto labels = random_labels(50, 16);
  sys.enable_staged(val, labels);
  sys.set_thresholds({0.0F, 3});
  const mr::StagedOutcome staged = sys.evaluate_staged(val, labels);
  const mr::Outcome full = sys.evaluate(val, labels);
  EXPECT_EQ(staged.outcome.tp, full.tp);
  EXPECT_EQ(staged.outcome.fp, full.fp);
  EXPECT_EQ(staged.outcome.unreliable, full.unreliable);
}

}  // namespace
}  // namespace pgmr::polygraph
