// SystemConfig text serialization tests.
#include "polygraph/config.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace pgmr::polygraph {
namespace {

std::string temp(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

SystemConfig sample_config() {
  SystemConfig c;
  c.benchmark = "convnet";
  c.members = {"ORG", "AdHist", "FlipX"};
  c.thresholds = {0.55F, 2};
  c.bits = 14;
  c.staged = true;
  return c;
}

TEST(ConfigTest, RoundTripPreservesEveryField) {
  const std::string path = temp("pgmr_config_roundtrip.cfg");
  save_config(sample_config(), path);
  const SystemConfig back = load_config(path);
  std::filesystem::remove(path);
  EXPECT_EQ(back.benchmark, "convnet");
  EXPECT_EQ(back.members,
            (std::vector<std::string>{"ORG", "AdHist", "FlipX"}));
  EXPECT_FLOAT_EQ(back.thresholds.conf, 0.55F);
  EXPECT_EQ(back.thresholds.freq, 2);
  EXPECT_EQ(back.bits, 14);
  EXPECT_TRUE(back.staged);
}

TEST(ConfigTest, CommentsAndBlankLinesIgnored) {
  const std::string path = temp("pgmr_config_comments.cfg");
  {
    std::ofstream out(path);
    out << "# a comment\n\nbenchmark = lenet5\n"
        << "members = ORG, FlipY\n\n# trailing comment\n";
  }
  const SystemConfig c = load_config(path);
  std::filesystem::remove(path);
  EXPECT_EQ(c.benchmark, "lenet5");
  EXPECT_EQ(c.members.size(), 2U);
  EXPECT_EQ(c.thresholds.freq, 1);  // default
  EXPECT_FALSE(c.staged);
}

TEST(ConfigTest, RejectsMalformedInput) {
  const std::string path = temp("pgmr_config_bad.cfg");
  auto write_and_expect_throw = [&](const char* contents) {
    std::ofstream(path) << contents;
    EXPECT_THROW(load_config(path), std::runtime_error) << contents;
  };
  write_and_expect_throw("benchmark = convnet\n");  // no members
  write_and_expect_throw("members = ORG\n");        // no benchmark
  write_and_expect_throw("benchmark = x\nmembers = ORG\nbogus = 1\n");
  write_and_expect_throw("benchmark x\nmembers = ORG\n");  // missing '='
  write_and_expect_throw(
      "benchmark = x\nmembers = ORG\nfreq = 5\n");  // freq > members
  write_and_expect_throw("benchmark = x\nmembers = ORG\nbits = 4\n");
  std::filesystem::remove(path);
}

TEST(ConfigTest, MissingFileThrows) {
  EXPECT_THROW(load_config(temp("pgmr_config_missing.cfg")),
               std::runtime_error);
}

#ifdef PGMR_TEST_CACHE_DIR
TEST(ConfigTest, MakeSystemBuildsRunnableSystem) {
  ::setenv("PGMR_CACHE_DIR", PGMR_TEST_CACHE_DIR, /*overwrite=*/0);
  SystemConfig c;
  c.benchmark = "lenet5";
  c.members = {"ORG", "FlipX"};
  c.thresholds = {0.5F, 2};
  PolygraphSystem system = make_system(c);
  EXPECT_EQ(system.ensemble().size(), 2U);
  EXPECT_EQ(system.thresholds().freq, 2);
  EXPECT_FALSE(system.staged());

  c.staged = true;
  PolygraphSystem staged_system = make_system(c);
  EXPECT_TRUE(staged_system.staged());
}
#endif

}  // namespace
}  // namespace pgmr::polygraph
