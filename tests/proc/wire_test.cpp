// Wire-protocol properties (satellite of the process-isolation PR):
//  * every message codec round-trips bit-exactly over a real socketpair;
//  * malformed input — truncated frames, oversized lengths, corrupt CRCs,
//    bad magic, short payloads — raises WireError, never crashes or reads
//    out of bounds;
//  * deadlines cross the boundary as remaining-microsecond budgets;
//  * the system spec round-trips a PolygraphSystem bit-identically, which
//    is the property worker-restart determinism stands on.
#include "proc/wire.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "proc/spec.h"
#include "tensor/random.h"

namespace pgmr::proc {
namespace {

using std::chrono::milliseconds;

/// A connected AF_UNIX stream pair, closed on scope exit.
struct Pair {
  int a = -1, b = -1;
  Pair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~Pair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void send_raw(int fd, const std::vector<std::uint8_t>& bytes) {
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
}

Tensor random_image(std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0F, 1.0F);
  return x;
}

TEST(WireTest, SubmitRoundTripsOverASocketpair) {
  Pair p;
  SubmitMsg out;
  out.id = 42;
  out.deadline_us = 1500;
  out.image = random_image(7);
  write_frame(p.a, encode_submit(out));

  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame(p.b, payload, milliseconds(1000)), ReadStatus::ok);
  ASSERT_EQ(frame_type(payload), FrameType::submit);
  const SubmitMsg in = decode_submit(payload);
  EXPECT_EQ(in.id, 42U);
  EXPECT_EQ(in.deadline_us, 1500);
  ASSERT_EQ(in.image.numel(), out.image.numel());
  ASSERT_EQ(in.image.shape().rank(), 4U);
  for (std::int64_t i = 0; i < in.image.numel(); ++i) {
    EXPECT_EQ(in.image[i], out.image[i]) << "pixel " << i;
  }
}

TEST(WireTest, NoDeadlineTravelsAsNegativeBudget) {
  SubmitMsg out;
  out.id = 1;
  out.image = random_image(3);
  ASSERT_EQ(out.deadline_us, -1);  // the "no deadline" sentinel
  const SubmitMsg in = decode_submit(encode_submit(out));
  EXPECT_LT(in.deadline_us, 0);
}

TEST(WireTest, HelloVerdictAndControlRoundTrip) {
  const HelloMsg hello = decode_hello(encode_hello({1234, 4}));
  EXPECT_EQ(hello.pid, 1234U);
  EXPECT_EQ(hello.members, 4U);

  VerdictMsg v;
  v.id = 9;
  v.status = VerdictStatus::ok;
  v.verdict.label = 2;
  v.verdict.reliable = true;
  v.verdict.votes = 3;
  v.verdict.activated = 4;
  v.verdict.degraded = true;
  const VerdictMsg ok = decode_verdict(encode_verdict(v));
  EXPECT_EQ(ok.id, 9U);
  EXPECT_EQ(ok.status, VerdictStatus::ok);
  EXPECT_EQ(ok.verdict.label, 2);
  EXPECT_TRUE(ok.verdict.reliable);
  EXPECT_EQ(ok.verdict.votes, 3);
  EXPECT_EQ(ok.verdict.activated, 4);
  EXPECT_TRUE(ok.verdict.degraded);

  v.status = VerdictStatus::deadline;
  v.error = "request deadline exceeded";
  const VerdictMsg shed = decode_verdict(encode_verdict(v));
  EXPECT_EQ(shed.status, VerdictStatus::deadline);
  EXPECT_EQ(shed.error, "request deadline exceeded");

  EXPECT_EQ(frame_type(encode_control(FrameType::ping)), FrameType::ping);
  EXPECT_EQ(frame_type(encode_control(FrameType::bye)), FrameType::bye);
}

TEST(WireTest, StatsRoundTripPreservesEveryCounter) {
  runtime::MetricsSnapshot s;
  s.requests_submitted = 100;
  s.requests_completed = 98;
  s.requests_shed = 2;
  s.batches = 40;
  s.batch_size_sum = 100;
  s.max_batch_size = 8;
  s.reliable = 90;
  s.unreliable = 8;
  s.quorum_size = 4;
  s.member_activations = {5, 6, 7};
  s.member_faults = {1, 0, 2};
  s.quarantine_events = {0, 0, 1};
  s.crc_mismatches = {0, 1, 0};
  s.weight_reloads = {0, 1, 0};
  s.latency_buckets[3] = 17;
  s.scrub_hold_buckets[1] = 5;

  const runtime::MetricsSnapshot r = decode_stats(encode_stats(s));
  EXPECT_EQ(r.requests_submitted, 100U);
  EXPECT_EQ(r.requests_completed, 98U);
  EXPECT_EQ(r.requests_shed, 2U);
  EXPECT_EQ(r.max_batch_size, 8U);
  EXPECT_EQ(r.quorum_size, 4U);
  EXPECT_EQ(r.member_activations, s.member_activations);
  EXPECT_EQ(r.member_faults, s.member_faults);
  EXPECT_EQ(r.quarantine_events, s.quarantine_events);
  EXPECT_EQ(r.crc_mismatches, s.crc_mismatches);
  EXPECT_EQ(r.weight_reloads, s.weight_reloads);
  EXPECT_EQ(r.latency_buckets[3], 17U);
  EXPECT_EQ(r.scrub_hold_buckets[1], 5U);
}

TEST(WireTest, TimeoutAndOrderlyEofAreStatusesNotErrors) {
  Pair p;
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(read_frame(p.b, payload, milliseconds(10)), ReadStatus::timeout);
  ::close(p.a);
  p.a = -1;
  EXPECT_EQ(read_frame(p.b, payload, milliseconds(10)), ReadStatus::eof);
}

TEST(WireTest, TruncatedFrameIsAWireErrorNotACrash) {
  Pair p;
  // A valid header promising 100 bytes, then only 3 arrive before EOF.
  std::vector<std::uint8_t> raw;
  put32(raw, kFrameMagic);
  put32(raw, 100);
  put32(raw, 0xdeadbeef);
  raw.push_back(1);
  raw.push_back(2);
  raw.push_back(3);
  send_raw(p.a, raw);
  ::close(p.a);
  p.a = -1;
  std::vector<std::uint8_t> payload;
  EXPECT_THROW(read_frame(p.b, payload, milliseconds(1000)), WireError);
}

TEST(WireTest, OversizedLengthIsRejectedBeforeAllocation) {
  Pair p;
  std::vector<std::uint8_t> raw;
  put32(raw, kFrameMagic);
  put32(raw, kMaxFrameBytes + 1);  // a corrupt length asking for 64MiB+
  put32(raw, 0);
  send_raw(p.a, raw);
  std::vector<std::uint8_t> payload;
  EXPECT_THROW(read_frame(p.b, payload, milliseconds(1000)), WireError);
}

TEST(WireTest, CorruptCrcIsRejected) {
  Pair p;
  const std::vector<std::uint8_t> payload = encode_control(FrameType::ping);
  std::vector<std::uint8_t> raw;
  put32(raw, kFrameMagic);
  put32(raw, static_cast<std::uint32_t>(payload.size()));
  put32(raw, 0x12345678);  // wrong CRC
  raw.insert(raw.end(), payload.begin(), payload.end());
  send_raw(p.a, raw);
  std::vector<std::uint8_t> got;
  EXPECT_THROW(read_frame(p.b, got, milliseconds(1000)), WireError);
}

TEST(WireTest, BadMagicIsRejected) {
  Pair p;
  std::vector<std::uint8_t> raw;
  put32(raw, 0x41424344);
  put32(raw, 0);
  put32(raw, 0);
  send_raw(p.a, raw);
  std::vector<std::uint8_t> payload;
  EXPECT_THROW(read_frame(p.b, payload, milliseconds(1000)), WireError);
}

TEST(WireTest, ShortPayloadsFailDecodingLoudly) {
  // A submit frame truncated mid-tensor: framing is valid, decoding must
  // still be bounds-checked.
  SubmitMsg m;
  m.id = 5;
  m.image = random_image(11);
  std::vector<std::uint8_t> payload = encode_submit(m);
  payload.resize(payload.size() / 2);
  EXPECT_THROW(decode_submit(payload), WireError);

  // Unknown frame type byte.
  EXPECT_THROW(frame_type({0x7f}), WireError);
  EXPECT_THROW(frame_type({}), WireError);

  // A tensor whose recorded rank exceeds the maximum.
  PayloadWriter w;
  w.u8(static_cast<std::uint8_t>(FrameType::submit));
  w.u64(1);
  w.i64(-1);
  w.u8(7);  // rank 7 > kMaxRank
  EXPECT_THROW(decode_submit(w.take()), WireError);
}

TEST(WireTest, BackToBackFramesStayDelimited) {
  Pair p;
  write_frame(p.a, encode_control(FrameType::ping));
  write_frame(p.a, encode_hello({77, 2}));
  write_frame(p.a, encode_control(FrameType::bye));

  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame(p.b, payload, milliseconds(1000)), ReadStatus::ok);
  EXPECT_EQ(frame_type(payload), FrameType::ping);
  ASSERT_EQ(read_frame(p.b, payload, milliseconds(1000)), ReadStatus::ok);
  EXPECT_EQ(decode_hello(payload).pid, 77U);
  ASSERT_EQ(read_frame(p.b, payload, milliseconds(1000)), ReadStatus::ok);
  EXPECT_EQ(frame_type(payload), FrameType::bye);
}

// ---- system spec ---------------------------------------------------------

nn::Network tiny_net(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  auto up = std::make_unique<nn::Dense>(16, 8);
  up->init(rng);
  layers.push_back(std::move(up));
  layers.push_back(std::make_unique<nn::ReLU>());
  auto down = std::make_unique<nn::Dense>(8, 3);
  down->init(rng);
  layers.push_back(std::move(down));
  return nn::Network("tiny", std::move(layers));
}

polygraph::PolygraphSystem tiny_system() {
  mr::Ensemble e;
  for (std::uint64_t m = 0; m < 2; ++m) {
    e.add(mr::Member(std::make_unique<prep::Identity>(), tiny_net(m + 1)));
  }
  polygraph::PolygraphSystem sys(std::move(e));
  sys.set_thresholds({0.4F, 2});
  return sys;
}

TEST(SpecTest, SystemSpecRoundTripsBitIdentically) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pgmr-spec-test-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  polygraph::PolygraphSystem original = tiny_system();
  runtime::RuntimeOptions options;
  options.max_batch = 4;
  options.queue_capacity = 32;
  options.quarantine_after = 5;
  write_system_spec(dir.string(), original, options);

  WorkerSystem loaded = load_system_spec(dir.string());
  EXPECT_EQ(loaded.system.ensemble().size(), 2U);
  EXPECT_EQ(loaded.options.max_batch, 4U);
  EXPECT_EQ(loaded.options.queue_capacity, 32U);
  EXPECT_EQ(loaded.options.quarantine_after, 5);
  ASSERT_EQ(loaded.options.protection_per_member.size(), 2U);

  // The restart-determinism property: the reconstructed system's verdicts
  // are bit-identical to the original's.
  for (std::uint64_t seed = 50; seed < 58; ++seed) {
    const Tensor image = random_image(seed);
    const polygraph::Verdict want = original.predict(image);
    const polygraph::Verdict got = loaded.system.predict(image);
    EXPECT_EQ(got.label, want.label) << "seed " << seed;
    EXPECT_EQ(got.reliable, want.reliable) << "seed " << seed;
    EXPECT_EQ(got.votes, want.votes) << "seed " << seed;
  }
  std::filesystem::remove_all(dir);
}

TEST(SpecTest, MissingSpecDirectoryThrows) {
  EXPECT_THROW(load_system_spec("/nonexistent/pgmr-spec"),
               std::runtime_error);
}

}  // namespace
}  // namespace pgmr::proc
